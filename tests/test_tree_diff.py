"""Tests for structural tree diffing."""

import pytest

from repro.core import CategoryTree
from repro.evaluation import diff_trees


def tree_with(categories: dict[str, set]) -> CategoryTree:
    tree = CategoryTree()
    for label, items in categories.items():
        tree.add_category(items, label=label)
    return tree


class TestDiff:
    def test_identical_trees(self):
        a = tree_with({"x": {"1", "2"}, "y": {"3"}})
        b = tree_with({"x": {"1", "2"}, "y": {"3"}})
        diff = diff_trees(a, b)
        assert len(diff.matches) == 2
        assert diff.removed_cids == () and diff.added_cids == ()
        assert diff.mean_matched_similarity == 1.0
        assert diff.survival_rate == 1.0
        assert diff.item_stability == 1.0

    def test_removed_and_added(self):
        old = tree_with({"gone": {"1", "2"}})
        new = tree_with({"fresh": {"8", "9"}})
        diff = diff_trees(old, new)
        assert not diff.matches
        assert len(diff.removed_cids) == 1
        assert len(diff.added_cids) == 1
        assert diff.survival_rate == 0.0
        assert diff.item_stability == 0.0

    def test_partial_match_similarity(self):
        old = tree_with({"a": {"1", "2", "3", "4"}})
        new = tree_with({"a2": {"1", "2", "3", "9"}})
        diff = diff_trees(old, new)
        assert len(diff.matches) == 1
        assert diff.matches[0].similarity == pytest.approx(3 / 5)

    def test_min_similarity_gate(self):
        old = tree_with({"a": {"1", "2", "3", "4"}})
        new = tree_with({"b": {"4", "9", "8", "7"}})
        assert diff_trees(old, new, min_similarity=0.5).matches == ()
        assert len(diff_trees(old, new, min_similarity=0.1).matches) == 1

    def test_one_to_one_matching(self):
        old = tree_with({"a": {"1", "2"}, "b": {"1", "3"}})
        new = tree_with({"m": {"1", "2"}})
        diff = diff_trees(old, new, min_similarity=0.3)
        assert len(diff.matches) == 1
        # Best match wins: 'a' pairs with 'm' at similarity 1.
        assert diff.matches[0].similarity == 1.0
        assert len(diff.removed_cids) == 1

    def test_item_stability_counts_moves(self):
        old = tree_with({"a": {"1", "2", "3"}})
        new = tree_with({"a": {"1", "2", "9"}})  # item 3 evicted
        diff = diff_trees(old, new)
        assert diff.item_stability == pytest.approx(2 / 3)

    def test_conservative_updates_shrink_the_diff(self, dataset_a):
        """Raising the existing-categories weight share must yield a tree
        closer to the existing tree (the paper's control-knob claim)."""
        from repro.algorithms import CTCR
        from repro.catalog import tree_categories_as_input_sets
        from repro.core import Variant
        from repro.evaluation import reweight_sources
        from repro.pipeline import preprocess

        variant = Variant.threshold_jaccard(0.8)
        queries, _ = preprocess(dataset_a, variant)
        existing_sets = tree_categories_as_input_sets(
            dataset_a.existing_tree, start_sid=50_000
        )
        mixed = queries.with_extra_sets(existing_sets)
        builder = CTCR()
        conservative = builder.build(
            reweight_sources(mixed, 0.1), variant
        )
        aggressive = builder.build(
            reweight_sources(mixed, 0.9), variant
        )
        diff_conservative = diff_trees(
            dataset_a.existing_tree, conservative, min_similarity=0.5
        )
        diff_aggressive = diff_trees(
            dataset_a.existing_tree, aggressive, min_similarity=0.5
        )
        assert (
            diff_conservative.survival_rate
            >= diff_aggressive.survival_rate - 0.02
        )
