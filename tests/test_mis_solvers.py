"""Tests for the MIS solvers: reductions, exact B&B, greedy, façade."""

import itertools
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mis import (
    MISConfig,
    WeightedGraph,
    WeightedHypergraph,
    clique_cover_bound,
    expand_solution,
    greedy_mwis,
    reduce_graph,
    solve_conflicts,
    solve_exact,
    solve_greedy,
    solve_hypergraph_mis,
)


def brute_force_mwis(graph: WeightedGraph) -> float:
    best = 0.0
    vertices = graph.vertices()
    for r in range(len(vertices) + 1):
        for subset in itertools.combinations(vertices, r):
            if graph.is_independent_set(subset):
                best = max(best, graph.weight_of(subset))
    return best


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=9))
    weights = {
        i: draw(st.floats(min_value=0.0, max_value=10.0)) for i in range(n)
    }
    g = WeightedGraph(range(n), weights)
    for a in range(n):
        for b in range(a + 1, n):
            if draw(st.booleans()):
                g.add_edge(a, b)
    return g


class TestReductions:
    def test_isolated_vertices_chosen(self):
        g = WeightedGraph(range(3))
        result = reduce_graph(g)
        assert result.chosen == {0, 1, 2}
        assert len(result.kernel) == 0

    def test_heavy_vertex_dominates_neighborhood(self):
        g = WeightedGraph.from_edges(
            range(3), [(0, 1), (0, 2)], {0: 10.0, 1: 1.0, 2: 1.0}
        )
        result = reduce_graph(g)
        assert 0 in result.chosen
        assert len(result.kernel) == 0

    def test_pendant_fold_accounting(self):
        # Path 0-1-2 with w = 1, 3, 1: optimal is {1} (weight 3).
        g = WeightedGraph.from_edges(
            range(3), [(0, 1), (1, 2)], {0: 1.0, 1: 3.0, 2: 1.0}
        )
        result = reduce_graph(g)
        solution = expand_solution(result, set(result.kernel.vertices()))
        # Whatever the fold order, the lifted solution must be optimal.
        assert g.is_independent_set(solution)

    def test_input_graph_not_mutated(self):
        g = WeightedGraph.from_edges(range(3), [(0, 1)])
        reduce_graph(g)
        assert len(g) == 3 and g.num_edges == 1

    @settings(max_examples=60, deadline=None)
    @given(random_graphs())
    def test_reductions_preserve_optimum(self, g):
        reduced = reduce_graph(g)
        kernel_opt = brute_force_mwis(reduced.kernel)
        lifted = expand_solution(
            reduced, _brute_force_set(reduced.kernel)
        )
        assert g.is_independent_set(lifted)
        assert math.isclose(
            g.weight_of(lifted),
            brute_force_mwis(g),
            rel_tol=1e-9,
            abs_tol=1e-9,
        ), (kernel_opt, reduced.folds)


def _brute_force_set(graph: WeightedGraph) -> set:
    best_w, best_set = -1.0, set()
    vertices = graph.vertices()
    for r in range(len(vertices) + 1):
        for subset in itertools.combinations(vertices, r):
            if graph.is_independent_set(subset):
                w = graph.weight_of(subset)
                if w > best_w:
                    best_w, best_set = w, set(subset)
    return best_set


class TestExact:
    def test_triangle(self):
        g = WeightedGraph.from_edges(
            "abc", [("a", "b"), ("b", "c"), ("a", "c")], {"b": 5.0}
        )
        assert solve_exact(g) == {"b"}

    def test_bipartite_path(self):
        g = WeightedGraph.from_edges(range(4), [(0, 1), (1, 2), (2, 3)])
        solution = solve_exact(g)
        assert g.is_independent_set(solution)
        assert g.weight_of(solution) == 2.0

    def test_clique_cover_bound_is_valid(self):
        g = WeightedGraph.from_edges(
            range(4), [(0, 1), (1, 2), (2, 3), (3, 0)], {0: 4.0, 2: 3.0}
        )
        bound = clique_cover_bound(g, set(g.vertices()))
        assert bound >= brute_force_mwis(g) - 1e-9

    @settings(max_examples=80, deadline=None)
    @given(random_graphs())
    def test_exact_matches_brute_force(self, g):
        solution = solve_exact(g)
        assert g.is_independent_set(solution)
        assert math.isclose(
            g.weight_of(solution), brute_force_mwis(g), abs_tol=1e-9
        )


class TestGreedy:
    def test_returns_independent_set(self):
        g = WeightedGraph.from_edges(
            range(5), [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]
        )
        assert g.is_independent_set(solve_greedy(g))

    def test_local_search_improves_star(self):
        # Star center heavy-ish but leaves together outweigh it.
        g = WeightedGraph.from_edges(
            range(4), [(0, 1), (0, 2), (0, 3)], {0: 2.0}
        )
        solution = solve_greedy(g)
        assert g.weight_of(solution) == 3.0

    @settings(max_examples=50, deadline=None)
    @given(random_graphs())
    def test_greedy_within_half_of_optimum_on_small(self, g):
        solution = greedy_mwis(g)
        assert g.is_independent_set(solution)


class TestHypergraph:
    def test_triple_edge_allows_two(self):
        hg = WeightedHypergraph(
            vertices=[0, 1, 2],
            weights={0: 1.0, 1: 1.0, 2: 1.0},
            edges=[frozenset({0, 1, 2})],
        )
        solution = solve_hypergraph_mis(hg)
        assert len(solution) == 2
        assert hg.is_independent(solution)

    def test_mixed_edges(self):
        hg = WeightedHypergraph(
            vertices=[0, 1, 2, 3],
            weights={0: 2.0, 1: 1.0, 2: 1.0, 3: 1.0},
            edges=[frozenset({0, 1}), frozenset({1, 2, 3})],
        )
        solution = solve_hypergraph_mis(hg)
        assert hg.is_independent(solution)
        assert hg.weight_of(solution) == 4.0  # {0, 2, 3}

    def test_invalid_edge_size_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            WeightedHypergraph([0], {0: 1.0}, [frozenset({0})])

    def test_greedy_fallback_is_independent(self):
        from repro.mis import greedy_hypergraph_mis

        hg = WeightedHypergraph(
            vertices=list(range(6)),
            weights={i: float(i + 1) for i in range(6)},
            edges=[frozenset({0, 1, 2}), frozenset({2, 3}), frozenset({3, 4, 5})],
        )
        solution = greedy_hypergraph_mis(hg)
        assert hg.is_independent(solution)

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_hypergraph_exact_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=1, max_value=7))
        weights = {
            i: data.draw(st.floats(min_value=0.1, max_value=5.0))
            for i in range(n)
        }
        edges = []
        possible = list(itertools.combinations(range(n), 2)) + list(
            itertools.combinations(range(n), 3)
        )
        for combo in possible:
            if data.draw(st.booleans()):
                edges.append(frozenset(combo))
        hg = WeightedHypergraph(list(range(n)), weights, edges)
        solution = solve_hypergraph_mis(hg)
        assert hg.is_independent(solution)
        best = 0.0
        for r in range(n + 1):
            for subset in itertools.combinations(range(n), r):
                if hg.is_independent(set(subset)):
                    best = max(best, hg.weight_of(subset))
        assert math.isclose(hg.weight_of(solution), best, abs_tol=1e-9)


class TestFacade:
    def test_routes_pairs_to_exact(self):
        hg = WeightedHypergraph(
            [0, 1, 2],
            {0: 1.0, 1: 5.0, 2: 1.0},
            [frozenset({0, 1}), frozenset({1, 2})],
        )
        assert solve_conflicts(hg) == {1}

    def test_routes_triples_to_hypergraph_solver(self):
        hg = WeightedHypergraph(
            [0, 1, 2],
            {0: 1.0, 1: 1.0, 2: 1.0},
            [frozenset({0, 1, 2})],
        )
        solution = solve_conflicts(hg)
        assert len(solution) == 2

    def test_greedy_config(self):
        hg = WeightedHypergraph(
            [0, 1], {0: 1.0, 1: 2.0}, [frozenset({0, 1})]
        )
        solution = solve_conflicts(hg, MISConfig(exact=False))
        assert solution == {1}

    def test_empty_structure(self):
        hg = WeightedHypergraph([0, 1], {0: 1.0, 1: 1.0}, [])
        assert solve_conflicts(hg) == {0, 1}


class TestNewReductions:
    def test_twins_merge(self):
        # 0 and 1 share neighbourhood {2, 3} and are non-adjacent.
        g = WeightedGraph.from_edges(
            range(4), [(0, 2), (0, 3), (1, 2), (1, 3)],
            {0: 1.0, 1: 1.0, 2: 0.9, 3: 0.9},
        )
        reduced = reduce_graph(g)
        solution = expand_solution(reduced, _brute_force_set(reduced.kernel))
        assert g.is_independent_set(solution)
        assert math.isclose(g.weight_of(solution), 2.0)
        assert {0, 1} <= solution

    def test_simplicial_vertex_taken(self):
        # v = 0's neighbours {1, 2} form a clique; 0 is heaviest.
        g = WeightedGraph.from_edges(
            range(3), [(0, 1), (0, 2), (1, 2)],
            {0: 2.0, 1: 1.5, 2: 1.5},
        )
        reduced = reduce_graph(g)
        assert 0 in reduced.chosen
        assert len(reduced.kernel) == 0

    def test_interleaved_fold_and_twin_replay(self):
        """A fold whose anchor is later absorbed as a twin must replay
        after the twin (reverse chronology)."""
        # This just asserts global optimality on a shape that mixes
        # pendants and twins.
        g = WeightedGraph.from_edges(
            range(5),
            [(0, 1), (1, 2), (1, 3), (4, 2), (4, 3)],
            {0: 1.0, 1: 2.0, 2: 1.2, 3: 1.2, 4: 1.0},
        )
        solution = solve_exact(g)
        assert g.is_independent_set(solution)
        assert math.isclose(g.weight_of(solution), brute_force_mwis(g))


    def test_degree2_fold_path(self):
        # Path 0-1-2 with weights making the fold condition hold:
        # max(1.5, 1.5) <= 2 < 3 at the middle vertex.
        g = WeightedGraph.from_edges(
            range(3), [(0, 1), (1, 2)], {0: 1.5, 1: 2.0, 2: 1.5}
        )
        reduced = reduce_graph(g)
        solution = expand_solution(reduced, _brute_force_set(reduced.kernel))
        assert g.is_independent_set(solution)
        assert math.isclose(g.weight_of(solution), 3.0)  # {0, 2}

    def test_degree2_fold_prefers_middle_when_heavier_ends_absent(self):
        g = WeightedGraph.from_edges(
            range(5),
            [(0, 1), (1, 2), (2, 3), (3, 4)],
            {0: 1.0, 1: 1.9, 2: 1.0, 3: 1.9, 4: 1.0},
        )
        solution = solve_exact(g)
        assert g.is_independent_set(solution)
        assert math.isclose(g.weight_of(solution), brute_force_mwis(g))


class TestIteratedLocalSearch:
    def test_returns_independent_set(self):
        from repro.mis import iterated_local_search

        g = WeightedGraph.from_edges(
            range(6), [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]
        )
        solution = iterated_local_search(g, iterations=10)
        assert g.is_independent_set(solution)
        assert g.weight_of(solution) >= 3.0  # 6-cycle optimum

    def test_deterministic(self):
        from repro.mis import iterated_local_search

        g = WeightedGraph.from_edges(
            range(8),
            [(i, (i + 1) % 8) for i in range(8)] + [(0, 4), (2, 6)],
        )
        a = iterated_local_search(g, iterations=15, seed=3)
        b = iterated_local_search(g, iterations=15, seed=3)
        assert a == b

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_never_below_plain_greedy(self, g):
        from repro.mis import iterated_local_search

        ils = iterated_local_search(g, iterations=8)
        plain = solve_greedy(g)
        assert g.is_independent_set(ils)
        assert g.weight_of(ils) >= g.weight_of(plain) - 1e-9
