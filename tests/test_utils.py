"""Tests for the utility helpers."""

import time

import pytest

from repro.utils import Timer, make_rng, parallel_map
from repro.utils.parallel import chunked, resolve_jobs
from repro.utils.rng import derive_rng


def double_chunk(chunk):
    return [x * 2 for x in chunk]


# Module-level (hence picklable) helpers for the initializer tests.
_OFFSET = {}


def _install_offset(value):
    _OFFSET["value"] = value


def _add_offset_chunk(chunk):
    return [x + _OFFSET["value"] for x in chunk]


class TestParallel:
    def test_serial_map(self):
        assert parallel_map(double_chunk, [1, 2, 3]) == [2, 4, 6]

    def test_parallel_map_matches_serial(self):
        items = list(range(50))
        assert parallel_map(double_chunk, items, n_jobs=2) == [
            x * 2 for x in items
        ]

    def test_empty_input(self):
        assert parallel_map(double_chunk, []) == []

    def test_chunked_partitions(self):
        chunks = chunked(list(range(10)), 3)
        assert [x for c in chunks for x in c] == list(range(10))
        assert len(chunks) == 3

    def test_chunked_more_chunks_than_items(self):
        assert chunked([1, 2], 10) == [[1], [2]]

    def test_chunked_empty_sequence(self):
        assert chunked([], 4) == []

    def test_chunked_single_chunk(self):
        assert chunked([1, 2, 3], 1) == [[1, 2, 3]]

    def test_chunked_nonpositive_chunks_clamp_to_one(self):
        assert chunked([1, 2, 3], 0) == [[1, 2, 3]]

    def test_chunked_balanced_sizes(self):
        chunks = chunked(list(range(11)), 3)
        assert sorted(len(c) for c in chunks) == [3, 4, 4]

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(-1) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_resolve_jobs_all_cpus(self):
        import os

        assert resolve_jobs(-1) == (os.cpu_count() or 1)
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_initializer_called_inline_when_serial(self):
        calls = []
        parallel_map(double_chunk, [1, 2], initializer=calls.append,
                     initargs=("state",))
        assert calls == ["state"]

    def test_initializer_state_reaches_workers(self):
        items = list(range(20))
        result = parallel_map(
            _add_offset_chunk,
            items,
            n_jobs=2,
            initializer=_install_offset,
            initargs=(100,),
        )
        assert result == [x + 100 for x in items]


class TestRng:
    def test_seeded_reproducible(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_none_is_fixed_default(self):
        assert make_rng(None).random() == make_rng(0).random()

    def test_passthrough(self):
        rng = make_rng(1)
        assert make_rng(rng) is rng

    def test_derive_streams_independent(self):
        base = make_rng(3)
        a = derive_rng(base, "stream-a")
        base2 = make_rng(3)
        b = derive_rng(base2, "stream-b")
        assert a.random() != b.random()

    def test_derive_deterministic(self):
        a = derive_rng(make_rng(3), "s")
        b = derive_rng(make_rng(3), "s")
        assert a.random() == b.random()


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.005
