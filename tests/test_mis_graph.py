"""Tests for the weighted-graph container."""

import pytest

from repro.mis import WeightedGraph


def triangle() -> WeightedGraph:
    return WeightedGraph.from_edges(
        "abc", [("a", "b"), ("b", "c"), ("a", "c")], {"a": 3.0}
    )


class TestBasics:
    def test_default_weight_is_one(self):
        g = triangle()
        assert g.weights["b"] == 1.0 and g.weights["a"] == 3.0

    def test_no_self_loops(self):
        g = WeightedGraph(["a"])
        with pytest.raises(ValueError):
            g.add_edge("a", "a")

    def test_edge_needs_vertices(self):
        g = WeightedGraph(["a"])
        with pytest.raises(KeyError):
            g.add_edge("a", "z")

    def test_remove_vertex_drops_incident_edges(self):
        g = triangle()
        g.remove_vertex("b")
        assert g.num_edges == 1
        assert "b" not in g

    def test_degree_and_neighbors(self):
        g = triangle()
        assert g.degree("a") == 2
        assert g.neighbors("a") == {"b", "c"}

    def test_edges_unique(self):
        g = triangle()
        assert len(g.edges()) == 3

    def test_subgraph(self):
        g = triangle()
        sub = g.subgraph({"a", "b"})
        assert sub.num_edges == 1
        assert sub.weights["a"] == 3.0

    def test_copy_is_independent(self):
        g = triangle()
        clone = g.copy()
        clone.remove_vertex("a")
        assert "a" in g and g.num_edges == 3

    def test_connected_components(self):
        g = WeightedGraph.from_edges("abcde", [("a", "b"), ("c", "d")])
        comps = sorted(map(sorted, g.connected_components()))
        assert comps == [["a", "b"], ["c", "d"], ["e"]]

    def test_is_independent_set(self):
        g = triangle()
        assert g.is_independent_set({"a"})
        assert not g.is_independent_set({"a", "b"})
        assert g.is_independent_set(set())

    def test_weight_of(self):
        g = triangle()
        assert g.weight_of({"a", "b"}) == 4.0
