"""End-to-end equivalence of CTCR's set-based and bitset engines.

The bitset kernel mirrors the scalar closed forms term for term, so the
two engines must agree exactly — same pair classifications, same trees,
same scores — on every instance, variant, and job count. These tests pin
that contract.

The same differential harness pins the observability layer: tracing is
measurement only, so builds with tracing enabled must be bit-identical —
trees, scores, diagnostics — to builds with the null tracer, for both
algorithms, both engines, and every job count (TestTracingEquivalence).
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.algorithms import CCT, CTCR, CTCRConfig
from repro.conflicts.two_conflicts import compute_pairwise
from repro.mis import MISConfig, clear_mis_cache
from repro.core import OCTInstance, Variant, make_instance, score_tree
from repro.core.input_sets import InputSet
from repro.io import tree_to_dict
from repro.observability import Tracer, use_tracer
from repro.utils import make_rng


def random_instance(seed, n_sets=30, n_items=40) -> OCTInstance:
    """A randomized instance with weights, per-set thresholds, and a
    sprinkling of non-uniform item bounds."""
    rng = make_rng(seed)
    universe = [f"i{k}" for k in range(n_items)]
    sets = []
    for sid in range(n_sets):
        items = frozenset(rng.sample(universe, rng.randint(1, 10)))
        threshold = rng.choice([None, None, 0.4, 0.9])
        sets.append(
            InputSet(
                sid=sid,
                items=items,
                weight=rng.randint(1, 5),
                threshold=threshold,
            )
        )
    bounds = {item: 2 for item in rng.sample(universe, n_items // 5)}
    return OCTInstance(
        sets, universe=universe, item_bounds=bounds, default_bound=1
    )


EQUIV_VARIANTS = [
    Variant.exact(),
    Variant.threshold_jaccard(0.5),
    Variant.cutoff_jaccard(0.7),
    Variant.threshold_f1(0.6),
    Variant.cutoff_f1(0.5),
    Variant.perfect_recall(0.5),
    Variant.perfect_recall(1.0),
]


def assert_same_analysis(old, new):
    assert old.conflicts == new.conflicts
    assert old.must_together == new.must_together
    assert old.can_separately == new.can_separately
    assert old.intersections == new.intersections


class TestPairwiseEquivalence:
    @pytest.mark.parametrize(
        "variant", EQUIV_VARIANTS, ids=lambda v: str(v)
    )
    def test_random_instances(self, variant):
        for seed in range(5):
            instance = random_instance(seed)
            old = compute_pairwise(instance, variant, use_bitset=False)
            new = compute_pairwise(instance, variant, use_bitset=True)
            assert_same_analysis(old, new)

    def test_uniform_bound_fast_path(self):
        # No per-item overrides: the kernel reuses full intersection
        # counts for the bound-1 shared counts.
        rng = make_rng(99)
        universe = [f"i{k}" for k in range(30)]
        sets = [
            InputSet(sid=s, items=frozenset(rng.sample(universe, 5)))
            for s in range(20)
        ]
        instance = OCTInstance(sets, universe=universe)
        variant = Variant.threshold_jaccard(0.6)
        assert_same_analysis(
            compute_pairwise(instance, variant, use_bitset=False),
            compute_pairwise(instance, variant, use_bitset=True),
        )

    def test_paper_examples(self, figure2_instance, example32_instance, all_variants):
        for instance in (figure2_instance, example32_instance):
            for variant in all_variants:
                assert_same_analysis(
                    compute_pairwise(instance, variant, use_bitset=False),
                    compute_pairwise(instance, variant, use_bitset=True),
                )


def build_fingerprint(instance, variant, **config):
    tree = CTCR(CTCRConfig(**config)).build(instance, variant)
    report = score_tree(tree, instance, variant)
    return tree_to_dict(tree), report.normalized, report.total, tree.to_text()


class TestTreeEquivalence:
    @pytest.mark.parametrize(
        "variant", EQUIV_VARIANTS, ids=lambda v: str(v)
    )
    def test_random_instance_trees_identical(self, variant):
        instance = random_instance(17, n_sets=25)
        off = build_fingerprint(instance, variant, use_bitset=False)
        on = build_fingerprint(instance, variant, use_bitset=True)
        assert off == on

    def test_paper_examples_trees_identical(
        self, figure2_instance, example32_instance, all_variants
    ):
        for instance in (figure2_instance, example32_instance):
            for variant in all_variants:
                off = build_fingerprint(instance, variant, use_bitset=False)
                on = build_fingerprint(instance, variant, use_bitset=True)
                assert off == on

    @pytest.mark.slow
    def test_tiny_dataset_trees_identical(self, tiny_dataset):
        from repro.pipeline import preprocess

        for variant in (
            Variant.threshold_jaccard(0.8),
            Variant.perfect_recall(0.6),
        ):
            instance, _report = preprocess(tiny_dataset, variant)
            off = build_fingerprint(instance, variant, use_bitset=False)
            on = build_fingerprint(instance, variant, use_bitset=True)
            assert off == on

    @pytest.mark.slow
    def test_n_jobs_parity(self, tiny_dataset):
        """Trees are identical for n_jobs=1 vs 4, with either engine."""
        from repro.pipeline import preprocess

        variant = Variant.threshold_jaccard(0.8)
        instance, _report = preprocess(tiny_dataset, variant)
        baseline = build_fingerprint(
            instance, variant, use_bitset=False, n_jobs=1
        )
        for use_bitset in (False, True):
            fanned = build_fingerprint(
                instance, variant, use_bitset=use_bitset, n_jobs=4
            )
            assert fanned == baseline


class TestMISEngineEquivalence:
    """The MIS engine's knobs must never change the tree.

    Acceptance grid for the kernelized engine: every similarity variant
    × {bitset, baseline} × {serial, pooled components} × cache on/off
    returns an identical tree and score. The cache grid runs first with
    a cold cache and again with a warm one, so replayed component
    solutions are exercised, not just stored.
    """

    @pytest.mark.parametrize(
        "variant", EQUIV_VARIANTS, ids=lambda v: str(v)
    )
    def test_cache_grid(self, variant):
        clear_mis_cache()
        instance = random_instance(37, n_sets=25)
        base = build_fingerprint(instance, variant, use_bitset=True)
        for use_bitset in (False, True):
            for use_cache in (False, True):
                got = build_fingerprint(
                    instance,
                    variant,
                    use_bitset=use_bitset,
                    mis=MISConfig(use_cache=use_cache),
                )
                assert got == base, (
                    f"bitset={use_bitset} cache={use_cache}"
                )
        # Second pass hits the now-warm cache.
        warm = build_fingerprint(
            instance, variant, use_bitset=True, mis=MISConfig(use_cache=True)
        )
        assert warm == base
        clear_mis_cache()

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "variant",
        [Variant.perfect_recall(0.5), Variant.threshold_jaccard(0.5)],
        ids=lambda v: str(v),
    )
    def test_pooled_mis_grid(self, variant):
        """--mis-jobs 4 with and without the cache matches serial."""
        clear_mis_cache()
        instance = random_instance(43, n_sets=35)
        base = build_fingerprint(instance, variant, mis=MISConfig())
        for use_cache in (False, True):
            got = build_fingerprint(
                instance,
                variant,
                mis=MISConfig(n_jobs=4, use_cache=use_cache),
            )
            assert got == base, f"n_jobs=4 cache={use_cache}"
        clear_mis_cache()


def ctcr_fingerprint_with_diag(instance, variant, **config):
    """(tree, scores, diagnostics) — everything tracing must not change."""
    builder = CTCR(CTCRConfig(**config))
    tree = builder.build(instance, variant)
    report = score_tree(tree, instance, variant)
    return (
        tree_to_dict(tree),
        report.normalized,
        report.total,
        tree.to_text(),
        builder.last_diagnostics.as_dict(),
    )


class TestTracingEquivalence:
    """Tracing on vs. off is a no-op for every observable output."""

    @pytest.mark.parametrize(
        "variant", EQUIV_VARIANTS, ids=lambda v: str(v)
    )
    @pytest.mark.parametrize(
        "use_bitset", [False, True], ids=["sets", "bitset"]
    )
    @pytest.mark.parametrize("n_jobs", [1, 2], ids=["serial", "pool"])
    def test_ctcr_identical_under_tracing(self, variant, use_bitset, n_jobs):
        instance = random_instance(23, n_sets=25)
        config = dict(use_bitset=use_bitset, n_jobs=n_jobs)
        off = ctcr_fingerprint_with_diag(instance, variant, **config)
        with use_tracer(Tracer()) as tracer:
            on = ctcr_fingerprint_with_diag(instance, variant, **config)
        assert on == off
        # The traced run actually collected something.
        assert any(s.name == "ctcr.build" for s in tracer.spans.values())
        assert tracer.counters

    @pytest.mark.parametrize(
        "variant", EQUIV_VARIANTS, ids=lambda v: str(v)
    )
    def test_cct_identical_under_tracing(self, variant):
        instance = random_instance(29, n_sets=20)

        def fingerprint():
            tree = CCT().build(instance, variant)
            report = score_tree(tree, instance, variant)
            return tree_to_dict(tree), report.normalized, tree.to_text()

        off = fingerprint()
        with use_tracer(Tracer()) as tracer:
            on = fingerprint()
        assert on == off
        assert any(s.name == "cct.build" for s in tracer.spans.values())

    def test_paper_examples_identical_under_tracing(
        self, figure2_instance, example32_instance, all_variants
    ):
        for instance in (figure2_instance, example32_instance):
            for variant in all_variants:
                for use_bitset in (False, True):
                    off = ctcr_fingerprint_with_diag(
                        instance, variant, use_bitset=use_bitset
                    )
                    with use_tracer(Tracer()):
                        on = ctcr_fingerprint_with_diag(
                            instance, variant, use_bitset=use_bitset
                        )
                    assert on == off

    def test_pairwise_analysis_identical_under_tracing(self):
        variant = Variant.threshold_jaccard(0.5)
        for use_bitset in (False, True):
            instance = random_instance(31)
            off = compute_pairwise(instance, variant, use_bitset=use_bitset)
            with use_tracer(Tracer()):
                on = compute_pairwise(
                    instance, variant, use_bitset=use_bitset
                )
            assert_same_analysis(off, on)
