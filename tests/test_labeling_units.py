"""Unit tests for labeling helpers and facet filtering internals."""

from repro.evaluation.faceted import _filter_once
from repro.labeling import _common_tokens


class TestCommonTokens:
    def test_shared_tokens_in_first_label_order(self):
        labels = ["black adidas shirt", "black shirt"]
        assert _common_tokens(labels) == ["black", "shirt"]

    def test_no_overlap(self):
        assert _common_tokens(["red hat", "blue shoe"]) == []

    def test_single_label(self):
        assert _common_tokens(["black shirt"]) == ["black", "shirt"]

    def test_empty_labels_ignored(self):
        assert _common_tokens(["", "black shirt"]) == ["black", "shirt"]

    def test_all_empty(self):
        assert _common_tokens(["", ""]) == []


class TestFilterOnce:
    ATTRS = {
        "t1": {"type": "shirt", "color": "black"},
        "t2": {"type": "shirt", "color": "black"},
        "n1": {"type": "shirt", "color": "red"},
        "n2": {"type": "hat", "color": "black"},
    }

    def test_picks_most_discriminating_predicate(self):
        current = {"t1", "t2", "n1", "n2"}
        target = frozenset({"t1", "t2"})
        move = _filter_once(current, target, self.ATTRS)
        assert move is not None
        predicate, kept = move
        # Either shared predicate removes exactly one non-target item;
        # both are equally good, tie breaks alphabetically.
        assert predicate in ("color=black", "type=shirt")
        assert target <= kept
        assert len(kept) == 3

    def test_never_drops_target_items(self):
        current = {"t1", "t2", "n1"}
        target = frozenset({"t1", "t2"})
        move = _filter_once(current, target, self.ATTRS)
        assert move is not None
        _predicate, kept = move
        assert target <= kept

    def test_no_shared_predicate(self):
        attrs = {
            "a": {"type": "shirt"},
            "b": {"type": "hat"},
            "x": {"type": "shoe"},
        }
        move = _filter_once({"a", "b", "x"}, frozenset({"a", "b"}), attrs)
        assert move is None

    def test_no_improvement_returns_none(self):
        # Every current item matches the only shared predicate.
        current = {"t1", "t2"}
        target = frozenset({"t1", "t2"})
        assert _filter_once(current, target, self.ATTRS) is None

    def test_items_without_attributes(self):
        attrs = {"a": {"type": "shirt"}}
        move = _filter_once({"a", "ghost"}, frozenset({"a"}), attrs)
        assert move is not None
        _predicate, kept = move
        assert kept == {"a"}
