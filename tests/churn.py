"""Churn simulator: randomized delta sequences for the differential tier.

Two levels of churn, matching the two levels the incremental pipeline
operates on:

* **instance-level** — :func:`random_delta` / :func:`delta_sequence`
  produce :class:`~repro.incremental.CatalogDelta` objects (adds,
  removes, reweights) against an :class:`~repro.core.input_sets.OCTInstance`.
  These drive the conflict-graph maintenance differential: after every
  step the delta-built tree must be byte-identical to a from-scratch
  build of the churned instance.
* **query-log-level** — :func:`churn_query_log` perturbs a synthetic
  dataset's raw query log (new conjunction queries, dropped queries,
  scaled daily counts), driving the staged-preprocess differential.

This module is deliberately NOT named ``test_*`` — pytest must not
collect it; the differential/property suites import from it.
"""

from __future__ import annotations

import dataclasses
import random

from repro.catalog.queries import (
    QueryLog,
    RawQuery,
    _conjunction_query,
    _daily_counts,
)
from repro.core.input_sets import InputSet, OCTInstance
from repro.incremental import CatalogDelta


def random_delta(
    instance: OCTInstance,
    rng: random.Random,
    frac: float = 0.1,
    mix: tuple[float, float, float] = (1.0, 1.0, 1.0),
    tag: str = "churn",
) -> CatalogDelta:
    """One randomized delta touching roughly ``frac`` of the sets.

    ``mix`` weights the add/remove/reweight draw. Added sets sample
    2-6 items from the instance universe and get fresh sids above the
    current maximum; removals and reweights pick uniformly among the
    surviving sets. Always returns a valid (possibly small) delta for
    instances with at least one set.
    """
    sids = sorted(q.sid for q in instance.sets)
    universe = sorted(instance.universe)
    n_changes = max(1, round(frac * len(sids)))
    next_sid = (max(sids) + 1) if sids else 0

    added: list[InputSet] = []
    removed: set[int] = set()
    reweighted: dict[int, float] = {}
    kinds = ("add", "remove", "reweight")
    for _ in range(n_changes):
        kind = rng.choices(kinds, weights=mix)[0]
        live = [s for s in sids if s not in removed]
        if kind == "add" or not live:
            size = rng.randint(2, min(6, max(2, len(universe))))
            items = frozenset(rng.sample(universe, size))
            added.append(
                InputSet(
                    sid=next_sid,
                    items=items,
                    weight=round(rng.uniform(0.5, 20.0), 3),
                    label=f"{tag}-{next_sid}",
                )
            )
            next_sid += 1
        elif kind == "remove":
            sid = rng.choice(live)
            removed.add(sid)
            reweighted.pop(sid, None)
        else:  # reweight
            sid = rng.choice(live)
            reweighted[sid] = round(rng.uniform(0.5, 20.0), 3)
    return CatalogDelta(
        added=tuple(added),
        removed=frozenset(removed),
        reweighted=tuple(sorted(reweighted.items())),
    )


def delta_sequence(
    instance: OCTInstance,
    rng: random.Random,
    steps: int,
    frac: float = 0.1,
    mix: tuple[float, float, float] = (1.0, 1.0, 1.0),
):
    """Yield ``(delta, churned_instance)`` pairs for ``steps`` rounds.

    Each delta is drawn against the previous round's instance, so the
    sequence models sustained catalog churn rather than independent
    perturbations of one snapshot.
    """
    current = instance
    for step in range(steps):
        delta = random_delta(
            current, rng, frac=frac, mix=mix, tag=f"churn{step}"
        )
        delta.validate(current)
        current = delta.apply(current)
        yield delta, current


def churn_query_log(dataset, rng: random.Random, frac: float = 0.05):
    """A copy of ``dataset`` with roughly ``frac`` of its queries churned.

    Mirrors real catalog drift: some queries disappear, some change
    volume, and some brand-new conjunction queries appear (generated
    with the same grammar the synthetic generator uses, so they are
    answerable by the dataset's search engine). The product catalog and
    engine are untouched — which is exactly the regime where the staged
    ``ResultSetCache`` stays valid.
    """
    log = dataset.query_log
    queries = list(log.queries)
    existing = {q.text for q in queries}
    n_changes = max(1, round(frac * len(queries)))
    for _ in range(n_changes):
        op = rng.choice(("add", "remove", "rescale"))
        if op == "remove" and len(queries) > 1:
            queries.pop(rng.randrange(len(queries)))
        elif op == "rescale" and queries:
            i = rng.randrange(len(queries))
            q = queries[i]
            factor = rng.uniform(0.3, 3.0)
            counts = tuple(
                max(0, round(c * factor)) for c in q.daily_counts
            )
            queries[i] = dataclasses.replace(q, daily_counts=counts)
        else:  # add
            text = None
            for _attempt in range(20):
                candidate = _conjunction_query(dataset.schema, rng)
                if candidate not in existing:
                    text = candidate
                    break
            if text is None:
                continue  # grammar exhausted at this scale; skip
            existing.add(text)
            queries.append(
                RawQuery(
                    text=text,
                    daily_counts=_daily_counts(
                        rng.uniform(2.0, 60.0), log.days, rng
                    ),
                )
            )
    return dataclasses.replace(
        dataset,
        query_log=QueryLog(
            queries=queries,
            days=log.days,
            trend_events=list(log.trend_events),
        ),
    )
