"""Differential tier for the succinct tree-retrieval read path.

The succinct representation — Euler-tour intervals, sparse-table LCA,
delta-compressed varint postings — must be *bit-identical* to the flat
read path: same integers, same IEEE-754 floats, same dict orders, same
tie-breaks. These tests pin that across every layer that grew the
``tree_repr`` knob:

- in-memory: ``SnapshotIndexes(tree_repr="succinct")`` against the flat
  reference, bitset kernel on and off;
- mmap: format-v2 files carrying flat, succinct, or both
  representations, sharded and unsharded, explicit and auto-resolved;
- migration: format-v1 (and repr-missing) files are rejected with a
  recompile hint and upgraded in place by ``SnapshotStore.ensure_flat``
  at their existing shard count;
- engine/HTTP: batched ``categorize_items`` equals the per-item loop,
  including across a mid-run flat→succinct hot swap.
"""

from __future__ import annotations

import json
import struct
import urllib.error
import urllib.request

import pytest

from repro.algorithms import CTCR
from repro.core import Variant
from repro.labeling import apply_label_suggestions, suggest_labels
from repro.observability import Tracer, use_tracer
from repro.serving import (
    BITSET_FANIN_THRESHOLD,
    HotSwapper,
    MmapSnapshotIndexes,
    ServingEngine,
    SnapshotError,
    SnapshotStore,
    compile_flat_indexes,
    describe_flat,
    flat_file_name,
    flat_format_version,
    flat_header,
    make_server,
    serve_in_background,
)
from repro.serving.indexes import SnapshotIndexes
from repro.serving.shm import _PREFIX, FLAT_MAGIC, _FlatShard
from tests.test_serving_shm import (
    assert_identical,
    build_labeled_tree,
    queries_for,
)


def assert_same_reads(ref: SnapshotIndexes, other, queries):
    """Shared read API only (works for mem-vs-mem, unlike the shm helper)."""
    assert other.root_cid == ref.root_cid
    assert other.n_categories == ref.n_categories
    assert list(other.sizes) == list(ref.sizes)
    for cid in ref.sizes:
        assert other.sizes[cid] == ref.sizes[cid]
        assert other.depths[cid] == ref.depths[cid]
        assert other.parent_of[cid] == ref.parent_of[cid]
        assert other.children_of[cid] == ref.children_of[cid]
        assert other.label_of(cid) == ref.label_of(cid)
        assert other.path_to_root(cid) == ref.path_to_root(cid)
    items = sorted(ref.item_postings, key=str)
    for item in items + ["__definitely_not_an_item__"]:
        assert other.placements(item) == ref.placements(item)
    for query in queries:
        got = other.intersection_counts(frozenset(query))
        want = ref.intersection_counts(frozenset(query))
        assert got == want
        assert list(got) == list(want)  # same (pre-)order, not just equal
        assert other.best_category(frozenset(query)) == (
            ref.best_category(frozenset(query))
        )


def make_indexes(instance, variant=None, **kwargs):
    variant = variant or Variant.threshold_jaccard(0.6)
    tree = build_labeled_tree(instance, variant)
    return SnapshotIndexes(tree, instance, variant, **kwargs)


def write_flat(tmp_path, indexes, shards=1, tree_repr="both"):
    paths = []
    for shard_index, blob in enumerate(
        compile_flat_indexes(indexes, shards=shards, tree_repr=tree_repr)
    ):
        path = tmp_path / flat_file_name(shard_index, shards)
        path.write_bytes(blob)
        paths.append(path)
    return paths


class TestInMemorySuccinct:
    @pytest.mark.parametrize("use_bitset", [False, True])
    def test_figure2_all_variants(
        self, figure2_instance, all_variants, use_bitset
    ):
        for variant in all_variants:
            tree = build_labeled_tree(figure2_instance, variant)
            flat = SnapshotIndexes(
                tree, figure2_instance, variant, use_bitset=use_bitset
            )
            succ = SnapshotIndexes(
                tree,
                figure2_instance,
                variant,
                use_bitset=use_bitset,
                tree_repr="succinct",
            )
            assert succ.tree_repr == "succinct"
            assert_same_reads(flat, succ, queries_for(figure2_instance))

    def test_tiny_dataset(self, tiny_dataset):
        from repro.pipeline import preprocess

        variant = Variant.threshold_jaccard(0.6)
        instance, _ = preprocess(tiny_dataset, variant)
        tree = build_labeled_tree(instance, variant)
        flat = SnapshotIndexes(tree, instance, variant)
        succ = SnapshotIndexes(tree, instance, variant, tree_repr="succinct")
        assert_same_reads(flat, succ, queries_for(instance))

    def test_is_ancestor_matches_paths(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.6)
        tree = build_labeled_tree(figure2_instance, variant)
        flat = SnapshotIndexes(tree, figure2_instance, variant)
        succ = SnapshotIndexes(
            tree, figure2_instance, variant, tree_repr="succinct"
        )
        cids = list(flat.sizes)
        for u in cids:
            for v in cids:
                assert succ.is_ancestor(u, v) == flat.is_ancestor(u, v)

    def test_paths_to_root_batch_matches_loop(self, figure2_instance):
        succ = make_indexes(figure2_instance, tree_repr="succinct")
        cids = list(succ.sizes)
        batch = succ.paths_to_root_batch(cids)
        assert set(batch) == set(cids)
        for cid in cids:
            assert batch[cid] == succ.path_to_root(cid)

    def test_bad_tree_repr_rejected(self, figure2_instance):
        with pytest.raises(ValueError, match="tree_repr"):
            make_indexes(figure2_instance, tree_repr="compressed")

    def test_succinct_counters_emitted(self, figure2_instance):
        succ = make_indexes(figure2_instance, tree_repr="succinct")
        items = sorted(succ._post_var, key=str)
        with use_tracer(Tracer()) as tracer:
            succ.placements(items[0])
            succ.intersection_counts(frozenset(items[:2]))
            succ.paths_to_root_batch(list(succ.sizes))
        assert tracer.counters["serving.succinct.postings_decoded"] >= 3
        assert tracer.counters["serving.succinct.batched_lca"] >= 1

    def test_bitset_fanin_fallback(self, tiny_dataset):
        # A query wide enough to cross the fan-in threshold must take the
        # packed-bitset path (counted, and still bit-identical).
        from repro.pipeline import preprocess

        variant = Variant.threshold_jaccard(0.6)
        instance, _ = preprocess(tiny_dataset, variant)
        tree = build_labeled_tree(instance, variant)
        flat = SnapshotIndexes(tree, instance, variant, use_bitset=True)
        succ = SnapshotIndexes(
            tree, instance, variant, use_bitset=True, tree_repr="succinct"
        )
        known = sorted(flat.item_postings, key=str)
        if len(known) < BITSET_FANIN_THRESHOLD:
            pytest.skip("dataset smaller than the fan-in threshold")
        wide = frozenset(known[:BITSET_FANIN_THRESHOLD])
        with use_tracer(Tracer()) as tracer:
            got = succ.intersection_counts(wide)
        assert tracer.counters["serving.succinct.bitset_fanin"] == 1
        want = flat.intersection_counts(wide)
        assert got == want and list(got) == list(want)


class TestMmapDifferential:
    @pytest.mark.parametrize("shards", [1, 3])
    @pytest.mark.parametrize("use_bitset", [None, False])
    def test_both_reprs_match_reference(
        self, figure2_instance, all_variants, tmp_path, shards, use_bitset
    ):
        for i, variant in enumerate(all_variants):
            tree = build_labeled_tree(figure2_instance, variant)
            mem = SnapshotIndexes(
                tree, figure2_instance, variant, use_bitset=use_bitset
            )
            sub = tmp_path / f"v{i}"
            sub.mkdir()
            paths = write_flat(sub, mem, shards=shards, tree_repr="both")
            queries = queries_for(figure2_instance)
            for repr_ in (None, "flat", "succinct"):
                with MmapSnapshotIndexes(
                    paths, use_bitset=use_bitset, tree_repr=repr_
                ) as mm:
                    assert mm.tree_repr == (repr_ or "flat")
                    assert_identical(mem, mm, queries)

    def test_tiny_dataset_succinct(self, tiny_dataset, tmp_path):
        from repro.pipeline import preprocess

        variant = Variant.threshold_jaccard(0.6)
        instance, _ = preprocess(tiny_dataset, variant)
        tree = build_labeled_tree(instance, variant)
        mem = SnapshotIndexes(tree, instance, variant)
        paths = write_flat(tmp_path, mem, shards=4)
        with MmapSnapshotIndexes(paths, tree_repr="succinct") as mm:
            assert_identical(mem, mm, queries_for(instance))

    def test_succinct_only_auto_resolves(self, figure2_instance, tmp_path):
        mem = make_indexes(figure2_instance)
        paths = write_flat(tmp_path, mem, tree_repr="succinct")
        with MmapSnapshotIndexes(paths) as mm:  # no flat repr to prefer
            assert mm.tree_repr == "succinct"
            assert_identical(mem, mm, queries_for(figure2_instance))

    def test_flat_only_still_works(self, figure2_instance, tmp_path):
        mem = make_indexes(figure2_instance)
        paths = write_flat(tmp_path, mem, tree_repr="flat")
        with MmapSnapshotIndexes(paths) as mm:
            assert mm.tree_repr == "flat"
            assert_identical(mem, mm, queries_for(figure2_instance))

    def test_compile_is_deterministic(self, figure2_instance):
        mem = make_indexes(figure2_instance)
        assert compile_flat_indexes(mem, shards=2, tree_repr="both") == (
            compile_flat_indexes(mem, shards=2, tree_repr="both")
        )

    def test_compile_rejects_succinct_source(self, figure2_instance):
        succ = make_indexes(figure2_instance, tree_repr="succinct")
        with pytest.raises(SnapshotError, match="flat-repr"):
            compile_flat_indexes(succ)

    def test_compile_rejects_unknown_repr(self, figure2_instance):
        mem = make_indexes(figure2_instance)
        with pytest.raises(SnapshotError, match="tree_repr"):
            compile_flat_indexes(mem, tree_repr="sparse")


class TestReprSelection:
    def test_missing_repr_rejected(self, figure2_instance, tmp_path):
        mem = make_indexes(figure2_instance)
        (tmp_path / "f").mkdir()
        (tmp_path / "s").mkdir()
        flat_only = write_flat(tmp_path / "f", mem, tree_repr="flat")
        succ_only = write_flat(tmp_path / "s", mem, tree_repr="succinct")
        with pytest.raises(SnapshotError, match="does not carry"):
            MmapSnapshotIndexes(flat_only, tree_repr="succinct")
        with pytest.raises(SnapshotError, match="does not carry"):
            MmapSnapshotIndexes(succ_only, tree_repr="flat")

    def test_flat_header_and_version(self, figure2_instance, tmp_path):
        mem = make_indexes(figure2_instance)
        path = write_flat(tmp_path, mem)[0]
        assert flat_format_version(path) == 2
        version, header = flat_header(path)
        assert version == 2
        assert sorted(header["reprs"]) == ["flat", "succinct"]
        assert header["n_euler"] == 2 * header["n_categories"] - 1

    def test_describe_flat_sections(self, figure2_instance, tmp_path):
        mem = make_indexes(figure2_instance)
        path = write_flat(tmp_path, mem)[0]
        desc = describe_flat(path)
        assert desc["format_version"] == 2
        assert desc["file_bytes"] == path.stat().st_size
        names = {s["name"] for s in desc["sections"]}
        for wanted in (
            "cat_tin", "cat_tout", "euler_tour", "euler_first",
            "lca_sparse", "item_post_voff", "item_post_var",
            "item_place_voff", "item_place_var", "cat_items_voff",
            "cat_items_var", "cat_bits",
        ):
            assert wanted in names
        groups = {s["name"]: s["group"] for s in desc["sections"]}
        assert groups["cat_tin"] == "succinct_tree"
        assert groups["item_post_var"] == "succinct_postings"
        assert groups["cat_bits"] == "dense"
        assert all(s["bytes"] >= 0 for s in desc["sections"])


class TestMigration:
    def _save(self, instance, tmp_path, **save_kwargs):
        variant = Variant.threshold_jaccard(0.6)
        tree = build_labeled_tree(instance, variant)
        store = SnapshotStore(tmp_path)
        info = store.save(tree, instance, variant, **save_kwargs)
        return store, info

    def _downgrade_version(self, path, version=1):
        blob = bytearray(path.read_bytes())
        header_len = struct.unpack_from("<Q", blob, 8)[0]
        blob[:_PREFIX.size] = _PREFIX.pack(FLAT_MAGIC, version, header_len)
        path.write_bytes(bytes(blob))

    def test_stale_version_rejected_with_hint(
        self, figure2_instance, tmp_path
    ):
        store, info = self._save(figure2_instance, tmp_path)
        path = store.flat_paths(info.snapshot_id)[0]
        self._downgrade_version(path)
        with pytest.raises(SnapshotError, match="ensure_flat"):
            MmapSnapshotIndexes([path])

    def test_ensure_flat_recompiles_stale_version(
        self, figure2_instance, tmp_path
    ):
        store, info = self._save(
            figure2_instance, tmp_path, flat_shards=3
        )
        for path in store.flat_paths(info.snapshot_id):
            self._downgrade_version(path)
        paths = store.ensure_flat(info.snapshot_id)
        assert len(paths) == 3  # recompiled at the existing shard count
        for path in paths:
            assert flat_format_version(path) == 2
        loaded = store.load(info.snapshot_id)
        mem = SnapshotIndexes(loaded.tree, loaded.instance, loaded.variant)
        for repr_ in ("flat", "succinct"):
            with MmapSnapshotIndexes(paths, tree_repr=repr_) as mm:
                assert_identical(mem, mm, queries_for(figure2_instance))

    def test_ensure_flat_upgrades_single_repr_files(
        self, figure2_instance, tmp_path
    ):
        # A flat-only snapshot is stale once "both" is wanted: ensure_flat
        # recompiles it in place so succinct readers can map it.
        store, info = self._save(
            figure2_instance, tmp_path, tree_repr="flat"
        )
        path = store.flat_paths(info.snapshot_id)[0]
        with pytest.raises(SnapshotError, match="does not carry"):
            MmapSnapshotIndexes([path], tree_repr="succinct")
        paths = store.ensure_flat(info.snapshot_id)
        _, header = flat_header(paths[0])
        assert sorted(header["reprs"]) == ["flat", "succinct"]
        with MmapSnapshotIndexes(paths, tree_repr="succinct") as mm:
            assert mm.tree_repr == "succinct"

    def test_ensure_flat_idempotent_when_fresh(
        self, figure2_instance, tmp_path
    ):
        store, info = self._save(figure2_instance, tmp_path)
        before = [
            (p, p.stat().st_mtime_ns)
            for p in store.flat_paths(info.snapshot_id)
        ]
        paths = store.ensure_flat(info.snapshot_id)
        assert [(p, p.stat().st_mtime_ns) for p in paths] == before


class TestFlatShardLifecycle:
    def test_context_manager_and_idempotent_close(
        self, figure2_instance, tmp_path
    ):
        mem = make_indexes(figure2_instance)
        path = write_flat(tmp_path, mem)[0]
        with _FlatShard(path) as shard:
            assert shard.header["n_categories"] == mem.n_categories
        shard.close()  # double close after __exit__: must be a no-op
        shard.close()

    def test_indexes_close_idempotent(self, figure2_instance, tmp_path):
        mem = make_indexes(figure2_instance)
        paths = write_flat(tmp_path, mem)
        mm = MmapSnapshotIndexes(paths)
        mm.close()
        mm.close()


class TestEngineBatched:
    def _store(self, instance, tmp_path):
        variant = Variant.threshold_jaccard(0.6)
        tree = build_labeled_tree(instance, variant)
        store = SnapshotStore(tmp_path)
        store.save(tree, instance, variant)
        return store

    @pytest.mark.parametrize("tree_repr", ["flat", "succinct"])
    def test_batch_equals_per_item_loop(
        self, figure2_instance, tmp_path, tree_repr
    ):
        store = self._store(figure2_instance, tmp_path)
        engine = ServingEngine.from_snapshot(
            store.load(), tree_repr=tree_repr
        )
        items = sorted(figure2_instance.universe, key=str)
        items.append("__unknown__")
        batch = engine.categorize_items(items)
        assert batch == [engine.categorize_item(item) for item in items]

    def test_batch_across_hot_swap(self, figure2_instance, tmp_path):
        # Mid-run flat -> succinct swap: the generation bumps, the
        # answers do not.
        store = self._store(figure2_instance, tmp_path)
        engine = ServingEngine.from_snapshot(store.load(), tree_repr="flat")
        items = sorted(figure2_instance.universe, key=str)
        before = engine.categorize_items(items)
        generation_before = engine.generation
        swapper = HotSwapper(engine, tree_repr="succinct")
        swapper.swap_from_store(store)
        assert engine.generation == generation_before + 1
        assert engine.current.indexes.tree_repr == "succinct"
        assert engine.categorize_items(items) == before

    def test_succinct_requests_counter(self, figure2_instance, tmp_path):
        store = self._store(figure2_instance, tmp_path)
        engine = ServingEngine.from_snapshot(
            store.load(), tree_repr="succinct"
        )
        with use_tracer(Tracer()) as tracer:
            engine.browse()
        assert tracer.counters["serving.succinct.requests"] == 1


class TestHTTPBatch:
    @pytest.fixture()
    def served(self, figure2_instance, tmp_path):
        variant = Variant.threshold_jaccard(0.6)
        tree = CTCR().build(figure2_instance, variant)
        store = SnapshotStore(tmp_path)
        store.save(tree, figure2_instance, variant)
        engine = ServingEngine.from_snapshot(
            store.load(), tree_repr="succinct"
        )
        server = make_server(engine, store=store, tree_repr="succinct")
        serve_in_background(server)
        yield server, engine
        server.stop()

    def _get(self, server, path):
        url = f"http://127.0.0.1:{server.server_port}{path}"
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_categorize_batch(self, served):
        server, engine = served
        status, body = self._get(server, "/categorize-batch?items=a,b,c")
        assert status == 200
        assert body["items"] == ["a", "b", "c"]
        assert body["results"] == engine.categorize_items(["a", "b", "c"])
        for item, result in zip(body["items"], body["results"]):
            _, single = self._get(server, f"/categorize?item={item}")
            assert result == single["placements"]

    def test_categorize_batch_empty_is_400(self, served):
        server, _ = served
        status, body = self._get(server, "/categorize-batch?items=")
        assert status == 400
        status, body = self._get(server, "/categorize-batch")
        assert status == 400


class TestInspectSnapshotCLI:
    def test_store_root(self, figure2_instance, tmp_path, capsys):
        from repro.cli import main

        variant = Variant.threshold_jaccard(0.6)
        tree = build_labeled_tree(figure2_instance, variant)
        store = SnapshotStore(tmp_path)
        store.save(tree, figure2_instance, variant, flat_shards=2)
        rc = main(["inspect-snapshot", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "shard 1/2" in out and "shard 2/2" in out
        assert "cat_tin" in out and "cat_bits" in out
        assert "group subtotals" in out
        assert "x smaller" in out  # the dense-vs-succinct comparison

    def test_empty_store_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["inspect-snapshot", str(tmp_path)])
        assert rc == 2
        assert "no CURRENT snapshot" in capsys.readouterr().err
