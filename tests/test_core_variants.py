"""Tests for the variant specifications (paper Section 2.2)."""

import pytest

from repro.core import InvalidVariantError, ScoreMode, SimilarityKind, Variant


class TestConstruction:
    def test_six_paper_variants_construct(self):
        variants = [
            Variant.cutoff_jaccard(0.8),
            Variant.threshold_jaccard(0.8),
            Variant.cutoff_f1(0.8),
            Variant.threshold_f1(0.8),
            Variant.perfect_recall(0.8),
            Variant.exact(),
        ]
        assert len({(v.kind, v.mode, v.delta) for v in variants}) == 6

    def test_delta_zero_rejected(self):
        with pytest.raises(InvalidVariantError):
            Variant.threshold_jaccard(0.0)

    def test_delta_above_one_rejected(self):
        with pytest.raises(InvalidVariantError):
            Variant.cutoff_f1(1.5)

    def test_negative_delta_rejected(self):
        with pytest.raises(InvalidVariantError):
            Variant.perfect_recall(-0.1)

    def test_perfect_recall_must_be_binary(self):
        with pytest.raises(InvalidVariantError):
            Variant(SimilarityKind.PERFECT_RECALL, ScoreMode.CUTOFF, 0.5)

    def test_delta_one_allowed_everywhere(self):
        for ctor in (
            Variant.cutoff_jaccard,
            Variant.threshold_jaccard,
            Variant.cutoff_f1,
            Variant.threshold_f1,
            Variant.perfect_recall,
        ):
            assert ctor(1.0).is_exact


class TestProperties:
    def test_exact_is_binary(self):
        assert Variant.exact().is_binary
        assert Variant.exact().is_exact

    def test_cutoff_not_binary(self):
        assert not Variant.cutoff_jaccard(0.5).is_binary

    def test_threshold_is_binary(self):
        assert Variant.threshold_f1(0.5).is_binary

    def test_perfect_recall_flag(self):
        assert Variant.perfect_recall(0.4).is_perfect_recall
        assert not Variant.threshold_jaccard(0.4).is_perfect_recall

    def test_with_delta_changes_only_delta(self):
        v = Variant.cutoff_f1(0.7)
        v2 = v.with_delta(0.9)
        assert (v2.kind, v2.mode, v2.delta) == (v.kind, v.mode, 0.9)

    def test_describe_names_exact(self):
        assert Variant.exact().describe() == "Exact"

    def test_describe_mentions_mode_and_kind(self):
        text = Variant.threshold_jaccard(0.8).describe()
        assert "threshold" in text and "jaccard" in text

    def test_frozen(self):
        v = Variant.exact()
        with pytest.raises(AttributeError):
            v.delta = 0.5  # type: ignore[misc]
