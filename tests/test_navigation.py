"""Tests for navigability metrics and navigation-aid insertion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import CTCR
from repro.core import CategoryTree, Variant, make_instance, score_tree
from repro.evaluation import (
    add_navigation_categories,
    navigation_report,
)


def wide_tree(n_children: int) -> CategoryTree:
    tree = CategoryTree()
    for i in range(n_children):
        tree.add_category({f"i{i}a", f"i{i}b"}, label=f"cat{i:02d}")
    return tree


class TestReport:
    def test_counts(self):
        tree = wide_tree(4)
        report = navigation_report(tree)
        assert report.num_categories == 5  # root + 4
        assert report.max_fanout == 4
        assert report.max_depth == 1
        assert report.mean_leaf_size == 2.0

    def test_empty_tree(self):
        report = navigation_report(CategoryTree())
        assert report.max_fanout == 0
        assert report.mean_leaf_depth == 0.0

    def test_click_estimate_grows_with_fanout(self):
        narrow = navigation_report(wide_tree(3))
        # Deeper but narrower tree after splitting.
        wide = navigation_report(wide_tree(30))
        assert wide.click_estimate > narrow.click_estimate


class TestNavigationAid:
    def test_splits_large_fanout(self):
        tree = wide_tree(30)
        added = add_navigation_categories(tree, max_children=10)
        assert added >= 3
        report = navigation_report(tree)
        assert report.max_fanout <= 10
        tree.validate()

    def test_noop_on_small_fanout(self):
        tree = wide_tree(5)
        assert add_navigation_categories(tree, max_children=10) == 0

    def test_group_labels_span_range(self):
        tree = wide_tree(24)
        add_navigation_categories(tree, max_children=12)
        labels = [c.label for c in tree.root.children]
        assert any("–" in label for label in labels)

    def test_rejects_bad_max_children(self):
        with pytest.raises(ValueError):
            add_navigation_categories(wide_tree(3), max_children=1)

    def test_score_never_decreases(self, figure2_instance):
        """Paper Section 2.3: intermediate nodes can be added without
        affecting the score."""
        variant = Variant.threshold_jaccard(0.6)
        tree = CTCR().build(figure2_instance, variant)
        before = score_tree(tree, figure2_instance, variant).normalized
        add_navigation_categories(tree, max_children=2)
        tree.validate(universe=figure2_instance.universe)
        after = score_tree(tree, figure2_instance, variant).normalized
        assert after >= before - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.sets(st.integers(0, 12), min_size=1, max_size=5),
            min_size=1,
            max_size=6,
        ),
        st.integers(min_value=2, max_value=4),
    )
    def test_property_validity_and_score_preserved(self, raw_sets, fanout):
        inst = make_instance(raw_sets)
        variant = Variant.threshold_jaccard(0.5)
        tree = CTCR().build(inst, variant)
        before = score_tree(tree, inst, variant).normalized
        add_navigation_categories(tree, max_children=fanout)
        tree.validate(universe=inst.universe, bound=inst.bound)
        after = score_tree(tree, inst, variant).normalized
        assert after >= before - 1e-9
