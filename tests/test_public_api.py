"""The public API surface: everything in __all__ must resolve."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.algorithms",
    "repro.baselines",
    "repro.catalog",
    "repro.clustering",
    "repro.conflicts",
    "repro.core",
    "repro.embeddings",
    "repro.evaluation",
    "repro.maintenance",
    "repro.mis",
    "repro.observability",
    "repro.pipeline",
    "repro.scale",
    "repro.search",
    "repro.serving",
    "repro.shaping",
    "repro.utils",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} must declare __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted(package):
    module = importlib.import_module(package)
    assert list(module.__all__) == sorted(module.__all__), package


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_readme_quickstart_runs():
    """The README's quickstart snippet must stay executable."""
    from repro import CTCR, Variant, make_instance, score_tree

    instance = make_instance(
        [
            {"a", "b", "c", "d", "e"},
            {"a", "b"},
            {"c", "d", "e", "f"},
            {"a", "b", "f", "g", "h"},
        ],
        weights=[2.0, 1.0, 1.0, 1.0],
    )
    variant = Variant.perfect_recall(0.8)
    tree = CTCR().build(instance, variant)
    tree.validate(universe=instance.universe, bound=instance.bound)
    assert score_tree(tree, instance, variant).normalized == 0.8
