"""Tests for 3-conflict enumeration (Section 3.2, Example 3.2)."""

from repro.conflicts import (
    compute_pairwise,
    compute_three_conflicts,
    rank_sets,
)
from repro.core import Variant, make_instance


class TestExample32:
    def test_the_triplet_is_a_conflict(self, example32_instance):
        analysis = compute_pairwise(
            example32_instance, Variant.perfect_recall(0.61)
        )
        triples = compute_three_conflicts(analysis)
        assert len(triples) == 1
        (triple,) = triples
        assert set(triple) == {0, 1, 2}

    def test_canonical_order_is_by_rank(self, example32_instance):
        ranking = rank_sets(example32_instance)
        analysis = compute_pairwise(
            example32_instance, Variant.perfect_recall(0.61), ranking
        )
        (triple,) = compute_three_conflicts(analysis)
        ranks = [ranking.rank_of[sid] for sid in triple]
        assert ranks == sorted(ranks)


class TestMiddleRankCondition:
    def test_middle_as_largest_is_not_a_conflict(self):
        """If the shared set ranks lowest (is the largest), its category is
        simply an ancestor of both others — no conflict."""
        # big must be covered together with each of two smaller sets.
        inst = make_instance(
            [
                set(range(10)),        # big (rank 1, the middle vertex)
                {0, 100},              # overlaps big
                {9, 200},              # overlaps big
            ]
        )
        analysis = compute_pairwise(inst, Variant.perfect_recall(0.6))
        assert analysis.is_must_together(0, 1)
        assert analysis.is_must_together(0, 2)
        assert compute_three_conflicts(analysis) == set()

    def test_transitive_must_pair_blocks_conflict(self):
        """When the endpoints must also be covered together, the chain is
        consistent and no 3-conflict arises."""
        inst = make_instance(
            [
                set(range(12)),
                set(range(8)) | {100},
                set(range(8)) | {200},
            ]
        )
        analysis = compute_pairwise(inst, Variant.perfect_recall(0.6))
        triples = compute_three_conflicts(analysis)
        for triple in triples:
            first, _middle, third = triple
            assert not analysis.is_must_together(first, third)

    def test_existing_2conflict_suppresses_triple(self, figure2_instance):
        analysis = compute_pairwise(
            figure2_instance, Variant.perfect_recall(0.8)
        )
        # q2 is must-together with q1 and q4, but (q1, q4) is already a
        # 2-conflict, so no redundant triple is emitted.
        triples = compute_three_conflicts(analysis)
        assert all({0, 3} - set(t) for t in triples)

    def test_exact_variant_has_no_triples(self, figure2_instance):
        analysis = compute_pairwise(figure2_instance, Variant.exact())
        # Exact must-together = containment, which is transitive, so the
        # paper skips 3-conflicts entirely at delta = 1; verify none arise.
        assert compute_three_conflicts(analysis) == set()
