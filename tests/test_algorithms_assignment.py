"""Tests for Algorithm 2: cover gaps, gain factors, duplicate placement."""

import math

from repro.algorithms.assignment import (
    assign_safe_items,
    cover_gap,
)
from repro.algorithms.base import BuildContext, chain_deepest, is_on_same_branch
from repro.core import CategoryTree, Variant, make_instance
from repro.core.similarity import variant_score


def make_ctx(instance, variant) -> BuildContext:
    tree = CategoryTree()
    ctx = BuildContext(tree=tree, instance=instance, variant=variant)
    for q in instance:
        cat = tree.add_category((), label=q.label or f"q{q.sid}")
        ctx.designated[q.sid] = cat
        ctx.target_sets[cat.cid] = q.items
    return ctx


class TestBranchHelpers:
    def test_is_on_same_branch(self):
        tree = CategoryTree()
        a = tree.add_category({"x"})
        b = tree.add_category({"y"}, parent=a)
        c = tree.add_category({"z"})
        assert is_on_same_branch(a, b)
        assert is_on_same_branch(b, a)
        assert is_on_same_branch(a, a)
        assert not is_on_same_branch(b, c)

    def test_chain_deepest(self):
        tree = CategoryTree()
        a = tree.add_category({"x"})
        b = tree.add_category({"y"}, parent=a)
        c = tree.add_category({"z"})
        assert chain_deepest([a, b]) is b
        assert chain_deepest([tree.root, a, b]) is b
        assert chain_deepest([b, c]) is None
        assert chain_deepest([]) is None


class TestCoverGap:
    def test_jaccard_gap_formula(self):
        inst = make_instance([set(range(10))])
        variant = Variant.threshold_jaccard(0.8)
        ctx = make_ctx(inst, variant)
        # Empty category: need ceil(0.8 * 10) = 8 items.
        assert cover_gap(ctx, inst.get(0)) == 8

    def test_gap_shrinks_with_content(self):
        inst = make_instance([set(range(10))])
        variant = Variant.threshold_jaccard(0.8)
        ctx = make_ctx(inst, variant)
        cat = ctx.designated[0]
        for item in range(5):
            ctx.tree.assign_item(cat, item)
        assert cover_gap(ctx, inst.get(0)) == 3

    def test_foreign_items_can_make_cover_infeasible(self):
        inst = make_instance([set(range(4))], universe=set(range(20)))
        variant = Variant.threshold_jaccard(0.8)
        ctx = make_ctx(inst, variant)
        cat = ctx.designated[0]
        for item in range(10, 16):  # six foreign items
            ctx.tree.assign_item(cat, item)
        assert cover_gap(ctx, inst.get(0)) is None

    def test_perfect_recall_gap_counts_all_missing(self):
        inst = make_instance([set(range(6))])
        variant = Variant.perfect_recall(0.5)
        ctx = make_ctx(inst, variant)
        assert cover_gap(ctx, inst.get(0)) == 6

    def test_perfect_recall_infeasible_precision(self):
        inst = make_instance([set(range(4))], universe=set(range(20)))
        variant = Variant.perfect_recall(0.8)
        ctx = make_ctx(inst, variant)
        cat = ctx.designated[0]
        for item in range(10, 14):  # 4 foreign items -> precision 0.5 max
            ctx.tree.assign_item(cat, item)
        assert cover_gap(ctx, inst.get(0)) is None

    def test_gap_is_exact_for_all_variants(self):
        """Adding exactly `gap` items of q covers it; gap-1 does not."""
        for ctor, delta in [
            (Variant.threshold_jaccard, 0.7),
            (Variant.threshold_f1, 0.7),
            (Variant.cutoff_jaccard, 0.55),
        ]:
            variant = ctor(delta)
            inst = make_instance([set(range(9))], universe=set(range(30)))
            ctx = make_ctx(inst, variant)
            cat = ctx.designated[0]
            ctx.tree.assign_item(cat, 20)  # one foreign item
            ctx.tree.assign_item(cat, 0)
            gap = cover_gap(ctx, inst.get(0))
            assert gap is not None and gap >= 1
            q = inst.get(0)
            base = set(cat.items)
            with_gap = base | set(range(1, 1 + gap))
            assert variant_score(variant, q.items, with_gap) > 0
            with_less = base | set(range(1, gap))
            assert variant_score(variant, q.items, with_less) == 0


class TestSafeAssignment:
    def test_single_set_items_go_to_their_category(self):
        inst = make_instance([{"a", "b"}, {"c"}])
        ctx = make_ctx(inst, Variant.exact())
        duplicates = assign_safe_items(ctx, inst.sets)
        assert not duplicates
        assert ctx.designated[0].items == {"a", "b"}
        assert ctx.designated[1].items == {"c"}

    def test_cross_branch_items_become_duplicates(self):
        inst = make_instance([{"a", "b"}, {"b", "c"}])
        ctx = make_ctx(inst, Variant.threshold_jaccard(0.5))
        duplicates = assign_safe_items(ctx, inst.sets)
        assert duplicates == {"b"}
        assert "b" not in ctx.designated[0].items
        assert "b" not in ctx.designated[1].items

    def test_chain_items_assigned_to_deepest(self):
        inst = make_instance([{"a", "b", "c"}, {"a", "b"}])
        variant = Variant.exact()
        tree = CategoryTree()
        ctx = BuildContext(tree=tree, instance=inst, variant=variant)
        outer = tree.add_category(())
        inner = tree.add_category((), parent=outer)
        ctx.designated[0] = outer
        ctx.designated[1] = inner
        duplicates = assign_safe_items(ctx, inst.sets)
        assert not duplicates
        assert inner.items == {"a", "b"}
        assert outer.items == {"a", "b", "c"}  # closure

    def test_bound_consumed_once_per_item(self):
        inst = make_instance([{"a"}])
        ctx = make_ctx(inst, Variant.exact())
        assign_safe_items(ctx, inst.sets)
        assert ctx.bound_left("a") == 0
