"""Tests for 2-conflict enumeration."""

from repro.conflicts import compute_pairwise, rank_sets
from repro.core import Variant, make_instance


class TestExactConflicts:
    def test_figure2_exact_conflicts(self, figure2_instance):
        """Figure 4: conflicts are exactly the intersecting non-nested pairs."""
        analysis = compute_pairwise(figure2_instance, Variant.exact())
        # sids: 0 = q1 {a..e}, 1 = q2 {a,b}, 2 = q3 {c,d,e,f}, 3 = q4 {a,b,f,g,h}
        assert analysis.is_conflict(0, 2)
        assert analysis.is_conflict(0, 3)
        assert analysis.is_conflict(2, 3)
        assert not analysis.is_conflict(0, 1)  # q2 subset of q1
        assert not analysis.is_conflict(1, 3)  # q2 subset of q4
        assert not analysis.is_conflict(1, 2)  # disjoint
        assert len(analysis.conflicts) == 3

    def test_exact_nested_is_must_together(self, figure2_instance):
        analysis = compute_pairwise(figure2_instance, Variant.exact())
        assert analysis.is_must_together(0, 1)
        assert analysis.is_must_together(1, 3)

    def test_disjoint_pairs_not_tracked(self):
        inst = make_instance([{"a"}, {"b"}, {"c"}])
        analysis = compute_pairwise(inst, Variant.exact())
        assert not analysis.conflicts
        assert not analysis.must_together
        assert not analysis.intersections


class TestPerfectRecallConflicts:
    def test_figure2_pr_conflicts(self, figure2_instance):
        analysis = compute_pairwise(
            figure2_instance, Variant.perfect_recall(0.8)
        )
        # q4 conflicts with q1 (5/8 < 0.8) and q3 (5/8 < 0.8).
        assert analysis.is_conflict(0, 3)
        assert analysis.is_conflict(2, 3)
        assert len(analysis.conflicts) == 2
        # q1-q2 (5/5), q1-q3 (5/6), q2-q4 (5/5) must be covered together.
        assert analysis.is_must_together(0, 1)
        assert analysis.is_must_together(0, 2)
        assert analysis.is_must_together(1, 3)

    def test_example32_must_pairs(self, example32_instance):
        analysis = compute_pairwise(
            example32_instance, Variant.perfect_recall(0.61)
        )
        assert analysis.is_must_together(0, 1)  # q1, q2
        assert analysis.is_must_together(1, 2)  # q2, q3
        assert not analysis.is_must_together(0, 2)  # both ways possible
        assert not analysis.conflicts


class TestGeneralBehaviour:
    def test_parallel_matches_serial(self, figure2_instance):
        for variant in (Variant.exact(), Variant.threshold_jaccard(0.6)):
            serial = compute_pairwise(figure2_instance, variant, n_jobs=1)
            parallel = compute_pairwise(figure2_instance, variant, n_jobs=2)
            assert serial.conflicts == parallel.conflicts
            assert serial.must_together == parallel.must_together
            assert serial.can_separately == parallel.can_separately

    def test_pair_keys_are_rank_ordered(self, figure2_instance):
        ranking = rank_sets(figure2_instance)
        analysis = compute_pairwise(figure2_instance, Variant.exact(), ranking)
        for upper, lower in (
            analysis.conflicts | analysis.must_together | analysis.can_separately
        ):
            assert ranking.rank_of[upper] < ranking.rank_of[lower]

    def test_classification_is_a_partition(self, figure2_instance):
        """Every intersecting pair lands in >= 1 class, conflicts exclusive."""
        for variant in (
            Variant.exact(),
            Variant.perfect_recall(0.7),
            Variant.threshold_jaccard(0.7),
            Variant.cutoff_f1(0.6),
        ):
            analysis = compute_pairwise(figure2_instance, variant)
            for pair in analysis.intersections:
                classes = sum(
                    (
                        pair in analysis.conflicts,
                        pair in analysis.must_together,
                        pair in analysis.can_separately,
                    )
                )
                assert classes >= 1
                if pair in analysis.conflicts:
                    assert classes == 1

    def test_intersections_counted(self, figure2_instance):
        analysis = compute_pairwise(figure2_instance, Variant.exact())
        key = analysis.key(0, 2)
        assert analysis.intersections[key] == 3  # {c, d, e}

    def test_low_threshold_dissolves_conflicts(self, figure2_instance):
        analysis = compute_pairwise(
            figure2_instance, Variant.threshold_jaccard(0.3)
        )
        assert not analysis.conflicts

    def test_per_set_threshold_respected(self):
        from repro.core import InputSet, OCTInstance

        # Identical geometry, but one pair member carries a loose
        # threshold, dissolving the conflict.
        strict = [
            InputSet(sid=0, items=frozenset(range(6))),
            InputSet(sid=1, items=frozenset(range(3, 9))),
        ]
        loose = [
            InputSet(sid=0, items=frozenset(range(6)), threshold=0.3),
            InputSet(sid=1, items=frozenset(range(3, 9))),
        ]
        v = Variant.threshold_jaccard(0.9)
        assert compute_pairwise(OCTInstance(strict), v).conflicts
        assert not compute_pairwise(OCTInstance(loose), v).conflicts

    def test_must_neighbors_adjacency(self, figure2_instance):
        analysis = compute_pairwise(
            figure2_instance, Variant.perfect_recall(0.8)
        )
        adj = analysis.must_neighbors()
        assert adj[0] == {1, 2}
        assert adj[1] == {0, 3}
