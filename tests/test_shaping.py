"""Tests for repro.shaping: latency/memory-budgeted tree shaping.

The contract under test is *exactness*: whatever quality the shaper
reports giving up must match an offline ``score_tree`` of the shaped
tree bit-for-bit (``==`` on floats, not approx) — the shaper and the
scorer walk the instance in the same order over the same static
per-(set, category) scores, so there is no room for drift.  The
hypothesis properties drive that across random planted catalogs and
budgets; the directed tests pin the structural operators, the tracer
counters, the HotSwapper shape-then-publish path, and the CLI.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import CTCR
from repro.core import Variant, score_tree
from repro.observability import Tracer, use_tracer
from repro.scale import ExtremeCatalog, scaled_spec
from repro.serving.engine import ServingEngine
from repro.serving.hotswap import HotSwapper
from repro.shaping import (
    CostModel,
    ShapingBudget,
    TreeShaper,
    calibrate_cost_model,
    estimate_cost,
    shape_tree,
)

VARIANT = Variant.threshold_jaccard(0.1)


def planted(seed: int, n_items: int = 600, n_sets: int = 40):
    catalog = ExtremeCatalog(scaled_spec(n_items, n_sets, seed=seed))
    return catalog.planted_tree(), catalog.instance()


budgets = st.one_of(
    st.builds(ShapingBudget, max_depth=st.integers(1, 4)),
    st.builds(ShapingBudget, max_children=st.integers(2, 6)),
    st.builds(
        ShapingBudget,
        max_query_ns=st.floats(5_000, 500_000),
    ),
    st.builds(
        ShapingBudget,
        max_snapshot_bytes=st.floats(2_000, 200_000),
    ),
    st.builds(
        ShapingBudget,
        max_depth=st.integers(2, 4),
        max_children=st.integers(2, 8),
        max_query_ns=st.floats(20_000, 500_000),
    ),
)


class TestShapingProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), budget=budgets)
    def test_reported_delta_matches_offline_rescore_exactly(
        self, seed, budget
    ):
        tree, instance = planted(seed)
        result = shape_tree(tree, instance, VARIANT, budget)
        before = score_tree(tree, instance, VARIANT).normalized
        after = score_tree(result.tree, instance, VARIANT).normalized
        assert result.score_before == before
        assert result.score_after == after
        assert result.quality_given_up == before - after
        result.tree.validate(
            universe=instance.universe, bound=instance.bound
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_unbounded_budget_is_identity(self, seed):
        tree, instance = planted(seed)
        budget = ShapingBudget()
        assert budget.unbounded
        result = shape_tree(tree, instance, VARIANT, budget)
        assert result.met
        assert result.removed == 0
        assert result.quality_given_up == 0.0
        assert {c.cid for c in result.tree.categories()} == {
            c.cid for c in tree.categories()
        }

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        max_depth=st.integers(1, 4),
        max_children=st.integers(2, 8),
    )
    def test_structural_budgets_always_met(self, seed, max_depth, max_children):
        tree, instance = planted(seed)
        budget = ShapingBudget(
            max_depth=max_depth, max_children=max_children
        )
        result = shape_tree(tree, instance, VARIANT, budget)
        assert result.met
        for cat in result.tree.categories():
            assert cat.depth <= max_depth
            assert len(cat.children) <= max_children

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_shaping_never_improves_score(self, seed):
        tree, instance = planted(seed)
        budget = ShapingBudget(max_depth=2, max_children=3)
        result = shape_tree(tree, instance, VARIANT, budget)
        assert result.quality_given_up >= 0.0
        assert result.score_after <= result.score_before


class TestShapingDirected:
    def test_tight_latency_budget_forces_removals_and_stays_exact(self):
        tree, instance = planted(seed=1, n_items=2000, n_sets=80)
        model = CostModel()
        baseline = estimate_cost(tree, instance, VARIANT, model)
        # The irreducible floor: every query answered at the root still
        # pays the base cost plus its own postings.
        total_w = sum(q.weight for q in instance.sets)
        mean_size = (
            sum(q.weight * len(q.items) for q in instance.sets) / total_w
        )
        floor_ns = (
            model.base_ns
            + model.ns_per_posting * mean_size
            + model.ns_per_candidate
            + model.ns_per_path_node
        )
        budget = ShapingBudget(
            max_query_ns=floor_ns
            + 0.1 * (baseline.expected_query_ns - floor_ns)
        )
        result = TreeShaper(instance, VARIANT, model).shape(tree, budget)
        assert result.met
        assert result.removed > 0
        # Exactness matters most when quality actually moved.
        offline = score_tree(result.tree, instance, VARIANT).normalized
        assert result.score_after == offline
        assert result.cost_after.expected_query_ns <= budget.max_query_ns

    def test_memory_budget_shrinks_snapshot(self):
        tree, instance = planted(seed=2, n_items=2000, n_sets=80)
        model = CostModel()
        baseline = estimate_cost(tree, instance, VARIANT, model)
        budget = ShapingBudget(
            max_snapshot_bytes=baseline.snapshot_bytes * 0.5
        )
        result = TreeShaper(instance, VARIANT, model).shape(tree, budget)
        assert result.met
        assert (
            result.cost_after.snapshot_bytes
            <= baseline.snapshot_bytes * 0.5
        )

    def test_tracer_counters_and_gauges(self):
        tree, instance = planted(seed=3)
        tracer = Tracer()
        with use_tracer(tracer):
            result = shape_tree(
                tree, instance, VARIANT, ShapingBudget(max_depth=2)
            )
        assert tracer.counters["shaping.runs"] == 1
        assert tracer.counters["shaping.removed"] == result.removed
        assert tracer.gauges["shaping.met"] == 1.0
        assert (
            tracer.gauges["shaping.quality_given_up"]
            == result.quality_given_up
        )
        assert "shaping.shape" in tracer.spans

    def test_result_to_dict_roundtrips_json(self):
        tree, instance = planted(seed=4)
        result = shape_tree(
            tree, instance, VARIANT, ShapingBudget(max_children=4)
        )
        blob = json.loads(json.dumps(result.to_dict()))
        assert blob["met"] == result.met
        assert blob["score_after"] == result.score_after
        assert blob["budget"]["max_children"] == 4

    def test_calibrated_model_is_sane(self):
        tree, instance = planted(seed=5, n_items=1500, n_sets=60)
        model = calibrate_cost_model(tree, instance, VARIANT, samples=40)
        assert model.base_ns >= 0
        assert model.ns_per_posting >= 0
        assert model.ns_per_candidate >= 0
        assert model.ns_per_path_node >= 0
        blob = CostModel.from_dict(model.to_dict())
        assert blob == model


class TestHotSwapperShaping:
    def test_shape_then_publish(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.8)
        engine = ServingEngine()
        swapper = HotSwapper(
            engine, shaping_budget=ShapingBudget(max_children=2)
        )
        generation = swapper.swap_from_build(
            CTCR(), figure2_instance, variant
        )
        assert swapper.last_shaping is not None
        assert swapper.last_shaping.met
        # Serving only ever sees the shaped tree.
        for cat in generation.tree.categories():
            assert len(cat.children) <= 2
        assert generation.tree is swapper.last_shaping.tree

    def test_no_budget_means_no_shaping(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.8)
        swapper = HotSwapper(ServingEngine())
        swapper.swap_from_build(CTCR(), figure2_instance, variant)
        assert swapper.last_shaping is None

    def test_unbounded_budget_means_no_shaping(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.8)
        swapper = HotSwapper(
            ServingEngine(), shaping_budget=ShapingBudget()
        )
        swapper.swap_from_build(CTCR(), figure2_instance, variant)
        assert swapper.last_shaping is None


class TestShapeCLI:
    def test_shape_command_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        catalog = ExtremeCatalog(scaled_spec(1200, 50, seed=9))
        inst_path = tmp_path / "instance.json"
        tree_path = tmp_path / "tree.json"
        rc = main(
            [
                "synthesize", "--items", "1200", "--sets", "50",
                "--seed", "9", "--output", str(inst_path),
                "--tree-output", str(tree_path),
            ]
        )
        assert rc == 0
        capsys.readouterr()

        out_path = tmp_path / "shaped.json"
        report_path = tmp_path / "report.json"
        rc = main(
            [
                "shape", "--instance", str(inst_path),
                "--tree", str(tree_path),
                "--variant", "threshold-jaccard:0.1",
                "--max-depth", "3", "--max-children", "5",
                "--output", str(out_path), "--report", str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "budget met" in out
        report = json.loads(report_path.read_text())
        assert report["met"] is True

        from repro.io import load_tree

        shaped = load_tree(out_path)
        for cat in shaped.categories():
            assert cat.depth <= 3 and len(cat.children) <= 5
        # The shaped artifact scores exactly what the report claims.
        instance = catalog.instance()
        offline = score_tree(
            shaped, instance, Variant.threshold_jaccard(0.1)
        ).normalized
        assert offline == report["score_after"]

    def test_shape_returns_nonzero_when_budget_missed(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        inst_path = tmp_path / "instance.json"
        tree_path = tmp_path / "tree.json"
        main(
            [
                "synthesize", "--items", "800", "--sets", "40",
                "--seed", "3", "--output", str(inst_path),
                "--tree-output", str(tree_path),
            ]
        )
        capsys.readouterr()
        # An impossible memory budget: even an empty tree costs more.
        rc = main(
            [
                "shape", "--instance", str(inst_path),
                "--tree", str(tree_path),
                "--variant", "threshold-jaccard:0.1",
                "--max-snapshot-bytes", "1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "NOT met" in out
