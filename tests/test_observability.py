"""Tests for the tracing core and run manifests.

Covers span nesting/ordering, exception safety, counter aggregation
across worker processes, manifest JSON round-trips, golden-file schema
stability, and the disabled-tracer overhead bound.

Regenerate the golden manifest after an intentional schema change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_observability.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.algorithms import CTCR, CTCRConfig
from repro.core import Variant, make_instance
from repro.observability import (
    NULL_TRACER,
    RunManifest,
    SCHEMA_VERSION,
    Tracer,
    get_tracer,
    instance_fingerprint,
    make_run_id,
    set_tracer,
    use_tracer,
)
from repro.utils.parallel import parallel_map

GOLDEN_PATH = Path(__file__).parent / "data" / "manifest_golden.json"


def figure2_like():
    return make_instance(
        [
            {"a", "b", "c", "d", "e"},
            {"a", "b"},
            {"c", "d", "e", "f"},
            {"a", "b", "f", "g", "h"},
        ],
        weights=[2.0, 1.0, 1.0, 1.0],
    )


# ---------------------------------------------------------------------------
# Span mechanics
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_paths_and_depths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        with tracer.span("other"):
            pass
        paths = list(tracer.spans)
        assert paths == ["outer", "outer/inner", "other"]
        assert tracer.spans["outer"].depth == 0
        assert tracer.spans["outer/inner"].depth == 1
        assert tracer.spans["outer/inner"].calls == 2
        assert tracer.spans["outer"].calls == 1

    def test_parents_listed_before_children(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert list(tracer.spans) == ["a", "a/b", "a/b/c"]

    def test_same_name_different_parents_kept_apart(self):
        tracer = Tracer()
        with tracer.span("x"):
            with tracer.span("work"):
                pass
        with tracer.span("y"):
            with tracer.span("work"):
                pass
        assert "x/work" in tracer.spans and "y/work" in tracer.spans

    def test_wall_and_cpu_accumulate(self):
        tracer = Tracer()
        for _ in range(2):
            with tracer.span("sleepy"):
                time.sleep(0.01)
        stats = tracer.spans["sleepy"]
        assert stats.calls == 2
        assert stats.wall_s >= 0.02
        assert stats.cpu_s >= 0.0

    def test_exception_closes_span_and_counts_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("boom"):
                    raise ValueError("bang")
        # Both spans closed and recorded despite the exception...
        assert tracer.spans["outer/boom"].errors == 1
        assert tracer.spans["outer"].errors == 1
        assert tracer.spans["outer"].calls == 1
        # ...and the stack unwound completely: new spans are top-level.
        assert tracer.current_path == ""
        with tracer.span("after"):
            assert tracer.current_path == "after"
        assert tracer.spans["after"].depth == 0

    def test_format_tree_mentions_spans_and_counters(self):
        tracer = Tracer()
        with tracer.span("stage"):
            tracer.count("things", 3)
        tracer.gauge("level", 0.5)
        text = tracer.format_tree()
        assert "stage" in text
        assert "things = 3" in text
        assert "level = 0.5" in text


class TestCountersAndGauges:
    def test_count_accumulates(self):
        tracer = Tracer()
        tracer.count("n")
        tracer.count("n", 4)
        assert tracer.counters == {"n": 5}

    def test_gauge_last_write_wins(self):
        tracer = Tracer()
        tracer.gauge("g", 1.0)
        tracer.gauge("g", 2.5)
        assert tracer.gauges == {"g": 2.5}

    def test_merge_counters(self):
        tracer = Tracer()
        tracer.count("a", 1)
        tracer.merge_counters({"a": 2, "b": 7})
        assert tracer.counters == {"a": 3, "b": 7}


class TestActiveTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_use_tracer_restores_previous(self):
        outer = Tracer()
        with use_tracer(outer):
            assert get_tracer() is outer
            with use_tracer() as inner:
                assert get_tracer() is inner
            assert get_tracer() is outer
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_tracer(Tracer()):
                raise RuntimeError
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_disables(self):
        set_tracer(Tracer())
        try:
            assert get_tracer().enabled
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("ignored"):
            NULL_TRACER.count("x", 5)
            NULL_TRACER.gauge("y", 1.0)
            NULL_TRACER.annotate("z", {})
        assert NULL_TRACER.spans == {}
        assert NULL_TRACER.counters == {}
        assert NULL_TRACER.format_tree() == "tracing disabled"


# ---------------------------------------------------------------------------
# Cross-process counter aggregation
# ---------------------------------------------------------------------------


def _traced_double(chunk):
    get_tracer().count("test.items_seen", len(chunk))
    return [x * 2 for x in chunk]


class TestWorkerAggregation:
    def test_counters_aggregate_from_pool_workers(self):
        with use_tracer(Tracer()) as tracer:
            results = parallel_map(_traced_double, list(range(50)), n_jobs=2)
        assert results == [x * 2 for x in range(50)]
        assert tracer.counters["test.items_seen"] == 50

    def test_pool_counters_match_serial(self):
        with use_tracer(Tracer()) as serial:
            parallel_map(_traced_double, list(range(37)), n_jobs=1)
        with use_tracer(Tracer()) as pooled:
            parallel_map(_traced_double, list(range(37)), n_jobs=2)
        assert serial.counters == pooled.counters

    def test_production_counters_match_serial(self):
        """The pairwise stage's worker counters survive the pool."""
        from repro.conflicts.two_conflicts import compute_pairwise

        instance = figure2_like()
        variant = Variant.threshold_jaccard(0.8)
        with use_tracer(Tracer()) as serial:
            compute_pairwise(instance, variant, n_jobs=1, use_bitset=False)
        with use_tracer(Tracer()) as pooled:
            compute_pairwise(instance, variant, n_jobs=2, use_bitset=False)
        assert serial.counters["conflicts.pairs_classified"] > 0
        assert serial.counters == pooled.counters

    def test_disabled_pool_path_unchanged(self):
        assert not get_tracer().enabled
        results = parallel_map(_traced_double, list(range(20)), n_jobs=2)
        assert results == [x * 2 for x in range(20)]


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------


def collect_reference_manifest() -> RunManifest:
    """A fully deterministic manifest from a tiny CTCR run."""
    instance = figure2_like()
    variant = Variant.threshold_jaccard(0.8)
    with use_tracer(Tracer()) as tracer:
        tracer.annotate("dataset.fingerprint", instance_fingerprint(instance))
        CTCR(CTCRConfig(use_bitset=False)).build(instance, variant)
    return RunManifest.collect(
        tracer,
        run_id="golden",
        tool="golden-test",
        config={"variant": str(variant), "use_bitset": False, "n_jobs": 1},
    )


def normalize(data: dict) -> dict:
    """Zero out the volatile fields (timings, timestamps, memory)."""
    out = json.loads(json.dumps(data))
    out["created_at"] = "<normalized>"
    out["totals"] = {k: 0 for k in out["totals"]}
    for span in out["spans"]:
        span["wall_s"] = 0.0
        span["cpu_s"] = 0.0
    return out


class TestRunManifest:
    def test_json_round_trip(self, tmp_path):
        manifest = collect_reference_manifest()
        path = tmp_path / "m.json"
        manifest.save(path)
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()

    def test_contains_spans_counters_gauges_and_fingerprint(self):
        manifest = collect_reference_manifest()
        assert manifest.schema_version == SCHEMA_VERSION
        span_names = {s["name"] for s in manifest.spans}
        assert {"ctcr.build", "ctcr.two_conflicts", "ctcr.mis"} <= span_names
        assert len(span_names) >= 6
        assert len(manifest.counters) >= 4
        assert manifest.dataset["n_sets"] == 4
        assert len(manifest.dataset["sha256"]) == 64
        assert manifest.gauges["ctcr.diag.num_sets"] == 4

    def test_dominant_spans_sorted_by_wall(self):
        manifest = collect_reference_manifest()
        walls = [s["wall_s"] for s in manifest.dominant_spans(top=4)]
        assert walls == sorted(walls, reverse=True)

    def test_totals_cover_top_level_spans_only(self):
        tracer = Tracer()
        with tracer.span("top"):
            with tracer.span("nested"):
                time.sleep(0.01)
        manifest = RunManifest.collect(tracer)
        top = next(s for s in manifest.spans if s["path"] == "top")
        assert manifest.totals["wall_s"] == pytest.approx(top["wall_s"])

    def test_fingerprint_is_content_sensitive(self):
        a = instance_fingerprint(figure2_like())
        b = instance_fingerprint(figure2_like())
        assert a == b
        changed = instance_fingerprint(
            make_instance([{"a", "b"}, {"c"}], weights=[1.0, 1.0])
        )
        assert changed["sha256"] != a["sha256"]

    def test_run_ids_are_filesystem_safe(self):
        rid = make_run_id()
        assert rid.replace("-", "").replace("p", "").isalnum()

    def test_diagnostics_view_round_trips(self, tmp_path):
        from repro.algorithms.ctcr import CTCRDiagnostics

        instance = figure2_like()
        variant = Variant.threshold_jaccard(0.8)
        builder = CTCR(CTCRConfig(use_bitset=False))
        with use_tracer(Tracer()) as tracer:
            builder.build(instance, variant)
        manifest = RunManifest.collect(tracer)
        path = tmp_path / "m.json"
        manifest.save(path)
        recovered = CTCRDiagnostics.from_manifest(RunManifest.load(path))
        assert recovered == builder.last_diagnostics

    def test_schema_golden_file(self):
        manifest = collect_reference_manifest()
        current = normalize(manifest.to_dict())
        if os.environ.get("REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(exist_ok=True)
            GOLDEN_PATH.write_text(json.dumps(current, indent=2) + "\n")
        golden = json.loads(GOLDEN_PATH.read_text())
        assert current == golden, (
            "manifest schema or deterministic content drifted; if the "
            "change is intentional, bump SCHEMA_VERSION and regenerate "
            "with REGEN_GOLDEN=1 (see module docstring)"
        )


# ---------------------------------------------------------------------------
# Overhead regression
# ---------------------------------------------------------------------------


class _EventCountingTracer(Tracer):
    """Counts instrumentation call sites hit during an enabled run."""

    def __init__(self) -> None:
        super().__init__()
        self.events = 0

    def span(self, name):
        self.events += 2  # enter + exit
        return super().span(name)

    def count(self, name, n=1):
        self.events += 1
        super().count(name, n)

    def gauge(self, name, value):
        self.events += 1
        super().gauge(name, value)


@pytest.mark.slow
def test_disabled_tracer_overhead_under_5_percent():
    """No-op instrumentation must cost < 5% of a small CTCR build.

    Deterministic variant of an A/B timing test: count the exact number
    of instrumentation events one build emits, measure the per-event
    cost of the null tracer, and bound their product against the build's
    wall time (with a 2x safety factor on the event count).
    """
    from repro.utils import make_rng
    from repro.core.input_sets import InputSet, OCTInstance

    rng = make_rng(5)
    universe = [f"i{k}" for k in range(120)]
    sets = [
        InputSet(sid=s, items=frozenset(rng.sample(universe, rng.randint(3, 15))))
        for s in range(60)
    ]
    instance = OCTInstance(sets, universe=universe)
    variant = Variant.threshold_jaccard(0.6)
    builder = CTCR(CTCRConfig(use_bitset=False))

    counting = _EventCountingTracer()
    with use_tracer(counting):
        builder.build(instance, variant)
    events = counting.events
    assert events > 0

    build_wall = min(
        _timed(lambda: builder.build(instance, variant)) for _ in range(5)
    )

    reps = 200_000
    null_wall = min(_timed(_null_events, reps) for _ in range(3))
    per_event = null_wall / reps

    overhead = 2 * events * per_event
    assert overhead < 0.05 * build_wall, (
        f"{events} events x {per_event * 1e9:.0f}ns = {overhead * 1e3:.3f}ms "
        f"vs build {build_wall * 1e3:.1f}ms"
    )


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def _null_events(reps: int) -> None:
    tracer = NULL_TRACER
    for _ in range(reps):
        with tracer.span("x"):
            tracer.count("c")
