"""The kernelized bitset hypergraph-MIS engine, pinned differentially.

Four contracts:

* the mixed 2/3-edge reductions + expansion are weight-exact against
  brute force on instances small enough to enumerate;
* the engine returns identical selections across its whole flag grid —
  kernelize on/off, cache on/off, serial vs pooled components;
* the bitset 3-conflict enumeration matches the retained nested-loop
  reference on randomized instances and every variant family;
* the conflict-hypergraph incidence index and the solver façade's
  hyperedge guard behave as documented.
"""

from __future__ import annotations

import itertools
import random
import sys
from pathlib import Path

import pytest

from repro.conflicts.hypergraph import (
    ConflictHypergraph,
    build_conflict_hypergraph,
)
from repro.conflicts.ranking import rank_sets
from repro.conflicts.three_conflicts import (
    _three_conflicts_reference,
    compute_three_conflicts,
)
from repro.conflicts.two_conflicts import compute_pairwise
from repro.core import Variant
from repro.mis.cache import MISComponentCache, clear_mis_cache, get_mis_cache
from repro.mis.hypergraph_mis import (
    WeightedHypergraph,
    _HyperBranchAndBound,
    greedy_hypergraph_mis,
    solve_hypergraph_mis,
)
from repro.mis.hypergraph_reductions import (
    expand_solution,
    reduce_hypergraph,
)
from repro.mis.solver import MISConfig, _to_graph, solve_conflicts
from repro.observability import Tracer, use_tracer

from tests.test_ctcr_equivalence import random_instance


def brute_force_weight(hg: WeightedHypergraph) -> float:
    vs = list(hg.vertices)
    assert len(vs) <= 16
    best = 0.0
    for r in range(len(vs) + 1):
        for comb in itertools.combinations(vs, r):
            s = set(comb)
            if hg.is_independent(s):
                best = max(best, hg.weight_of(s))
    return best


def random_hypergraph(rng: random.Random, n: int) -> WeightedHypergraph:
    vs = list(range(n))
    weights = {
        v: rng.choice([1.0, 1.0, 2.0, 3.0, rng.uniform(0.5, 5.0)])
        for v in vs
    }
    edges = set()
    for _ in range(rng.randint(0, 2 * n)):
        size = rng.choice([2, 2, 3])
        if n >= size:
            edges.add(frozenset(rng.sample(vs, size)))
    return WeightedHypergraph(
        vertices=vs, weights=weights, edges=sorted(edges, key=sorted)
    )


class TestHypergraphReductions:
    def test_reduce_expand_matches_brute_force(self):
        rng = random.Random(7)
        for trial in range(150):
            hg = random_hypergraph(rng, rng.randint(1, 12))
            expected = brute_force_weight(hg)
            result = reduce_hypergraph(hg)
            kernel_solution = solve_hypergraph_mis(
                result.kernel, kernelize=False
            )
            lifted = expand_solution(result, kernel_solution)
            assert hg.is_independent(lifted), f"trial {trial}"
            assert hg.weight_of(lifted) == pytest.approx(expected), (
                f"trial {trial}"
            )

    def test_input_not_mutated(self):
        hg = random_hypergraph(random.Random(3), 10)
        vertices, weights = list(hg.vertices), dict(hg.weights)
        edges = list(hg.edges)
        reduce_hypergraph(hg)
        assert hg.vertices == vertices
        assert hg.weights == weights
        assert hg.edges == edges

    def test_three_edge_blocks_pair_only_rules(self):
        """A vertex in a 3-edge is not pair-only: it must survive to the
        kernel rather than being folded as a pendant."""
        hg = WeightedHypergraph(
            vertices=[0, 1, 2, 3],
            weights={0: 1.0, 1: 5.0, 2: 5.0, 3: 5.0},
            edges=[frozenset({0, 1}), frozenset({1, 2, 3})],
        )
        result = reduce_hypergraph(hg)
        # 0 is a light pendant -> degree-1 fold; the 3-edge survives.
        assert ("fold", 0, 1) in result.events
        assert frozenset({1, 2, 3}) in result.kernel.edges
        solution = expand_solution(
            result, solve_hypergraph_mis(result.kernel, kernelize=False)
        )
        assert hg.is_independent(solution)
        assert hg.weight_of(solution) == pytest.approx(11.0)  # two of {1,2,3} + 0

    def test_fold2_rewires_three_edges(self):
        """Degree-2 fold where a folded endpoint also sits in a 3-edge:
        the 3-edge must follow the synthetic vertex."""
        hg = WeightedHypergraph(
            vertices=["u", "v", "x", "a", "b"],
            weights={"u": 2.0, "v": 2.0, "x": 2.0, "a": 9.0, "b": 9.0},
            edges=[
                frozenset({"u", "v"}),
                frozenset({"v", "x"}),
                frozenset({"u", "a", "b"}),
            ],
        )
        expected = brute_force_weight(hg)
        result = reduce_hypergraph(hg)
        solution = expand_solution(
            result, solve_hypergraph_mis(result.kernel, kernelize=False)
        )
        assert hg.is_independent(solution)
        assert hg.weight_of(solution) == pytest.approx(expected)

    def test_domination_victim_may_carry_three_edges(self):
        """v dominated by pair-only u is removed even when v sits in a
        3-edge (v is only ever excluded, which voids its edges)."""
        hg = WeightedHypergraph(
            vertices=["u", "v", "c", "a", "b"],
            weights={"u": 3.0, "v": 1.0, "c": 2.0, "a": 2.0, "b": 2.0},
            edges=[
                frozenset({"u", "v"}),
                frozenset({"u", "c"}),
                frozenset({"v", "c"}),
                frozenset({"v", "a", "b"}),
            ],
        )
        expected = brute_force_weight(hg)
        result = reduce_hypergraph(hg)
        solution = expand_solution(
            result, solve_hypergraph_mis(result.kernel, kernelize=False)
        )
        assert hg.is_independent(solution)
        assert hg.weight_of(solution) == pytest.approx(expected)


class TestBitsetBranchAndBound:
    def test_matches_brute_force(self):
        rng = random.Random(11)
        for trial in range(80):
            hg = random_hypergraph(rng, rng.randint(1, 11))
            solver = _HyperBranchAndBound(hg, node_budget=10**9)
            solution = solver.solve()
            assert hg.is_independent(solution), f"trial {trial}"
            assert hg.weight_of(solution) == pytest.approx(
                brute_force_weight(hg)
            ), f"trial {trial}"

    def test_warm_start_never_loses_to_greedy(self):
        rng = random.Random(13)
        for _ in range(30):
            hg = random_hypergraph(rng, rng.randint(2, 11))
            warm = greedy_hypergraph_mis(hg)
            solver = _HyperBranchAndBound(
                hg, node_budget=10**9, warm_start=warm
            )
            solution = solver.solve()
            assert hg.weight_of(solution) >= hg.weight_of(warm) - 1e-9
            assert hg.weight_of(solution) == pytest.approx(
                brute_force_weight(hg)
            )

    def test_budget_exhaustion_returns_incumbent(self):
        hg = random_hypergraph(random.Random(17), 12)
        solution = solve_hypergraph_mis(hg, node_budget=2, kernelize=False)
        assert hg.is_independent(solution)
        # Never worse than the greedy warm start.
        assert hg.weight_of(solution) >= hg.weight_of(
            greedy_hypergraph_mis(hg)
        ) - 1e-9


class TestEngineGrid:
    def test_flag_grid_identical_selections(self):
        """kernelize x cache x n_jobs all return the same selection."""
        rng = random.Random(19)
        for trial in range(8):
            n = rng.randint(15, 40)
            vs = list(range(n))
            weights = {v: rng.uniform(0.5, 5.0) for v in vs}
            edges = set()
            for _ in range(2 * n):
                size = rng.choice([2, 2, 3])
                edges.add(frozenset(rng.sample(vs, size)))
            hg = WeightedHypergraph(
                vertices=vs, weights=weights, edges=sorted(edges, key=sorted)
            )
            baseline = solve_hypergraph_mis(hg)
            for kernelize in (True, False):
                for n_jobs in (1, 2):
                    for cache in (None, MISComponentCache()):
                        got = solve_hypergraph_mis(
                            hg,
                            kernelize=kernelize,
                            n_jobs=n_jobs,
                            cache=cache,
                        )
                        assert got == baseline, (
                            f"trial {trial}: kernelize={kernelize} "
                            f"n_jobs={n_jobs} cache={cache is not None}"
                        )

    def test_cache_replay_is_identical_and_counted(self):
        hg = random_hypergraph(random.Random(23), 12)
        cache = MISComponentCache()
        with use_tracer(Tracer()) as tracer:
            first = solve_hypergraph_mis(hg, cache=cache)
            second = solve_hypergraph_mis(hg, cache=cache)
        assert first == second
        assert cache.hits > 0
        assert tracer.counters.get("mis.cache_hits", 0) == cache.hits
        assert tracer.counters.get("mis.cache_misses", 0) == cache.misses

    def test_cache_key_sensitive_to_weights_and_knobs(self):
        hg = WeightedHypergraph(
            vertices=[0, 1],
            weights={0: 1.0, 1: 2.0},
            edges=[frozenset({0, 1})],
        )
        base = MISComponentCache.key(hg, 100, True, 2000)
        reweighted = WeightedHypergraph(
            vertices=[0, 1],
            weights={0: 1.0, 1: 3.0},
            edges=[frozenset({0, 1})],
        )
        assert MISComponentCache.key(reweighted, 100, True, 2000) != base
        assert MISComponentCache.key(hg, 101, True, 2000) != base
        assert MISComponentCache.key(hg, 100, False, 2000) != base

    def test_cache_fifo_eviction_and_clear(self):
        cache = MISComponentCache(max_entries=2)
        for i in range(3):
            cache.put(f"k{i}", {i})
        assert len(cache) == 2
        assert cache.get("k0") is None  # evicted first-in
        assert cache.get("k2") == {2}
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_global_cache_accessor(self):
        clear_mis_cache()
        cache = get_mis_cache()
        assert cache is get_mis_cache()
        cache.put("probe", {1})
        clear_mis_cache()
        assert get_mis_cache().get("probe") is None


class TestThreeConflictDifferential:
    VARIANTS = [
        Variant.perfect_recall(0.5),
        Variant.perfect_recall(0.7),
        Variant.threshold_jaccard(0.5),
        Variant.cutoff_f1(0.5),
    ]

    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: str(v))
    def test_bitset_enumeration_matches_reference(self, variant):
        for seed in range(6):
            instance = random_instance(seed, n_sets=35, n_items=30)
            ranking = rank_sets(instance)
            analysis = compute_pairwise(instance, variant, ranking)
            assert compute_three_conflicts(
                analysis
            ) == _three_conflicts_reference(analysis)

    def test_empty_must_together(self):
        instance = random_instance(41, n_sets=6, n_items=60)
        variant = Variant.threshold_jaccard(0.99)
        analysis = compute_pairwise(instance, variant)
        assert compute_three_conflicts(
            analysis
        ) == _three_conflicts_reference(analysis)


class TestConflictHypergraphIncidence:
    def test_degree_counts_pairs_and_triples(self):
        graph = ConflictHypergraph(
            vertices=[0, 1, 2, 3],
            weights={v: 1.0 for v in range(4)},
            pairs={(0, 1), (1, 2)},
            triples={(0, 1, 2)},
        )
        assert graph.degree(1) == 3
        assert graph.degree(0) == 2
        assert graph.degree(3) == 0

    def test_incidence_refreshes_when_triples_land(self):
        """build_conflict_hypergraph assigns triples after construction;
        the cached index must notice the edge-count change."""
        graph = ConflictHypergraph(
            vertices=[0, 1, 2],
            weights={v: 1.0 for v in range(3)},
            pairs={(0, 1)},
        )
        assert graph.degree(2) == 0  # builds the pair-only index
        graph.triples = {(0, 1, 2)}
        assert graph.degree(2) == 1
        assert graph.degree(0) == 2

    def test_matches_ctcr_construction(self):
        instance = random_instance(5, n_sets=25)
        variant = Variant.perfect_recall(0.5)
        analysis = compute_pairwise(instance, variant)
        graph = build_conflict_hypergraph(instance, analysis)
        for v in graph.vertices:
            expected = sum(1 for e in graph.pairs if v in e) + sum(
                1 for e in graph.triples if v in e
            )
            assert graph.degree(v) == expected


class TestSolverFacade:
    def test_to_graph_rejects_hyperedge_naming_it(self):
        hg = WeightedHypergraph(
            vertices=[1, 2, 3],
            weights={1: 1.0, 2: 1.0, 3: 1.0},
            edges=[frozenset({1, 2, 3})],
        )
        with pytest.raises(ValueError, match=r"\[1, 2, 3\].*size 3"):
            _to_graph(hg)

    def test_solve_conflicts_mis_config_grid(self):
        """solve_conflicts honours n_jobs/use_cache without changing the
        selection."""
        clear_mis_cache()
        hg = random_hypergraph(random.Random(29), 14)
        if not any(len(e) == 3 for e in hg.edges):  # pragma: no cover
            pytest.skip("generator produced no triples")
        baseline = solve_conflicts(hg, MISConfig())
        for n_jobs in (1, 2):
            for use_cache in (False, True):
                got = solve_conflicts(
                    hg, MISConfig(n_jobs=n_jobs, use_cache=use_cache)
                )
                assert got == baseline


@pytest.mark.slow
def test_bench_mis_engine_tiny_smoke():
    """The MIS engine benchmark's --tiny mode runs end to end."""
    root = Path(__file__).resolve().parents[1]
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from benchmarks.bench_mis_engine import run

    payload = run(tiny=True)
    assert payload["stage_rows"], "tiny run produced no measurements"
    assert all(r["speedup"] > 0 for r in payload["stage_rows"])
    # Tiny mode must not clobber the committed full-mode numbers.
    assert (Path(root) / "benchmarks" / "BENCH_mis_tiny.json").exists()
