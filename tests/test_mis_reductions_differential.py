"""Randomized differential coverage for the graph MWIS reductions.

The weighted reductions in :mod:`repro.mis.reductions` (degree-1/2
folds, twins, simplicial, domination, neighbourhood removal) are
individually easy to argue but interact: a fold can create a twin, a
twin merge can make a vertex simplicial, a degree-2 fold introduces a
synthetic vertex that later folds again. These suites pit
``reduce + solve kernel + expand`` against brute force on graphs small
enough (≤ 16 vertices) to enumerate every subset, across generators
biased to trigger exactly those interactions.
"""

from __future__ import annotations

import random

import pytest

from repro.mis.exact import solve_exact
from repro.mis.graph import WeightedGraph
from repro.mis.reductions import expand_solution, reduce_graph

# Weight pools biased toward ties: equal weights are what arm the twin,
# simplicial, and domination rules.
TIED_WEIGHTS = [1.0, 1.0, 1.0, 2.0, 2.0, 3.0]


def brute_force_mwis(graph: WeightedGraph) -> float:
    vs = graph.vertices()
    assert len(vs) <= 16, "brute force capped at 16 vertices"
    best = 0.0
    for mask in range(1 << len(vs)):
        selected = {vs[i] for i in range(len(vs)) if mask >> i & 1}
        if graph.is_independent_set(selected):
            best = max(best, graph.weight_of(selected))
    return best


def reduced_optimum(graph: WeightedGraph) -> tuple[set, float]:
    """Solve via reduce → exact kernel solve → expand."""
    result = reduce_graph(graph.copy())
    kernel_solution = solve_exact(result.kernel)
    solution = expand_solution(result, kernel_solution)
    return solution, graph.weight_of(solution)


def assert_matches_brute_force(graph: WeightedGraph, context: str) -> None:
    expected = brute_force_mwis(graph)
    solution, weight = reduced_optimum(graph)
    assert graph.is_independent_set(solution), (
        f"{context}: expanded solution is not independent: {sorted(solution)}"
    )
    assert weight == pytest.approx(expected), (
        f"{context}: got {weight}, brute force says {expected}"
    )


# -- generators biased toward specific rule interactions -------------------


def sparse_graph(rng: random.Random, n: int) -> WeightedGraph:
    """Low density: pendants and short paths — degree-1/2 fold country."""
    vs = list(range(n))
    weights = {v: rng.choice(TIED_WEIGHTS) for v in vs}
    g = WeightedGraph(vs, weights)
    for a in vs:
        for b in vs:
            if a < b and rng.random() < 1.8 / max(n, 1):
                g.add_edge(a, b)
    return g


def twin_heavy_graph(rng: random.Random, n: int) -> WeightedGraph:
    """Planted duplicate neighbourhoods so twin merges actually fire."""
    base = sparse_graph(rng, n)
    vs = base.vertices()
    for _ in range(3):
        v = rng.choice(vs)
        clone = max(vs) + 1
        base.add_vertex(clone, rng.choice(TIED_WEIGHTS))
        for u in list(base.neighbors(v)):
            base.add_edge(clone, u)
        vs.append(clone)
        if len(vs) >= 16:
            break
    return base


def clique_fringe_graph(rng: random.Random, n: int) -> WeightedGraph:
    """Small cliques with pendant fringes — simplicial + fold interplay."""
    vs = list(range(n))
    weights = {v: rng.choice(TIED_WEIGHTS) for v in vs}
    g = WeightedGraph(vs, weights)
    i = 0
    while i + 2 < n:
        size = rng.choice([3, 3, 4])
        clique = vs[i : i + size]
        for a_idx, a in enumerate(clique):
            for b in clique[a_idx + 1 :]:
                g.add_edge(a, b)
        i += size
    # Fringe pendants hanging off clique members.
    for v in vs[: n // 2]:
        u = rng.choice(vs)
        if u != v:
            g.add_edge(v, u)
    return g


def path_cycle_graph(rng: random.Random, n: int) -> WeightedGraph:
    """Paths and cycles: every interior vertex is a degree-2 fold seed."""
    vs = list(range(n))
    weights = {v: rng.choice(TIED_WEIGHTS) for v in vs}
    g = WeightedGraph(vs, weights)
    for a, b in zip(vs, vs[1:]):
        g.add_edge(a, b)
    if n > 2 and rng.random() < 0.5:
        g.add_edge(vs[-1], vs[0])
    # A couple of chords create domination / simplicial opportunities.
    for _ in range(rng.randint(0, 2)):
        a, b = rng.sample(vs, 2)
        if a != b:
            g.add_edge(a, b)
    return g


@pytest.mark.parametrize(
    "generator",
    [sparse_graph, twin_heavy_graph, clique_fringe_graph, path_cycle_graph],
    ids=["sparse", "twins", "cliques", "paths"],
)
def test_reduced_solve_matches_brute_force(generator):
    rng = random.Random(hash(generator.__name__) & 0xFFFF)
    for trial in range(60):
        n = rng.randint(2, 13)
        graph = generator(rng, n)
        assert_matches_brute_force(
            graph, f"{generator.__name__} trial {trial}"
        )


def test_degree2_fold_then_twin_chain():
    """A path of equal weights folds repeatedly; the synthetic vertices
    must keep expanding back to a true optimum."""
    n = 9
    vs = list(range(n))
    g = WeightedGraph(vs, {v: 1.0 for v in vs})
    for a, b in zip(vs, vs[1:]):
        g.add_edge(a, b)
    result = reduce_graph(g.copy())
    # The whole path reduces away — nothing left to branch on.
    assert len(result.kernel) == 0
    solution = expand_solution(result, set())
    assert g.is_independent_set(solution)
    assert g.weight_of(solution) == pytest.approx(5.0)  # ceil(9 / 2)


def test_twin_of_simplicial_vertex():
    """Two non-adjacent vertices sharing a clique neighbourhood: the twin
    merge makes the survivor heavy enough to win the simplicial check."""
    g = WeightedGraph(
        ["t1", "t2", "a", "b"],
        {"t1": 1.0, "t2": 1.0, "a": 1.5, "b": 1.5},
    )
    g.add_edge("a", "b")
    for t in ("t1", "t2"):
        g.add_edge(t, "a")
        g.add_edge(t, "b")
    assert_matches_brute_force(g, "twin-of-simplicial")


def test_fold2_synthetic_participates_in_further_reductions():
    """After a degree-2 fold the synthetic vertex is a pendant, so the
    degree-1 fold must chain onto it."""
    # u - v - x is the fold triple; u also hangs off r.
    g = WeightedGraph(
        ["u", "v", "x", "r"],
        {"u": 2.0, "v": 2.0, "x": 2.0, "r": 1.0},
    )
    g.add_edge("u", "v")
    g.add_edge("v", "x")
    g.add_edge("u", "r")
    assert_matches_brute_force(g, "fold2-chain")


def test_expand_replays_events_in_reverse():
    """Regression guard on event ordering: a fold whose anchor is later
    absorbed by a twin merge only resolves correctly in reverse replay."""
    rng = random.Random(20260806)
    for trial in range(40):
        g = twin_heavy_graph(rng, rng.randint(4, 11))
        result = reduce_graph(g.copy())
        kernel_solution = solve_exact(result.kernel)
        solution = expand_solution(result, kernel_solution)
        assert g.is_independent_set(solution), f"trial {trial}"
