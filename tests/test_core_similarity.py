"""Tests for similarity functions and variant scoring."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core import Variant, covers, f1, jaccard, precision, recall, variant_score
from repro.core.similarity import (
    f1_from_sizes,
    jaccard_from_sizes,
    raw_similarity,
    variant_score_from_sizes,
)
from repro.core.variants import SimilarityKind

small_sets = st.sets(st.integers(min_value=0, max_value=12), max_size=8)


class TestBasicFunctions:
    def test_jaccard_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_jaccard_partial(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == 0.5

    def test_jaccard_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_precision_counts_category_side(self):
        assert precision({1, 2}, {1, 2, 3, 4}) == 0.5

    def test_recall_counts_query_side(self):
        assert recall({1, 2, 3, 4}, {1, 2}) == 0.5

    def test_precision_empty_category(self):
        assert precision({1}, set()) == 0.0

    def test_recall_empty_query(self):
        assert recall(set(), {1}) == 1.0

    def test_f1_matches_harmonic_mean(self):
        q, c = {1, 2, 3}, {2, 3, 4, 5}
        p, r = precision(q, c), recall(q, c)
        assert math.isclose(f1(q, c), 2 * p * r / (p + r))

    def test_paper_example_precision(self):
        # Figure 2: C1 = {a..f} vs q1 = {a..e}: precision 5/6.
        c1 = {"a", "b", "c", "d", "e", "f"}
        q1 = {"a", "b", "c", "d", "e"}
        assert math.isclose(precision(q1, c1), 5 / 6)
        assert recall(q1, c1) == 1.0


class TestSizeForms:
    @given(small_sets, small_sets)
    def test_jaccard_from_sizes_consistent(self, a, b):
        assert math.isclose(
            jaccard(a, b),
            jaccard_from_sizes(len(a), len(b), len(a & b)),
        )

    @given(small_sets, small_sets)
    def test_f1_from_sizes_consistent(self, a, b):
        assert math.isclose(
            f1(a, b), f1_from_sizes(len(a), len(b), len(a & b))
        )

    @given(small_sets, small_sets)
    def test_jaccard_symmetric(self, a, b):
        assert math.isclose(jaccard(a, b), jaccard(b, a))

    @given(small_sets, small_sets)
    def test_f1_at_least_jaccard(self, a, b):
        # F1 = 2J/(1+J) >= J for J in [0, 1].
        assert f1(a, b) >= jaccard(a, b) - 1e-12

    @given(small_sets, small_sets)
    def test_similarities_in_unit_interval(self, a, b):
        for kind in SimilarityKind:
            value = raw_similarity(kind, a, b)
            assert -1e-12 <= value <= 1.0 + 1e-12


class TestVariantScore:
    def test_cutoff_keeps_raw_value(self):
        v = Variant.cutoff_jaccard(0.5)
        assert math.isclose(variant_score(v, {1, 2, 3}, {2, 3, 4}), 0.5)

    def test_cutoff_below_threshold_zero(self):
        v = Variant.cutoff_jaccard(0.6)
        assert variant_score(v, {1, 2, 3}, {2, 3, 4}) == 0.0

    def test_threshold_rounds_up_to_one(self):
        v = Variant.threshold_jaccard(0.5)
        assert variant_score(v, {1, 2, 3}, {2, 3, 4}) == 1.0

    def test_perfect_recall_requires_full_recall(self):
        v = Variant.perfect_recall(0.3)
        assert variant_score(v, {1, 2}, {1, 3, 4}) == 0.0  # recall < 1

    def test_perfect_recall_precision_gate(self):
        v = Variant.perfect_recall(0.8)
        # recall 1, precision 2/3 < 0.8
        assert variant_score(v, {1, 2}, {1, 2, 3}) == 0.0
        # recall 1, precision 5/6 >= 0.8 (the paper's C1/q1 case)
        assert variant_score(v, set(range(5)), set(range(6))) == 1.0

    def test_exact_scores_only_identity(self):
        v = Variant.exact()
        assert variant_score(v, {1, 2}, {1, 2}) == 1.0
        assert variant_score(v, {1, 2}, {1, 2, 3}) == 0.0
        assert variant_score(v, {1, 2}, {1}) == 0.0

    def test_per_set_delta_overrides_default(self):
        v = Variant.threshold_jaccard(0.9)
        assert variant_score(v, {1, 2, 3}, {2, 3, 4}, delta=0.5) == 1.0

    def test_covers_is_positive_score(self):
        v = Variant.threshold_f1(0.5)
        assert covers(v, {1, 2}, {1, 2, 3})
        assert not covers(v, {1, 2}, {3, 4})

    @given(small_sets.filter(bool), small_sets)
    def test_all_variants_converge_at_delta_one(self, q, c):
        scores = {
            variant_score(Variant.threshold_jaccard(1.0), q, c),
            variant_score(Variant.cutoff_jaccard(1.0), q, c),
            variant_score(Variant.threshold_f1(1.0), q, c),
            variant_score(Variant.cutoff_f1(1.0), q, c),
            variant_score(Variant.perfect_recall(1.0), q, c),
        }
        assert len(scores) == 1
        expected = 1.0 if q == c else 0.0
        assert scores == {expected}

    @given(
        small_sets.filter(bool),
        small_sets,
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_score_monotone_in_delta(self, q, c, d1, d2):
        lo, hi = sorted((d1, d2))
        for ctor in (Variant.threshold_jaccard, Variant.cutoff_f1,
                     Variant.perfect_recall):
            assert (
                variant_score_from_sizes(
                    ctor(lo), len(q), len(c), len(q & c), lo
                )
                >= variant_score_from_sizes(
                    ctor(hi), len(q), len(c), len(q & c), hi
                )
                - 1e-12
            )
