"""Tests for category trees and validity checking."""

import pytest

from repro.core import CategoryTree, InvalidTreeError


def small_tree() -> CategoryTree:
    tree = CategoryTree()
    top = tree.add_category({"a", "b", "c"}, label="top")
    tree.add_category({"a"}, parent=top, label="left")
    tree.add_category({"b"}, parent=top, label="right")
    return tree


class TestConstruction:
    def test_root_collects_all_items(self):
        tree = small_tree()
        assert tree.root.items == {"a", "b", "c"}

    def test_add_category_propagates_upward(self):
        tree = CategoryTree()
        top = tree.add_category({"x"})
        tree.add_category({"y"}, parent=top)
        assert "y" in top.items and "y" in tree.root.items

    def test_assign_item_propagates(self):
        tree = small_tree()
        leaf = [c for c in tree.categories() if c.label == "left"][0]
        tree.assign_item(leaf, "z")
        assert "z" in tree.root.items

    def test_remove_item_clears_subtree(self):
        tree = small_tree()
        top = [c for c in tree.categories() if c.label == "top"][0]
        tree.remove_item(top, "a")
        assert all("a" not in c.items for c in top.subtree())

    def test_remove_category_splices_children(self):
        tree = small_tree()
        top = [c for c in tree.categories() if c.label == "top"][0]
        children_before = list(top.children)
        tree.remove_category(top)
        for child in children_before:
            assert child.parent is tree.root
            assert child in tree.root.children

    def test_cannot_remove_root(self):
        tree = small_tree()
        with pytest.raises(InvalidTreeError):
            tree.remove_category(tree.root)

    def test_insert_parent_takes_union(self):
        tree = small_tree()
        top = [c for c in tree.categories() if c.label == "top"][0]
        a, b = top.children
        node = tree.insert_parent([a, b], label="mid")
        assert node.items == a.items | b.items
        assert node.parent is top
        assert a.parent is node and b.parent is node

    def test_insert_parent_requires_siblings(self):
        tree = small_tree()
        top = [c for c in tree.categories() if c.label == "top"][0]
        with pytest.raises(InvalidTreeError):
            tree.insert_parent([top, top.children[0]])

    def test_unique_cids(self):
        tree = small_tree()
        cids = [c.cid for c in tree.categories()]
        assert len(cids) == len(set(cids))


class TestTraversal:
    def test_len_counts_categories(self):
        assert len(small_tree()) == 4  # root + top + 2 leaves

    def test_leaves(self):
        tree = small_tree()
        assert {c.label for c in tree.leaves()} == {"left", "right"}

    def test_depth(self):
        tree = small_tree()
        leaf = [c for c in tree.categories() if c.label == "left"][0]
        assert leaf.depth == 2 and tree.root.depth == 0

    def test_path_from_root(self):
        tree = small_tree()
        leaf = [c for c in tree.categories() if c.label == "left"][0]
        labels = [c.label for c in leaf.path_from_root()]
        assert labels == ["root", "top", "left"]

    def test_find_by_cid(self):
        tree = small_tree()
        leaf = tree.leaves()[0]
        assert tree.find(leaf.cid) is leaf
        with pytest.raises(KeyError):
            tree.find(999)

    def test_copy_is_deep(self):
        tree = small_tree()
        clone = tree.copy()
        clone.root.items.add("new")
        assert "new" not in tree.root.items
        assert len(clone) == len(tree)
        assert clone.to_text() != ""


class TestValidity:
    def test_valid_tree_passes(self):
        small_tree().validate()

    def test_parent_closure_violation_detected(self):
        tree = small_tree()
        top = [c for c in tree.categories() if c.label == "top"][0]
        top.items.discard("a")  # child 'left' still holds 'a'
        with pytest.raises(InvalidTreeError):
            tree.validate()

    def test_branch_bound_violation_detected(self):
        tree = small_tree()
        top = [c for c in tree.categories() if c.label == "top"][0]
        left, right = top.children
        left.items.add("b")  # 'b' now minimal in both leaves
        with pytest.raises(InvalidTreeError):
            tree.validate()

    def test_branch_bound_two_allows_duplication(self):
        tree = small_tree()
        top = [c for c in tree.categories() if c.label == "top"][0]
        left, _right = top.children
        left.items.add("b")
        tree.validate(bound=2)

    def test_per_item_bound_callable(self):
        tree = small_tree()
        top = [c for c in tree.categories() if c.label == "top"][0]
        left, _right = top.children
        left.items.add("b")
        tree.validate(bound=lambda item: 2 if item == "b" else 1)
        with pytest.raises(InvalidTreeError):
            tree.validate(bound=lambda item: 1)

    def test_missing_universe_items_detected(self):
        tree = small_tree()
        with pytest.raises(InvalidTreeError):
            tree.validate(universe={"a", "b", "c", "zz"})

    def test_item_on_chain_counts_once(self):
        tree = CategoryTree()
        top = tree.add_category({"a", "b"})
        tree.add_category({"a"}, parent=top)
        assert tree.item_branch_counts()["a"] == 1
        assert tree.item_branch_counts()["b"] == 1

    def test_minimal_categories(self):
        tree = small_tree()
        minimal = tree.minimal_categories("c")
        assert [c.label for c in minimal] == ["top"]
        assert [c.label for c in tree.minimal_categories("a")] == ["left"]
