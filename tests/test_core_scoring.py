"""Tests for tree scoring against the naive definition."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CategoryTree,
    Variant,
    annotate_matches,
    covering_categories,
    make_instance,
    score_tree,
    upper_bound,
    variant_score,
)


def naive_score(tree, instance, variant) -> float:
    """Direct implementation of S(Q, W, T) from Section 2.1."""
    total = 0.0
    for q in instance:
        delta = instance.effective_threshold(q, variant.delta)
        best = max(
            variant_score(variant, q.items, cat.items, delta)
            for cat in tree.categories()
        )
        total += q.weight * best
    return total


def build_tree(category_item_sets: list[set]) -> CategoryTree:
    tree = CategoryTree()
    for items in category_item_sets:
        tree.add_category(items)
    return tree


class TestScoreTree:
    def test_matches_naive_on_example(self, figure2_instance):
        tree = build_tree([{"a", "b"}, {"c", "d", "e", "f"}, {"a", "b", "c", "d", "e", "f"}])
        for variant in (
            Variant.exact(),
            Variant.threshold_jaccard(0.6),
            Variant.cutoff_f1(0.5),
            Variant.perfect_recall(0.8),
        ):
            report = score_tree(tree, figure2_instance, variant)
            assert math.isclose(
                report.total, naive_score(tree, figure2_instance, variant)
            )

    def test_normalized_divides_by_total_weight(self):
        inst = make_instance([{"a"}, {"b"}], weights=[3.0, 1.0])
        tree = build_tree([{"a"}])
        report = score_tree(tree, inst, Variant.exact())
        assert math.isclose(report.total, 3.0)
        assert math.isclose(report.normalized, 0.75)

    def test_covered_count_and_weight(self):
        inst = make_instance([{"a"}, {"b"}, {"c"}], weights=[1.0, 2.0, 4.0])
        tree = build_tree([{"a"}, {"c"}])
        report = score_tree(tree, inst, Variant.exact())
        assert report.covered_count == 2
        assert math.isclose(report.covered_weight, 5.0)

    def test_per_set_best_category(self):
        inst = make_instance([{"a", "b"}])
        tree = CategoryTree()
        loose = tree.add_category({"a", "b", "c", "d"})
        tight = tree.add_category({"a", "b", "c"}, parent=loose)
        report = score_tree(tree, inst, Variant.threshold_jaccard(0.5))
        assert report.per_set[0].best_cid == tight.cid  # higher precision

    def test_tie_prefers_deeper_category(self):
        inst = make_instance([{"a", "b"}])
        tree = CategoryTree()
        outer = tree.add_category({"a", "b"})
        inner = tree.add_category({"a", "b"}, parent=outer)
        report = score_tree(tree, inst, Variant.exact())
        assert report.per_set[0].best_cid == inner.cid

    def test_uncovered_set_has_no_category(self):
        inst = make_instance([{"z", "y"}], universe={"z", "y", "a"})
        tree = build_tree([{"a"}])
        report = score_tree(tree, inst, Variant.exact())
        entry = report.per_set[0]
        assert not entry.covered and entry.best_cid is None

    def test_score_by_source(self):
        from repro.core import InputSet, OCTInstance

        sets = [
            InputSet(sid=0, items=frozenset({"a"}), weight=2.0, source="query"),
            InputSet(sid=1, items=frozenset({"b"}), weight=3.0, source="existing"),
        ]
        inst = OCTInstance(sets)
        tree = build_tree([{"a"}, {"b"}])
        report = score_tree(tree, inst, Variant.exact())
        by_source = report.score_by_source(inst)
        assert by_source == {"query": 2.0, "existing": 3.0}

    def test_upper_bound_is_total_weight(self):
        inst = make_instance([{"a"}, {"b"}], weights=[2.0, 5.0])
        assert upper_bound(inst) == 7.0

    def test_zero_weight_instance_normalizes_to_zero(self):
        inst = make_instance([{"a"}], weights=[0.0])
        tree = build_tree([{"a"}])
        assert score_tree(tree, inst, Variant.exact()).normalized == 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sets(st.integers(0, 8), min_size=1, max_size=5),
            min_size=1,
            max_size=4,
        ),
        st.lists(
            st.sets(st.integers(0, 8), min_size=0, max_size=6),
            min_size=0,
            max_size=4,
        ),
    )
    def test_matches_naive_on_random(self, raw_sets, raw_cats):
        inst = make_instance(raw_sets)
        tree = build_tree(raw_cats)
        for variant in (
            Variant.threshold_jaccard(0.6),
            Variant.cutoff_jaccard(0.4),
            Variant.perfect_recall(0.5),
            Variant.exact(),
        ):
            report = score_tree(tree, inst, variant)
            assert math.isclose(report.total, naive_score(tree, inst, variant))


class TestAttribution:
    def test_covering_categories_partition_covered_sets(self, figure2_instance):
        tree = build_tree([{"a", "b"}, {"c", "d", "e", "f"}])
        variant = Variant.threshold_jaccard(0.6)
        attribution = covering_categories(tree, figure2_instance, variant)
        covered_sids = [sid for sids in attribution.values() for sid in sids]
        assert len(covered_sids) == len(set(covered_sids))
        report = score_tree(tree, figure2_instance, variant)
        assert len(covered_sids) == report.covered_count

    def test_annotate_matches_stamps_categories(self, figure2_instance):
        tree = build_tree([{"a", "b"}])
        annotate_matches(tree, figure2_instance, Variant.exact())
        matched = [c for c in tree.categories() if c.matched_sids]
        assert len(matched) == 1
        assert matched[0].matched_sids == [1]  # q2 = {a, b}
