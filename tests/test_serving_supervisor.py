"""Cross-process consistency tier, part 2: multi-process serving.

Real worker *processes* on a real SO_REUSEPORT socket, hammered over
HTTP while the control plane does its worst:

- stress: every response is correct JSON, zero errors, and no worker is
  starved below 10% of its fair share (the kernel balances connections);
- hot swap mid-run: a publisher flips ``CURRENT`` while clients read;
  every response is attributable (via ``X-Repro-*`` headers) to exactly
  one of {old, new} generation — no torn reads, no third state;
- crash injection: ``kill -9`` a worker mid-run; retrying clients see
  zero failed requests and the watchdog respawns the worker;
- cross-process identity: the same request answered by different worker
  processes returns byte-identical bodies.

Workers need a store on disk and ~1s of process startup each, so the
suites share one module-scoped catalog; the long churn run is ``slow``.
"""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from repro.algorithms import CTCR
from repro.core import Variant, make_instance
from repro.labeling import apply_label_suggestions, suggest_labels
from repro.serving import (
    ServingSupervisor,
    SnapshotError,
    SnapshotStore,
    build_workload,
    run_http_loadgen,
)

VARIANT = Variant.threshold_jaccard(0.6)


def catalog_instance(extra: int = 0):
    """A small fashion-ish catalog; ``extra`` grows it deterministically.

    Different ``extra`` values change the item sets, so the saved
    snapshots are content-distinct (distinct snapshot ids) — a plain
    re-save of the same tree would dedupe to the same id and make hot
    swap flips unobservable.
    """
    sets = [
        {"a", "b", "c", "d", "e"},
        {"a", "b"},
        {"c", "d", "e", "f"},
        {"a", "b", "f", "g", "h"},
    ]
    labels = ["black shirt", "black adidas shirt", "nike shirt", "long sleeve"]
    for i in range(extra):
        sets.append({f"x{i}", f"y{i}", "a"})
        labels.append(f"extra line {i}")
    return make_instance(
        sets, weights=[2.0] + [1.0] * (len(sets) - 1), labels=labels
    )


def publish(store: SnapshotStore, extra: int = 0):
    """Build, label, save; returns (info, instance, tree) as *served*.

    The returned tree/instance are the snapshot's round-tripped form
    (cids can be renumbered by serialization), so workloads built from
    them address the categories the workers actually serve.
    """
    instance = catalog_instance(extra)
    tree = CTCR().build(instance, VARIANT)
    apply_label_suggestions(tree, suggest_labels(tree, instance, VARIANT))
    info = store.save(tree, instance, VARIANT)
    loaded = store.load(info.snapshot_id)
    return info, loaded.instance, loaded.tree


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """One store + 2-worker supervisor shared by the fast tests."""
    store = SnapshotStore(tmp_path_factory.mktemp("snapshots"))
    info, instance, tree = publish(store)
    supervisor = ServingSupervisor(store, n_workers=2, poll_interval=0.05)
    supervisor.start()
    yield supervisor, store, info, instance, tree
    supervisor.stop()


def get_json(base_url: str, path: str):
    with urllib.request.urlopen(base_url + path, timeout=10) as response:
        return (
            response.status,
            json.loads(response.read()),
            {k: v for k, v in response.getheaders()},
        )


class TestSupervisorBasics:
    def test_requires_published_snapshot(self, tmp_path):
        supervisor = ServingSupervisor(SnapshotStore(tmp_path), n_workers=1)
        with pytest.raises(SnapshotError, match="no current snapshot"):
            supervisor.start()

    def test_rejects_zero_workers(self, tmp_path):
        with pytest.raises(ValueError, match="n_workers"):
            ServingSupervisor(SnapshotStore(tmp_path), n_workers=0)

    def test_workers_alive_and_attributed(self, stack):
        supervisor, _, info, _, _ = stack
        assert supervisor.alive_count() == 2
        assert len(set(supervisor.pids())) == 2
        status, body, headers = get_json(supervisor.base_url, "/healthz")
        assert status == 200 and body["status"] == "ok"
        assert headers["X-Repro-Snapshot"] == info.snapshot_id
        assert headers["X-Repro-Worker"] in {"0", "1"}

    def test_gauges(self, stack):
        supervisor, _, _, _, _ = stack
        gauges = supervisor.gauges()
        assert gauges["serving.workers.count"] == 2
        assert gauges["serving.workers.configured"] == 2
        assert gauges["serving.workers.respawns"] == supervisor.respawns

    def test_both_workers_answer_identically(self, stack):
        # The same request, answered by whichever process the kernel
        # picks, must return byte-identical bodies: the mmap'd snapshot
        # and the shared scoring code leave nothing process-local.
        supervisor, _, _, instance, _ = stack
        items = ",".join(sorted(instance.sets[0].items))
        by_worker: dict[str, bytes] = {}
        deadline = time.monotonic() + 30
        while len(by_worker) < 2 and time.monotonic() < deadline:
            url = f"{supervisor.base_url}/best-category?items={items}"
            with urllib.request.urlopen(url, timeout=10) as response:
                body = response.read()
                by_worker.setdefault(
                    response.headers["X-Repro-Worker"], body
                )
        assert len(by_worker) == 2, "kernel never balanced to both workers"
        bodies = set(by_worker.values())
        assert len(bodies) == 1, f"workers disagree: {bodies}"


class TestMultiprocessStress:
    def test_stress_zero_errors_and_fair_share(self, stack):
        supervisor, _, info, instance, tree = stack
        workload = build_workload(instance, tree, n_requests=400, seed=11)
        result = run_http_loadgen(
            supervisor.base_url, workload, n_connections=32
        )
        assert result.errors == 0, result.error_messages
        assert result.n_requests == 400
        # Both workers answered, neither starved below 10% of fair share.
        assert set(result.per_worker) == {"0", "1"}
        assert result.min_fair_share_ratio() >= 0.1, result.per_worker
        # Every response attributable to the one published snapshot.
        assert set(result.per_snapshot) == {info.snapshot_id}
        assert sum(result.per_snapshot.values()) == 400

    def test_hot_swap_mid_run(self, stack):
        supervisor, store, _, instance, tree = stack
        before = store.current_id()
        swapped_to = []

        def swap():
            info, _, _ = publish(store, extra=2)
            swapped_to.append(info.snapshot_id)

        workload = build_workload(instance, tree, n_requests=600, seed=23)
        result = run_http_loadgen(
            supervisor.base_url,
            workload,
            n_connections=16,
            swap_at=0.3,
            swap=swap,
        )
        assert result.swap_performed and swapped_to
        assert result.errors == 0, result.error_messages
        # Every response came from the old or the new snapshot - nothing
        # else, no torn state, and the flip actually propagated.
        assert set(result.per_snapshot) <= {before, swapped_to[0]}
        assert sum(result.per_snapshot.values()) == 600
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            _, body, _ = get_json(supervisor.base_url, "/healthz")
            if body["snapshot_id"] == swapped_to[0]:
                break
            time.sleep(0.05)
        else:
            pytest.fail("workers never converged on the new snapshot")
        # Restore the original snapshot for the other tests.
        store.activate(before)
        time.sleep(0.3)

    def test_kill9_worker_mid_run_zero_failures(self, stack):
        supervisor, store, _, instance, tree = stack
        respawns_before = supervisor.respawns
        workload = build_workload(instance, tree, n_requests=400, seed=37)
        killed = []

        def crash():
            killed.append(supervisor.kill_worker(0))

        result = run_http_loadgen(
            supervisor.base_url,
            workload,
            n_connections=16,
            swap_at=0.25,
            swap=crash,
        )
        assert killed
        assert result.errors == 0, result.error_messages
        assert sum(result.per_worker.values()) == 400
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if (
                supervisor.alive_count() == 2
                and supervisor.respawns > respawns_before
            ):
                break
            time.sleep(0.05)
        assert supervisor.alive_count() == 2
        assert supervisor.respawns > respawns_before
        # The respawned worker serves too.
        status, _, _ = get_json(supervisor.base_url, "/healthz")
        assert status == 200


class TestShardedServing:
    def test_four_shard_snapshot_served_identically(self, tmp_path):
        store = SnapshotStore(tmp_path)
        built = catalog_instance(extra=3)
        info = store.save(
            CTCR().build(built, VARIANT), built, VARIANT, flat_shards=4
        )
        assert len(store.flat_paths(info.snapshot_id)) == 4
        loaded = store.load(info.snapshot_id)
        instance, tree = loaded.instance, loaded.tree
        supervisor = ServingSupervisor(store, n_workers=2, poll_interval=0.1)
        with supervisor:
            workload = build_workload(instance, tree, n_requests=150, seed=5)
            result = run_http_loadgen(
                supervisor.base_url, workload, n_connections=8
            )
            assert result.errors == 0, result.error_messages
            # Spot-check a sharded answer against the in-process engine.
            from repro.serving import ServingEngine

            engine = ServingEngine.from_snapshot(store.load())
            items = ",".join(sorted(instance.sets[0].items))
            _, body, _ = get_json(
                supervisor.base_url, f"/best-category?items={items}"
            )
            best = engine.best_category(instance.sets[0].items)
            assert body["best"]["cid"] == best.cid
            assert body["best"]["score"] == best.score


@pytest.mark.slow
class TestChurn:
    def test_long_churn_swaps_and_crashes(self, tmp_path):
        """Sustained load + repeated publishes + a kill -9: still zero errors."""
        store = SnapshotStore(tmp_path)
        info, instance, tree = publish(store)
        seen_snapshots = {info.snapshot_id}
        supervisor = ServingSupervisor(store, n_workers=3, poll_interval=0.05)
        with supervisor:
            for round_no in range(1, 4):
                def churn(round_no=round_no):
                    new_info, _, _ = publish(store, extra=round_no)
                    seen_snapshots.add(new_info.snapshot_id)
                    if round_no == 2:
                        supervisor.kill_worker(round_no % 3)

                workload = build_workload(
                    instance, tree, n_requests=300, seed=round_no
                )
                result = run_http_loadgen(
                    supervisor.base_url,
                    workload,
                    n_connections=12,
                    swap_at=0.5,
                    swap=churn,
                )
                assert result.errors == 0, result.error_messages
                # Attribution stays closed over the published snapshots.
                assert set(result.per_snapshot) <= seen_snapshots
            deadline = time.monotonic() + 15
            while supervisor.alive_count() < 3 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert supervisor.alive_count() == 3
            assert supervisor.respawns >= 1
