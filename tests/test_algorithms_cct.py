"""CCT end-to-end and embedding tests."""

import math

import numpy as np
import pytest

from repro.algorithms import CCT, CCTConfig, set_embeddings
from repro.core import Variant, make_instance, score_tree


class TestEmbeddings:
    def test_diagonal_is_one(self, figure2_instance):
        matrix = set_embeddings(figure2_instance, Variant.threshold_jaccard(0.6))
        assert np.allclose(np.diag(matrix), 1.0)

    def test_symmetric(self, figure2_instance):
        matrix = set_embeddings(figure2_instance, Variant.cutoff_f1(0.6))
        assert np.allclose(matrix, matrix.T)

    def test_jaccard_entries(self, figure2_instance):
        matrix = set_embeddings(figure2_instance, Variant.threshold_jaccard(0.6))
        # q1 = {a..e}, q2 = {a,b}: J = 2/5.
        assert math.isclose(matrix[0, 1], 2 / 5)
        # q2 and q3 disjoint.
        assert matrix[1, 2] == 0.0

    def test_perfect_recall_uses_pr_average(self, figure2_instance):
        matrix = set_embeddings(figure2_instance, Variant.perfect_recall(0.8))
        # q1 = {a..e}, q2 = {a,b}: precision(q1,q2) = 1, recall = 2/5.
        assert math.isclose(matrix[0, 1], (1.0 + 2 / 5) / 2)

    def test_entries_in_unit_interval(self, figure2_instance):
        for variant in (
            Variant.threshold_jaccard(0.6),
            Variant.cutoff_f1(0.5),
            Variant.perfect_recall(0.5),
        ):
            matrix = set_embeddings(figure2_instance, variant)
            assert (matrix >= 0).all() and (matrix <= 1).all()


class TestBuild:
    @pytest.mark.parametrize(
        "variant",
        [
            Variant.exact(),
            Variant.perfect_recall(0.8),
            Variant.threshold_jaccard(0.6),
            Variant.cutoff_f1(0.7),
        ],
    )
    def test_valid_trees_on_figure2(self, figure2_instance, variant):
        tree = CCT().build(figure2_instance, variant)
        tree.validate(
            universe=figure2_instance.universe, bound=figure2_instance.bound
        )

    def test_threshold_jaccard_score(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.6)
        tree = CCT().build(figure2_instance, variant)
        report = score_tree(tree, figure2_instance, variant)
        assert report.normalized >= 0.6

    def test_leaf_per_input_set_before_condense(self, figure2_instance):
        cct = CCT(CCTConfig(condense=False))
        tree = cct.build(figure2_instance, Variant.threshold_jaccard(0.6))
        # One leaf per set plus possibly the misc category.
        non_misc_leaves = [
            c for c in tree.leaves() if c.label != "C_misc"
        ]
        assert len(non_misc_leaves) == len(figure2_instance)

    def test_single_set_instance(self):
        inst = make_instance([{"a", "b"}])
        tree = CCT().build(inst, Variant.exact())
        tree.validate(universe=inst.universe)
        assert score_tree(tree, inst, Variant.exact()).normalized == 1.0

    def test_two_disjoint_sets_fully_covered(self):
        inst = make_instance([{"a", "b"}, {"c", "d"}])
        variant = Variant.exact()
        tree = CCT().build(inst, variant)
        assert score_tree(tree, inst, variant).normalized == 1.0

    def test_global_context_ablation_builds_valid_tree(self, figure2_instance):
        cct = CCT(CCTConfig(global_context=False))
        variant = Variant.threshold_jaccard(0.6)
        tree = cct.build(figure2_instance, variant)
        tree.validate(universe=figure2_instance.universe)
        assert score_tree(tree, figure2_instance, variant).normalized > 0

    def test_misc_collects_unmentioned_universe_items(self):
        inst = make_instance([{"a"}], universe={"a", "x", "y"})
        tree = CCT().build(inst, Variant.exact())
        misc = [c for c in tree.categories() if c.label == "C_misc"]
        assert misc and misc[0].items == {"x", "y"}

    def test_figure7_analogue_condense_removes_noncovering(self):
        """Figure 7's pipeline: dendrogram skeleton, assignment, condense
        strips the cluster categories that cover nothing."""
        inst = make_instance(
            [{"a", "b", "c"}, {"a", "b"}, {"d", "e", "f"}],
            weights=[2.0, 1.0, 3.0],
        )
        variant = Variant.threshold_jaccard(0.6)
        tree = CCT().build(inst, variant)
        report = score_tree(tree, inst, variant)
        assert report.normalized == 1.0
        # Every surviving non-root, non-misc category covers some set.
        covering = {
            e.best_cid for e in report.per_set.values() if e.covered
        }
        for cat in tree.non_root_categories():
            if cat.label != "C_misc":
                assert cat.cid in covering
