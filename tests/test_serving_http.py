"""Tests for the HTTP/JSON serving frontend (real sockets, port 0)."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.algorithms import CTCR
from repro.core import Variant
from repro.serving import ServingEngine, SnapshotStore, make_server, serve_in_background


def _get(server, path):
    url = f"http://127.0.0.1:{server.server_port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(server, path, payload=None):
    url = f"http://127.0.0.1:{server.server_port}{path}"
    data = b"" if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture()
def served(figure2_instance, tmp_path):
    variant = Variant.threshold_jaccard(0.6)
    tree = CTCR().build(figure2_instance, variant)
    store = SnapshotStore(tmp_path)
    store.save(tree, figure2_instance, variant)
    engine = ServingEngine.from_snapshot(store.load())
    server = make_server(engine, store=store)
    serve_in_background(server)
    yield server, engine, store, figure2_instance
    # stop() = shutdown + join the serving thread + close the socket, so
    # the port is provably released before the next test binds.
    server.stop()


class TestReadEndpoints:
    def test_healthz(self, served):
        server, engine, _, _ = served
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["generation"] == engine.generation
        assert body["snapshot_id"].startswith("snap-")

    def test_stats(self, served):
        server, _, _, _ = served
        status, body = _get(server, "/stats")
        assert status == 200
        assert body["n_categories"] > 0
        assert "cache" in body and "latency" in body

    def test_categorize(self, served):
        server, _, _, _ = served
        status, body = _get(server, "/categorize?item=a")
        assert status == 200
        assert body["item"] == "a"
        assert body["placements"]

    def test_best_category(self, served):
        server, _, _, _ = served
        # q1 = {a..e}: Jaccard 0.8 against the "black shirt" category.
        status, body = _get(server, "/best-category?items=a,b,c,d,e")
        assert status == 200
        assert body["covered"] is True
        assert body["best"]["score"] > 0

    def test_best_category_uncovered(self, served):
        server, _, _, _ = served
        status, body = _get(server, "/best-category?items=a,b")
        assert status == 200
        assert body["covered"] is False
        assert body["best"] is None

    def test_best_category_with_overrides(self, served):
        server, _, _, _ = served
        status, body = _get(
            server,
            "/best-category?items=a,b&delta=0.1&variant=perfect-recall:0.5",
        )
        assert status == 200
        assert body["covered"] is True

    def test_browse_root_and_cid(self, served):
        server, _, _, _ = served
        status, root = _get(server, "/browse")
        assert status == 200
        assert root["depth"] == 0
        if root["children"]:
            cid = root["children"][0]["cid"]
            status, page = _get(server, f"/browse?cid={cid}")
            assert status == 200
            assert page["cid"] == cid

    def test_path(self, served):
        server, _, _, _ = served
        _, root = _get(server, "/browse")
        status, body = _get(server, f"/path?cid={root['cid']}")
        assert status == 200
        assert body["path"][-1]["cid"] == root["cid"]

    def test_search(self, served):
        server, _, _, _ = served
        status, body = _get(server, "/search?q=shirt&top_k=3")
        assert status == 200
        assert body["hits"]
        assert len(body["hits"]) <= 3


class TestErrorMapping:
    def test_unknown_path_404(self, served):
        server, _, _, _ = served
        assert _get(server, "/nope")[0] == 404
        assert _post(server, "/nope")[0] == 404

    def test_unknown_cid_404(self, served):
        server, _, _, _ = served
        assert _get(server, "/browse?cid=99999")[0] == 404
        assert _get(server, "/path?cid=99999")[0] == 404

    def test_bad_params_400(self, served):
        server, _, _, _ = served
        assert _get(server, "/categorize")[0] == 400
        assert _get(server, "/best-category?items=")[0] == 400
        assert _get(server, "/best-category?items=a&delta=x")[0] == 400
        assert _get(server, "/best-category?items=a&variant=bogus")[0] == 400
        assert _get(server, "/browse?cid=notanint")[0] == 400
        assert _post(server, "/admin/swap", {"snapshot_id": "snap-missing"})[
            0
        ] == 404

    def test_swap_without_store_409(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.6)
        tree = CTCR().build(figure2_instance, variant)
        engine = ServingEngine.from_tree(tree, figure2_instance, variant)
        server = make_server(engine)  # no store attached
        serve_in_background(server)
        try:
            assert _post(server, "/admin/swap")[0] == 409
        finally:
            server.stop()


class TestAdminSwap:
    def test_swap_bumps_generation(self, served):
        server, engine, store, instance = served
        before = engine.generation
        status, body = _post(server, "/admin/swap")  # reload CURRENT
        assert status == 200
        assert body["status"] == "swapped"
        assert body["generation"] == before + 1
        assert engine.generation == before + 1
        # Reads keep working on the new generation.
        assert _get(server, "/best-category?items=a,b")[0] == 200

    def test_swap_to_named_snapshot(self, served):
        server, engine, store, instance = served
        other_variant = Variant.perfect_recall(0.5)
        other_tree = CTCR().build(instance, other_variant)
        info = store.save(other_tree, instance, other_variant, activate=False)
        status, body = _post(
            server, "/admin/swap", {"snapshot_id": info.snapshot_id}
        )
        assert status == 200
        assert body["snapshot_id"] == info.snapshot_id
        assert engine.current.snapshot_id == info.snapshot_id

    def test_swap_body_must_be_json_object(self, served):
        server, _, _, _ = served
        url = f"http://127.0.0.1:{server.server_port}/admin/swap"
        request = urllib.request.Request(
            url, data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=10)
        assert exc_info.value.code == 400


class TestMaxRequests:
    def test_server_stops_after_max_requests(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.6)
        tree = CTCR().build(figure2_instance, variant)
        engine = ServingEngine.from_tree(tree, figure2_instance, variant)
        server = make_server(engine, max_requests=3)
        thread = serve_in_background(server)
        try:
            for _ in range(3):
                assert _get(server, "/healthz")[0] == 200
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            server.server_close()


class TestShutdownOrdering:
    def _serve_one(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.6)
        tree = CTCR().build(figure2_instance, variant)
        engine = ServingEngine.from_tree(tree, figure2_instance, variant)
        server = make_server(engine)
        thread = serve_in_background(server)
        return server, thread

    def test_stop_joins_thread_and_releases_port(self, figure2_instance):
        server, thread = self._serve_one(figure2_instance)
        port = server.server_port
        assert _get(server, "/healthz")[0] == 200
        server.stop()
        assert not thread.is_alive()
        # The port must be immediately rebindable — no TIME_WAIT listener,
        # no leaked socket (SO_REUSEADDR is set by the server class, so a
        # fresh bind on the same port proves the listener is gone).
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            probe.bind(("127.0.0.1", port))
        finally:
            probe.close()

    def test_stop_is_idempotent(self, figure2_instance):
        server, _ = self._serve_one(figure2_instance)
        server.stop()
        server.stop()  # second stop must not raise or hang

    def test_reuse_port_allows_second_binding(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.6)
        tree = CTCR().build(figure2_instance, variant)
        engine = ServingEngine.from_tree(tree, figure2_instance, variant)
        first = make_server(engine, reuse_port=True)
        second = make_server(
            engine, port=first.server_port, reuse_port=True
        )
        try:
            assert second.server_port == first.server_port
        finally:
            first.server_close()
            second.server_close()


class TestAttributionHeaders:
    def test_generation_and_snapshot_headers(self, served):
        server, engine, _, _ = served
        url = f"http://127.0.0.1:{server.server_port}/browse"
        with urllib.request.urlopen(url, timeout=10) as response:
            assert response.headers["X-Repro-Generation"] == str(
                engine.generation
            )
            assert response.headers["X-Repro-Snapshot"].startswith("snap-")
            # Single-process servers have no worker identity.
            assert response.headers["X-Repro-Worker"] is None

    def test_worker_header_when_configured(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.6)
        tree = CTCR().build(figure2_instance, variant)
        engine = ServingEngine.from_tree(tree, figure2_instance, variant)
        server = make_server(engine, worker_id=7)
        serve_in_background(server)
        try:
            url = f"http://127.0.0.1:{server.server_port}/healthz"
            with urllib.request.urlopen(url, timeout=10) as response:
                assert response.headers["X-Repro-Worker"] == "7"
        finally:
            server.stop()

    def test_header_tracks_generation_across_swap(self, served):
        server, engine, _, _ = served
        url = f"http://127.0.0.1:{server.server_port}/browse"
        with urllib.request.urlopen(url, timeout=10) as response:
            before = int(response.headers["X-Repro-Generation"])
        assert _post(server, "/admin/swap")[0] == 200
        with urllib.request.urlopen(url, timeout=10) as response:
            after = int(response.headers["X-Repro-Generation"])
        assert after == before + 1

    def test_error_responses_are_attributed_too(self, served):
        server, engine, _, _ = served
        status, _ = _get(server, "/browse?cid=99999")
        assert status == 404
        url = f"http://127.0.0.1:{server.server_port}/nope"
        try:
            urllib.request.urlopen(url, timeout=10)
        except urllib.error.HTTPError as exc:
            assert exc.headers["X-Repro-Generation"] == str(engine.generation)
