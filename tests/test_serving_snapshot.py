"""Tests for the versioned snapshot store and variant specs."""

import json

import pytest

from repro.algorithms import CTCR
from repro.core import Variant
from repro.serving import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    SnapshotInfo,
    SnapshotStore,
    variant_from_spec,
    variant_spec,
)


@pytest.fixture()
def built(figure2_instance):
    variant = Variant.threshold_jaccard(0.6)
    tree = CTCR().build(figure2_instance, variant)
    return tree, figure2_instance, variant


class TestVariantSpecs:
    def test_round_trip_all_families(self, all_variants):
        for variant in all_variants:
            clone = variant_from_spec(variant_spec(variant))
            assert clone.kind == variant.kind
            assert clone.mode == variant.mode
            assert clone.delta == variant.delta
            assert clone.is_perfect_recall == variant.is_perfect_recall

    def test_exact_spelled_via_jaccard_embedding(self):
        assert variant_spec(Variant.exact()) == "threshold-jaccard:1"
        assert variant_from_spec("exact").delta == 1.0

    @pytest.mark.parametrize(
        "spec", ["", "jaccard", "threshold-jaccard", "threshold-jaccard:x",
                 "nope:0.5"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(SnapshotError):
            variant_from_spec(spec)


class TestSnapshotStore:
    def test_save_load_round_trip(self, tmp_path, built):
        tree, instance, variant = built
        store = SnapshotStore(tmp_path)
        info = store.save(tree, instance, variant, build_run_id="run-1")
        loaded = store.load()
        assert loaded.info == info
        # Rebuild reassigns cids (and with them sibling order), so
        # compare the line multiset: same categories at the same depths.
        assert sorted(loaded.tree.to_text().splitlines()) == sorted(
            tree.to_text().splitlines()
        )
        assert loaded.instance.universe == instance.universe
        assert loaded.variant.delta == variant.delta
        assert info.build_run_id == "run-1"
        assert info.n_sets == len(instance)
        assert info.dataset["sha256"]  # instance fingerprint recorded

    def test_content_addressing_dedups(self, tmp_path, built):
        tree, instance, variant = built
        store = SnapshotStore(tmp_path)
        a = store.save(tree, instance, variant)
        b = store.save(tree, instance, variant)
        assert a.snapshot_id == b.snapshot_id
        assert len(store) == 1

    def test_different_variant_different_id(self, tmp_path, built):
        tree, instance, _ = built
        store = SnapshotStore(tmp_path)
        a = store.save(tree, instance, Variant.threshold_jaccard(0.6))
        b = store.save(tree, instance, Variant.threshold_jaccard(0.8))
        assert a.snapshot_id != b.snapshot_id
        assert len(store) == 2

    def test_activate_moves_current(self, tmp_path, built):
        tree, instance, _ = built
        store = SnapshotStore(tmp_path)
        a = store.save(tree, instance, Variant.threshold_jaccard(0.6))
        b = store.save(tree, instance, Variant.threshold_jaccard(0.8))
        assert store.current_id() == b.snapshot_id
        store.activate(a.snapshot_id)
        assert store.current_id() == a.snapshot_id
        assert store.load().info.snapshot_id == a.snapshot_id

    def test_save_without_activate_keeps_current(self, tmp_path, built):
        tree, instance, _ = built
        store = SnapshotStore(tmp_path)
        a = store.save(tree, instance, Variant.threshold_jaccard(0.6))
        store.save(tree, instance, Variant.threshold_jaccard(0.8),
                   activate=False)
        assert store.current_id() == a.snapshot_id

    def test_empty_store(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.current_id() is None
        assert list(store) == []
        with pytest.raises(SnapshotError):
            store.load()

    def test_unknown_snapshot_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(SnapshotError):
            store.info("snap-doesnotexist")
        with pytest.raises(SnapshotError):
            store.activate("snap-doesnotexist")

    def test_no_staging_leftovers(self, tmp_path, built):
        tree, instance, variant = built
        store = SnapshotStore(tmp_path)
        store.save(tree, instance, variant)
        assert not [p for p in tmp_path.iterdir() if "staging" in p.name]

    def test_future_format_version_names_both_versions(self, tmp_path, built):
        tree, instance, variant = built
        store = SnapshotStore(tmp_path)
        info = store.save(tree, instance, variant)
        manifest = tmp_path / info.snapshot_id / "manifest.json"
        payload = json.loads(manifest.read_text())
        payload["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        manifest.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError) as exc_info:
            store.load()
        message = str(exc_info.value)
        assert str(SNAPSHOT_FORMAT_VERSION + 1) in message
        assert str(SNAPSHOT_FORMAT_VERSION) in message
        assert "newer" in message

    def test_manifest_missing_field_rejected(self):
        with pytest.raises(SnapshotError):
            SnapshotInfo.from_dict(
                {"format_version": SNAPSHOT_FORMAT_VERSION, "variant": "exact"}
            )

    def test_list_is_ordered_and_complete(self, tmp_path, built):
        tree, instance, _ = built
        store = SnapshotStore(tmp_path)
        ids = {
            store.save(tree, instance, Variant.threshold_jaccard(d)).snapshot_id
            for d in (0.5, 0.6, 0.7)
        }
        listed = store.list()
        assert {i.snapshot_id for i in listed} == ids
        keys = [(i.created_at, i.snapshot_id) for i in listed]
        assert keys == sorted(keys)
