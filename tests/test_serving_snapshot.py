"""Tests for the versioned snapshot store and variant specs."""

import json
import multiprocessing

import pytest

from repro.algorithms import CTCR
from repro.core import Variant
from repro.serving import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    SnapshotInfo,
    SnapshotStore,
    variant_from_spec,
    variant_spec,
)


@pytest.fixture()
def built(figure2_instance):
    variant = Variant.threshold_jaccard(0.6)
    tree = CTCR().build(figure2_instance, variant)
    return tree, figure2_instance, variant


class TestVariantSpecs:
    def test_round_trip_all_families(self, all_variants):
        for variant in all_variants:
            clone = variant_from_spec(variant_spec(variant))
            assert clone.kind == variant.kind
            assert clone.mode == variant.mode
            assert clone.delta == variant.delta
            assert clone.is_perfect_recall == variant.is_perfect_recall

    def test_exact_spelled_via_jaccard_embedding(self):
        assert variant_spec(Variant.exact()) == "threshold-jaccard:1"
        assert variant_from_spec("exact").delta == 1.0

    @pytest.mark.parametrize(
        "spec", ["", "jaccard", "threshold-jaccard", "threshold-jaccard:x",
                 "nope:0.5"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(SnapshotError):
            variant_from_spec(spec)


class TestSnapshotStore:
    def test_save_load_round_trip(self, tmp_path, built):
        tree, instance, variant = built
        store = SnapshotStore(tmp_path)
        info = store.save(tree, instance, variant, build_run_id="run-1")
        loaded = store.load()
        assert loaded.info == info
        # Rebuild reassigns cids (and with them sibling order), so
        # compare the line multiset: same categories at the same depths.
        assert sorted(loaded.tree.to_text().splitlines()) == sorted(
            tree.to_text().splitlines()
        )
        assert loaded.instance.universe == instance.universe
        assert loaded.variant.delta == variant.delta
        assert info.build_run_id == "run-1"
        assert info.n_sets == len(instance)
        assert info.dataset["sha256"]  # instance fingerprint recorded

    def test_content_addressing_dedups(self, tmp_path, built):
        tree, instance, variant = built
        store = SnapshotStore(tmp_path)
        a = store.save(tree, instance, variant)
        b = store.save(tree, instance, variant)
        assert a.snapshot_id == b.snapshot_id
        assert len(store) == 1

    def test_different_variant_different_id(self, tmp_path, built):
        tree, instance, _ = built
        store = SnapshotStore(tmp_path)
        a = store.save(tree, instance, Variant.threshold_jaccard(0.6))
        b = store.save(tree, instance, Variant.threshold_jaccard(0.8))
        assert a.snapshot_id != b.snapshot_id
        assert len(store) == 2

    def test_activate_moves_current(self, tmp_path, built):
        tree, instance, _ = built
        store = SnapshotStore(tmp_path)
        a = store.save(tree, instance, Variant.threshold_jaccard(0.6))
        b = store.save(tree, instance, Variant.threshold_jaccard(0.8))
        assert store.current_id() == b.snapshot_id
        store.activate(a.snapshot_id)
        assert store.current_id() == a.snapshot_id
        assert store.load().info.snapshot_id == a.snapshot_id

    def test_save_without_activate_keeps_current(self, tmp_path, built):
        tree, instance, _ = built
        store = SnapshotStore(tmp_path)
        a = store.save(tree, instance, Variant.threshold_jaccard(0.6))
        store.save(tree, instance, Variant.threshold_jaccard(0.8),
                   activate=False)
        assert store.current_id() == a.snapshot_id

    def test_empty_store(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.current_id() is None
        assert list(store) == []
        with pytest.raises(SnapshotError):
            store.load()

    def test_unknown_snapshot_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(SnapshotError):
            store.info("snap-doesnotexist")
        with pytest.raises(SnapshotError):
            store.activate("snap-doesnotexist")

    def test_no_staging_leftovers(self, tmp_path, built):
        tree, instance, variant = built
        store = SnapshotStore(tmp_path)
        store.save(tree, instance, variant)
        assert not [p for p in tmp_path.iterdir() if "staging" in p.name]

    def test_future_format_version_names_both_versions(self, tmp_path, built):
        tree, instance, variant = built
        store = SnapshotStore(tmp_path)
        info = store.save(tree, instance, variant)
        manifest = tmp_path / info.snapshot_id / "manifest.json"
        payload = json.loads(manifest.read_text())
        payload["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        manifest.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError) as exc_info:
            store.load()
        message = str(exc_info.value)
        assert str(SNAPSHOT_FORMAT_VERSION + 1) in message
        assert str(SNAPSHOT_FORMAT_VERSION) in message
        assert "newer" in message

    def test_manifest_missing_field_rejected(self):
        with pytest.raises(SnapshotError):
            SnapshotInfo.from_dict(
                {"format_version": SNAPSHOT_FORMAT_VERSION, "variant": "exact"}
            )

    def test_list_is_ordered_and_complete(self, tmp_path, built):
        tree, instance, _ = built
        store = SnapshotStore(tmp_path)
        ids = {
            store.save(tree, instance, Variant.threshold_jaccard(d)).snapshot_id
            for d in (0.5, 0.6, 0.7)
        }
        listed = store.list()
        assert {i.snapshot_id for i in listed} == ids
        keys = [(i.created_at, i.snapshot_id) for i in listed]
        assert keys == sorted(keys)


def _publisher_main(root, instance, deltas, rounds):
    """One publisher process: save+activate snapshots back to back."""
    store = SnapshotStore(root)
    for _ in range(rounds):
        for delta in deltas:
            variant = Variant.threshold_jaccard(delta)
            tree = CTCR().build(instance, variant)
            store.save(tree, instance, variant)


class TestConcurrentPublishers:
    def test_process_pool_race_on_current(self, tmp_path, figure2_instance):
        """N processes publishing concurrently never corrupt the store.

        Each save stages a whole snapshot (JSON + flat) and flips
        ``CURRENT`` with ``os.replace``; racing publishers may interleave
        arbitrarily, but afterwards CURRENT must point at one complete,
        loadable, mmap-able snapshot, every snapshot directory must be
        complete, and no staging/tmp debris may remain.
        """
        ctx = multiprocessing.get_context("fork")
        deltas_per_proc = [(0.5, 0.6), (0.6, 0.7), (0.7, 0.8), (0.8, 0.5)]
        procs = [
            ctx.Process(
                target=_publisher_main,
                args=(str(tmp_path), figure2_instance, deltas, 3),
            )
            for deltas in deltas_per_proc
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(120)
            assert p.exitcode == 0

        store = SnapshotStore(tmp_path)
        all_deltas = {d for per in deltas_per_proc for d in per}
        infos = store.list()
        assert len(infos) == len(all_deltas)  # content-addressed dedup held
        current = store.current_id()
        assert current in {i.snapshot_id for i in infos}
        # The winner (and every other snapshot) is complete and readable.
        for info in infos:
            loaded = store.load(info.snapshot_id)
            assert loaded.info.snapshot_id == info.snapshot_id
            assert store.flat_paths(info.snapshot_id)  # flat layout landed
        from repro.serving import prepare_mmap_generation

        generation = prepare_mmap_generation(store)
        assert generation.snapshot_id == current
        generation.indexes.close()
        # No staging directories or tmp files anywhere in the store.
        debris = [
            p for p in tmp_path.rglob("*")
            if "staging" in p.name or ".tmp-" in p.name
        ]
        assert debris == []
