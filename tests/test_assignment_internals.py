"""White-box tests for Algorithm 2's internals."""

from repro.algorithms.assignment import (
    _available_for,
    _breaks_covered_ancestors,
    _cutoff_marginal_gain,
    _designated_by_cid,
    _match_branch,
    assign_duplicates,
    assign_safe_items,
)
from repro.algorithms.base import BuildContext
from repro.core import CategoryTree, Variant, make_instance


def chain_context():
    """root -> C(q0) -> C(q1), with q2 on its own branch.

    q0 = {a, b, c, d}, q1 = {a, b}, q2 = {c, x}.
    """
    inst = make_instance(
        [{"a", "b", "c", "d"}, {"a", "b"}, {"c", "x"}],
        weights=[4.0, 2.0, 1.0],
    )
    tree = CategoryTree()
    ctx = BuildContext(
        tree=tree, instance=inst, variant=Variant.threshold_jaccard(0.5)
    )
    c0 = tree.add_category((), label="q0")
    c1 = tree.add_category((), parent=c0, label="q1")
    c2 = tree.add_category((), label="q2")
    for sid, cat in ((0, c0), (1, c1), (2, c2)):
        ctx.designated[sid] = cat
        ctx.target_sets[cat.cid] = inst.get(sid).items
    return ctx, inst, (c0, c1, c2)


class TestMatchBranch:
    def test_duplicate_targets_lowest_relevant_category(self):
        ctx, inst, (c0, c1, c2) = chain_context()
        rev = _designated_by_cid(ctx)
        gains = {0: 1.0, 1: 2.0, 2: 0.5}
        # 'a' belongs to q0 and q1 - on c0's branch the lowest relevant
        # category is c1 (a in q1), and both gains accumulate.
        gain, target = _match_branch(ctx, "a", c0, gains, rev)
        assert target is c1
        assert gain == 3.0

    def test_item_outside_lower_set_stops_at_anchor(self):
        ctx, inst, (c0, c1, c2) = chain_context()
        rev = _designated_by_cid(ctx)
        gains = {0: 1.0, 1: 2.0, 2: 0.5}
        # 'd' is only in q0: lowest relevant category on the branch is c0.
        gain, target = _match_branch(ctx, "d", c0, gains, rev)
        assert target is c0
        assert gain == 1.0


class TestAvailability:
    def test_consumed_bound_blocks_reuse(self):
        ctx, inst, (c0, c1, c2) = chain_context()
        duplicates = {"c"}
        ctx.tree.assign_item(c2, "c")
        ctx.record_assignment("c", c2)
        ctx.consume_bound("c")
        # 'c' lives on q2's branch now; it cannot also serve q0.
        assert _available_for(ctx, inst.get(0), duplicates) == []

    def test_slide_down_keeps_available(self):
        ctx, inst, (c0, c1, c2) = chain_context()
        duplicates = {"a"}
        ctx.tree.assign_item(c0, "a")
        ctx.record_assignment("a", c0)
        ctx.consume_bound("a")
        # 'a' is minimal at c0, an ancestor of c1: sliding down is free.
        assert _available_for(ctx, inst.get(1), duplicates) == ["a"]


class TestCoveredGuard:
    def test_breaking_addition_detected(self):
        ctx, inst, (c0, c1, c2) = chain_context()
        rev = _designated_by_cid(ctx)
        # Cover both q0 (at c0) and q1 (at c1) exactly.
        for item in ("a", "b"):
            ctx.tree.assign_item(c1, item)
        for item in ("c", "d"):
            ctx.tree.assign_item(c0, item)
        assert ctx.covers_with(inst.get(1), c1)
        assert ctx.covers_with(inst.get(0), c0)
        # One foreign item into c1: J(q1, c1) = 2/3 and, propagated,
        # J(q0, c0) = 4/5 — both stay above delta = 0.5.
        additions = [(f"z{i}", c1) for i in range(6)]
        assert not _breaks_covered_ancestors(ctx, additions[:1], rev)
        # Six foreign items drop J(q1, c1) to 2/8 < 0.5: detected.
        assert _breaks_covered_ancestors(ctx, additions, rev)

    def test_guard_sees_propagation_into_ancestors(self):
        ctx, inst, (c0, c1, c2) = chain_context()
        rev = _designated_by_cid(ctx)
        # Only the ancestor q0 is covered, marginally (J = 2/4 = 0.5).
        for item in ("a", "b"):
            ctx.tree.assign_item(c1, item)
        assert ctx.covers_with(inst.get(0), c0)
        # A single foreign item added deep at c1 propagates into c0 and
        # pushes q0's cover to 2/5 < 0.5: the guard must catch it.
        assert _breaks_covered_ancestors(ctx, [("z0", c1)], rev)


class TestMarginalGain:
    def test_gain_positive_for_helpful_item(self):
        ctx, inst, (c0, c1, c2) = chain_context()
        rev = _designated_by_cid(ctx)
        for item in ("a", "b", "c"):
            ctx.tree.assign_item(c0, item)
        # Adding 'd' to c0 lifts J(q0, c0) from 3/4 to 1.
        assert _cutoff_marginal_gain(ctx, "d", c0, rev) > 0

    def test_gain_negative_for_foreign_item(self):
        ctx, inst, (c0, c1, c2) = chain_context()
        rev = _designated_by_cid(ctx)
        for item in ("a", "b", "c", "d"):
            ctx.tree.assign_item(c0, item)
        assert _cutoff_marginal_gain(ctx, "zz", c0, rev) < 0


class TestEndToEndAssignment:
    def test_greedy_prioritizes_gain_factor(self):
        """The heavier, closer-to-covered set receives duplicates first."""
        inst = make_instance(
            [{"a", "b"}, {"a", "c", "d", "e"}],
            weights=[5.0, 1.0],
        )
        tree = CategoryTree()
        ctx = BuildContext(
            tree=tree, instance=inst, variant=Variant.threshold_jaccard(0.5)
        )
        for q in inst:
            cat = tree.add_category((), label=f"q{q.sid}")
            ctx.designated[q.sid] = cat
            ctx.target_sets[cat.cid] = q.items
        duplicates = assign_safe_items(ctx, inst.sets)
        assert duplicates == {"a"}
        assign_duplicates(ctx, inst.sets, duplicates)
        # q0 (weight 5, gap 1 after 'b') outranks q1; 'a' goes to C(q0).
        assert "a" in ctx.designated[0].items
        tree.validate(universe=inst.universe)
