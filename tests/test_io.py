"""Tests for JSON serialization of trees and instances."""

import json

import pytest

from repro.algorithms import CTCR
from repro.core import CategoryTree, Variant, make_instance, score_tree
from repro.io import (
    FORMAT_VERSION,
    SerializationError,
    dump_instance,
    dump_tree,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_tree,
    tree_from_dict,
    tree_to_dict,
)


class TestTreeRoundTrip:
    def test_structure_preserved(self, figure2_instance):
        tree = CTCR().build(figure2_instance, Variant.exact())
        clone = tree_from_dict(tree_to_dict(tree))
        assert clone.to_text() == tree.to_text()

    def test_matched_sids_preserved(self, figure2_instance):
        from repro.core import annotate_matches

        tree = CTCR().build(figure2_instance, Variant.exact())
        annotate_matches(tree, figure2_instance, Variant.exact())
        clone = tree_from_dict(tree_to_dict(tree))
        originals = {c.cid: c.matched_sids for c in tree.categories()}
        # cids are re-assigned on rebuild, so compare by multiset.
        rebuilt = sorted(
            tuple(c.matched_sids) for c in clone.categories()
        )
        assert rebuilt == sorted(tuple(v) for v in originals.values())

    def test_scores_identical_after_roundtrip(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.6)
        tree = CTCR().build(figure2_instance, variant)
        clone = tree_from_dict(tree_to_dict(tree))
        assert (
            score_tree(clone, figure2_instance, variant).normalized
            == score_tree(tree, figure2_instance, variant).normalized
        )

    def test_file_round_trip(self, tmp_path, figure2_instance):
        tree = CTCR().build(figure2_instance, Variant.exact())
        path = tmp_path / "tree.json"
        dump_tree(tree, str(path))
        assert load_tree(str(path)).to_text() == tree.to_text()
        # File is valid, sorted JSON.
        payload = json.loads(path.read_text())
        assert payload["version"] == 1

    def test_bad_version_rejected(self):
        with pytest.raises(SerializationError):
            tree_from_dict({"version": 99, "root": {}})

    def test_newer_version_names_both_versions(self):
        with pytest.raises(SerializationError) as exc_info:
            tree_from_dict({"version": FORMAT_VERSION + 1, "root": {}})
        message = str(exc_info.value)
        assert str(FORMAT_VERSION + 1) in message
        assert str(FORMAT_VERSION) in message
        assert "newer" in message

    def test_older_version_uses_generic_message(self):
        with pytest.raises(SerializationError) as exc_info:
            tree_from_dict({"version": 0, "root": {}})
        assert "newer" not in str(exc_info.value)

    def test_non_integer_version_rejected(self):
        with pytest.raises(SerializationError):
            tree_from_dict({"version": "2", "root": {}})

    def test_missing_root_rejected(self):
        with pytest.raises(SerializationError):
            tree_from_dict({"version": 1})

    def test_rebuilt_tree_is_valid(self, figure2_instance):
        tree = CTCR().build(figure2_instance, Variant.exact())
        clone = tree_from_dict(tree_to_dict(tree))
        clone.validate(universe=figure2_instance.universe)


class TestInstanceRoundTrip:
    def test_basic_round_trip(self):
        inst = make_instance(
            [{"a", "b"}, {"c"}],
            weights=[2.0, 1.0],
            labels=["x", "y"],
            universe={"a", "b", "c", "z"},
        )
        clone = instance_from_dict(instance_to_dict(inst))
        assert len(clone) == 2
        assert clone.universe == inst.universe
        assert clone.get(0).weight == 2.0
        assert clone.get(1).label == "y"

    def test_thresholds_and_sources_preserved(self):
        from repro.core import InputSet, OCTInstance

        inst = OCTInstance(
            [
                InputSet(
                    sid=5,
                    items=frozenset({"a"}),
                    threshold=0.4,
                    source="existing",
                )
            ]
        )
        clone = instance_from_dict(instance_to_dict(inst))
        assert clone.get(5).threshold == 0.4
        assert clone.get(5).source == "existing"

    def test_bounds_preserved(self):
        inst = make_instance(
            [{"a", "b"}], item_bounds={"a": 2}, default_bound=1
        )
        clone = instance_from_dict(instance_to_dict(inst))
        assert clone.bound("a") == 2
        assert clone.bound("b") == 1

    def test_file_round_trip(self, tmp_path):
        inst = make_instance([{"a"}])
        path = tmp_path / "instance.json"
        dump_instance(inst, str(path))
        clone = load_instance(str(path))
        assert clone.get(0).items == {"a"}

    def test_bad_version_rejected(self):
        with pytest.raises(SerializationError):
            instance_from_dict({"version": 0, "sets": []})

    def test_newer_version_names_both_versions(self):
        with pytest.raises(SerializationError) as exc_info:
            instance_from_dict({"version": FORMAT_VERSION + 7, "sets": []})
        message = str(exc_info.value)
        assert str(FORMAT_VERSION + 7) in message
        assert str(FORMAT_VERSION) in message
        assert "newer" in message

    def test_current_version_round_trips(self):
        payload = instance_to_dict(make_instance([{"a", "b"}]))
        assert payload["version"] == FORMAT_VERSION
        clone = instance_from_dict(payload)
        assert clone.get(0).items == {"a", "b"}
