"""Serving analytics: the category report, drift detection, and the loop.

End-to-end: serve real queries under a tracer, write real run
manifests, aggregate them into the category-performance report, then
feed a synthetically skewed traffic log to the drift detector and act
on its rebuild recommendation through a ``HotSwapper`` — the full
traffic-to-rebuild loop, in-process.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms import CTCR
from repro.analytics import (
    RebuildRecommendation,
    apply_recommendation,
    build_category_shares,
    category_performance,
    detect_traffic_drift,
    load_serving_counters,
    reweighted_instance,
    subtree_totals,
    traffic_by_category,
)
from repro.cli import main
from repro.core import Variant, make_instance
from repro.labeling import apply_label_suggestions, suggest_labels
from repro.maintenance import (
    DistributionOutlier,
    detect_distribution_outliers,
)
from repro.observability import RunManifest, Tracer, use_tracer
from repro.serving import (
    HotSwapper,
    ServingEngine,
    SnapshotIndexes,
    SnapshotStore,
)

VARIANT = Variant.threshold_jaccard(0.6)


def shop_instance():
    sets = [
        {"s1", "s2", "s3", "s4"},
        {"s1", "s2"},
        {"d1", "d2", "d3", "d4"},
        {"l1", "l2", "l3", "l4"},
        {"l1", "l2"},
        {"h1", "h2"},
        {"h3", "h4"},
    ]
    labels = [
        "running shoes",
        "trail running shoes",
        "dress shoes",
        "laptops",
        "gaming laptops",
        "red hats",
        "red scarves",
    ]
    return make_instance(
        sets, weights=[4, 2, 4, 4, 2, 1, 1], labels=labels
    )


def build_stack():
    instance = shop_instance()
    tree = CTCR().build(instance, VARIANT)
    apply_label_suggestions(tree, suggest_labels(tree, instance, VARIANT))
    indexes = SnapshotIndexes(tree, instance, VARIANT)
    return instance, tree, indexes


def label_cids(indexes):
    return {
        indexes.label_of(cid): cid for cid in indexes.by_cid
    }


class TestOutlierPrimitive:
    def test_flags_divergent_keys_most_divergent_first(self):
        outliers = detect_distribution_outliers(
            {"a": 0.8, "b": 0.1, "c": 0.1},
            {"a": 0.1, "b": 0.1, "c": 0.8},
        )
        # a and c diverge by the same factor; ties order by key.
        assert [o.key for o in outliers] == ["a", "c"]
        assert all(isinstance(o, DistributionOutlier) for o in outliers)
        assert outliers[0].ratio >= outliers[1].ratio >= 2.0

    def test_min_mass_drops_tail_noise(self):
        outliers = detect_distribution_outliers(
            {"tiny": 0.001}, {"tiny": 0.0}, min_mass=0.01
        )
        assert outliers == []

    def test_agreement_is_quiet(self):
        shares = {"a": 0.5, "b": 0.5}
        assert detect_distribution_outliers(shares, dict(shares)) == []


class TestReport:
    def test_manifest_roundtrip_and_rollup(self, tmp_path):
        instance, tree, indexes = build_stack()
        engine = ServingEngine.from_tree(tree, instance, VARIANT)
        queries = (
            ["dress shoes"] * 3
            + ["trail running shoes"] * 2
            + ["shoes"]          # backs off to root at 0.8
            + ["quantum flux"]   # unmatched
        )
        # Two serving "processes", each writing its own manifest.
        for half, name in ((queries[:4], "m1"), (queries[4:], "m2")):
            with use_tracer(Tracer()) as tracer:
                engine.categorize_queries(half, threshold=0.8)
            RunManifest.collect(tracer, tool="serve").save(
                tmp_path / f"{name}.json"
            )

        counters = load_serving_counters([tmp_path])
        assert counters["serving.querycat.requests"] == len(queries)
        report = category_performance(
            indexes, counters, instance=instance
        )
        cids = label_cids(indexes)
        by_cid = {row.cid: row for row in report.rows}

        assert report.total_requests == len(queries)
        assert report.unmatched == 1
        assert report.matched_traffic == len(queries) - 1
        dress = by_cid[cids["dress shoes"]]
        assert dress.traffic == 3
        assert dress.traffic_share == pytest.approx(3 / 6)
        assert dress.coverage == 1.0
        root = by_cid[indexes.root_cid]
        assert root.subtree_traffic == 6
        assert root.subtree_share == 1.0
        # One query backed off into the root's subtree.
        assert root.coverage == pytest.approx(5 / 6)
        assert report.backoff_rate == pytest.approx(1 / len(queries))
        # Heaviest subtree first.
        assert report.rows[0].cid == indexes.root_cid

    def test_subtree_totals_accumulate_to_ancestors(self):
        _instance, _tree, indexes = build_stack()
        cids = label_cids(indexes)
        totals = subtree_totals(
            indexes, {cids["trail running shoes"]: 2.0, cids["laptops"]: 1.0}
        )
        assert totals[cids["trail running shoes"]] == 2.0
        assert totals[cids["running shoes"]] == 2.0
        assert totals[cids["laptops"]] == 1.0
        assert totals[indexes.root_cid] == 3.0

    def test_build_shares_sum_to_one(self):
        instance, _tree, indexes = build_stack()
        shares = build_category_shares(indexes, instance)
        assert sum(shares.values()) == pytest.approx(1.0)
        cids = label_cids(indexes)
        assert shares[cids["running shoes"]] == pytest.approx(4 / 18)

    def test_penetration_compares_live_to_build(self):
        instance, _tree, indexes = build_stack()
        cids = label_cids(indexes)
        # All live traffic on "red hats" (build share 1/18).
        counters = {
            f"serving.querycat.traffic.{cids['red hats']}": 18,
            "serving.querycat.requests": 18,
        }
        report = category_performance(indexes, counters, instance=instance)
        hats = {row.cid: row for row in report.rows}[cids["red hats"]]
        assert hats.penetration == pytest.approx(18.0)

    def test_counters_from_stale_cids_are_ignored(self):
        _instance, _tree, indexes = build_stack()
        report = category_performance(
            indexes, {"serving.querycat.traffic.99999": 7}
        )
        assert report.matched_traffic == 0
        assert report.rows == ()


class TestDrift:
    def test_skewed_traffic_triggers_rebuild(self):
        instance, _tree, indexes = build_stack()
        cids = label_cids(indexes)
        counters = {f"serving.querycat.traffic.{cids['red hats']}": 90}
        recommendation = detect_traffic_drift(indexes, instance, counters)
        assert isinstance(recommendation, RebuildRecommendation)
        assert recommendation.should_rebuild
        assert recommendation.total_variation >= 0.25
        drifted_cids = [o.key for o in recommendation.drifted]
        assert cids["red hats"] in drifted_cids
        assert "diverges" in recommendation.reason
        # JSON-ready for the CLI/--output path.
        assert json.loads(json.dumps(recommendation.to_dict()))

    def test_balanced_traffic_is_quiet(self):
        instance, _tree, indexes = build_stack()
        shares = build_category_shares(indexes, instance)
        counters = {
            f"serving.querycat.traffic.{cid}": share * 1800
            for cid, share in shares.items()
        }
        recommendation = detect_traffic_drift(indexes, instance, counters)
        assert not recommendation.should_rebuild
        assert recommendation.drifted == ()
        assert recommendation.suggested_weights == {}

    def test_no_traffic_is_quiet(self):
        instance, _tree, indexes = build_stack()
        recommendation = detect_traffic_drift(indexes, instance, {})
        assert not recommendation.should_rebuild
        assert "no live querycat traffic" in recommendation.reason

    def test_reweighting_follows_live_traffic(self):
        instance, _tree, indexes = build_stack()
        cids = label_cids(indexes)
        # Hats dominate; every category keeps some traffic so all
        # suggested weights stay positive.
        counters = {
            f"serving.querycat.traffic.{cid}": 2.0
            for cid in cids.values()
            if cid != indexes.root_cid
        }
        counters[f"serving.querycat.traffic.{cids['red hats']}"] = 88.0
        recommendation = detect_traffic_drift(indexes, instance, counters)
        assert recommendation.should_rebuild
        reweighted = reweighted_instance(instance, recommendation)
        by_label = {q.label: q for q in reweighted.sets}
        original = {q.label: q for q in instance.sets}
        assert by_label["red hats"].weight > original["red hats"].weight
        assert by_label["laptops"].weight < original["laptops"].weight
        assert all(q.weight > 0 for q in reweighted.sets)
        assert reweighted.universe == instance.universe

    def test_apply_recommendation_hot_swaps(self, tmp_path):
        instance, tree, indexes = build_stack()
        store = SnapshotStore(tmp_path / "snapshots")
        info = store.save(tree, instance, VARIANT)
        engine = ServingEngine.from_snapshot(store.load(info.snapshot_id))
        generation_before = engine.generation
        cids = label_cids(indexes)
        counters = {
            f"serving.querycat.traffic.{cid}": 2.0
            for cid in cids.values()
            if cid != indexes.root_cid
        }
        counters[f"serving.querycat.traffic.{cids['red hats']}"] = 88.0
        recommendation = detect_traffic_drift(indexes, instance, counters)
        swapper = HotSwapper(engine)
        generation = apply_recommendation(
            recommendation, swapper, CTCR(), instance, VARIANT, store=store
        )
        assert generation is not None
        assert engine.generation == generation_before + 1
        assert len(store.list()) == 2  # reweighted build saved as new
        # A quiet recommendation is a no-op.
        quiet = detect_traffic_drift(indexes, instance, {})
        assert (
            apply_recommendation(
                quiet, swapper, CTCR(), instance, VARIANT, store=store
            )
            is None
        )
        assert engine.generation == generation_before + 1

    def test_drift_rebuild_defaults_to_delta_and_reuses_mis(self, tmp_path):
        """A drift-triggered rebuild rides the delta path by default.

        The first apply bootstraps the swapper's carried delta state
        (a plain ``CTCR`` is wrapped into an ``IncrementalBuilder``
        transparently); a second drift that reweights only one conflict
        component must delta-build, reusing the untouched component's
        MIS solution instead of re-solving it.
        """
        # The paper's Figure 2 sets yield a 3-conflict MIS component
        # that survives into the carried cache; the disjoint b-pair is
        # where the traffic drifts, so the component's member weights
        # never change and its solution must be reused.
        instance = make_instance(
            [
                {"a", "b", "c", "d", "e"},
                {"a", "b"},
                {"c", "d", "e", "f"},
                {"a", "b", "f", "g", "h"},
                {"x1", "x2", "x3"},
                {"x2", "x3", "x4"},
            ],
            weights=[2.0, 1.0, 1.0, 1.0, 4.0, 3.0],
            labels=[
                "black shirt", "black adidas shirt", "nike shirt",
                "long sleeve shirt", "b-wide", "b-shift",
            ],
        )
        variant = Variant.threshold_jaccard(0.8)
        tree = CTCR().build(instance, variant)
        store = SnapshotStore(tmp_path / "snapshots")
        info = store.save(tree, instance, variant)
        engine = ServingEngine.from_snapshot(store.load(info.snapshot_id))
        swapper = HotSwapper(engine)
        assert swapper.delta_state is None

        def drift_toward_b(factor):
            b_sids = [
                q.sid for q in instance.sets if q.label.startswith("b-")
            ]
            return RebuildRecommendation(
                should_rebuild=True,
                total_variation=0.5,
                rebuild_threshold=0.25,
                reason="test drift",
                drifted=(),
                suggested_weights={
                    sid: instance.sets[sid].weight * factor for sid in b_sids
                },
            )

        # First apply: bootstraps the carried state with a full build.
        generation = apply_recommendation(
            drift_toward_b(2.0), swapper, CTCR(), instance, variant,
            store=store,
        )
        assert generation is not None
        assert swapper.delta_state is not None

        # Second apply: weights-only churn on the b-component. The
        # a-component's MIS solution must be reused from the carried
        # state, not re-solved.
        with use_tracer(Tracer()) as tracer:
            generation2 = apply_recommendation(
                drift_toward_b(4.0), swapper, CTCR(), instance, variant,
                store=store,
            )
        assert generation2 is not None
        gauges = tracer.gauges
        assert gauges.get("incremental.sets_reweighted", 0) > 0
        assert gauges.get("incremental.components_reused", 0) > 0
        assert gauges.get("incremental.components_resolved", 0) == 0


class TestCLI:
    def publish(self, tmp_path):
        instance, tree, _indexes = build_stack()
        store_dir = tmp_path / "snapshots"
        store = SnapshotStore(store_dir)
        store.save(tree, instance, VARIANT)
        return store_dir

    def manifest_from_queries(self, tmp_path, store_dir, queries):
        path = tmp_path / "queries.txt"
        path.write_text("".join(q + "\n" for q in queries))
        manifest = tmp_path / "serve-manifest.json"
        rc = main(
            [
                "categorize-query",
                "--snapshot-dir", str(store_dir),
                "--queries-file", str(path),
                "--manifest", str(manifest),
            ]
        )
        assert rc == 0
        return manifest

    def test_report_and_drift_from_real_manifests(self, tmp_path, capsys):
        store_dir = self.publish(tmp_path)
        manifest = self.manifest_from_queries(
            tmp_path, store_dir, ["dress shoes"] * 5 + ["red hats"] * 2
        )
        out_json = tmp_path / "report.json"
        rc = main(
            [
                "analytics", "report",
                "--manifests", str(manifest),
                "--snapshot-dir", str(store_dir),
                "--min-traffic", "0",
                "--output", str(out_json),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "dress shoes" in out
        assert "requests=7" in out
        payload = json.loads(out_json.read_text())
        assert payload["total_requests"] == 7
        assert any(
            row["label"] == "dress shoes" and row["traffic"] == 5
            for row in payload["rows"]
        )

        rc = main(
            [
                "analytics", "drift",
                "--manifests", str(manifest),
                "--snapshot-dir", str(store_dir),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "REBUILD RECOMMENDED" in out

    def test_categorize_query_cli_json(self, tmp_path, capsys):
        store_dir = self.publish(tmp_path)
        rc = main(
            [
                "categorize-query",
                "--snapshot-dir", str(store_dir),
                "--query", "dress shoes",
                "--json",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        start = out.index("[")
        results = json.loads(out[start:])
        assert results[0]["stage"] == "exact"
        assert results[0]["label"] == "dress shoes"

    def test_categorize_query_requires_queries(self, tmp_path):
        assert main(["categorize-query"]) == 2

    def test_analytics_requires_snapshot(self, tmp_path):
        rc = main(
            [
                "analytics", "report",
                "--manifests", str(tmp_path),
                "--snapshot-dir", str(tmp_path / "empty-store"),
            ]
        )
        assert rc == 2
