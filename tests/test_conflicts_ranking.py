"""Tests for input-set ranking (Section 3.2)."""

from repro.conflicts import rank_sets
from repro.core import make_instance


class TestRanking:
    def test_largest_set_ranks_first(self):
        inst = make_instance([{"a"}, {"a", "b", "c"}, {"a", "b"}])
        ranking = rank_sets(inst)
        assert ranking.rank(1) == 1  # the 3-element set
        assert ranking.rank(2) == 2
        assert ranking.rank(0) == 3

    def test_size_ties_break_lighter_first(self):
        # Among same-size sets the heavier set ranks lower (deeper),
        # giving it a second, more precise covering opportunity.
        inst = make_instance([{"a", "b"}, {"c", "d"}], weights=[5.0, 1.0])
        ranking = rank_sets(inst)
        assert ranking.rank(1) == 1  # lighter first
        assert ranking.rank(0) == 2

    def test_full_tie_breaks_on_sid(self):
        inst = make_instance([{"a", "b"}, {"c", "d"}], weights=[1.0, 1.0])
        ranking = rank_sets(inst)
        assert ranking.rank(0) == 1

    def test_ranks_are_a_permutation(self):
        inst = make_instance([{"a"}, {"b", "c"}, {"d"}, {"e", "f", "g"}])
        ranking = rank_sets(inst)
        assert sorted(ranking.rank_of.values()) == [1, 2, 3, 4]

    def test_upper_lower_orders_by_rank(self):
        inst = make_instance([{"a"}, {"a", "b", "c"}])
        ranking = rank_sets(inst)
        upper, lower = ranking.upper_lower(inst.get(0), inst.get(1))
        assert upper.sid == 1 and lower.sid == 0

    def test_ordered_matches_rank(self):
        inst = make_instance([{"a"}, {"b", "c"}, {"d", "e", "f"}])
        ranking = rank_sets(inst)
        assert [q.sid for q in ranking.ordered] == [2, 1, 0]
        assert len(ranking) == 3
