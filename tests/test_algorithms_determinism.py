"""Determinism tests: identical inputs must yield identical trees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import CCT, CTCR, CTCRConfig
from repro.core import Variant, make_instance, score_tree

instances = st.lists(
    st.tuples(
        st.sets(st.integers(0, 9), min_size=1, max_size=6),
        st.floats(min_value=0.1, max_value=5.0),
    ),
    min_size=1,
    max_size=6,
).map(
    lambda pairs: make_instance(
        [p[0] for p in pairs], weights=[p[1] for p in pairs]
    )
)

variants = st.sampled_from(
    [
        Variant.exact(),
        Variant.perfect_recall(0.6),
        Variant.threshold_jaccard(0.7),
        Variant.cutoff_f1(0.6),
    ]
)


class TestDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(instances, variants)
    def test_ctcr_repeatable(self, instance, variant):
        t1 = CTCR().build(instance, variant)
        t2 = CTCR().build(instance, variant)
        assert t1.to_text() == t2.to_text()

    @settings(max_examples=30, deadline=None)
    @given(instances, variants)
    def test_cct_repeatable(self, instance, variant):
        t1 = CCT().build(instance, variant)
        t2 = CCT().build(instance, variant)
        assert t1.to_text() == t2.to_text()

    @settings(max_examples=20, deadline=None)
    @given(instances, variants)
    def test_parallel_conflicts_same_score(self, instance, variant):
        s1 = score_tree(
            CTCR(CTCRConfig(n_jobs=1)).build(instance, variant),
            instance,
            variant,
        ).total
        s2 = score_tree(
            CTCR(CTCRConfig(n_jobs=2)).build(instance, variant),
            instance,
            variant,
        ).total
        assert abs(s1 - s2) < 1e-9


class TestDiagnostics:
    def test_c2_statistic_populated(self, figure2_instance):
        builder = CTCR()
        builder.build(figure2_instance, Variant.exact())
        diag = builder.last_diagnostics
        # degrees 2,0,2,2 with weights 2,1,1,1 over total weight 5:
        # (2*2 + 1*0 + 1*2 + 1*2) / 5 = 8/5.
        assert abs(diag.c2_weighted_avg - 8 / 5) < 1e-9

    def test_conflict_free_instance_has_zero_c2(self):
        inst = make_instance([{"a"}, {"b"}])
        builder = CTCR()
        builder.build(inst, Variant.exact())
        assert builder.last_diagnostics.c2_weighted_avg == 0.0
