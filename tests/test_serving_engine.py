"""Tests for SnapshotIndexes and the thread-safe ServingEngine.

The acceptance bar for the serving layer is *bit-identical* agreement
with the offline scorer: for every variant, the engine's best_category
must reproduce ``score_tree``'s per-set score/precision/depth exactly,
on both the packed-bitset and the postings scoring paths.
"""

import threading

import pytest

from repro.algorithms import CTCR
from repro.core import Variant, score_tree
from repro.serving import (
    HotSwapper,
    ServingEngine,
    ServingError,
    SnapshotIndexes,
    SnapshotStore,
    prepare_generation,
)


@pytest.fixture()
def built(figure2_instance):
    variant = Variant.threshold_jaccard(0.6)
    tree = CTCR().build(figure2_instance, variant)
    return tree, figure2_instance, variant


@pytest.fixture()
def engine(built):
    tree, instance, variant = built
    return ServingEngine.from_tree(tree, instance, variant)


class TestDifferentialScoring:
    """Engine answers must match the offline score_tree reference."""

    def _assert_matches_reference(self, tree, instance, variant, use_bitset):
        indexes = SnapshotIndexes(
            tree, instance, variant, use_bitset=use_bitset
        )
        report = score_tree(tree, instance, variant)
        for q in instance:
            best = indexes.best_category(q.items)
            entry = report.per_set[q.sid]
            if entry.covered:
                assert best is not None, (variant.describe(), q.sid)
                assert best.score == entry.score
                assert best.precision == entry.best_precision
            else:
                assert best is None, (variant.describe(), q.sid)

    def test_every_variant_matches_offline_scorer(
        self, figure2_instance, all_variants
    ):
        for variant in all_variants:
            tree = CTCR().build(figure2_instance, variant)
            for use_bitset in (False, True):
                self._assert_matches_reference(
                    tree, figure2_instance, variant, use_bitset
                )

    def test_dataset_scale_matches_offline_scorer(self, tiny_dataset):
        from repro.pipeline import preprocess

        variant = Variant.threshold_jaccard(0.8)
        instance, _ = preprocess(tiny_dataset, variant)
        tree = CTCR().build(instance, variant)
        for use_bitset in (False, True):
            self._assert_matches_reference(
                tree, instance, variant, use_bitset
            )

    def test_bitset_and_postings_paths_identical(self, built):
        tree, instance, variant = built
        on = SnapshotIndexes(tree, instance, variant, use_bitset=True)
        off = SnapshotIndexes(tree, instance, variant, use_bitset=False)
        assert on.uses_bitset and not off.uses_bitset
        queries = [q.items for q in instance] + [
            frozenset({"a"}),
            frozenset({"a", "zzz-unknown"}),
            frozenset({"zzz-unknown"}),
            frozenset(instance.universe),
        ]
        for q in queries:
            assert on.intersection_counts(q) == off.intersection_counts(q)
            assert on.best_category(q) == off.best_category(q)

    def test_tie_break_is_deterministic_lowest_cid(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.6)
        tree = CTCR().build(figure2_instance, variant)
        ix = SnapshotIndexes(tree, instance=figure2_instance, variant=variant)
        best = ix.best_category(frozenset({"a", "b"}))
        again = ix.best_category(frozenset({"b", "a"}))
        assert best == again


class TestEngineOperations:
    def test_query_before_publish_raises(self):
        engine = ServingEngine()
        assert engine.generation == 0
        with pytest.raises(ServingError):
            engine.browse()
        with pytest.raises(ServingError):
            engine.current

    def test_categorize_known_and_unknown(self, engine, built):
        tree, _, _ = built
        item = next(iter(tree.root.items))
        placements = engine.categorize_item(item)
        assert placements
        assert all({"cid", "label", "path"} <= p.keys() for p in placements)
        assert engine.categorize_item("zzz-unknown") == []

    def test_browse_root_and_child(self, engine):
        page = engine.browse()
        assert page["depth"] == 0
        assert page["n_items"] > 0
        if page["children"]:
            child = engine.browse(page["children"][0]["cid"])
            assert child["path"][0]["cid"] == page["cid"]

    def test_browse_unknown_cid_raises_keyerror(self, engine):
        with pytest.raises(KeyError):
            engine.browse(10_000)
        with pytest.raises(KeyError):
            engine.path_to_root(10_000)

    def test_path_to_root_starts_at_root(self, engine):
        root_cid = engine.browse()["cid"]
        page = engine.browse()
        if page["children"]:
            cid = page["children"][0]["cid"]
            path = engine.path_to_root(cid)
            assert path[0]["cid"] == root_cid
            assert path[-1]["cid"] == cid

    def test_find_categories_by_label(self, engine):
        hits = engine.find_categories("shirt")
        assert hits, "labeled categories must be searchable"
        assert all(0.0 < h["relevance"] <= 1.0 for h in hits)

    def test_best_category_variant_and_delta_overrides(self, engine, built):
        _, instance, _ = built
        q = instance.get(0).items
        default = engine.best_category(q)
        assert default is not None
        loose = engine.best_category(q, delta=0.1)
        assert loose is not None and loose.score >= default.score
        other = engine.best_category(q, variant=Variant.perfect_recall(0.5))
        assert other is not None

    def test_stats_shape(self, engine):
        engine.browse()
        stats = engine.stats()
        assert stats["generation"] == 1
        assert stats["n_categories"] > 0
        assert stats["requests"] >= 1
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0
        assert set(stats["latency"]) == {"p50_ms", "p95_ms", "p99_ms", "max_ms"}


class TestCaching:
    def test_repeat_queries_hit_cache(self, engine):
        before = engine.stats()["cache"]["hits"]
        engine.browse()
        engine.browse()
        engine.browse()
        assert engine.stats()["cache"]["hits"] >= before + 2

    def test_cache_disabled(self, built):
        tree, instance, variant = built
        engine = ServingEngine.from_tree(tree, instance, variant, cache_size=0)
        engine.browse()
        engine.browse()
        cache = engine.stats()["cache"]
        assert cache["hits"] == 0
        assert cache["size"] == 0

    def test_swap_invalidates_cache_logically(self, built):
        tree, instance, variant = built
        engine = ServingEngine.from_tree(tree, instance, variant)
        engine.browse()
        engine.browse()
        hits_before = engine.stats()["cache"]["hits"]
        engine.publish(prepare_generation(tree, instance, variant))
        engine.browse()  # new generation key: a miss, not a stale hit
        stats = engine.stats()["cache"]
        assert stats["hits"] == hits_before
        engine.browse()
        assert engine.stats()["cache"]["hits"] == hits_before + 1

    def test_lru_eviction_bounds_size(self, engine):
        for cid in [c["cid"] for c in engine.browse()["children"]]:
            engine.path_to_root(cid)
        assert engine.stats()["cache"]["size"] <= engine._cache.maxsize


class TestHotSwap:
    def test_publish_increments_generation(self, built):
        tree, instance, variant = built
        engine = ServingEngine.from_tree(tree, instance, variant)
        assert engine.generation == 1
        gen = engine.publish(prepare_generation(tree, instance, variant))
        assert gen.number == 2
        assert engine.generation == 2
        assert engine.current is gen

    def test_swap_from_store_serves_new_snapshot(self, tmp_path, built):
        tree, instance, variant = built
        store = SnapshotStore(tmp_path)
        store.save(tree, instance, variant)
        engine = ServingEngine.from_snapshot(store.load())
        swapper = HotSwapper(engine)

        other_variant = Variant.perfect_recall(0.5)
        other_tree = CTCR().build(instance, other_variant)
        info = store.save(other_tree, instance, other_variant)
        gen = swapper.swap_from_store(store)
        assert gen.number == 2
        assert engine.current.snapshot_id == info.snapshot_id
        assert engine.stats()["variant"] == other_variant.describe()

    def test_swap_from_build_persists_to_store(self, tmp_path, built):
        tree, instance, variant = built
        engine = ServingEngine.from_tree(tree, instance, variant)
        store = SnapshotStore(tmp_path)
        gen = HotSwapper(engine).swap_from_build(
            CTCR(), instance, variant, store=store
        )
        assert gen.snapshot_id
        assert store.current_id() == gen.snapshot_id

    def test_swap_in_background_publishes(self, built):
        tree, instance, variant = built
        engine = ServingEngine.from_tree(tree, instance, variant)
        published = []
        thread = HotSwapper(engine).swap_in_background(
            lambda: prepare_generation(tree, instance, variant),
            on_published=published.append,
        )
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert published and published[0].number == 2

    def test_stress_readers_with_mid_flight_swaps(self, built):
        """>= 8 reader threads while generations flip; zero errors."""
        tree, instance, variant = built
        engine = ServingEngine.from_tree(tree, instance, variant)
        item = next(iter(tree.root.items))
        q = instance.get(0).items
        reference = engine.best_category(q)
        n_threads = 8
        errors: list[str] = []
        barrier = threading.Barrier(n_threads + 1)

        def reader() -> None:
            barrier.wait()
            for _ in range(300):
                try:
                    engine.browse()
                    engine.categorize_item(item)
                    best = engine.best_category(q)
                    assert best == reference
                except Exception as exc:  # collected, not raised
                    errors.append(f"{type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=reader, daemon=True)
            for _ in range(n_threads)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        for _ in range(10):
            engine.publish(prepare_generation(tree, instance, variant))
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert errors == []
        assert engine.generation == 11
