"""Smoke tests: the shipped examples must run end to end."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "Exact" in out
        assert "Perfect-Recall" in out
        assert "0.8000" in out  # the paper's optimal T1 score

    def test_fashion_catalog(self, capsys):
        out = run_example("fashion_catalog", capsys)
        assert "CTCR" in out and "CCT" in out and "ET" in out
        assert "label hints" in out

    def test_continual_updates(self, capsys):
        out = run_example("continual_updates", capsys)
        assert "Table 1" in out
        assert "90%/10%" in out

    def test_serving_quickstart(self, capsys):
        out = run_example("serving_quickstart", capsys)
        assert "snapshot snap-" in out
        assert "hot-swapped to generation 2" in out
        assert "cache hit rate" in out
