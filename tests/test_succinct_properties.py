"""Property tier for the succinct primitives (hypothesis, no I/O).

Random pre-order trees and random posting lists, checked against the
naive definitions: interval ancestor tests against path containment,
sparse-table LCA against path-prefix intersection, batched root paths
against per-row walks, and the varint codec against round-tripping.
The serving layers above are covered differentially in
``tests/test_serving_succinct.py``; this tier pins the primitives the
whole read path stands on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Variant, make_instance
from repro.serving import EulerTour, decode_postings, encode_postings
from repro.serving.indexes import SnapshotIndexes
from repro.serving.succinct import concat_postings, validate_tree_repr


# A random pre-order tree. Contiguous pre-order means row v can only
# hang off the rightmost spine — an ancestor of row v-1 (or v-1
# itself); drawing from that set generates exactly the valid layouts.
@st.composite
def preorder_trees(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    parent = [-1]
    for v in range(1, n):
        spine = naive_path(parent, v - 1)
        parent.append(spine[draw(st.integers(0, len(spine) - 1))])
    depth = [0] * n
    for v in range(1, n):
        depth[v] = depth[parent[v]] + 1
    return parent, depth


def naive_path(parent, v):
    path = [v]
    while parent[path[-1]] != -1:
        path.append(parent[path[-1]])
    return path


def naive_lca(parent, u, v):
    ancestors = set(naive_path(parent, u))
    for node in naive_path(parent, v):
        if node in ancestors:
            return node
    raise AssertionError("one root means the walk always meets")


class TestEulerTourProperties:
    @settings(max_examples=60, deadline=None)
    @given(preorder_trees())
    def test_ancestor_equals_path_containment(self, tree):
        parent, depth = tree
        tour = EulerTour.build(parent, depth)
        for u in range(len(parent)):
            path = set(naive_path(parent, u))
            for v in range(len(parent)):
                assert tour.is_ancestor(v, u) == (v in path)

    @settings(max_examples=60, deadline=None)
    @given(preorder_trees())
    def test_lca_equals_naive(self, tree):
        parent, depth = tree
        tour = EulerTour.build(parent, depth)
        for u in range(len(parent)):
            for v in range(len(parent)):
                assert tour.lca(u, v) == naive_lca(parent, u, v)

    @settings(max_examples=60, deadline=None)
    @given(preorder_trees())
    def test_walks_and_batched_paths(self, tree):
        parent, depth = tree
        tour = EulerTour.build(parent, depth)
        rows = list(range(len(parent)))
        batched = tour.root_paths(rows)
        for v in rows:
            want = naive_path(parent, v)[::-1]  # walks are root-first
            assert tour.walk_to_root(v) == want
            assert batched[v] == want

    @settings(max_examples=60, deadline=None)
    @given(preorder_trees(), st.data())
    def test_lca_of_subset(self, tree, data):
        parent, depth = tree
        tour = EulerTour.build(parent, depth)
        rows = data.draw(
            st.lists(
                st.integers(0, len(parent) - 1), min_size=1, max_size=6
            )
        )
        want = rows[0]
        for row in rows[1:]:
            want = naive_lca(parent, want, row)
        assert tour.lca_of(rows) == want

    def test_rejects_non_preorder(self):
        with pytest.raises(ValueError, match="parent < row"):
            EulerTour.build([-1, 2, 0], [0, 2, 1])
        # Topological but interleaved: node 1's subtree {1, 3} is split
        # by its sibling at row 2, so intervals cannot represent it.
        with pytest.raises(ValueError, match="contiguous pre-order"):
            EulerTour.build([-1, 0, 0, 1], [0, 1, 1, 2])
        with pytest.raises(ValueError, match="root"):
            EulerTour.build([0, 0], [0, 1])
        with pytest.raises(ValueError, match="zero nodes"):
            EulerTour.build([], [])


class TestVarintProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**40), unique=True
        ).map(sorted)
    )
    def test_round_trip(self, values):
        assert decode_postings(encode_postings(values)) == values

    def test_empty_round_trip(self):
        assert encode_postings([]) == b""
        assert decode_postings(b"") == []

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            encode_postings([3, 3])
        with pytest.raises(ValueError, match="strictly increasing"):
            encode_postings([5, 2])

    def test_rejects_truncated(self):
        blob = encode_postings([0, 1000])
        with pytest.raises(ValueError, match="truncated"):
            decode_postings(blob[:-1])

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=500), unique=True
            ).map(sorted),
            max_size=8,
        )
    )
    def test_concat_offsets_slice_back(self, lists):
        blob, offsets = concat_postings(lists)
        assert len(offsets) == len(lists) + 1
        assert offsets[-1] == len(blob)
        for i, values in enumerate(lists):
            assert decode_postings(blob[offsets[i]: offsets[i + 1]]) == values

    def test_validate_tree_repr(self):
        assert validate_tree_repr("flat") == "flat"
        assert validate_tree_repr("succinct") == "succinct"
        with pytest.raises(ValueError, match="tree_repr"):
            validate_tree_repr("both")  # a compile target, not a read repr


# Random catalogs for the end-to-end property: batched categorize over
# the succinct indexes equals the per-item loop over the flat ones.
_instances = st.lists(
    st.tuples(
        st.sets(
            st.one_of(st.integers(0, 12), st.sampled_from("abcdefgh")),
            min_size=1,
            max_size=6,
        ),
        st.floats(min_value=0.1, max_value=5.0),
    ),
    min_size=1,
    max_size=6,
).map(
    lambda pairs: make_instance(
        [p[0] for p in pairs], weights=[p[1] for p in pairs]
    )
)


class TestBatchedCategorizeProperty:
    @settings(max_examples=30, deadline=None)
    @given(_instances)
    def test_batched_equals_per_item(self, instance):
        from repro.algorithms import CTCR

        variant = Variant.threshold_jaccard(0.6)
        tree = CTCR().build(instance, variant)
        flat = SnapshotIndexes(tree, instance, variant)
        succ = SnapshotIndexes(tree, instance, variant, tree_repr="succinct")
        items = sorted(instance.universe, key=str)
        cids = sorted({c for i in items for c in flat.placements(i)})
        batched = succ.paths_to_root_batch(cids)
        for item in items:
            assert succ.placements(item) == flat.placements(item)
        for cid in cids:
            assert batched[cid] == flat.path_to_root(cid)
