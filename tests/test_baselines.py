"""Tests for the IC-S, IC-Q, and ET baselines."""

import random

import numpy as np
import pytest

from repro.baselines import (
    ExistingTree,
    ICQ,
    ICQConfig,
    ICS,
    ICSConfig,
    reduce_groups,
    tree_from_item_dendrogram,
)
from repro.clustering import agglomerative_clustering
from repro.core import Variant, make_instance, score_tree


class TestReduceGroups:
    def test_noop_when_under_cap(self):
        vectors = np.eye(3)
        members = [["a"], ["b"], ["c"]]
        out_v, out_m = reduce_groups(vectors, members, 5, random.Random(0))
        assert out_m == members and np.array_equal(out_v, vectors)

    def test_reduction_keeps_all_items(self):
        rng = random.Random(1)
        vectors = np.random.default_rng(0).normal(size=(10, 4))
        vectors /= np.linalg.norm(vectors, axis=1)[:, None]
        members = [[f"i{k}"] for k in range(10)]
        out_v, out_m = reduce_groups(vectors, members, 4, rng)
        assert len(out_m) <= 4
        assert sorted(i for m in out_m for i in m) == sorted(
            i for m in members for i in m
        )
        assert len(out_v) == len(out_m)


class TestTreeFromDendrogram:
    def test_valid_tree_every_item_once(self):
        vectors = np.array([[0.0], [0.1], [5.0], [5.1], [9.0]])
        members = [["a"], ["b"], ["c"], ["d"], ["e"]]
        dendrogram = agglomerative_clustering(vectors)
        tree = tree_from_item_dendrogram(dendrogram, members, 1)
        tree.validate(universe={"a", "b", "c", "d", "e"})

    def test_min_size_collapses_small_subtrees(self):
        vectors = np.arange(8, dtype=float).reshape(-1, 1)
        members = [[f"i{k}"] for k in range(8)]
        dendrogram = agglomerative_clustering(vectors)
        big = tree_from_item_dendrogram(dendrogram, members, 1)
        small = tree_from_item_dendrogram(dendrogram, members, 4)
        assert len(small) < len(big)


class TestICS:
    def test_builds_valid_tree(self, figure2_instance):
        titles = {i: f"product {i}" for i in figure2_instance.universe}
        titles["a"] = "black adidas shirt"
        titles["b"] = "black adidas top shirt"
        tree = ICS(titles, ICSConfig(max_leaves=10)).build(
            figure2_instance, Variant.exact()
        )
        tree.validate(universe=figure2_instance.universe)

    def test_groups_identical_titles(self, figure2_instance):
        titles = {i: "same title" for i in figure2_instance.universe}
        tree = ICS(titles).build(figure2_instance, Variant.exact())
        tree.validate(universe=figure2_instance.universe)
        # All items share one leaf category.
        non_root = list(tree.non_root_categories())
        assert len(non_root) == 1

    def test_deterministic(self, tiny_dataset):
        from repro.pipeline import preprocess

        inst, _ = preprocess(tiny_dataset, Variant.threshold_jaccard(0.8))
        t1 = ICS(tiny_dataset.titles).build(inst, Variant.threshold_jaccard(0.8))
        t2 = ICS(tiny_dataset.titles).build(inst, Variant.threshold_jaccard(0.8))
        assert t1.to_text() == t2.to_text()


class TestICQ:
    def test_builds_valid_tree(self, figure2_instance):
        tree = ICQ().build(figure2_instance, Variant.exact())
        tree.validate(universe=figure2_instance.universe)

    def test_identical_membership_shares_category(self, figure2_instance):
        tree = ICQ(ICQConfig(min_category_size=1)).build(
            figure2_instance, Variant.exact()
        )
        # c, d, e share membership (q1 and q3): they must sit in the same
        # most-specific category.
        minimal = {
            item: tree.minimal_categories(item)[0].cid
            for item in ("c", "d", "e")
        }
        assert len(set(minimal.values())) == 1

    def test_respects_max_leaves(self):
        inst = make_instance(
            [{i, i + 1} for i in range(0, 40, 2)],
        )
        tree = ICQ(ICQConfig(max_leaves=5)).build(inst, Variant.exact())
        tree.validate(universe=inst.universe)


class TestExistingTree:
    def test_returns_copy(self, tiny_dataset):
        baseline = ExistingTree(tiny_dataset.existing_tree)
        inst = make_instance(
            [{tiny_dataset.products[0].pid}],
            universe=[p.pid for p in tiny_dataset.products],
        )
        tree = baseline.build(inst, Variant.exact())
        assert tree is not tiny_dataset.existing_tree
        tree.root.items.clear()
        assert tiny_dataset.existing_tree.root.items

    def test_adds_misc_for_unknown_items(self):
        from repro.core import CategoryTree

        existing = CategoryTree()
        existing.add_category({"a"})
        baseline = ExistingTree(existing)
        inst = make_instance([{"a", "zz"}])
        tree = baseline.build(inst, Variant.exact())
        tree.validate(universe=inst.universe)

    def test_scoring_works(self, figure2_instance):
        from repro.core import CategoryTree

        existing = CategoryTree()
        cat = existing.add_category({"a", "b"})
        baseline = ExistingTree(existing)
        tree = baseline.build(figure2_instance, Variant.exact())
        report = score_tree(tree, figure2_instance, Variant.exact())
        assert report.per_set[1].covered  # q2 = {a, b}
