"""Shared fixtures: paper examples and small synthetic datasets."""

from __future__ import annotations

import pytest

from repro.catalog import load_dataset
from repro.core import OCTInstance, Variant, make_instance
from repro.observability import get_tracer, set_tracer


@pytest.fixture(autouse=True)
def _isolate_active_tracer():
    """Restore the process-wide tracer after every test.

    Importing :mod:`benchmarks.common` (the bench smoke tests do)
    installs an enabled tracer for its process; without this guard that
    side effect would leak into later tests that assert the default
    null-tracer state.
    """
    before = get_tracer()
    yield
    set_tracer(before)


@pytest.fixture(scope="session")
def figure2_instance() -> OCTInstance:
    """The paper's Figure 2 input.

    q1 = {a,b,c,d,e} (w=2, "black shirt"), q2 = {a,b} (w=1,
    "black adidas shirt"), q3 = {c,d,e,f} (w=1, "nike shirt"),
    q4 = {a,b,f,g,h} (w=1, "long sleeve shirt").
    """
    return make_instance(
        [
            {"a", "b", "c", "d", "e"},
            {"a", "b"},
            {"c", "d", "e", "f"},
            {"a", "b", "f", "g", "h"},
        ],
        weights=[2.0, 1.0, 1.0, 1.0],
        labels=["black shirt", "black adidas shirt", "nike shirt", "long sleeve shirt"],
    )


@pytest.fixture(scope="session")
def example32_instance() -> OCTInstance:
    """Example 3.2: q1 = {a,c,d,e,f}, q2 = {a,b}, q3 = {b,g,h}."""
    return make_instance(
        [{"a", "c", "d", "e", "f"}, {"a", "b"}, {"b", "g", "h"}],
        weights=[3.0, 1.0, 2.0],
    )


@pytest.fixture(scope="session")
def all_variants() -> list[Variant]:
    return [
        Variant.exact(),
        Variant.perfect_recall(0.8),
        Variant.perfect_recall(0.5),
        Variant.threshold_jaccard(0.8),
        Variant.threshold_jaccard(0.6),
        Variant.cutoff_jaccard(0.7),
        Variant.threshold_f1(0.8),
        Variant.cutoff_f1(0.7),
    ]


@pytest.fixture(scope="session")
def tiny_dataset():
    """A very small dataset A for integration tests."""
    return load_dataset("A", scale=0.01, seed=7)


@pytest.fixture(scope="session")
def dataset_a():
    """Dataset A at its default repro scale (cached per session)."""
    return load_dataset("A", seed=3)
