"""Cross-process consistency tier, part 1: the flat mmap snapshot layout.

The multi-process serving design only works if the mmap'd flat layout is
*bit-identical* to the in-memory indexes — same integers, same IEEE-754
floats, same dict orders — because N worker processes answering the same
request must be indistinguishable. These tests pin that:

- differential: every read op of :class:`MmapSnapshotIndexes` equals
  :class:`SnapshotIndexes` on the paper examples, a real dataset, all
  variants, sharded and unsharded, bitset kernel on and off;
- crash injection: torn, truncated, wrong-magic, corrupt-header and
  future-version flat files are rejected structurally (never a wrong
  answer, never a leaked fd);
- property-based: random catalogs round-trip through compile + mmap.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import CTCR
from repro.core import Variant, make_instance
from repro.labeling import apply_label_suggestions, suggest_labels
from repro.serving import (
    FLAT_FORMAT_VERSION,
    MmapSnapshotIndexes,
    SnapshotError,
    SnapshotStore,
    compile_flat_indexes,
    flat_file_name,
    prepare_mmap_generation,
)
from repro.serving.indexes import SnapshotIndexes
from repro.serving.shm import FLAT_MAGIC, _PREFIX, encode_item, shard_of


def build_labeled_tree(instance, variant):
    tree = CTCR().build(instance, variant)
    apply_label_suggestions(tree, suggest_labels(tree, instance, variant))
    return tree


def write_flat(tmp_path, indexes, shards=1):
    """Compile and write flat shard files; returns their paths."""
    paths = []
    for shard_index, blob in enumerate(
        compile_flat_indexes(indexes, shards=shards)
    ):
        path = tmp_path / flat_file_name(shard_index, shards)
        path.write_bytes(blob)
        paths.append(path)
    return paths


def assert_identical(mem: SnapshotIndexes, mm: MmapSnapshotIndexes, queries):
    """Every read op must agree exactly (values, floats, and dict order)."""
    assert mm.root_cid == mem.root_cid
    assert mm.n_categories == mem.n_categories
    assert mm.variant == mem.variant
    assert list(mm.sizes) == list(mem._cids)

    for cid in mem._cids:
        assert mm.sizes[cid] == mem.sizes[cid]
        assert mm.depths[cid] == mem.depths[cid]
        assert mm.parent_of[cid] == mem.parent_of[cid]
        assert mm.children_of[cid] == mem.children_of[cid]
        assert mm.label_of(cid) == mem.label_of(cid)
        assert mm.path_to_root(cid) == mem.path_to_root(cid)
        cat = mm.category(cid)
        assert cat.label == mem.by_cid[cid].label
        assert cat.depth == mem.depths[cid]
        assert cat.n_items == mem.sizes[cid]

    items = sorted(mem.item_postings, key=str)
    for item in items + ["__definitely_not_an_item__", ("un", "hashable")]:
        assert mm.placements(item) == mem.placements(item)
        assert mm.postings(item) == mem.item_postings.get(item, ())

    for query in queries:
        got = mm.intersection_counts(frozenset(query))
        want = mem.intersection_counts(frozenset(query))
        assert got == want
        assert list(got) == list(want)  # same (pre-)order, not just equal
        best_mm = mm.best_category(frozenset(query))
        best_mem = mem.best_category(frozenset(query))
        assert best_mm == best_mem  # exact float equality via dataclass eq

    for text in ["shirt", "black shirt", "nike", "category", "zzz missing"]:
        assert mm.find_labels(text) == mem.find_labels(text)
        assert mm.find_labels(text, top_k=2) == mem.find_labels(text, top_k=2)


def queries_for(instance):
    qs = [q.items for q in instance.sets]
    qs.append(frozenset(list(instance.universe)[:3]) | {"__unknown__"})
    qs.append(frozenset({"__only_unknown__"}))
    return qs


class TestDifferentialIdentity:
    @pytest.mark.parametrize("shards", [1, 3])
    @pytest.mark.parametrize("use_bitset", [False, True])
    def test_figure2_all_variants(
        self, figure2_instance, all_variants, tmp_path, shards, use_bitset
    ):
        for i, variant in enumerate(all_variants):
            tree = build_labeled_tree(figure2_instance, variant)
            mem = SnapshotIndexes(
                tree, figure2_instance, variant, use_bitset=use_bitset
            )
            sub = tmp_path / f"v{i}"
            sub.mkdir()
            paths = write_flat(sub, mem, shards=shards)
            with MmapSnapshotIndexes(paths, use_bitset=use_bitset) as mm:
                assert mm.shard_count == shards
                assert mm.uses_bitset == mem.uses_bitset
                assert_identical(mem, mm, queries_for(figure2_instance))

    def test_example32(self, example32_instance, tmp_path):
        variant = Variant.threshold_jaccard(0.6)
        tree = build_labeled_tree(example32_instance, variant)
        mem = SnapshotIndexes(tree, example32_instance, variant)
        paths = write_flat(tmp_path, mem, shards=2)
        with MmapSnapshotIndexes(paths) as mm:
            assert_identical(mem, mm, queries_for(example32_instance))

    @pytest.mark.parametrize("use_bitset", [False, True, None])
    def test_tiny_dataset(self, tiny_dataset, tmp_path, use_bitset):
        from repro.pipeline import preprocess

        variant = Variant.threshold_jaccard(0.6)
        instance, _ = preprocess(tiny_dataset, variant)
        tree = build_labeled_tree(instance, variant)
        mem = SnapshotIndexes(tree, instance, variant, use_bitset=use_bitset)
        paths = write_flat(tmp_path, mem, shards=4)
        with MmapSnapshotIndexes(paths, use_bitset=use_bitset) as mm:
            assert mm.uses_bitset == mem.uses_bitset
            assert_identical(mem, mm, queries_for(instance))

    def test_sharded_equals_unsharded(self, figure2_instance, tmp_path):
        variant = Variant.threshold_jaccard(0.6)
        tree = build_labeled_tree(figure2_instance, variant)
        mem = SnapshotIndexes(tree, figure2_instance, variant)
        (tmp_path / "s1").mkdir()
        (tmp_path / "s5").mkdir()
        one = write_flat(tmp_path / "s1", mem, shards=1)
        many = write_flat(tmp_path / "s5", mem, shards=5)
        with MmapSnapshotIndexes(one) as a, MmapSnapshotIndexes(many) as b:
            for q in queries_for(figure2_instance):
                assert a.intersection_counts(frozenset(q)) == (
                    b.intersection_counts(frozenset(q))
                )
                assert a.best_category(frozenset(q)) == (
                    b.best_category(frozenset(q))
                )

    def test_compile_is_deterministic(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.6)
        tree = build_labeled_tree(figure2_instance, variant)
        mem = SnapshotIndexes(tree, figure2_instance, variant)
        assert compile_flat_indexes(mem, shards=3) == (
            compile_flat_indexes(mem, shards=3)
        )


class TestStoreIntegration:
    def test_save_emits_flat_alongside_json(self, figure2_instance, tmp_path):
        variant = Variant.threshold_jaccard(0.6)
        tree = build_labeled_tree(figure2_instance, variant)
        store = SnapshotStore(tmp_path)
        info = store.save(tree, figure2_instance, variant, flat_shards=2)
        paths = store.flat_paths(info.snapshot_id)
        assert [p.name for p in paths] == [
            flat_file_name(0, 2), flat_file_name(1, 2)
        ]

    def test_flat_matches_round_tripped_snapshot(
        self, figure2_instance, tmp_path
    ):
        # The flat file must agree with what a JSON reload serves (the
        # round-tripped tree), not with the pre-save in-memory tree.
        variant = Variant.threshold_jaccard(0.6)
        tree = build_labeled_tree(figure2_instance, variant)
        store = SnapshotStore(tmp_path)
        info = store.save(tree, figure2_instance, variant)
        loaded = store.load(info.snapshot_id)
        mem = SnapshotIndexes(loaded.tree, loaded.instance, loaded.variant)
        with MmapSnapshotIndexes(store.flat_paths(info.snapshot_id)) as mm:
            assert_identical(mem, mm, queries_for(figure2_instance))

    def test_ensure_flat_compiles_for_old_snapshots(
        self, figure2_instance, tmp_path
    ):
        variant = Variant.threshold_jaccard(0.6)
        tree = build_labeled_tree(figure2_instance, variant)
        store = SnapshotStore(tmp_path)
        info = store.save(tree, figure2_instance, variant)
        for path in store.flat_paths(info.snapshot_id):
            path.unlink()  # simulate a snapshot from before the flat layout
        assert store.flat_paths(info.snapshot_id) == []
        paths = store.ensure_flat(info.snapshot_id, shards=2)
        assert len(paths) == 2
        assert store.ensure_flat(info.snapshot_id) == paths  # idempotent

    def test_ensure_flat_unknown_snapshot(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(SnapshotError, match="no snapshot"):
            store.ensure_flat("snap-doesnotexist")

    def test_prepare_mmap_generation(self, figure2_instance, tmp_path):
        variant = Variant.threshold_jaccard(0.6)
        tree = build_labeled_tree(figure2_instance, variant)
        store = SnapshotStore(tmp_path)
        info = store.save(tree, figure2_instance, variant)
        generation = prepare_mmap_generation(store)
        assert generation.snapshot_id == info.snapshot_id
        assert generation.tree is None and generation.instance is None
        assert isinstance(generation.indexes, MmapSnapshotIndexes)
        generation.indexes.close()

    def test_prepare_mmap_generation_empty_store(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(SnapshotError, match="no current snapshot"):
            prepare_mmap_generation(store)


class TestCrashInjection:
    @pytest.fixture()
    def flat_path(self, figure2_instance, tmp_path):
        variant = Variant.threshold_jaccard(0.6)
        tree = build_labeled_tree(figure2_instance, variant)
        mem = SnapshotIndexes(tree, figure2_instance, variant)
        return write_flat(tmp_path, mem)[0]

    def test_wrong_magic(self, flat_path):
        blob = bytearray(flat_path.read_bytes())
        blob[:4] = b"NOPE"
        flat_path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="bad magic"):
            MmapSnapshotIndexes([flat_path])

    def test_truncated_tail(self, flat_path):
        blob = flat_path.read_bytes()
        flat_path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(SnapshotError, match="torn or truncated"):
            MmapSnapshotIndexes([flat_path])

    def test_truncated_to_almost_nothing(self, flat_path):
        flat_path.write_bytes(flat_path.read_bytes()[:5])
        with pytest.raises(SnapshotError, match="truncated"):
            MmapSnapshotIndexes([flat_path])

    def test_torn_trailer(self, flat_path):
        # A partially-flushed write: right length, trailer never landed.
        blob = bytearray(flat_path.read_bytes())
        blob[-12:] = b"\0" * 12
        flat_path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="torn or truncated"):
            MmapSnapshotIndexes([flat_path])

    def test_future_format_version(self, flat_path):
        blob = bytearray(flat_path.read_bytes())
        header_len = len(blob) - _PREFIX.size  # keep length field intact
        blob[:_PREFIX.size] = _PREFIX.pack(
            FLAT_MAGIC,
            FLAT_FORMAT_VERSION + 1,
            struct.unpack_from("<Q", blob, 8)[0],
        )
        flat_path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="newer than supported"):
            MmapSnapshotIndexes([flat_path])

    def test_corrupt_header_json(self, flat_path):
        blob = bytearray(flat_path.read_bytes())
        blob[_PREFIX.size: _PREFIX.size + 8] = b"{broken!"
        flat_path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="corrupt header"):
            MmapSnapshotIndexes([flat_path])

    def test_incomplete_shard_set(self, figure2_instance, tmp_path):
        variant = Variant.threshold_jaccard(0.6)
        tree = build_labeled_tree(figure2_instance, variant)
        mem = SnapshotIndexes(tree, figure2_instance, variant)
        paths = write_flat(tmp_path, mem, shards=3)
        with pytest.raises(SnapshotError, match="expected 3 flat shards"):
            MmapSnapshotIndexes(paths[:2])

    def test_empty_path_list(self):
        with pytest.raises(SnapshotError, match="no flat snapshot"):
            MmapSnapshotIndexes([])

    def test_rejected_files_leak_no_descriptors(self, flat_path):
        import resource

        blob = bytearray(flat_path.read_bytes())
        blob[:4] = b"NOPE"
        flat_path.write_bytes(bytes(blob))
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        # Far more attempts than any fd headroom: a leak would hit EMFILE.
        for _ in range(min(soft + 64, 4096)):
            with pytest.raises(SnapshotError):
                MmapSnapshotIndexes([flat_path])


class TestEncoding:
    def test_unencodable_item_fails_compile(self, tmp_path):
        instance = make_instance([{frozenset({"x"}), "a"}], weights=[1.0])
        variant = Variant.threshold_jaccard(0.6)
        tree = CTCR().build(instance, variant)
        mem = SnapshotIndexes(tree, instance, variant)
        with pytest.raises(SnapshotError, match="JSON-representable"):
            compile_flat_indexes(mem)

    def test_encode_item_canonical(self):
        assert encode_item("a") == b'"a"'
        assert encode_item(3) == b"3"
        assert encode_item(("a",)) == b'["a"]'  # tuples render as arrays
        assert encode_item(frozenset({"x"})) is None
        assert encode_item(float("nan")) is None

    def test_shard_of_stable(self):
        assert shard_of(b'"a"', 1) == 0
        assert 0 <= shard_of(b'"a"', 7) < 7
        assert shard_of(b'"a"', 7) == shard_of(b'"a"', 7)


# Random catalogs: JSON-representable items, a couple of variants.
_instances = st.lists(
    st.tuples(
        st.sets(
            st.one_of(st.integers(0, 12), st.sampled_from("abcdefgh")),
            min_size=1,
            max_size=6,
        ),
        st.floats(min_value=0.1, max_value=5.0),
    ),
    min_size=1,
    max_size=6,
).map(
    lambda pairs: make_instance(
        [p[0] for p in pairs], weights=[p[1] for p in pairs]
    )
)

_variants = st.sampled_from(
    [
        Variant.exact(),
        Variant.perfect_recall(0.6),
        Variant.threshold_jaccard(0.6),
        Variant.cutoff_f1(0.7),
    ]
)


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(_instances, _variants, st.integers(1, 4))
    def test_random_catalogs_round_trip(
        self, tmp_path_factory, instance, variant, shards
    ):
        tree = CTCR().build(instance, variant)
        mem = SnapshotIndexes(tree, instance, variant)
        tmp_path = tmp_path_factory.mktemp("flat")
        paths = write_flat(tmp_path, mem, shards=shards)
        with MmapSnapshotIndexes(paths) as mm:
            assert_identical(mem, mm, [q.items for q in instance.sets])
