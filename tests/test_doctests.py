"""Docstring examples must stay executable."""

import doctest

import pytest

import repro.algorithms.cct
import repro.clustering.agglomerative
import repro.clustering.distance
import repro.core.input_sets
import repro.core.similarity
import repro.search.analyzer
import repro.utils.timer

MODULES = [
    repro.algorithms.cct,
    repro.clustering.agglomerative,
    repro.clustering.distance,
    repro.core.input_sets,
    repro.core.similarity,
    repro.search.analyzer,
    repro.utils.timer,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} lost its examples"
    assert result.failed == 0
