"""Differential tests: the bitset kernel vs the set-based similarity path.

Every batched result of :class:`repro.core.bitset.BitsetUniverse` is
checked entry by entry against the scalar functions in
:mod:`repro.core.similarity` on randomized instances, plus the edge
cases the score conventions pin down (empty sets, singletons, disjoint
and identical sets).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.core import bitset
from repro.core.bitset import BitsetUniverse
from repro.core.similarity import (
    f1,
    jaccard,
    precision,
    recall,
    variant_score,
)
from repro.core.variants import Variant
from repro.utils import make_rng

DELTAS = [0.25, 0.5, 1.0]
VARIANT_MAKERS = [
    Variant.threshold_jaccard,
    Variant.cutoff_jaccard,
    Variant.threshold_f1,
    Variant.cutoff_f1,
    Variant.perfect_recall,
]


def random_families(seed, n_sets=24, n_items=60, max_size=12, empties=True):
    rng = make_rng(seed)
    universe = [f"i{k}" for k in range(n_items)]
    families = []
    for _ in range(n_sets):
        size = rng.randint(0 if empties else 1, max_size)
        families.append(frozenset(rng.sample(universe, size)))
    return families, universe


EDGE_FAMILIES = [
    frozenset(),
    frozenset(),  # two empties: jaccard/f1 = 1 by convention
    frozenset({"a"}),
    frozenset({"a"}),  # identical singletons
    frozenset({"b"}),  # disjoint from the above
    frozenset({"a", "b", "c"}),
    frozenset({"x", "y"}),  # disjoint from everything else
]


def edge_universe():
    return BitsetUniverse(EDGE_FAMILIES)


class TestPairwiseScores:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matrices_match_scalar_functions(self, seed):
        families, _ = random_families(seed)
        uni = BitsetUniverse(families)
        matrices = {
            jaccard: uni.pairwise_jaccard(),
            f1: uni.pairwise_f1(),
            precision: uni.pairwise_precision(),
            recall: uni.pairwise_recall(),
        }
        for fn, matrix in matrices.items():
            for i, a in enumerate(families):
                for j, b in enumerate(families):
                    assert matrix[i, j] == fn(a, b), (fn.__name__, i, j)

    def test_edge_conventions(self):
        uni = edge_universe()
        jac = uni.pairwise_jaccard()
        assert jac[0, 1] == 1.0  # jaccard(empty, empty) = 1
        assert uni.pairwise_f1()[0, 1] == 1.0
        assert uni.pairwise_precision()[2, 0] == 0.0  # precision(q, empty)
        assert uni.pairwise_recall()[0, 5] == 1.0  # recall(empty, C)
        assert jac[2, 3] == 1.0  # identical singletons
        assert jac[2, 4] == 0.0  # disjoint singletons
        assert jac[5, 6] == 0.0  # disjoint sets

    @pytest.mark.parametrize("maker", VARIANT_MAKERS, ids=lambda m: m.__name__)
    @pytest.mark.parametrize("delta", DELTAS)
    def test_variant_scores_match(self, maker, delta):
        variant = maker(delta)
        for seed in (3, 4):
            families, _ = random_families(seed, n_sets=18)
            uni = BitsetUniverse(families)
            scores = uni.pairwise_variant_scores(variant)
            for i, q in enumerate(families):
                for j, c in enumerate(families):
                    assert scores[i, j] == variant_score(variant, q, c), (
                        i,
                        j,
                        delta,
                    )

    @pytest.mark.parametrize("maker", VARIANT_MAKERS, ids=lambda m: m.__name__)
    def test_variant_scores_edges(self, maker):
        for delta in DELTAS:
            variant = maker(delta)
            uni = edge_universe()
            scores = uni.pairwise_variant_scores(variant)
            for i, q in enumerate(EDGE_FAMILIES):
                for j, c in enumerate(EDGE_FAMILIES):
                    assert scores[i, j] == variant_score(variant, q, c)

    def test_per_row_deltas(self):
        families, _ = random_families(5, n_sets=12)
        variant = Variant.cutoff_jaccard(0.5)
        deltas = [0.25 + 0.05 * i for i in range(len(families))]
        uni = BitsetUniverse(families)
        scores = uni.pairwise_variant_scores(variant, delta=np.array(deltas))
        for i, q in enumerate(families):
            for j, c in enumerate(families):
                assert scores[i, j] == variant_score(
                    variant, q, c, delta=deltas[i]
                )


class TestIntersections:
    @pytest.mark.parametrize("seed", [0, 6])
    def test_sparse_matches_dense(self, seed):
        families, _ = random_families(seed)
        uni = BitsetUniverse(families)
        dense = uni.pairwise_intersections()
        ii, jj, counts = uni.intersecting_pairs()
        assert np.all(ii < jj)
        assert np.array_equal(dense[ii, jj], counts)
        # Every intersecting upper-triangle pair must be listed.
        upper = np.triu(dense, k=1)
        assert counts.sum() == upper.sum()

    def test_item_mask_restricts_counts(self):
        families, universe = random_families(7)
        uni = BitsetUniverse(families)
        keep = {item for item in universe if item.endswith(("1", "3", "5"))}
        mask = np.array([item in keep for item in uni.items])
        masked = BitsetUniverse([s & keep for s in families], universe=keep)
        dense = masked.pairwise_intersections()
        ii, jj, counts = uni.intersecting_pairs(item_mask=mask)
        assert np.array_equal(dense[ii, jj], counts)
        assert counts.sum() == np.triu(dense, k=1).sum()

    def test_dense_diagonal_is_set_size(self):
        families, _ = random_families(8)
        uni = BitsetUniverse(families)
        assert np.array_equal(
            np.diag(uni.pairwise_intersections()), uni.sizes
        )

    def test_pack_and_rowwise(self):
        families, universe = random_families(9, empties=False)
        uni = BitsetUniverse(families, universe=universe)
        probe = frozenset(universe[::3])
        packed = uni.pack(probe)
        sizes = uni.intersection_sizes(packed)
        for i, s in enumerate(families):
            assert sizes[i] == len(s & probe)
        probes = [frozenset(universe[k::4]) for k in range(4)]
        rows = [1, 3, 5, 7]
        many = uni.pack_many(probes)
        inter = uni.rowwise_intersections(rows, many)
        for k, (row, p) in enumerate(zip(rows, probes)):
            assert inter[k] == len(families[row] & p)

    def test_n_jobs_parity(self):
        families, _ = random_families(10, n_sets=40)
        serial = BitsetUniverse(families).pairwise_intersections(n_jobs=1)
        parallel = BitsetUniverse(families).pairwise_intersections(n_jobs=2)
        assert np.array_equal(serial, parallel)

    def test_integer_universe_fast_path(self):
        # Integer item ids take the searchsorted mapping; results must
        # match a string-keyed (dict-mapped) rendering of the same sets.
        rng = make_rng(11)
        families = [
            frozenset(rng.sample(range(200), rng.randint(0, 15)))
            for _ in range(20)
        ]
        as_str = [frozenset(f"i{k:04d}" for k in s) for s in families]
        ints = BitsetUniverse(families).pairwise_intersections()
        strs = BitsetUniverse(as_str).pairwise_intersections()
        assert np.array_equal(ints, strs)


class TestGating:
    def test_flag_false_wins(self):
        assert bitset.should_use(10_000, 10_000, flag=False) is False

    def test_flag_true_forces(self):
        assert bitset.should_use(2, 2, flag=True) is True

    def test_auto_small_instances_stay_set_based(self):
        assert bitset.should_use(4, 16, flag=None) is False

    def test_auto_large_instances_use_kernel(self):
        assert bitset.should_use(1000, 10_000, flag=None) is True

    def test_available(self):
        assert bitset.available() is True


@pytest.mark.slow
def test_benchmark_smoke():
    """The kernel benchmark's --smoke mode runs end to end."""
    root = Path(__file__).resolve().parents[1]
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from benchmarks.bench_bitset_kernel import run

    rows = run(smoke=True)
    assert rows, "smoke run produced no measurements"
