"""Failure injection: budget exhaustion, degenerate inputs, fallbacks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import CCT, CTCR, CTCRConfig
from repro.incremental import CatalogDelta
from repro.algorithms.condense import condense
from repro.core import CategoryTree, Variant, make_instance, score_tree
from repro.mis import (
    BudgetExceededError,
    MISConfig,
    WeightedGraph,
    WeightedHypergraph,
    solve_conflicts,
    solve_exact,
    solve_hypergraph_mis,
)


def dense_graph(n: int) -> WeightedGraph:
    g = WeightedGraph(range(n), {i: 1.0 + (i % 3) for i in range(n)})
    for a in range(n):
        for b in range(a + 1, n):
            if (a + b) % 3:
                g.add_edge(a, b)
    return g


_PETERSEN_EDGES = [
    (0, 1), (1, 2), (2, 3), (3, 4), (4, 0),  # outer cycle
    (5, 7), (7, 9), (9, 6), (6, 8), (8, 5),  # inner star
    (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),  # spokes
]


def reduction_resistant_graph(copies: int) -> WeightedGraph:
    """Disjoint Petersen graphs: 3-regular, girth 5, twin/domination-free.

    Degree-based folds need degree <= 2 and the uniform weights defeat
    the weight-based rules, so the kernel keeps all vertices and
    branch-and-bound must actually branch.
    """
    g = WeightedGraph()
    for c in range(copies):
        base = 10 * c
        for i in range(10):
            g.add_vertex(base + i, 1.0)
        for a, b in _PETERSEN_EDGES:
            g.add_edge(base + a, base + b)
    return g


class TestBudgets:
    def test_petersen_gadget_resists_reductions(self):
        from repro.mis import reduce_graph

        g = reduction_resistant_graph(1)
        assert len(reduce_graph(g).kernel) == 10

    def test_exact_raises_on_tiny_budget(self):
        with pytest.raises(BudgetExceededError):
            solve_exact(reduction_resistant_graph(10), node_budget=3)

    def test_facade_falls_back_to_greedy(self):
        g = dense_graph(30)
        hg = WeightedHypergraph(
            g.vertices(), dict(g.weights),
            [frozenset(e) for e in g.edges()],
        )
        solution = solve_conflicts(hg, MISConfig(node_budget=3))
        assert g.is_independent_set(solution)
        assert solution  # something useful still comes back

    def test_hypergraph_budget_fallback(self):
        hg = WeightedHypergraph(
            list(range(12)),
            {i: 1.0 for i in range(12)},
            [
                frozenset({i, (i + 1) % 12, (i + 2) % 12})
                for i in range(12)
            ],
        )
        solution = solve_hypergraph_mis(hg, node_budget=2)
        assert hg.is_independent(solution)

    def test_ctcr_survives_tiny_mis_budget(self, figure2_instance):
        builder = CTCR(CTCRConfig(mis=MISConfig(node_budget=1)))
        tree = builder.build(figure2_instance, Variant.exact())
        tree.validate(universe=figure2_instance.universe)
        assert score_tree(
            tree, figure2_instance, Variant.exact()
        ).normalized > 0


class TestDegenerateInputs:
    def test_single_item_universe(self):
        inst = make_instance([{"only"}])
        for builder in (CTCR(), CCT()):
            tree = builder.build(inst, Variant.exact())
            tree.validate(universe=inst.universe)
            assert score_tree(tree, inst, Variant.exact()).normalized == 1.0

    def test_identical_sets(self):
        inst = make_instance([{"a", "b"}, {"a", "b"}, {"a", "b"}])
        for builder in (CTCR(), CCT()):
            tree = builder.build(inst, Variant.exact())
            tree.validate(universe=inst.universe)
            report = score_tree(tree, inst, Variant.exact())
            assert report.normalized == 1.0  # one category covers all

    def test_zero_weight_sets(self):
        inst = make_instance([{"a", "b"}, {"b", "c"}], weights=[0.0, 0.0])
        tree = CTCR().build(inst, Variant.exact())
        tree.validate(universe=inst.universe)

    def test_all_sets_conflict(self):
        # Pairwise intersecting, pairwise non-nested: only one survives.
        inst = make_instance(
            [{"x", 1, 2}, {"x", 3, 4}, {"x", 5, 6}], weights=[1.0, 2.0, 3.0]
        )
        tree = CTCR().build(inst, Variant.exact())
        report = score_tree(tree, inst, Variant.exact())
        assert report.covered_weight == 3.0  # the heaviest one

    def test_giant_single_set(self):
        inst = make_instance([set(range(500))])
        tree = CTCR().build(inst, Variant.threshold_jaccard(0.8))
        tree.validate(universe=inst.universe)
        assert (
            score_tree(tree, inst, Variant.threshold_jaccard(0.8)).normalized
            == 1.0
        )


class TestCondenseInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sets(st.integers(0, 9), min_size=1, max_size=5),
            min_size=1,
            max_size=5,
        ),
        st.lists(
            st.sets(st.integers(0, 9), min_size=1, max_size=6),
            min_size=1,
            max_size=5,
        ),
    )
    def test_condense_preserves_validity_and_score(self, raw_sets, raw_cats):
        """Lines 24-25 "may only increase the score" on arbitrary trees.

        The comparison excludes the miscellaneous category: its covers
        are incidental (it merely parks unassigned items) and its exact
        contents differ between the two sides.
        """
        from repro.algorithms.condense import (
            remove_noncovered_items,
            remove_noncovering_categories,
        )

        inst = make_instance(raw_sets)
        tree = CategoryTree()
        used: set = set()
        for items in raw_cats:
            fresh = items - used  # keep items on one branch
            if fresh:
                tree.add_category(fresh)
                used |= fresh
        variant = Variant.threshold_jaccard(0.6)
        before = score_tree(tree, inst, variant).normalized
        remove_noncovered_items(tree, inst, variant)
        remove_noncovering_categories(tree, inst, variant)
        tree.validate()
        after = score_tree(tree, inst, variant).normalized
        assert after >= before - 1e-9


class TestIncrementalCrash:
    """A crash mid-delta-build must not corrupt the snapshot store.

    The delta path only saves a snapshot (and its state sidecar) after
    the build succeeds, so an injected failure anywhere inside the
    rebuild must leave CURRENT pointing at the pre-crash snapshot, leave
    no staged garbage behind, and let the next full rebuild publish
    normally.
    """

    def _swapper_with_store(self, tmp_path, figure2_instance):
        from repro.incremental import IncrementalBuilder
        from repro.serving import ServingEngine, SnapshotStore
        from repro.serving.hotswap import HotSwapper

        variant = Variant.threshold_jaccard(0.8)
        store = SnapshotStore(tmp_path)
        engine = ServingEngine()
        swapper = HotSwapper(engine)
        builder = IncrementalBuilder(CTCRConfig())
        swapper.swap_from_build(
            builder, figure2_instance, variant, store, rebuild_mode="delta"
        )
        return swapper, builder, store, variant

    def test_crash_mid_delta_leaves_current_untouched(
        self, tmp_path, figure2_instance, monkeypatch
    ):
        from tests.churn import random_delta
        import random

        swapper, builder, store, variant = self._swapper_with_store(
            tmp_path, figure2_instance
        )
        current_before = store.current_id()
        assert current_before is not None
        state_before = swapper.delta_state

        delta = random_delta(figure2_instance, random.Random(1), frac=0.4)
        churned = delta.apply(figure2_instance)

        def boom(*args, **kwargs):
            raise RuntimeError("injected crash mid-delta-build")

        monkeypatch.setattr(type(builder), "delta_build", boom)
        with pytest.raises(RuntimeError, match="injected crash"):
            swapper.swap_from_build(
                builder, churned, variant, store, rebuild_mode="delta"
            )
        monkeypatch.undo()

        # CURRENT still points at the pre-crash snapshot and the store
        # has no half-written staging directories.
        assert store.current_id() == current_before
        assert not [p for p in tmp_path.iterdir() if "staging" in p.name]
        assert swapper.delta_state is state_before

        # The next rebuild (bootstrapping or delta) publishes normally.
        gen = swapper.swap_from_build(
            builder, churned, variant, store, rebuild_mode="delta"
        )
        assert store.current_id() == gen.snapshot_id
        assert store.current_id() != current_before

    def test_crash_inside_conflict_update_is_equally_safe(
        self, tmp_path, figure2_instance, monkeypatch
    ):
        """Inject deeper: the pairwise-update stage itself dies."""
        from repro.incremental import builder as builder_mod

        swapper, builder, store, variant = self._swapper_with_store(
            tmp_path, figure2_instance
        )
        current_before = store.current_id()
        churned = CatalogDelta(
            removed=frozenset({figure2_instance.sets[1].sid})
        ).apply(figure2_instance)

        def boom(*args, **kwargs):
            raise RuntimeError("injected crash in update_pairwise")

        monkeypatch.setattr(builder_mod, "update_pairwise", boom)
        with pytest.raises(RuntimeError, match="update_pairwise"):
            swapper.swap_from_build(
                builder, churned, variant, store, rebuild_mode="delta"
            )
        monkeypatch.undo()

        assert store.current_id() == current_before
        assert not [p for p in tmp_path.iterdir() if "staging" in p.name]
        gen = swapper.swap_from_build(
            builder, churned, variant, store, rebuild_mode="delta"
        )
        assert store.current_id() == gen.snapshot_id

    def test_crash_during_sidecar_save_keeps_prior_sidecar(
        self, tmp_path, figure2_instance, monkeypatch
    ):
        """A torn state-sidecar write never leaves a torn file."""
        import json

        from repro.incremental import IncrementalStateStore

        swapper, builder, store, variant = self._swapper_with_store(
            tmp_path, figure2_instance
        )
        current_before = store.current_id()
        states = IncrementalStateStore(store.root)
        assert states.has(current_before)

        real_replace = __import__("os").replace

        def torn_replace(src, dst):
            if "incremental" in str(dst):
                raise RuntimeError("injected crash during sidecar rename")
            return real_replace(src, dst)

        churned = CatalogDelta(
            reweighted=((figure2_instance.sets[0].sid, 9.0),)
        ).apply(figure2_instance)
        import repro.incremental.state as state_mod

        monkeypatch.setattr(state_mod.os, "replace", torn_replace)
        with pytest.raises(RuntimeError, match="sidecar rename"):
            swapper.swap_from_build(
                builder, churned, variant, store, rebuild_mode="delta"
            )
        monkeypatch.undo()

        # The old sidecar is still valid JSON (atomic replace semantics).
        old_sidecar = states.path_for(current_before)
        json.loads(old_sidecar.read_text())
        assert states.load(current_before) is not None
