"""Tests for the faceted-search effort simulation."""

import pytest

from repro.algorithms import CTCR
from repro.catalog import generate_products, FASHION
from repro.core import InputSet, OCTInstance, Variant
from repro.evaluation import facet_effort, mean_effort


@pytest.fixture(scope="module")
def catalog():
    products = generate_products(FASHION, 400, seed=21)
    return products


def attribute_set(products, **criteria) -> frozenset:
    return frozenset(
        p.pid
        for p in products
        if all(p.attributes.get(k) == v for k, v in criteria.items())
    )


class TestFacetEffort:
    def test_precise_cover_needs_no_steps(self, catalog):
        items = attribute_set(catalog, product_type="shirt", color="black")
        inst = OCTInstance([InputSet(sid=0, items=items)])
        variant = Variant.perfect_recall(0.9)
        tree = CTCR().build(inst, variant)
        paths = facet_effort(tree, inst, variant, catalog)
        assert len(paths) == 1
        assert paths[0].reached_goal
        assert paths[0].steps == ()

    def test_broad_cover_filters_down(self, catalog):
        """A low-precision PR cover reaches the target via facet steps —
        the scenario that justifies the Perfect-Recall variant."""
        shirts = attribute_set(catalog, product_type="shirt")
        black_shirts = attribute_set(
            catalog, product_type="shirt", color="black"
        )
        assert black_shirts < shirts
        inst = OCTInstance(
            [
                InputSet(sid=0, items=shirts, weight=5.0),
                InputSet(sid=1, items=black_shirts, weight=1.0),
            ]
        )
        # Low precision requirement: both covered by one branch.
        variant = Variant.perfect_recall(0.2)
        tree = CTCR().build(inst, variant)
        paths = facet_effort(
            tree, inst, variant, catalog, precision_goal=0.95
        )
        by_sid = {p.sid: p for p in paths}
        assert 1 in by_sid
        narrow = by_sid[1]
        if narrow.start_precision < 0.95:
            assert narrow.reached_goal
            assert 1 <= len(narrow.steps) <= 3
            assert narrow.final_precision > narrow.start_precision

    def test_mean_effort(self, catalog):
        shirts = attribute_set(catalog, product_type="shirt")
        nested = attribute_set(catalog, product_type="shirt", color="black")
        inst = OCTInstance(
            [
                InputSet(sid=0, items=shirts, weight=5.0),
                InputSet(sid=1, items=nested, weight=1.0),
            ]
        )
        variant = Variant.perfect_recall(0.2)
        tree = CTCR().build(inst, variant)
        paths = facet_effort(tree, inst, variant, catalog)
        assert mean_effort(paths) >= 0.0

    def test_uncovered_sets_have_no_path(self, catalog):
        items = attribute_set(catalog, product_type="shirt")
        other = attribute_set(catalog, product_type="pants")
        # Force a conflict so something stays uncovered.
        overlap = frozenset(list(items)[:10] + list(other)[:10])
        inst = OCTInstance(
            [
                InputSet(sid=0, items=items | overlap),
                InputSet(sid=1, items=other | overlap),
            ]
        )
        variant = Variant.perfect_recall(0.9)
        tree = CTCR().build(inst, variant)
        paths = facet_effort(tree, inst, variant, catalog)
        from repro.core import score_tree

        covered = score_tree(tree, inst, variant).covered_count
        assert len(paths) == covered
