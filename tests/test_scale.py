"""Tests for repro.scale: deterministic extreme-scale synthetic catalogs.

Determinism is the load-bearing property: the generator is built on a
stateless splitmix64 hash so the same spec yields a byte-identical
catalog in any process on any supported Python (3.10-3.12).  The golden
fingerprint below pins that across versions via the CI matrix — if it
ever changes, every previously recorded BENCH_extreme curve stops being
comparable, so treat a mismatch as a breaking change, not test rot.
"""

from __future__ import annotations

import itertools
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import score_tree
from repro.core.variants import Variant
from repro.scale import (
    ExtremeCatalog,
    ScaleSpec,
    h64,
    mix64,
    randint,
    sample_range,
    scaled_spec,
    u01,
    weighted_index,
)

# Golden fingerprint for scaled_spec(n_items=5000, n_sets=200, seed=7).
# Pinned across processes and Python versions (CI runs 3.10-3.12).
GOLDEN_SPEC = dict(n_items=5000, n_sets=200, seed=7)
GOLDEN_FINGERPRINT = (
    "14e0b9675c77d7c4b9f8b447f3c25478104cb28161f85a9e64dfcc25122c1a15"
)


class TestRng:
    def test_mix64_is_pure(self):
        assert mix64(12345) == mix64(12345)
        assert mix64(12345) != mix64(12346)

    def test_h64_varies_with_every_part(self):
        base = h64(1, 2, 3)
        assert h64(1, 2, 3) == base
        assert h64(1, 2, 4) != base
        assert h64(1, 9, 3) != base
        assert h64(2, 2, 3) != base

    def test_u01_in_unit_interval(self):
        vals = [u01(0, k) for k in range(1000)]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert 0.3 < sum(vals) / len(vals) < 0.7

    def test_randint_bounds(self):
        for k in range(500):
            v = randint(3, 10, 20, k)
            assert 10 <= v < 20
        assert {randint(3, 0, 2, k) for k in range(64)} == {0, 1}

    def test_weighted_index_respects_weights(self):
        hits = [0, 0]
        for k in range(2000):
            hits[weighted_index(5, [1.0, 9.0], k)] += 1
        assert hits[1] > hits[0] * 3

    def test_sample_range_sorted_unique_in_bounds(self):
        for k in (1, 5, 50, 200):
            got = sample_range(11, 100, 300, k, 42)
            assert got == sorted(set(got))
            assert all(100 <= v < 300 for v in got)
            assert len(got) == min(k, 200)

    def test_sample_range_full_span(self):
        assert sample_range(11, 10, 15, 99, 0) == [10, 11, 12, 13, 14]


class TestScaleSpec:
    def test_defaults_resolve_nodes(self):
        spec = ScaleSpec(n_items=10_000, n_sets=400)
        assert spec.resolved_nodes == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleSpec(n_items=0, n_sets=10)
        with pytest.raises(ValueError):
            ScaleSpec(n_items=100, n_sets=0)
        with pytest.raises(ValueError):
            ScaleSpec(n_items=100, n_sets=10, overlap=1.5)
        with pytest.raises(ValueError):
            ScaleSpec(n_items=100, n_sets=10, min_set_size=9, max_set_size=4)

    def test_canonical_covers_every_knob(self):
        a = scaled_spec(1000, 50, seed=1)
        b = scaled_spec(1000, 50, seed=1, overlap=0.3)
        assert a.canonical() != b.canonical()


class TestDeterminism:
    def test_same_seed_identical_fingerprint_in_process(self):
        a = ExtremeCatalog(scaled_spec(**GOLDEN_SPEC))
        b = ExtremeCatalog(scaled_spec(**GOLDEN_SPEC))
        assert a.fingerprint() == b.fingerprint()

    def test_golden_fingerprint_pinned(self):
        catalog = ExtremeCatalog(scaled_spec(**GOLDEN_SPEC))
        assert catalog.fingerprint() == GOLDEN_FINGERPRINT

    def test_seed_changes_fingerprint(self):
        other = dict(GOLDEN_SPEC, seed=8)
        catalog = ExtremeCatalog(scaled_spec(**other))
        assert catalog.fingerprint() != GOLDEN_FINGERPRINT

    def test_fingerprint_identical_across_processes(self):
        code = (
            "from repro.scale import ExtremeCatalog, scaled_spec;"
            f"c = ExtremeCatalog(scaled_spec(**{GOLDEN_SPEC!r}));"
            "print(c.fingerprint())"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == GOLDEN_FINGERPRINT

    def test_input_sets_replayable(self):
        catalog = ExtremeCatalog(scaled_spec(1000, 40, seed=3))
        first = [(q.sid, q.items, q.weight) for q in catalog.iter_input_sets()]
        second = [(q.sid, q.items, q.weight) for q in catalog.iter_input_sets()]
        assert first == second


class TestStreaming:
    def test_iter_input_sets_is_lazy(self):
        # A catalog far too large to materialize: taking the head must
        # not require generating the other ten million sets.
        catalog = ExtremeCatalog(
            scaled_spec(50_000_000, 10_000_000, seed=0)
        )
        head = list(itertools.islice(catalog.iter_input_sets(), 5))
        assert [q.sid for q in head] == [0, 1, 2, 3, 4]
        assert all(q.items for q in head)

    def test_weights_follow_zipf(self):
        catalog = ExtremeCatalog(scaled_spec(1000, 50, seed=0))
        weights = [q.weight for q in catalog.iter_input_sets()]
        assert weights == sorted(weights, reverse=True)
        assert weights[0] > 10 * weights[-1]


class TestPlantedStructure:
    @pytest.fixture(scope="class")
    def catalog(self):
        return ExtremeCatalog(scaled_spec(4000, 120, seed=5))

    def test_leaf_quotas_partition_items(self, catalog):
        tax = catalog.taxonomy
        assert sum(tax.leaf_quota) == 4000
        covered = []
        for i, v in enumerate(tax.leaves):
            assert tax.hi[v] - tax.lo[v] == tax.leaf_quota[i]
            covered.append((tax.lo[v], tax.hi[v]))
        covered.sort()
        assert covered[0][0] == 0 and covered[-1][1] == 4000
        for (_, hi), (lo, _) in zip(covered, covered[1:]):
            assert hi == lo

    def test_parent_intervals_contain_children(self, catalog):
        tax = catalog.taxonomy
        for v in range(1, tax.n_nodes):
            p = tax.parent[v]
            assert tax.lo[p] <= tax.lo[v] and tax.hi[v] <= tax.hi[p]

    def test_planted_tree_is_valid(self, catalog):
        instance = catalog.instance()
        tree = catalog.planted_tree()
        tree.validate(universe=instance.universe, bound=instance.bound)

    def test_planted_tree_scores_reasonably(self, catalog):
        instance = catalog.instance()
        tree = catalog.planted_tree()
        result = score_tree(tree, instance, Variant.threshold_jaccard(0.1))
        assert result.normalized > 0.15

    def test_sets_respect_size_bounds(self, catalog):
        # The anchor sample is capped at max_set_size; overlap borrows
        # and conflict unions ride on top, each bounded by a fraction of
        # the base, so the hard ceiling is 2x.
        spec = catalog.spec
        for q in catalog.iter_input_sets():
            assert 1 <= len(q.items) <= 2 * spec.max_set_size
            assert all(0 <= i < spec.n_items for i in q.items)
