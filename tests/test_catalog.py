"""Tests for the synthetic catalog: products, taxonomy, queries, datasets."""

import pytest

from repro.catalog import (
    DATASET_SPECS,
    ELECTRONICS,
    FASHION,
    build_existing_tree,
    generate_products,
    generate_query_log,
    load_dataset,
    matching_products,
    titles_of,
    tree_categories_as_input_sets,
)


class TestSchemas:
    def test_schema_lookup(self):
        assert FASHION.attribute("brand").name == "brand"
        with pytest.raises(KeyError):
            FASHION.attribute("warranty")

    def test_head_attribute_exists(self):
        for schema in (FASHION, ELECTRONICS):
            assert schema.head_attribute in schema.attribute_names()

    def test_weights_decrease(self):
        weights = FASHION.attribute("brand").weights()
        assert weights == sorted(weights, reverse=True)


class TestProducts:
    def test_count_and_ids_unique(self):
        products = generate_products(FASHION, 50, seed=1)
        assert len(products) == 50
        assert len({p.pid for p in products}) == 50

    def test_deterministic_per_seed(self):
        a = generate_products(FASHION, 20, seed=5)
        b = generate_products(FASHION, 20, seed=5)
        assert [p.title for p in a] == [p.title for p in b]

    def test_different_seeds_differ(self):
        a = generate_products(FASHION, 30, seed=1)
        b = generate_products(FASHION, 30, seed=2)
        assert [p.title for p in a] != [p.title for p in b]

    def test_applicable_attributes_assigned(self):
        for p in generate_products(ELECTRONICS, 40, seed=0):
            head = p.attributes[ELECTRONICS.head_attribute]
            expected = {
                attr.name
                for attr in ELECTRONICS.attributes
                if attr.applicable(head)
            }
            assert set(p.attributes) == expected

    def test_conditional_attribute_respected(self):
        products = generate_products(ELECTRONICS, 300, seed=1)
        for p in products:
            has_storage = "storage" in p.attributes
            eligible = p.attributes["product_type"] in (
                "phone", "laptop", "tablet", "memory card"
            )
            assert has_storage == eligible

    def test_title_contains_head_value(self):
        for p in generate_products(FASHION, 30, seed=3):
            assert p.attributes["product_type"] in p.title

    def test_titles_of(self):
        products = generate_products(FASHION, 5, seed=0)
        titles = titles_of(products)
        assert titles[products[0].pid] == products[0].title

    def test_matching_products(self):
        products = generate_products(FASHION, 200, seed=4)
        black = matching_products(products, {"color": "black"})
        assert black
        assert all(p.attributes["color"] == "black" for p in black)
        both = matching_products(
            products, {"color": "black", "product_type": "shirt"}
        )
        assert set(both) <= set(black)


class TestTaxonomy:
    def test_tree_is_valid(self):
        products = generate_products(FASHION, 300, seed=2)
        tree = build_existing_tree(products, ["product_type", "brand"], min_size=5)
        tree.validate(universe={p.pid for p in products})

    def test_top_level_partitions_by_first_attribute(self):
        products = generate_products(FASHION, 300, seed=2)
        tree = build_existing_tree(products, ["product_type"], min_size=5)
        labels = {c.label for c in tree.root.children}
        types = {p.attributes["product_type"] for p in products}
        assert labels <= types

    def test_min_size_respected(self):
        products = generate_products(FASHION, 300, seed=2)
        tree = build_existing_tree(
            products, ["product_type", "brand", "color"], min_size=10
        )
        for cat in tree.non_root_categories():
            assert len(cat.items) >= 1

    def test_categories_as_input_sets(self):
        products = generate_products(FASHION, 200, seed=2)
        tree = build_existing_tree(products, ["product_type"], min_size=5)
        sets = tree_categories_as_input_sets(tree, start_sid=100, weight=2.0)
        assert sets
        assert all(q.source == "existing" for q in sets)
        assert all(q.weight == 2.0 for q in sets)
        assert [q.sid for q in sets] == list(
            range(100, 100 + len(sets))
        )


class TestQueryLog:
    def test_counts_and_days(self):
        log = generate_query_log(FASHION, 50, days=30, seed=1)
        assert len(log) <= 50
        assert all(len(q.daily_counts) == 30 for q in log.queries)

    def test_deterministic(self):
        a = generate_query_log(FASHION, 40, seed=9)
        b = generate_query_log(FASHION, 40, seed=9)
        assert [q.text for q in a.queries] == [q.text for q in b.queries]

    def test_texts_unique(self):
        log = generate_query_log(FASHION, 60, seed=2)
        texts = [q.text for q in log.queries]
        assert len(texts) == len(set(texts))

    def test_noise_queries_marked(self):
        log = generate_query_log(FASHION, 100, seed=3, noise_fraction=0.3)
        assert any(not q.coherent for q in log.queries)

    def test_trend_queries_spike_late(self):
        log = generate_query_log(
            FASHION, 30, seed=4, trend_queries=["kobe memorabilia"]
        )
        trend = [q for q in log.queries if q.text == "kobe memorabilia"][0]
        assert sum(trend.daily_counts[:76]) == 0
        assert sum(trend.daily_counts[76:]) > 0
        assert log.trend_events and log.trend_events[0].text == "kobe memorabilia"

    def test_recent_weighting(self):
        log = generate_query_log(
            FASHION, 30, seed=4, trend_queries=["kobe memorabilia"]
        )
        full = {q.text: q.mean_daily for q in log.queries}
        recent = log.recent_weighted(14)
        assert recent["kobe memorabilia"] > full["kobe memorabilia"]

    def test_mean_and_min_daily(self):
        log = generate_query_log(FASHION, 20, seed=5, rare_fraction=1.0)
        assert any(q.min_daily() == 0 for q in log.queries)


class TestDatasets:
    def test_specs_cover_paper_datasets(self):
        assert {"A", "B", "C", "D", "E"} <= set(DATASET_SPECS)
        # The paper's other public sets (Section 5.2).
        assert {"CrowdFlower", "HomeDepot", "VictoriasSecret"} <= set(
            DATASET_SPECS
        )

    def test_public_datasets_load(self):
        for name in ("HomeDepot", "VictoriasSecret"):
            ds = load_dataset(name, scale=0.01, seed=2)
            assert ds.uniform_weights
            assert ds.n_items >= 200
            ds.existing_tree.validate(
                universe={p.pid for p in ds.products}
            )

    def test_load_tiny(self, tiny_dataset):
        assert tiny_dataset.n_items >= 200
        assert tiny_dataset.n_queries >= 40
        assert len(tiny_dataset.titles) == tiny_dataset.n_items

    def test_existing_tree_valid(self, tiny_dataset):
        tiny_dataset.existing_tree.validate(
            universe={p.pid for p in tiny_dataset.products}
        )

    def test_engine_indexes_catalog(self, tiny_dataset):
        assert len(tiny_dataset.engine.index) == tiny_dataset.n_items

    def test_e_is_uniform_weights(self):
        ds = load_dataset("E", scale=0.002, seed=0)
        assert ds.uniform_weights

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("Z")
