"""Tests for conflict graph/hypergraph construction and statistics."""

import math

from repro.conflicts import (
    build_conflict_graph,
    build_conflict_hypergraph,
    compute_pairwise,
    conflict_statistics,
)
from repro.core import Variant, make_instance


class TestConstruction:
    def test_graph_carries_weights_and_edges(self, figure2_instance):
        analysis = compute_pairwise(figure2_instance, Variant.exact())
        graph = build_conflict_graph(figure2_instance, analysis)
        assert set(graph.vertices) == {0, 1, 2, 3}
        assert graph.weights[0] == 2.0
        assert len(graph.pairs) == 3
        assert not graph.triples

    def test_hypergraph_adds_triples(self, example32_instance):
        analysis = compute_pairwise(
            example32_instance, Variant.perfect_recall(0.61)
        )
        hg = build_conflict_hypergraph(example32_instance, analysis)
        assert len(hg.triples) == 1
        assert hg.num_edges == 1

    def test_is_independent(self, figure2_instance):
        analysis = compute_pairwise(figure2_instance, Variant.exact())
        graph = build_conflict_graph(figure2_instance, analysis)
        assert graph.is_independent({0, 1})  # nested pair: no conflict
        assert not graph.is_independent({0, 2})
        assert graph.is_independent(set())

    def test_triple_independence_semantics(self, example32_instance):
        analysis = compute_pairwise(
            example32_instance, Variant.perfect_recall(0.61)
        )
        hg = build_conflict_hypergraph(example32_instance, analysis)
        # Any two of the triple are fine; all three are not.
        assert hg.is_independent({0, 1})
        assert hg.is_independent({1, 2})
        assert not hg.is_independent({0, 1, 2})

    def test_weight_of(self, figure2_instance):
        analysis = compute_pairwise(figure2_instance, Variant.exact())
        graph = build_conflict_graph(figure2_instance, analysis)
        assert graph.weight_of({0, 1}) == 3.0

    def test_degree(self, figure2_instance):
        analysis = compute_pairwise(figure2_instance, Variant.exact())
        graph = build_conflict_graph(figure2_instance, analysis)
        assert graph.degree(0) == 2  # conflicts with q3 and q4
        assert graph.degree(1) == 0


class TestStatistics:
    def test_c2_weighted_average(self, figure2_instance):
        analysis = compute_pairwise(figure2_instance, Variant.exact())
        graph = build_conflict_graph(figure2_instance, analysis)
        stats = conflict_statistics(graph)
        # degrees: q1 = 2 (w2), q2 = 0 (w1), q3 = 2 (w1), q4 = 2 (w1).
        expected = (2 * 2 + 0 + 2 + 2) / 5
        assert math.isclose(stats["c2_weighted_avg"], expected)
        assert stats["pair_edges"] == 3
        assert stats["max_degree2"] == 2

    def test_conflict_free_instance(self):
        inst = make_instance([{"a"}, {"b"}])
        analysis = compute_pairwise(inst, Variant.exact())
        graph = build_conflict_graph(inst, analysis)
        stats = conflict_statistics(graph)
        assert stats["c2_weighted_avg"] == 0.0
        assert stats["pair_edges"] == 0.0
