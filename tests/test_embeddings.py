"""Tests for title and membership embeddings."""

import numpy as np
import pytest

from repro.core import make_instance
from repro.embeddings import (
    membership_groups,
    signature_vectors,
    tfidf_vectors,
    title_embeddings,
)


class TestTitleEmbeddings:
    def test_shape(self):
        vecs = title_embeddings(["black shirt", "red hat"], dim=32)
        assert vecs.shape == (2, 32)

    def test_l2_normalized(self):
        vecs = title_embeddings(["black shirt", "red nike hat"], dim=16)
        norms = np.linalg.norm(vecs, axis=1)
        assert np.allclose(norms, 1.0)

    def test_empty_title_is_zero(self):
        vecs = title_embeddings(["", "shirt"], dim=8)
        assert np.allclose(vecs[0], 0.0)

    def test_identical_titles_identical_vectors(self):
        vecs = title_embeddings(["black shirt", "black shirt"], dim=16)
        assert np.allclose(vecs[0], vecs[1])

    def test_similar_titles_closer_than_dissimilar(self):
        vecs = title_embeddings(
            [
                "black nike shirt",
                "black nike shirt men",
                "silver samsung phone",
            ],
            dim=64,
        )
        close = float(vecs[0] @ vecs[1])
        far = float(vecs[0] @ vecs[2])
        assert close > far

    def test_deterministic_across_calls(self):
        a = title_embeddings(["black shirt"], dim=16)
        b = title_embeddings(["black shirt"], dim=16)
        assert np.array_equal(a, b)

    def test_bad_dim(self):
        with pytest.raises(ValueError):
            title_embeddings(["x"], dim=0)


class TestTfidfVectors:
    def test_normalized_sparse(self):
        vecs = tfidf_vectors(["black shirt", "black black hat"])
        for vec in vecs:
            norm = sum(v * v for v in vec.values()) ** 0.5
            assert norm == pytest.approx(1.0)

    def test_empty_title(self):
        assert tfidf_vectors([""]) == [{}]


class TestMembership:
    def test_groups_partition_universe(self):
        inst = make_instance(
            [{"a", "b"}, {"b", "c"}], universe={"a", "b", "c", "d"}
        )
        groups = membership_groups(inst)
        all_items = [item for members in groups.members for item in members]
        assert sorted(all_items, key=str) == ["a", "b", "c", "d"]

    def test_signatures_match_members(self):
        inst = make_instance([{"a", "b"}, {"b", "c"}])
        groups = membership_groups(inst)
        lookup = dict(zip(map(frozenset, groups.signatures), groups.members))
        assert lookup[frozenset({0})] == ["a"]
        assert lookup[frozenset({0, 1})] == ["b"]
        assert lookup[frozenset({1})] == ["c"]

    def test_identical_membership_compressed(self):
        inst = make_instance([{"a", "b", "c"}])
        groups = membership_groups(inst)
        assert len(groups) == 1  # a, b, c share the signature {0}

    def test_signature_vectors(self):
        inst = make_instance([{"a", "b"}, {"b", "c"}])
        groups = membership_groups(inst)
        matrix = signature_vectors(groups, inst)
        assert matrix.shape == (len(groups), 2)
        assert set(np.unique(matrix)) <= {0.0, 1.0}
        # Row sums equal signature sizes.
        for row, signature in zip(matrix, groups.signatures):
            assert row.sum() == len(signature)

    def test_exclude_universe(self):
        inst = make_instance([{"a"}], universe={"a", "z"})
        with_universe = membership_groups(inst, include_universe=True)
        without = membership_groups(inst, include_universe=False)
        assert len(with_universe) == 2
        assert len(without) == 1
