"""Tests for the Section 5.4 maintenance tools."""

import pytest

from repro.algorithms import CTCR
from repro.core import CategoryTree, InvalidTreeError, Variant, make_instance, score_tree
from repro.maintenance import (
    apply_placements,
    classify_new_items,
    detect_misassigned_items,
    lower_uncovered_thresholds,
    orphaned_items,
    rebuild_subtree,
    rescue_uncovered,
    restrict_instance_to_items,
    uncovered_sets,
)


class TestOutliers:
    def _tree_and_titles(self):
        tree = CategoryTree()
        tree.add_category({"s1", "s2", "s3", "blazer"}, label="shoes")
        titles = {
            "s1": "nike running shoe",
            "s2": "nike running shoe men",
            "s3": "nike running shoe women",
            "blazer": "formal wool blazer jacket",
        }
        return tree, titles

    def test_detects_the_nike_blazer(self):
        tree, titles = self._tree_and_titles()
        reports = detect_misassigned_items(tree, titles)
        assert reports
        assert reports[0].item == "blazer"
        assert reports[0].category_label == "shoes"
        assert reports[0].similarity_to_centroid < reports[0].category_average

    def test_cohesive_category_clean(self):
        tree = CategoryTree()
        tree.add_category({"a", "b", "c", "d"}, label="shirts")
        titles = {x: "black nike shirt" for x in "abcd"}
        assert detect_misassigned_items(tree, titles) == []

    def test_small_categories_skipped(self):
        tree = CategoryTree()
        tree.add_category({"a", "b"}, label="tiny")
        titles = {"a": "x", "b": "totally different thing"}
        assert detect_misassigned_items(tree, titles, min_category_size=4) == []


class TestCoverage:
    def _instance_and_report(self):
        # One coverable set and one set that conflicts away.
        inst = make_instance(
            [set(range(8)), set(range(4, 12))], weights=[2.0, 1.0]
        )
        variant = Variant.perfect_recall(0.9)
        tree = CTCR().build(inst, variant)
        return inst, variant, score_tree(tree, inst, variant)

    def test_uncovered_sets_sorted_by_weight(self):
        inst, _v, report = self._instance_and_report()
        missed = uncovered_sets(inst, report)
        assert len(missed) == 1
        assert missed[0].weight == 1.0

    def test_orphaned_items(self):
        inst, _v, report = self._instance_and_report()
        orphans = orphaned_items(inst, report)
        # Items 8..11 appear only in the uncovered set.
        assert orphans == {8, 9, 10, 11}

    def test_lower_uncovered_thresholds(self):
        inst, variant, report = self._instance_and_report()
        relaxed = lower_uncovered_thresholds(
            inst, report, variant, factor=0.5, weight_boost=2.0
        )
        covered_q = relaxed.get(0)
        missed_q = relaxed.get(1)
        assert covered_q.threshold is None  # untouched
        assert missed_q.threshold == pytest.approx(0.45)
        assert missed_q.weight == 2.0

    def test_lower_thresholds_validates_factor(self):
        inst, variant, report = self._instance_and_report()
        with pytest.raises(ValueError):
            lower_uncovered_thresholds(inst, report, variant, factor=1.5)

    def test_rescue_covers_more(self):
        inst, variant, _report = self._instance_and_report()
        result = rescue_uncovered(CTCR(), inst, variant, factor=0.5)
        assert result.finally_uncovered <= result.initially_uncovered
        assert result.finally_uncovered == 0
        result.tree.validate(universe=inst.universe, bound=inst.bound)

    def test_rescue_noop_when_all_covered(self):
        inst = make_instance([{"a", "b"}, {"c"}])
        variant = Variant.exact()
        result = rescue_uncovered(CTCR(), inst, variant)
        assert result.rounds_used == 0
        assert result.finally_uncovered == 0


class TestSubtreeRebuild:
    def test_restrict_instance(self):
        inst = make_instance([{"a", "b"}, {"a", "x", "y"}, {"x"}])
        sub = restrict_instance_to_items(inst, frozenset({"a", "b"}))
        # Set 0 fully inside; set 1 only 1/3 inside (dropped); set 2 outside.
        assert [q.sid for q in sub] == [0]
        assert sub.universe == {"a", "b"}

    def test_rebuild_replaces_descendants_only(self):
        inst = make_instance(
            [{"a", "b"}, {"c", "d"}, {"a", "b", "c", "d"}],
            weights=[1.0, 1.0, 1.0],
        )
        variant = Variant.exact()
        tree = CategoryTree()
        target = tree.add_category({"a", "b", "c", "d"}, label="target")
        stale = tree.add_category({"a"}, parent=target, label="stale")
        other = tree.add_category({"zz"}, label="other")

        rebuild_subtree(tree, target, inst, variant, CTCR())
        labels = {c.label for c in target.descendants()}
        assert "stale" not in labels
        assert other.parent is tree.root  # untouched
        tree.validate()
        # The rebuilt subtree now covers the two sub-queries.
        report = score_tree(tree, inst, variant)
        assert report.per_set[0].covered and report.per_set[1].covered

    def test_rebuild_root_rejected(self):
        inst = make_instance([{"a"}])
        tree = CategoryTree()
        tree.root.items.add("a")
        with pytest.raises(InvalidTreeError):
            rebuild_subtree(tree, tree.root, inst, Variant.exact(), CTCR())


class TestClassify:
    def test_new_item_goes_to_similar_category(self):
        tree = CategoryTree()
        shoes = tree.add_category({"s1", "s2"}, label="shoes")
        shirts = tree.add_category({"t1", "t2"}, label="shirts")
        existing = {
            "s1": "nike running shoe",
            "s2": "adidas running shoe",
            "t1": "black cotton shirt",
            "t2": "white cotton shirt",
        }
        new = {"n1": "puma running shoe", "n2": "red cotton shirt"}
        placements = classify_new_items(tree, existing, new)
        by_item = {p.item: p.category_label for p in placements}
        assert by_item == {"n1": "shoes", "n2": "shirts"}

    def test_apply_placements_inserts_with_closure(self):
        tree = CategoryTree()
        shoes = tree.add_category({"s1", "s2"}, label="shoes")
        existing = {"s1": "nike shoe", "s2": "adidas shoe"}
        placements = classify_new_items(tree, existing, {"n1": "puma shoe"})
        apply_placements(tree, placements)
        assert "n1" in shoes.items and "n1" in tree.root.items
        tree.validate()

    def test_misc_not_a_candidate(self):
        tree = CategoryTree()
        tree.add_category({"s1", "s2"}, label="C_misc")
        tree.add_category({"t1", "t2"}, label="shirts")
        existing = {
            "s1": "nike shoe", "s2": "adidas shoe",
            "t1": "black shirt", "t2": "white shirt",
        }
        placements = classify_new_items(tree, existing, {"n": "puma shoe"})
        assert all(p.category_label != "C_misc" for p in placements)

    def test_empty_inputs(self):
        tree = CategoryTree()
        assert classify_new_items(tree, {}, {}) == []
