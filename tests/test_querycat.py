"""Query categorization: the staged decision procedure, unit + differential.

Unit tier: each stage of the procedure on a hand-designed catalog whose
tree shape is known — exact label hits, overlap wins, low-confidence
back-off (one level and all the way to the root), empty-token and
no-hit queries, and deterministic tie-breaks.

Differential tier: the same query batch answered by the in-memory
``SnapshotIndexes``, the mmap ``MmapSnapshotIndexes`` (sharded flat
layout), and real sharded-supervisor worker processes over HTTP — all
results must be *equal dicts*, which together with JSON round-tripping
makes "bit-identical across backends" a checked property, not a hope.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.algorithms import CTCR
from repro.core import Variant, make_instance
from repro.labeling import apply_label_suggestions, suggest_labels
from repro.observability import Tracer, use_tracer
from repro.serving import (
    MmapSnapshotIndexes,
    ServingEngine,
    ServingSupervisor,
    SnapshotIndexes,
    SnapshotStore,
    categorize_query,
    make_server,
    serve_in_background,
)

VARIANT = Variant.threshold_jaccard(0.6)

QUERIES = [
    "dress shoes",            # exact label hit
    "cheap gaming laptop",    # overlap (or back-off at high thresholds)
    "trail shoes",            # back-off one level to "running shoes"
    "shoes",                  # back-off all the way to the root
    "red",                    # tie between red hats / red scarves
    "",                       # empty
    "the of",                 # stopwords only -> empty
    "quantum flux",           # tokens matching no label -> nohit
]


def shop_instance():
    """Seven labeled query sets whose CTCR tree nests predictably:

    root -> {running shoes -> trail running shoes, dress shoes,
    laptops -> gaming laptops, red hats, red scarves}.
    """
    sets = [
        {"s1", "s2", "s3", "s4"},
        {"s1", "s2"},
        {"d1", "d2", "d3", "d4"},
        {"l1", "l2", "l3", "l4"},
        {"l1", "l2"},
        {"h1", "h2"},
        {"h3", "h4"},
    ]
    labels = [
        "running shoes",
        "trail running shoes",
        "dress shoes",
        "laptops",
        "gaming laptops",
        "red hats",
        "red scarves",
    ]
    return make_instance(
        sets, weights=[4, 2, 4, 4, 2, 1, 1], labels=labels
    )


def build_indexes(tree_repr="flat"):
    instance = shop_instance()
    tree = CTCR().build(instance, VARIANT)
    apply_label_suggestions(tree, suggest_labels(tree, instance, VARIANT))
    return SnapshotIndexes(tree, instance, VARIANT, tree_repr=tree_repr), tree


@pytest.fixture(scope="module")
def indexes():
    return build_indexes()[0]


def cid_of(indexes, label):
    (cid,) = [
        c for c in indexes.by_cid if indexes.label_of(c) == label
    ]
    return cid


class TestStages:
    def test_exact_label_hit(self, indexes):
        result = categorize_query(indexes, "dress shoes")
        assert result["stage"] == "exact"
        assert result["confidence"] == 1.0
        assert result["label"] == "dress shoes"
        assert result["backoff_steps"] == 0
        assert [p["label"] for p in result["path"]] == ["root", "dress shoes"]
        assert result["stages"][0] == {"stage": "exact", "confidence": 1.0}

    def test_exact_hit_ignores_token_order_and_case(self, indexes):
        result = categorize_query(indexes, "  SHOES, dress!  ")
        assert result["stage"] == "exact"
        assert result["label"] == "dress shoes"

    def test_overlap_win_above_threshold(self, indexes):
        result = categorize_query(
            indexes, "cheap gaming laptop", threshold=0.5
        )
        assert result["stage"] == "overlap"
        assert result["label"] == "gaming laptops"
        # tokens {cheap, gaming, laptop} vs {gaming, laptop}: 2/3.
        assert result["confidence"] == pytest.approx(2 / 3)
        exact, overlap = result["stages"][:2]
        assert exact == {"stage": "exact", "confidence": 0.0}
        assert overlap["confidence"] == pytest.approx(2 / 3)

    def test_backoff_one_level(self, indexes):
        result = categorize_query(indexes, "trail shoes", threshold=0.8)
        assert result["stage"] == "backoff"
        assert result["label"] == "running shoes"
        assert result["backoff_steps"] == 1
        assert result["confidence"] >= 0.8
        assert [p["label"] for p in result["path"]] == [
            "root", "running shoes",
        ]

    def test_backoff_all_the_way_to_root(self, indexes):
        result = categorize_query(indexes, "shoes", threshold=0.8)
        assert result["stage"] == "backoff"
        assert result["cid"] == indexes.root_cid
        assert result["backoff_steps"] == 1
        assert [p["cid"] for p in result["path"]] == [indexes.root_cid]

    def test_backoff_confidence_is_capped_at_one(self, indexes):
        result = categorize_query(indexes, "shoes", threshold=0.99)
        assert result["stage"] == "backoff"
        assert 0.0 <= result["confidence"] <= 1.0

    def test_empty_queries(self, indexes):
        for text in ("", "   ", "the of", "&&& !!!"):
            result = categorize_query(indexes, text)
            assert result["stage"] == "empty"
            assert result["matched"] is False
            assert result["cid"] is None
            assert result["label"] is None
            assert result["path"] == []
            assert result["confidence"] == 0.0

    def test_unknown_tokens_are_nohit(self, indexes):
        result = categorize_query(indexes, "quantum flux")
        assert result["stage"] == "nohit"
        assert result["matched"] is False
        assert result["cid"] is None

    def test_tie_breaks_toward_lower_cid(self, indexes):
        hats = cid_of(indexes, "red hats")
        scarves = cid_of(indexes, "red scarves")
        # "red" scores Jaccard 1/2 against both labels with equal
        # relevance; the lower cid must win deterministically.
        result = categorize_query(indexes, "red", threshold=0.5)
        assert result["stage"] == "overlap"
        assert result["cid"] == min(hats, scarves)

    def test_threshold_zero_never_backs_off(self, indexes):
        for text in ("trail shoes", "shoes", "red"):
            assert categorize_query(indexes, text, threshold=0.0)[
                "stage"
            ] in ("exact", "overlap")

    def test_results_are_json_native(self, indexes):
        for text in QUERIES:
            result = categorize_query(indexes, text, threshold=0.8)
            assert json.loads(json.dumps(result)) == result

    def test_succinct_repr_is_identical(self, indexes):
        succinct, _tree = build_indexes(tree_repr="succinct")
        for text in QUERIES:
            for threshold in (0.3, 0.5, 0.8, 0.99):
                assert categorize_query(
                    succinct, text, threshold=threshold
                ) == categorize_query(indexes, text, threshold=threshold)


class TestEngineOps:
    @pytest.fixture()
    def engine(self):
        instance = shop_instance()
        tree = CTCR().build(instance, VARIANT)
        apply_label_suggestions(
            tree, suggest_labels(tree, instance, VARIANT)
        )
        return ServingEngine.from_tree(tree, instance, VARIANT)

    def test_single_and_batch_agree(self, engine):
        batch = engine.categorize_queries(QUERIES, threshold=0.8)
        singles = [
            engine.categorize_query(q, threshold=0.8) for q in QUERIES
        ]
        assert batch == singles

    def test_counters_recorded_even_on_cache_hits(self, engine):
        with use_tracer(Tracer()) as tracer:
            for _ in range(3):
                result = engine.categorize_query("dress shoes")
        counters = dict(tracer.counters)
        assert counters["serving.querycat.requests"] == 3
        assert counters["serving.querycat.exact"] == 3
        assert counters[f"serving.querycat.traffic.{result['cid']}"] == 3

    def test_stage_and_backoff_counters(self, engine):
        with use_tracer(Tracer()) as tracer:
            engine.categorize_queries(QUERIES, threshold=0.8)
        counters = dict(tracer.counters)
        assert counters["serving.querycat.requests"] == len(QUERIES)
        assert counters["serving.querycat.exact"] == 1
        assert counters["serving.querycat.empty"] == 2
        assert counters["serving.querycat.nohit"] == 1
        assert counters["serving.querycat.unmatched"] == 3
        assert counters["serving.querycat.backoff"] >= 1
        assert counters["serving.querycat.backoff_steps"] >= 1
        backoff_traffic = [
            name for name in counters
            if name.startswith("serving.querycat.backoff_traffic.")
        ]
        assert backoff_traffic

    def test_op_stats_exposed(self, engine):
        engine.categorize_query("dress shoes")
        engine.categorize_queries(["red", "shoes"])
        ops = engine.stats()["ops"]
        assert ops["categorize_query"]["requests"] == 1
        assert ops["categorize_query_batch"]["requests"] == 1


class TestHTTPEndpoint:
    @pytest.fixture()
    def server(self):
        instance = shop_instance()
        tree = CTCR().build(instance, VARIANT)
        apply_label_suggestions(
            tree, suggest_labels(tree, instance, VARIANT)
        )
        engine = ServingEngine.from_tree(tree, instance, VARIANT)
        server = make_server(engine, port=0)
        serve_in_background(server)
        host, port = server.server_address[:2]
        yield engine, f"http://{host}:{port}"
        server.stop()

    def get(self, url):
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())

    def get_error(self, url):
        try:
            urllib.request.urlopen(url, timeout=10)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())
        raise AssertionError("expected an HTTP error")

    def test_single_query(self, server):
        engine, base = server
        status, body = self.get(
            base + "/categorize-query?q=dress%20shoes"
        )
        assert status == 200
        assert body == engine.categorize_query("dress shoes")

    def test_batch_and_knobs(self, server):
        engine, base = server
        status, body = self.get(
            base
            + "/categorize-query?queries=trail%20shoes|shoes"
            + "&threshold=0.8&top_k=5"
        )
        assert status == 200
        assert body["queries"] == ["trail shoes", "shoes"]
        assert body["results"] == engine.categorize_queries(
            ["trail shoes", "shoes"], threshold=0.8, top_k=5
        )

    def test_bad_requests(self, server):
        _engine, base = server
        assert self.get_error(base + "/categorize-query")[0] == 400
        assert self.get_error(base + "/categorize-query?queries=|")[0] == 400
        assert (
            self.get_error(base + "/categorize-query?q=x&threshold=wide")[0]
            == 400
        )
        assert (
            self.get_error(base + "/categorize-query?q=x&top_k=many")[0]
            == 400
        )


class TestDifferential:
    """In-memory == mmap == sharded supervisor, for the same batch."""

    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        instance = shop_instance()
        tree = CTCR().build(instance, VARIANT)
        apply_label_suggestions(
            tree, suggest_labels(tree, instance, VARIANT)
        )
        store = SnapshotStore(tmp_path_factory.mktemp("snapshots"))
        info = store.save(tree, instance, VARIANT, flat_shards=2)
        return store, info

    def reference(self, store_info, tree_repr="flat"):
        store, info = store_info
        loaded = store.load(info.snapshot_id)
        indexes = SnapshotIndexes(
            loaded.tree, loaded.instance, loaded.variant, tree_repr=tree_repr
        )
        return [
            categorize_query(indexes, text, threshold=0.8)
            for text in QUERIES
        ]

    def test_mmap_matches_in_memory(self, store):
        expected = self.reference(store)
        _store, info = store
        paths = _store.flat_paths(info.snapshot_id)
        for tree_repr in (None, "succinct"):
            with MmapSnapshotIndexes(paths, tree_repr=tree_repr) as mm:
                got = [
                    categorize_query(mm, text, threshold=0.8)
                    for text in QUERIES
                ]
            assert got == expected

    def test_succinct_in_memory_matches_flat(self, store):
        assert self.reference(store, "succinct") == self.reference(store)

    def test_supervisor_matches_in_memory(self, store):
        expected = self.reference(store)
        _store, _info = store
        supervisor = ServingSupervisor(
            _store, n_workers=2, poll_interval=0.05
        )
        supervisor.start()
        try:
            base = supervisor.base_url
            query = "|".join(q for q in QUERIES if q.strip())
            with urllib.request.urlopen(
                base
                + "/categorize-query?queries="
                + urllib.request.quote(query, safe="")
                + "&threshold=0.8",
                timeout=10,
            ) as response:
                body = json.loads(response.read())
        finally:
            supervisor.stop()
        wanted = [
            result
            for text, result in zip(QUERIES, expected)
            if text.strip()
        ]
        assert body["results"] == wanted
