"""Tests for category-label suggestions."""

from repro.algorithms import CTCR
from repro.core import Variant, make_instance
from repro.labeling import apply_label_suggestions, suggest_labels


class TestSuggestLabels:
    def test_single_match_uses_its_label(self, figure2_instance):
        variant = Variant.exact()
        tree = CTCR().build(figure2_instance, variant)
        suggestions = suggest_labels(tree, figure2_instance, variant)
        texts = {s.suggestion for s in suggestions}
        assert "black shirt" in texts
        assert "black adidas shirt" in texts

    def test_multi_match_prefers_common_tokens(self):
        inst = make_instance(
            [{"a", "b", "c"}, {"a", "b", "c", "d"}],
            weights=[1.0, 3.0],
            labels=["black nike shirt", "black shirt"],
        )
        variant = Variant.threshold_jaccard(0.7)
        tree = CTCR().build(inst, variant)
        suggestions = suggest_labels(tree, inst, variant)
        for s in suggestions:
            if len(s.matched_labels) > 1:
                assert s.suggestion == "black shirt"  # shared tokens

    def test_confidence_is_weight_share(self):
        inst = make_instance(
            [{"a", "b"}], weights=[2.0], labels=["black shirt"]
        )
        variant = Variant.exact()
        tree = CTCR().build(inst, variant)
        (suggestion,) = suggest_labels(tree, inst, variant)
        assert suggestion.confidence == 1.0

    def test_unlabeled_sets_skipped(self):
        inst = make_instance([{"a", "b"}])  # no labels
        tree = CTCR().build(inst, Variant.exact())
        assert suggest_labels(tree, inst, Variant.exact()) == []


class TestApply:
    def test_applies_only_to_unlabeled(self, figure2_instance):
        variant = Variant.exact()
        tree = CTCR().build(figure2_instance, variant)
        for cat in tree.categories():
            cat.label = "" if cat.label != "C_misc" else cat.label
        suggestions = suggest_labels(tree, figure2_instance, variant)
        applied = apply_label_suggestions(tree, suggestions)
        assert applied == len(suggestions) > 0
        labeled = [c for c in tree.categories() if c.label and c.label != "C_misc"]
        assert len(labeled) >= applied
