"""Tests for the search-engine substrate."""

import pytest

from repro.search import InvertedIndex, SearchEngine, tokenize
from repro.search.analyzer import light_stem


class TestAnalyzer:
    def test_lowercase_and_split(self):
        assert tokenize("Black NIKE Shirt") == ["black", "nike", "shirt"]

    def test_stemming_is_consistent_between_title_and_query(self):
        # "adidas" stems to "adida" on both sides, so retrieval still works.
        assert tokenize("adidas shirt") == tokenize("Adidas Shirts")

    def test_punctuation_split(self):
        assert tokenize("t-shirt, 128GB!") == ["t", "shirt", "128gb"]

    def test_stopwords_dropped(self):
        assert tokenize("shirts for men") == ["shirt", "men"]

    def test_stopwords_kept_when_asked(self):
        assert "for" in tokenize("shirts for men", drop_stopwords=False)

    def test_light_stem_plural(self):
        assert light_stem("shirts") == "shirt"
        assert light_stem("cameras") == "camera"

    def test_light_stem_keeps_short_and_ss(self):
        assert light_stem("dress") == "dress"
        assert light_stem("gps") == "gps"

    def test_plural_query_matches_singular_title(self):
        assert tokenize("memory cards") == tokenize("memory card")


class TestIndex:
    def test_add_and_lookup(self):
        index = InvertedIndex()
        index.add(1, "black shirt")
        index.add(2, "red shirt")
        assert index.document_frequency("shirt") == 2
        assert index.document_frequency("black") == 1
        assert len(index) == 2

    def test_duplicate_doc_rejected(self):
        index = InvertedIndex()
        index.add(1, "x")
        with pytest.raises(ValueError):
            index.add(1, "y")

    def test_idf_decreases_with_frequency(self):
        index = InvertedIndex()
        index.add(1, "common rare")
        index.add(2, "common")
        assert index.idf("rare") > index.idf("common")

    def test_candidates(self):
        index = InvertedIndex()
        index.add(1, "black shirt")
        index.add(2, "red hat")
        assert index.candidates(["black", "hat"]) == {1, 2}
        assert index.candidates(["nothing"]) == set()


class TestEngine:
    def make_engine(self) -> SearchEngine:
        engine = SearchEngine()
        engine.add_documents(
            {
                "p1": "black adidas shirt",
                "p2": "black nike shirt",
                "p3": "red nike shirt",
                "p4": "blue nike hat",
            }
        )
        return engine

    def test_full_match_scores_one(self):
        engine = self.make_engine()
        hits = {h.doc_id: h.relevance for h in engine.search("black adidas shirt")}
        assert hits["p1"] == pytest.approx(1.0)

    def test_partial_match_scores_below_one(self):
        engine = self.make_engine()
        hits = {h.doc_id: h.relevance for h in engine.search("black adidas shirt")}
        assert 0 < hits["p2"] < 1.0

    def test_results_sorted_by_relevance(self):
        engine = self.make_engine()
        hits = engine.search("black adidas shirt")
        rels = [h.relevance for h in hits]
        assert rels == sorted(rels, reverse=True)

    def test_top_k(self):
        engine = self.make_engine()
        assert len(engine.search("shirt", top_k=2)) == 2

    def test_empty_query(self):
        assert self.make_engine().search("") == []

    def test_unknown_tokens_only(self):
        engine = self.make_engine()
        hits = engine.search("qwertyuiop")
        assert hits == []

    def test_result_set_thresholding(self):
        engine = self.make_engine()
        strict = engine.result_set("black adidas shirt", 0.99)
        loose = engine.result_set("black adidas shirt", 0.1)
        assert strict == {"p1"}
        assert strict <= loose
        assert "p4" not in engine.result_set("black adidas shirt", 0.5)

    def test_relevance_in_unit_interval(self):
        engine = self.make_engine()
        for hit in engine.search("black nike shirt"):
            assert 0.0 <= hit.relevance <= 1.0

    def test_plural_query_same_results(self):
        engine = self.make_engine()
        a = engine.result_set("nike shirts", 0.8)
        b = engine.result_set("nike shirt", 0.8)
        assert a == b

    def test_top_k_zero_returns_nothing(self):
        assert self.make_engine().search("shirt", top_k=0) == []

    def test_top_k_larger_than_corpus(self):
        hits = self.make_engine().search("shirt", top_k=100)
        assert len(hits) == 3  # every shirt document, nothing invented

    def test_unknown_tokens_mixed_with_known_still_match(self):
        # An out-of-vocabulary token lowers relevance but must not hide
        # the documents the known tokens retrieve.
        engine = self.make_engine()
        hits = engine.search("qwertyuiop nike")
        assert {h.doc_id for h in hits} == {"p2", "p3", "p4"}
        assert all(h.relevance < 1.0 for h in hits)

    def test_equal_relevance_ties_break_on_doc_id(self):
        engine = SearchEngine()
        engine.add_documents({"b": "same title", "a": "same title"})
        hits = engine.search("same title")
        assert [h.doc_id for h in hits] == ["a", "b"]
        assert hits[0].relevance == hits[1].relevance

    def test_idf_of_absent_token_is_finite_maximum(self):
        # Smoothed IDF: an absent token (df=0) gets the largest finite
        # weight, strictly above every indexed token's.
        engine = self.make_engine()
        absent = engine.index.idf("qwertyuiop")
        assert absent > 0.0
        assert all(
            engine.index.idf(token) < absent
            for token in engine.index.postings
        )
