"""Tests for the evaluation harness."""

import math

import pytest

from repro.algorithms import CCT, CTCR
from repro.baselines import ExistingTree
from repro.catalog import tree_categories_as_input_sets
from repro.core import CategoryTree, Variant, make_instance
from repro.evaluation import (
    contribution_table,
    delta_range,
    format_table,
    print_experiment,
    reweight_sources,
    run_comparison,
    split_instance,
    threshold_sweep,
    train_test_evaluation,
    tree_cohesiveness,
)
from repro.utils.rng import make_rng


class TestComparison:
    def test_rows_sorted_best_first(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.6)
        rows = run_comparison([CTCR(), CCT()], figure2_instance, variant)
        scores = [r.normalized_score for r in rows]
        assert scores == sorted(scores, reverse=True)
        assert {r.name for r in rows} == {"CTCR", "CCT"}

    def test_rows_report_tree_size_and_time(self, figure2_instance):
        rows = run_comparison([CTCR()], figure2_instance, Variant.exact())
        assert rows[0].num_categories >= 2
        assert rows[0].seconds >= 0.0
        assert rows[0].covered_count == 2

    def test_validation_enforced(self, figure2_instance):
        class Broken(CTCR):
            name = "broken"

            def build(self, instance, variant):
                tree = CategoryTree()
                tree.add_category({"a"})
                tree.add_category({"a"})  # 'a' on two branches
                return tree

        from repro.core import InvalidTreeError

        with pytest.raises(InvalidTreeError):
            run_comparison([Broken()], figure2_instance, Variant.exact())


class TestTrainTest:
    def test_split_is_a_partition(self, figure2_instance):
        train, test = split_instance(figure2_instance, make_rng(1))
        train_sids = {q.sid for q in train}
        test_sids = {q.sid for q in test}
        assert not train_sids & test_sids
        assert train_sids | test_sids == {0, 1, 2, 3}
        assert len(train) == 2

    def test_evaluation_shape(self, dataset_a):
        from repro.pipeline import preprocess

        variant = Variant.threshold_jaccard(0.8)
        instance, _ = preprocess(dataset_a, variant)
        results = train_test_evaluation(
            [CTCR(), CCT()], instance, variant, repetitions=2, seed=0
        )
        assert len(results) == 2
        for r in results:
            assert r.repetitions == 2
            assert 0 <= r.mean_test_score <= 1
            # Held-out scores are predictably lower than in-sample.
            assert r.mean_test_score <= r.mean_train_score + 0.05


class TestContribution:
    def _mixed_instance(self, dataset):
        from repro.pipeline import preprocess

        variant = Variant.threshold_jaccard(0.8)
        instance, _ = preprocess(dataset, variant)
        existing_sets = tree_categories_as_input_sets(
            dataset.existing_tree, start_sid=10_000
        )
        return instance.with_extra_sets(existing_sets), variant

    def test_reweight_ratio(self, tiny_dataset):
        instance, _ = self._mixed_instance(tiny_dataset)
        mixed = reweight_sources(instance, 0.7)
        query_total = sum(q.weight for q in mixed if q.source == "query")
        other_total = sum(q.weight for q in mixed if q.source != "query")
        assert math.isclose(query_total / (query_total + other_total), 0.7)

    def test_reweight_validates_share(self, figure2_instance):
        with pytest.raises(ValueError):
            reweight_sources(figure2_instance, 1.5)
        with pytest.raises(ValueError):
            # No 'existing' source present at all.
            reweight_sources(figure2_instance, 0.5)

    def test_table1_tracks_weight_ratio(self, dataset_a):
        """The score-contribution split should roughly follow the weight
        split (paper Table 1)."""
        instance, variant = self._mixed_instance(dataset_a)
        rows = contribution_table(
            CTCR(), instance, variant, query_shares=[0.9, 0.1]
        )
        assert rows[0].query_score_share > rows[1].query_score_share
        assert rows[0].query_score_share > 0.5
        assert rows[1].query_score_share < 0.5
        for row in rows:
            assert math.isclose(
                row.query_score_share + row.existing_score_share, 1.0
            )


class TestCohesiveness:
    def test_cohesive_categories_score_high(self):
        tree = CategoryTree()
        tree.add_category({"p1", "p2"})
        tree.add_category({"p3", "p4"})
        titles = {
            "p1": "black nike shirt",
            "p2": "black nike shirt men",
            "p3": "silver samsung phone",
            "p4": "silver samsung phone 128gb",
        }
        report = tree_cohesiveness(tree, titles)
        assert report.categories_measured == 2
        assert report.uniform_average > 0.5

    def test_mixed_category_scores_lower(self):
        cohesive = CategoryTree()
        cohesive.add_category({"p1", "p2"})
        mixed = CategoryTree()
        mixed.add_category({"p1", "p3"})
        titles = {
            "p1": "black nike shirt",
            "p2": "black nike shirt slim",
            "p3": "silver samsung phone",
        }
        high = tree_cohesiveness(cohesive, titles).uniform_average
        low = tree_cohesiveness(mixed, titles).uniform_average
        assert high > low

    def test_empty_tree(self):
        report = tree_cohesiveness(CategoryTree(), {})
        assert report.categories_measured == 0

    def test_weighted_average_accounts_for_size(self):
        tree = CategoryTree()
        tree.add_category({"p1", "p2"})
        tree.add_category({"p3", "p4", "p5", "p6"})
        titles = {
            "p1": "a b", "p2": "a b",
            "p3": "x", "p4": "y", "p5": "z", "p6": "w",
        }
        report = tree_cohesiveness(tree, titles)
        # The big incoherent category dominates the weighted average.
        assert report.size_weighted_average < report.uniform_average


class TestSweep:
    def test_delta_range(self):
        deltas = delta_range(0.5, 0.7, 0.1)
        assert deltas == [0.5, 0.6, 0.7]

    def test_fine_delta_range_has_no_drift(self):
        deltas = delta_range(0.5, 1.0, 0.01)
        assert len(deltas) == 51
        assert deltas[-1] == 1.0

    def test_scores_tend_upward_as_delta_drops(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.8)
        points = threshold_sweep(
            CTCR(), figure2_instance, variant, deltas=[0.9, 0.5]
        )
        assert points[1].normalized_score >= points[0].normalized_score - 1e-9

    def test_points_carry_delta(self, figure2_instance):
        points = threshold_sweep(
            CTCR(), figure2_instance, Variant.perfect_recall(0.8), [0.3, 0.7]
        )
        assert [p.delta for p in points] == [0.3, 0.7]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "score"], [["CTCR", 0.75], ["CCT", 0.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "0.7500" in text

    def test_print_experiment_returns_block(self, capsys):
        block = print_experiment(
            "Fig X", "CTCR wins", ["a"], [[1.0]]
        )
        captured = capsys.readouterr().out
        assert "Fig X" in captured and "Fig X" in block
