"""Tests for intermediate categories and condensing."""

import math

from repro.algorithms import (
    add_intermediate_categories,
    add_misc_category,
    condense,
    remove_noncovered_items,
    remove_noncovering_categories,
)
from repro.algorithms.base import BuildContext
from repro.core import CategoryTree, Variant, make_instance, score_tree


class TestIntermediate:
    def _context_with_children(self, sets, items_per_child):
        inst = make_instance(sets)
        tree = CategoryTree()
        ctx = BuildContext(
            tree=tree, instance=inst, variant=Variant.threshold_jaccard(0.6)
        )
        for q, items in zip(inst.sets, items_per_child):
            cat = tree.add_category(items, label=f"q{q.sid}")
            ctx.designated[q.sid] = cat
            ctx.target_sets[cat.cid] = q.items
        return ctx

    def test_recombines_partitioned_pair(self):
        # q0 = {a,b,c}, q1 = {a,b}, q2 = {x,y}: shares only between 0 and 1.
        ctx = self._context_with_children(
            [{"a", "b", "c"}, {"a", "b", "d"}, {"x", "y"}],
            [{"a", "c"}, {"b", "d"}, {"x", "y"}],
        )
        added = add_intermediate_categories(ctx)
        assert added == 1
        root_children = ctx.tree.root.children
        assert len(root_children) == 2
        node = [c for c in root_children if c.label not in ("q2",)][0]
        assert node.items == {"a", "b", "c", "d"}
        assert ctx.target_sets[node.cid] == frozenset("abcd")

    def test_stops_at_two_children(self):
        ctx = self._context_with_children(
            [{"a", "b"}, {"a", "c"}],
            [{"a"}, {"c"}],
        )
        assert add_intermediate_categories(ctx) == 0

    def test_disjoint_children_untouched(self):
        ctx = self._context_with_children(
            [{"a"}, {"b"}, {"c"}],
            [{"a"}, {"b"}, {"c"}],
        )
        assert add_intermediate_categories(ctx) == 0

    def test_intermediate_covers_partitioned_set(self):
        """The Figure 6 mechanism: a set whose items were partitioned
        across sibling branches becomes covered once the intermediate
        parent recombines them."""
        inst = make_instance(
            [{"a", "b", "c"}, {"a", "b", "e"}, {"a", "b"}, {"z", "w"}],
            weights=[1.0, 1.0, 1.0, 1.0],
        )
        variant = Variant.threshold_jaccard(0.5)
        tree = CategoryTree()
        from repro.algorithms.base import BuildContext

        ctx = BuildContext(tree=tree, instance=inst, variant=variant)
        placements = [
            (0, {"a", "c"}),
            (1, {"b", "e"}),
            (3, {"z", "w"}),
        ]
        for sid, items in placements:
            cat = tree.add_category(items, label=f"q{sid}")
            ctx.designated[sid] = cat
            ctx.target_sets[cat.cid] = inst.get(sid).items
        from repro.core import score_tree

        before = score_tree(tree, inst, variant)
        assert not before.per_set[2].covered  # {a, b} split across branches
        added = add_intermediate_categories(ctx)
        assert added >= 1
        after = score_tree(tree, inst, variant)
        assert after.per_set[2].covered
        tree.validate()

    def test_largest_overlap_fraction_merged_first(self):
        ctx = self._context_with_children(
            [
                {"a", "b"},           # q0: subset of q1 -> ratio 1
                {"a", "b", "c", "d"}, # q1
                {"d", "e", "f", "g"}, # q2: ratio 1/4 with q1
            ],
            [{"a"}, {"b", "c"}, {"e", "f"}],
        )
        add_intermediate_categories(ctx)
        merged = [
            c
            for c in ctx.tree.root.children
            if ctx.target_sets.get(c.cid) == frozenset("abcd")
        ]
        assert merged, "q0 and q1 (full containment) should merge first"


class TestCondense:
    def test_remove_noncovered_items(self):
        inst = make_instance([{"a", "b"}, {"x", "y", "z"}])
        tree = CategoryTree()
        tree.add_category({"a", "b"})
        tree.add_category({"x"})  # cannot cover {x,y,z} at delta 0.8
        variant = Variant.threshold_jaccard(0.8)
        removed = remove_noncovered_items(tree, inst, variant)
        assert removed == 1  # 'x' only appears in the uncovered set
        assert all("x" not in c.items for c in tree.categories())

    def test_kept_items_survive(self):
        inst = make_instance([{"a", "b"}])
        tree = CategoryTree()
        tree.add_category({"a", "b"})
        variant = Variant.exact()
        assert remove_noncovered_items(tree, inst, variant) == 0

    def test_remove_noncovering_categories_splices(self):
        inst = make_instance([{"a", "b"}])
        tree = CategoryTree()
        outer = tree.add_category({"a", "b", "c", "d", "e"})
        inner = tree.add_category({"a", "b"}, parent=outer)
        variant = Variant.exact()
        removed = remove_noncovering_categories(tree, inst, variant)
        assert removed == 1
        assert inner.parent is tree.root

    def test_only_best_cover_retained(self):
        """Two categories cover the set; the higher-precision one stays."""
        inst = make_instance([{"a", "b", "c"}])
        tree = CategoryTree()
        loose = tree.add_category({"a", "b", "c", "d"})
        tight = tree.add_category({"a", "b", "c"}, parent=loose)
        variant = Variant.threshold_jaccard(0.7)
        remove_noncovering_categories(tree, inst, variant)
        labels = [c for c in tree.non_root_categories()]
        assert len(labels) == 1
        assert labels[0] is tight

    def test_condense_never_decreases_score(self, figure2_instance):
        for variant in (
            Variant.threshold_jaccard(0.6),
            Variant.perfect_recall(0.8),
        ):
            tree = CategoryTree()
            tree.add_category({"a", "b", "q"})
            tree.add_category({"c", "d", "e", "f"})
            before = score_tree(tree, figure2_instance, variant).normalized
            condense(tree, figure2_instance, variant)
            after = score_tree(tree, figure2_instance, variant).normalized
            assert after >= before - 1e-9

    def test_add_misc_category(self):
        inst = make_instance([{"a"}], universe={"a", "b", "c"})
        tree = CategoryTree()
        tree.add_category({"a"})
        cat = add_misc_category(tree, inst)
        assert cat is not None and cat.items == {"b", "c"}
        tree.validate(universe=inst.universe)

    def test_add_misc_noop_when_complete(self):
        inst = make_instance([{"a"}])
        tree = CategoryTree()
        tree.add_category({"a"})
        assert add_misc_category(tree, inst) is None
