"""Property tier for incremental rebuilds (ISSUE satellites 1 and 3).

The delta algebra and the build pipeline each carry a law:

* **composition** — delta-building twice equals delta-building once
  with the composed delta, equals a from-scratch build of the final
  instance (``apply ∘ apply == apply ∘ compose``).
* **identity** — the empty delta is a no-op: zero dirty pairs, zero
  re-solved components, and an identical tree.
* **weight sensitivity** (the cross-build invalidation edge): a
  reweight-only delta changes MWIS inputs without changing any member
  set, so cached MIS components whose weights changed must MISS — the
  cache key is weight-inclusive by construction, and the regression
  tests here pin both the key property and the end-to-end tree.
"""

from __future__ import annotations

import json
import random

import pytest

from tests.churn import delta_sequence, random_delta
from repro.algorithms import CTCR, CTCRConfig
from repro.core import Variant
from repro.core.input_sets import InputSet
from repro.incremental import (
    CatalogDelta,
    DeltaMismatchError,
    IncrementalBuilder,
    IncrementalStateStore,
    InvalidDeltaError,
)
from repro.io import instance_to_dict, tree_to_dict
from repro.mis.cache import MISComponentCache
from repro.mis.hypergraph_mis import (
    DEFAULT_MAX_EXACT_COMPONENT,
    WeightedHypergraph,
)

VARIANT = Variant.perfect_recall(0.6)


def tree_json(tree) -> str:
    return json.dumps(tree_to_dict(tree), sort_keys=True)


# ---------------------------------------------------------------------------
# Delta algebra
# ---------------------------------------------------------------------------


class TestDeltaAlgebra:
    def test_apply_compose_equivalence(self, figure2_instance):
        rng = random.Random(31)
        current = figure2_instance
        for _ in range(15):
            d1 = random_delta(current, rng, frac=0.4)
            mid = d1.apply(current)
            d2 = random_delta(mid, rng, frac=0.4)
            composed = d1.compose(d2)
            composed.validate(current)
            assert instance_to_dict(composed.apply(current)) == (
                instance_to_dict(d2.apply(mid))
            )
            current = d2.apply(mid)

    def test_empty_delta_identity(self, figure2_instance):
        empty = CatalogDelta()
        assert empty.is_empty()
        assert empty.num_changes == 0
        assert instance_to_dict(empty.apply(figure2_instance)) == (
            instance_to_dict(figure2_instance)
        )

    def test_round_trip_through_dict(self, figure2_instance):
        rng = random.Random(17)
        for _ in range(10):
            delta = random_delta(figure2_instance, rng, frac=0.5)
            assert CatalogDelta.from_dict(delta.to_dict()) == delta

    def test_between_recovers_a_delta(self, figure2_instance):
        delta = random_delta(figure2_instance, random.Random(9), frac=0.5)
        churned = delta.apply(figure2_instance)
        recovered = CatalogDelta.between(figure2_instance, churned)
        assert instance_to_dict(recovered.apply(figure2_instance)) == (
            instance_to_dict(churned)
        )

    def test_validation_rejects_unknown_removals(self, figure2_instance):
        with pytest.raises(InvalidDeltaError, match="unknown sids"):
            CatalogDelta(removed=frozenset({999})).validate(figure2_instance)

    def test_validation_rejects_missing_reweights(self, figure2_instance):
        with pytest.raises(InvalidDeltaError, match="missing or removed"):
            CatalogDelta(reweighted=((999, 2.0),)).validate(figure2_instance)

    def test_validation_rejects_reweight_of_removed(self, figure2_instance):
        sid = figure2_instance.sets[0].sid
        with pytest.raises(InvalidDeltaError, match="missing or removed"):
            CatalogDelta(
                removed=frozenset({sid}), reweighted=((sid, 2.0),)
            ).validate(figure2_instance)

    def test_validation_rejects_negative_weights(self, figure2_instance):
        sid = figure2_instance.sets[0].sid
        with pytest.raises(InvalidDeltaError, match="negative weight"):
            CatalogDelta(reweighted=((sid, -1.0),)).validate(figure2_instance)

    def test_validation_rejects_duplicate_adds(self, figure2_instance):
        sid = figure2_instance.sets[0].sid
        clash = InputSet(sid=sid, items=frozenset({"a", "b"}))
        with pytest.raises(InvalidDeltaError, match="duplicate sid"):
            CatalogDelta(added=(clash,)).validate(figure2_instance)


# ---------------------------------------------------------------------------
# Build composition (satellite 1)
# ---------------------------------------------------------------------------


class TestBuildComposition:
    def test_chained_builds_equal_composed_build(self, figure2_instance):
        """delta∘delta == delta-of-composed-delta == full build."""
        rng = random.Random(41)
        builder = IncrementalBuilder(CTCRConfig())
        _tree, base_state = builder.full_build(figure2_instance, VARIANT)
        for _ in range(8):
            d1 = random_delta(figure2_instance, rng, frac=0.4)
            mid = d1.apply(figure2_instance)
            d2 = random_delta(mid, rng, frac=0.4)
            final = d2.apply(mid)

            step1 = builder.delta_build(base_state, mid, VARIANT)
            chained = builder.delta_build(step1.state, final, VARIANT)

            composed_instance = d1.compose(d2).apply(figure2_instance)
            one_shot = builder.delta_build(
                base_state, composed_instance, VARIANT
            )
            full = CTCR(CTCRConfig()).build(final, VARIANT)

            assert tree_json(chained.tree) == tree_json(one_shot.tree)
            assert tree_json(chained.tree) == tree_json(full)

    def test_empty_delta_build_is_a_full_reuse_noop(self, figure2_instance):
        builder = IncrementalBuilder(CTCRConfig())
        tree, state = builder.full_build(figure2_instance, VARIANT)
        result = builder.delta_build(
            state, CatalogDelta().apply(figure2_instance), VARIANT
        )
        counters = result.counters
        assert tree_json(result.tree) == tree_json(tree)
        assert counters["incremental.sets_added"] == 0
        assert counters["incremental.sets_removed"] == 0
        assert counters["incremental.sets_reweighted"] == 0
        assert counters["incremental.pairs_reclassified"] == 0
        assert counters["incremental.pairs_added"] == 0
        assert counters["incremental.pairs_dropped"] == 0
        # 100% component reuse: nothing is re-solved.
        assert counters["incremental.components_resolved"] == 0

    def test_variant_mismatch_raises(self, figure2_instance):
        builder = IncrementalBuilder(CTCRConfig())
        _tree, state = builder.full_build(figure2_instance, VARIANT)
        with pytest.raises(DeltaMismatchError):
            builder.delta_build(
                state, figure2_instance, Variant.threshold_jaccard(0.8)
            )


# ---------------------------------------------------------------------------
# Reweight invalidation (satellite 3)
# ---------------------------------------------------------------------------


class TestReweightInvalidation:
    def test_cache_key_includes_weights(self):
        """Same member sets, different weights -> different cache keys."""
        hg1 = WeightedHypergraph(
            vertices=[0, 1],
            weights={0: 1.0, 1: 2.0},
            edges=[frozenset({0, 1})],
        )
        hg2 = WeightedHypergraph(
            vertices=[0, 1],
            weights={0: 2.0, 1: 1.0},
            edges=[frozenset({0, 1})],
        )
        knobs = (60, False, DEFAULT_MAX_EXACT_COMPONENT)
        assert MISComponentCache.key(hg1, *knobs) != (
            MISComponentCache.key(hg2, *knobs)
        )

    def test_reweight_only_delta_resolves_its_component(
        self, figure2_instance
    ):
        """A reweight that flips the MWIS winner must not reuse the
        stale cached solution — regression for the cross-build
        invalidation edge.

        Under ``threshold_jaccard(0.8)`` figure2 yields one 3-conflict
        component that survives kernelization into the MIS cache; an
        empty delta reuses it (control below), while reweighting a
        member must re-solve it even though every member set is
        byte-identical.
        """
        variant = Variant.threshold_jaccard(0.8)
        builder = IncrementalBuilder(CTCRConfig())
        tree1, state = builder.full_build(figure2_instance, variant)
        assert state.triples, "scenario needs a surviving 3-conflict"

        # Control: no changes -> the cached component is reused.
        control = builder.delta_build(state, figure2_instance, variant)
        assert control.counters["incremental.components_reused"] >= 1
        assert control.counters["incremental.components_resolved"] == 0

        flip_sid = sorted(state.triples)[0][0]
        delta = CatalogDelta(reweighted=((flip_sid, 50.0),))
        delta.validate(figure2_instance)
        churned = delta.apply(figure2_instance)

        result = builder.delta_build(state, churned, variant)
        oracle = CTCR(CTCRConfig()).build(churned, variant)
        assert tree_json(result.tree) == tree_json(oracle)
        # The winner flipped, so the trees genuinely differ...
        assert tree_json(result.tree) != tree_json(tree1)
        # ...because the reweighted component was re-solved, not reused.
        assert result.counters["incremental.components_resolved"] >= 1
        assert result.counters["incremental.components_reused"] == 0

    def test_reweight_differential_over_sequences(self, figure2_instance):
        """Reweight-only churn stays tree-identical to full rebuilds."""
        rng = random.Random(67)
        builder = IncrementalBuilder(CTCRConfig())
        _tree, state = builder.full_build(figure2_instance, VARIANT)
        for _, churned in delta_sequence(
            figure2_instance, rng, steps=15, frac=0.5, mix=(0, 0, 1)
        ):
            result = builder.delta_build(state, churned, VARIANT)
            state = result.state
            oracle = CTCR(CTCRConfig()).build(churned, VARIANT)
            assert tree_json(result.tree) == tree_json(oracle)


# ---------------------------------------------------------------------------
# State persistence
# ---------------------------------------------------------------------------


class TestStatePersistence:
    def test_round_trip_preserves_delta_builds(self, tmp_path, figure2_instance):
        builder = IncrementalBuilder(CTCRConfig())
        _tree, state = builder.full_build(figure2_instance, VARIANT)
        store = IncrementalStateStore(tmp_path)
        store.save("snap-test", state)
        loaded = store.load("snap-test")
        assert loaded is not None
        assert loaded.fingerprint == state.fingerprint
        assert loaded.variant == state.variant
        assert loaded.analysis.conflicts == state.analysis.conflicts
        assert loaded.triples == state.triples

        delta = random_delta(figure2_instance, random.Random(3), frac=0.4)
        churned = delta.apply(figure2_instance)
        from_loaded = builder.delta_build(loaded, churned, VARIANT)
        from_live = builder.delta_build(state, churned, VARIANT)
        assert tree_json(from_loaded.tree) == tree_json(from_live.tree)

    def test_missing_sidecar_loads_as_none(self, tmp_path):
        assert IncrementalStateStore(tmp_path).load("nope") is None
