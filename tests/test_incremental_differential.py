"""Differential tier: delta builds must equal from-scratch builds.

Every assertion here has the same shape — run the incremental path over
a randomized churn sequence and check it is *indistinguishable* from
a cold rebuild at each step:

* the delta-built tree is byte-identical (``tree_to_dict`` JSON) to a
  from-scratch :class:`~repro.algorithms.CTCR` build of the churned
  instance;
* the maintained :class:`~repro.conflicts.two_conflicts.PairwiseAnalysis`
  and 3-conflict set equal a full re-enumeration;
* the staged preprocess of a churned dataset equals a cold preprocess;
* a replayed CCT embedding-cache entry equals a from-scratch count.

Long 200-step sequences are marked ``slow``; the fast tier keeps CI
honest with shorter sequences over the same generators.
"""

from __future__ import annotations

import json
import random

import pytest

from tests.churn import churn_query_log, delta_sequence, random_delta
from repro.algorithms import CTCR, CTCRConfig
from repro.algorithms.cct_cache import EmbeddingCache
from repro.conflicts.ranking import rank_sets
from repro.conflicts.three_conflicts import compute_three_conflicts
from repro.conflicts.two_conflicts import compute_pairwise
from repro.core import Variant
from repro.core.bitset import BitsetUniverse
from repro.incremental import (
    IncrementalBuilder,
    ResultSetCache,
    incremental_preprocess,
    replay_embedding_counts,
)
from repro.io import instance_to_dict, tree_to_dict
from repro.pipeline import preprocess

VARIANTS = [
    Variant.perfect_recall(0.6),
    Variant.threshold_jaccard(0.8),
    Variant.exact(),
]


def tree_json(tree) -> str:
    return json.dumps(tree_to_dict(tree), sort_keys=True)


def oracle_tree(instance, variant):
    """From-scratch build with the same config the delta path uses."""
    return CTCR(CTCRConfig()).build(instance, variant)


def assert_analysis_matches(state, variant) -> None:
    """The carried analysis/triples equal a full re-enumeration."""
    fresh = compute_pairwise(
        state.instance, variant, ranking=rank_sets(state.instance)
    )
    assert state.analysis.conflicts == fresh.conflicts
    assert state.analysis.must_together == fresh.must_together
    assert state.analysis.can_separately == fresh.can_separately
    assert state.analysis.intersections == fresh.intersections
    if not variant.is_exact:
        assert state.triples == compute_three_conflicts(fresh)


def run_differential(instance, variant, *, steps, frac, seed) -> None:
    rng = random.Random(seed)
    builder = IncrementalBuilder(CTCRConfig())
    tree, state = builder.full_build(instance, variant)
    assert tree_json(tree) == tree_json(oracle_tree(instance, variant))
    for step, (_delta, churned) in enumerate(
        delta_sequence(instance, rng, steps=steps, frac=frac)
    ):
        result = builder.delta_build(state, churned, variant)
        state = result.state
        expected = oracle_tree(churned, variant)
        assert tree_json(result.tree) == tree_json(expected), (
            f"delta tree diverged from full rebuild at step {step}"
        )
        assert_analysis_matches(state, variant)


class TestInstanceChurnDifferential:
    @pytest.mark.parametrize("variant", VARIANTS, ids=str)
    def test_figure2_sequences(self, figure2_instance, variant):
        run_differential(
            figure2_instance, variant, steps=25, frac=0.3, seed=11
        )

    @pytest.mark.parametrize("variant", VARIANTS, ids=str)
    def test_synthetic_sequences(self, tiny_dataset, variant):
        instance, _report = preprocess(tiny_dataset, variant)
        run_differential(instance, variant, steps=12, frac=0.15, seed=23)

    def test_heavy_removal_mix(self, figure2_instance):
        """Sequences dominated by removals shrink to near-empty and back."""
        variant = Variant.perfect_recall(0.6)
        rng = random.Random(5)
        builder = IncrementalBuilder(CTCRConfig())
        _tree, state = builder.full_build(figure2_instance, variant)
        current = figure2_instance
        for _ in range(20):
            delta = random_delta(current, rng, frac=0.5, mix=(1, 3, 1))
            current = delta.apply(current)
            result = builder.delta_build(state, current, variant)
            state = result.state
            assert tree_json(result.tree) == tree_json(
                oracle_tree(current, variant)
            )

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "variant",
        [Variant.perfect_recall(0.6), Variant.threshold_jaccard(0.8)],
        ids=str,
    )
    def test_long_randomized_sequences(self, tiny_dataset, variant):
        """The acceptance-criteria tier: 200-step randomized sequences."""
        instance, _report = preprocess(tiny_dataset, variant)
        run_differential(instance, variant, steps=200, frac=0.1, seed=42)


class TestPipelineChurnDifferential:
    def test_staged_preprocess_equals_cold(self, tiny_dataset):
        """Memoized re-preprocess is byte-identical to a cold run."""
        variant = Variant.perfect_recall(0.6)
        cache = ResultSetCache()
        rng = random.Random(7)
        dataset = tiny_dataset
        # Warm the cache on the base dataset first, as a publish would.
        staged, _ = incremental_preprocess(dataset, variant, cache)
        cold, _ = preprocess(dataset, variant)
        assert instance_to_dict(staged) == instance_to_dict(cold)
        for _ in range(4):
            dataset = churn_query_log(dataset, rng, frac=0.15)
            staged, _ = incremental_preprocess(dataset, variant, cache)
            cold, _ = preprocess(dataset, variant)
            assert instance_to_dict(staged) == instance_to_dict(cold)
        assert cache.hits > 0  # churn left most queries untouched

    def test_staged_then_delta_build_equals_oracle(self, tiny_dataset):
        """The full publish path: staged preprocess + delta build."""
        variant = Variant.perfect_recall(0.6)
        cache = ResultSetCache()
        builder = IncrementalBuilder(CTCRConfig())
        rng = random.Random(13)
        instance, _ = incremental_preprocess(tiny_dataset, variant, cache)
        _tree, state = builder.full_build(instance, variant)
        dataset = tiny_dataset
        for _ in range(3):
            dataset = churn_query_log(dataset, rng, frac=0.2)
            churned, _ = incremental_preprocess(dataset, variant, cache)
            result = builder.delta_build(state, churned, variant)
            state = result.state
            assert tree_json(result.tree) == tree_json(
                oracle_tree(churned, variant)
            )


class TestEmbeddingReplayDifferential:
    def test_replayed_counts_equal_fresh_counts(self, figure2_instance):
        import numpy as np

        rng = random.Random(3)
        cache = EmbeddingCache()
        old = figure2_instance
        # Populate the old entry exactly as CCT's packing stage does.
        old_key = cache.key(old)
        cache.put(old_key, _fresh_entry(old))
        for _ in range(10):
            delta = random_delta(old, rng, frac=0.4)
            new = delta.apply(old)
            if cache.key(new) == cache.key(old):
                # Reweight-only delta: counts are weight-independent, so
                # the old entry already covers the new instance.
                assert not replay_embedding_counts(old, new, cache)
                old = new
                continue
            assert replay_embedding_counts(old, new, cache)
            replayed = cache.get(cache.key(new))
            fresh = _fresh_entry(new)
            assert replayed[0] == fresh[0]
            for got, want in zip(replayed[1:], fresh[1:]):
                np.testing.assert_array_equal(
                    np.asarray(got), np.asarray(want)
                )
            old = new

    def test_replay_is_a_noop_without_an_old_entry(self, figure2_instance):
        cache = EmbeddingCache()
        delta = random_delta(figure2_instance, random.Random(1), frac=0.3)
        new = delta.apply(figure2_instance)
        assert not replay_embedding_counts(figure2_instance, new, cache)

    def test_replay_skips_already_cached_targets(self, figure2_instance):
        cache = EmbeddingCache()
        delta = random_delta(figure2_instance, random.Random(2), frac=0.3)
        new = delta.apply(figure2_instance)
        cache.put(cache.key(figure2_instance), _fresh_entry(figure2_instance))
        cache.put(cache.key(new), _fresh_entry(new))
        assert not replay_embedding_counts(figure2_instance, new, cache)


def _fresh_entry(instance):
    """What CCT's packing stage would cache for this instance."""
    import numpy as np

    universe = BitsetUniverse.from_instance(instance)
    ii, jj, counts = universe.intersecting_pairs()
    return (universe.n_sets, universe.sizes, ii, jj, counts)
