"""Tests for input sets and OCT instances."""

import pytest

from repro.core import InputSet, InvalidInstanceError, OCTInstance, make_instance


class TestInputSet:
    def test_basic_fields(self):
        q = InputSet(sid=1, items=frozenset({"a"}), weight=2.0, label="x")
        assert len(q) == 1 and "a" in q and q.label == "x"

    def test_negative_weight_rejected(self):
        with pytest.raises(InvalidInstanceError):
            InputSet(sid=0, items=frozenset({"a"}), weight=-1.0)

    def test_empty_set_rejected(self):
        with pytest.raises(InvalidInstanceError):
            InputSet(sid=0, items=frozenset())

    def test_bad_threshold_rejected(self):
        with pytest.raises(InvalidInstanceError):
            InputSet(sid=0, items=frozenset({"a"}), threshold=0.0)
        with pytest.raises(InvalidInstanceError):
            InputSet(sid=0, items=frozenset({"a"}), threshold=1.5)

    def test_zero_weight_allowed(self):
        assert InputSet(sid=0, items=frozenset({"a"}), weight=0.0).weight == 0.0


class TestOCTInstance:
    def test_universe_defaults_to_union(self):
        inst = make_instance([{"a", "b"}, {"b", "c"}])
        assert inst.universe == {"a", "b", "c"}

    def test_explicit_universe_superset(self):
        inst = make_instance([{"a"}], universe={"a", "b"})
        assert inst.universe == {"a", "b"}

    def test_universe_must_cover_sets(self):
        with pytest.raises(InvalidInstanceError):
            make_instance([{"a", "b"}], universe={"a"})

    def test_duplicate_sids_rejected(self):
        sets = [
            InputSet(sid=0, items=frozenset({"a"})),
            InputSet(sid=0, items=frozenset({"b"})),
        ]
        with pytest.raises(InvalidInstanceError):
            OCTInstance(sets)

    def test_total_weight(self):
        inst = make_instance([{"a"}, {"b"}], weights=[1.5, 2.5])
        assert inst.total_weight == 4.0

    def test_get_by_sid(self):
        inst = make_instance([{"a"}, {"b"}])
        assert inst.get(1).items == {"b"}

    def test_default_bound_one(self):
        inst = make_instance([{"a"}])
        assert inst.bound("a") == 1

    def test_item_bounds_override(self):
        inst = make_instance([{"a", "b"}], item_bounds={"a": 2})
        assert inst.bound("a") == 2
        assert inst.bound("b") == 1

    def test_bad_bounds_rejected(self):
        with pytest.raises(InvalidInstanceError):
            make_instance([{"a"}], item_bounds={"a": 0})
        with pytest.raises(InvalidInstanceError):
            make_instance([{"a"}], default_bound=0)

    def test_effective_threshold_prefers_per_set(self):
        q = InputSet(sid=0, items=frozenset({"a"}), threshold=0.4)
        inst = OCTInstance([q])
        assert inst.effective_threshold(q, 0.9) == 0.4

    def test_effective_threshold_default(self):
        q = InputSet(sid=0, items=frozenset({"a"}))
        inst = OCTInstance([q])
        assert inst.effective_threshold(q, 0.9) == 0.9

    def test_sets_containing_index(self):
        inst = make_instance([{"a", "b"}, {"b"}])
        index = inst.sets_containing()
        assert [q.sid for q in index["b"]] == [0, 1]
        assert [q.sid for q in index["a"]] == [0]

    def test_restricted_to_keeps_universe(self):
        inst = make_instance([{"a"}, {"b"}])
        sub = inst.restricted_to([0])
        assert len(sub) == 1
        assert sub.universe == inst.universe

    def test_with_extra_sets_extends_universe(self):
        inst = make_instance([{"a"}])
        extra = [InputSet(sid=10, items=frozenset({"z"}), source="existing")]
        bigger = inst.with_extra_sets(extra)
        assert len(bigger) == 2
        assert "z" in bigger.universe

    def test_make_instance_length_mismatch(self):
        with pytest.raises(InvalidInstanceError):
            make_instance([{"a"}], weights=[1.0, 2.0])
