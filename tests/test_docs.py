"""Documentation is load-bearing: these tests keep it true.

* ``docs/cli.md`` is diffed against the argparse parser in *both*
  directions — every registered flag must be documented, every
  documented flag must exist — and every subcommand must have a
  heading.
* Every subcommand's ``--help`` must render (the CI docs job also runs
  the real ``python -m repro <cmd> --help`` subprocesses).
* Every relative markdown link and ``#anchor`` in the user-facing docs
  must resolve (GitHub-style heading slugs).
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import make_parser

REPO = Path(__file__).resolve().parents[1]
CLI_DOC = REPO / "docs" / "cli.md"

# The pages whose links/anchors must resolve.
DOC_PAGES = sorted((REPO / "docs").glob("*.md")) + [
    REPO / "README.md",
    REPO / "EXPERIMENTS.md",
]

# Lookbehind skips flag-shaped substrings inside anchors (#build--oct);
# --help is argparse-implicit, not a registration to diff.
FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")
LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _subcommands() -> dict[str, argparse.ArgumentParser]:
    parser = make_parser()
    sub = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    return dict(sub.choices)


def _registered_flags() -> set[str]:
    flags: set[str] = set()
    for sub in _subcommands().values():
        for action in sub._actions:
            flags.update(
                s for s in action.option_strings if s.startswith("--")
            )
    flags.discard("--help")
    return flags


class TestCliReference:
    """docs/cli.md vs the argparse registrations in src/repro/cli.py."""

    def test_every_registered_flag_is_documented(self):
        documented = set(FLAG_RE.findall(CLI_DOC.read_text()))
        missing = _registered_flags() - documented
        assert not missing, (
            f"flags registered in cli.py but absent from docs/cli.md: "
            f"{sorted(missing)}"
        )

    def test_every_documented_flag_exists(self):
        documented = set(FLAG_RE.findall(CLI_DOC.read_text()))
        documented.discard("--help")
        stale = documented - _registered_flags()
        assert not stale, (
            f"flags documented in docs/cli.md but not registered in "
            f"cli.py: {sorted(stale)}"
        )

    def test_every_subcommand_has_a_heading(self):
        headings = [
            line for line in CLI_DOC.read_text().splitlines()
            if line.startswith("#")
        ]
        for name in _subcommands():
            assert any(
                re.search(rf"\b{re.escape(name)}\b", h) for h in headings
            ), f"subcommand {name!r} has no heading in docs/cli.md"

    @pytest.mark.parametrize("name", sorted(_subcommands()))
    def test_help_renders(self, name, capsys):
        with pytest.raises(SystemExit) as exc:
            make_parser().parse_args([name, "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "--variant" in out  # the common block is attached


def _github_slug(heading: str) -> str:
    """GitHub's heading -> anchor rule: lowercase, drop punctuation
    (keeping word chars and hyphens), spaces become hyphens."""
    text = heading.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(page: Path) -> set[str]:
    return {
        _github_slug(m.group(1))
        for m in HEADING_RE.finditer(page.read_text())
    }


class TestBenchSchemas:
    """Every committed BENCH_*.json has a schema entry in operations.md."""

    def test_every_bench_json_is_documented(self):
        operations = (REPO / "docs" / "operations.md").read_text()
        missing = []
        for path in sorted((REPO / "benchmarks").glob("BENCH_*.json")):
            # Tiny CI-smoke files share the full-mode file's schema entry.
            name = path.name.replace("_tiny.json", ".json")
            if name not in operations:
                missing.append(path.name)
        assert not missing, (
            f"benchmark JSON files without a schema entry in "
            f"docs/operations.md: {missing}"
        )


class TestMarkdownLinks:
    """Relative links and anchors in docs/, README, EXPERIMENTS."""

    def test_every_docs_page_is_reachable(self):
        """Each docs/*.md must be linked from README or another doc page

        — a page nothing points to is dead documentation (this is what
        keeps new pages like serving_analytics.md wired in).
        """
        targets: set[Path] = set()
        for page in DOC_PAGES:
            for target in LINK_RE.findall(page.read_text()):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part = target.partition("#")[0]
                if path_part:
                    targets.add((page.parent / path_part).resolve())
        orphans = [
            p.name for p in (REPO / "docs").glob("*.md")
            if p.resolve() not in targets
        ]
        assert not orphans, f"docs pages nothing links to: {orphans}"

    @pytest.mark.parametrize(
        "page", DOC_PAGES, ids=lambda p: str(p.relative_to(REPO))
    )
    def test_links_resolve(self, page):
        problems = []
        for target in LINK_RE.findall(page.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            dest = (
                page if not path_part
                else (page.parent / path_part).resolve()
            )
            if not dest.exists():
                problems.append(f"{target}: file {path_part} not found")
                continue
            if anchor and anchor not in _anchors(dest):
                problems.append(f"{target}: no heading for #{anchor}")
        assert not problems, f"{page.name}: {problems}"
