"""Tests for the preprocessing pipeline (paper Section 5.1)."""

import math

import pytest

from repro.catalog.queries import QueryLog, RawQuery
from repro.core import SimilarityKind, Variant
from repro.pipeline import (
    CleaningConfig,
    PreprocessConfig,
    branch_spread,
    compute_result_sets,
    frequency_filter,
    frequency_weights,
    merge_similar_queries,
    merge_similarity_bound,
    preprocess,
    recent_window_weights,
    relevance_threshold_for,
    uniform_weights,
)
from repro.pipeline.result_sets import QueryResultSet


def raw(text: str, counts: tuple) -> RawQuery:
    return RawQuery(text=text, daily_counts=counts)


class TestCleaning:
    def test_frequency_filter_requires_consecutive_demand(self):
        steady = raw("steady", (3, 3, 3))
        sporadic = raw("sporadic", (5, 0, 9))
        kept = frequency_filter([steady, sporadic], min_daily_count=1)
        assert kept == [steady]

    def test_frequency_filter_threshold(self):
        q = raw("q", (2, 2, 2))
        assert frequency_filter([q], 3) == []
        assert frequency_filter([q], 2) == [q]

    def test_branch_spread_counts_top_level(self):
        from repro.core import CategoryTree

        tree = CategoryTree()
        left = tree.add_category({"a", "b"})
        tree.add_category({"a"}, parent=left)
        tree.add_category({"c"})
        assert branch_spread(frozenset({"a", "c"}), tree, depth=1) == 2
        assert branch_spread(frozenset({"a", "b"}), tree, depth=1) == 1
        assert branch_spread(frozenset(), tree, depth=1) == 0

    def test_cleaning_drops_incoherent_queries(self, tiny_dataset):
        from repro.pipeline import clean_queries

        kept = clean_queries(
            tiny_dataset.query_log,
            tiny_dataset.engine,
            tiny_dataset.existing_tree,
            relevance_threshold=0.8,
            config=CleaningConfig(min_daily_count=1),
        )
        assert all(q.coherent for q in kept)

    def test_scatter_filter_drops_wide_queries(self, tiny_dataset):
        from repro.pipeline import scatter_filter

        config = CleaningConfig(max_branches=1)
        queries = [q for q in tiny_dataset.query_log.queries if q.coherent]
        kept = scatter_filter(
            queries,
            tiny_dataset.engine,
            tiny_dataset.existing_tree,
            0.8,
            config,
        )
        # With one allowed branch only type-specific queries survive.
        assert len(kept) < len(queries)


class TestResultSets:
    def test_paper_thresholds(self):
        assert relevance_threshold_for(Variant.threshold_jaccard(0.8)) == 0.8
        assert relevance_threshold_for(Variant.cutoff_f1(0.7)) == 0.8
        assert relevance_threshold_for(Variant.perfect_recall(0.6)) == 0.9
        assert relevance_threshold_for(Variant.exact()) == 0.9

    def test_small_results_dropped(self, tiny_dataset):
        queries = [q for q in tiny_dataset.query_log.queries if q.coherent]
        results = compute_result_sets(
            queries, tiny_dataset.engine, 0.8, min_size=3
        )
        assert all(len(r.items) >= 3 for r in results)

    def test_items_meet_threshold(self, tiny_dataset):
        queries = [q for q in tiny_dataset.query_log.queries if q.coherent][:5]
        results = compute_result_sets(queries, tiny_dataset.engine, 0.9)
        for r in results:
            hits = {
                h.doc_id: h.relevance
                for h in tiny_dataset.engine.search(r.text)
            }
            assert all(hits[item] >= 0.9 - 1e-9 for item in r.items)


class TestWeighting:
    def _results(self):
        return [
            QueryResultSet("q1", frozenset({"a"}), mean_daily=4.0),
            QueryResultSet("q2", frozenset({"b"}), mean_daily=1.5),
        ]

    def test_frequency_weights(self):
        assert frequency_weights(self._results()) == [4.0, 1.5]

    def test_uniform_weights(self):
        assert uniform_weights(self._results()) == [1.0, 1.0]

    def test_recent_window_weights(self):
        log = QueryLog(
            queries=[
                RawQuery("q1", tuple([0] * 8 + [10, 10])),
                RawQuery("q2", tuple([2] * 10)),
            ],
            days=10,
        )
        weights = recent_window_weights(self._results(), log, window=2)
        assert weights[0] == 10.0
        assert weights[1] == 2.0

    def test_recent_window_fallback(self):
        log = QueryLog(queries=[], days=10)
        weights = recent_window_weights(self._results(), log, window=2)
        assert weights == [4.0, 1.5]


class TestMerging:
    def test_bound_formula(self):
        assert math.isclose(merge_similarity_bound(0.8), 0.95)
        assert math.isclose(merge_similarity_bound(0.6), 0.9)

    def test_identical_sets_merge_with_summed_weight(self):
        results = [
            QueryResultSet("black shirt", frozenset({"a", "b", "c"}), 5.0),
            QueryResultSet("shirt black", frozenset({"a", "b", "c"}), 2.0),
            QueryResultSet("red hat", frozenset({"x", "y"}), 1.0),
        ]
        merged = merge_similar_queries(
            results, [5.0, 2.0, 1.0], Variant.threshold_jaccard(0.8)
        )
        assert len(merged) == 2
        shirt = [m for m in merged if "shirt" in m.text][0]
        assert shirt.weight == 7.0
        assert shirt.text == "black shirt"  # heaviest label kept
        assert set(shirt.merged_texts) == {"black shirt", "shirt black"}

    def test_dissimilar_sets_not_merged(self):
        results = [
            QueryResultSet("q1", frozenset({"a", "b"}), 1.0),
            QueryResultSet("q2", frozenset({"b", "c"}), 1.0),
        ]
        merged = merge_similar_queries(
            results, [1.0, 1.0], Variant.threshold_jaccard(0.8)
        )
        assert len(merged) == 2

    def test_transitive_merging(self):
        base = frozenset(range(20))
        results = [
            QueryResultSet("q1", base, 1.0),
            QueryResultSet("q2", frozenset(set(base) | {100}), 1.0),
            QueryResultSet("q3", frozenset(set(base) | {200}), 1.0),
        ]
        merged = merge_similar_queries(
            results, [1.0, 1.0, 1.0], Variant.threshold_jaccard(0.8)
        )
        assert len(merged) == 1
        assert merged[0].items == frozenset(set(base) | {100, 200})


class TestPreprocess:
    def test_end_to_end(self, tiny_dataset):
        variant = Variant.threshold_jaccard(0.8)
        instance, report = preprocess(tiny_dataset, variant)
        assert len(instance) == report.after_merging
        assert report.after_cleaning <= report.raw_queries
        assert report.relevance_threshold == 0.8
        assert instance.universe == frozenset(
            p.pid for p in tiny_dataset.products
        )
        for q in instance:
            assert q.source == "query" and q.weight > 0

    def test_merging_reduces_queries(self, dataset_a):
        variant = Variant.threshold_jaccard(0.8)
        merged_on = preprocess(dataset_a, variant)[1]
        merged_off = preprocess(
            dataset_a, variant, PreprocessConfig(merge_queries=False)
        )[1]
        assert merged_on.after_merging < merged_off.after_merging

    def test_merge_preserves_or_improves_ctcr_score(self, dataset_a):
        """Paper Section 5.1: merged inputs score the same or slightly
        better when evaluated over the original queries."""
        from repro.algorithms import CTCR
        from repro.core import score_tree

        variant = Variant.threshold_jaccard(0.8)
        merged_inst, _ = preprocess(dataset_a, variant)
        plain_inst, _ = preprocess(
            dataset_a, variant, PreprocessConfig(merge_queries=False)
        )
        tree_merged = CTCR().build(merged_inst, variant)
        tree_plain = CTCR().build(plain_inst, variant)
        # Both evaluated over the *original* (unmerged) queries.
        s_merged = score_tree(tree_merged, plain_inst, variant).normalized
        s_plain = score_tree(tree_plain, plain_inst, variant).normalized
        assert s_merged >= s_plain - 0.05

    def test_no_clean_keeps_raw_queries(self, tiny_dataset):
        variant = Variant.threshold_jaccard(0.8)
        _, report = preprocess(
            tiny_dataset, variant, PreprocessConfig(clean=False)
        )
        assert report.after_cleaning == report.raw_queries

    def test_uniform_weights_for_public_dataset(self):
        from repro.catalog import load_dataset

        ds = load_dataset("E", scale=0.003, seed=1)
        # Without merging every query weighs exactly 1.
        instance, _ = preprocess(
            ds,
            Variant.perfect_recall(0.6),
            PreprocessConfig(merge_queries=False),
        )
        assert all(q.weight == 1.0 for q in instance)
        # Merging sums the uniform weights into integers.
        merged, _ = preprocess(ds, Variant.perfect_recall(0.6))
        assert all(q.weight >= 1.0 and q.weight.is_integer() for q in merged)

    def test_relevance_override(self, tiny_dataset):
        variant = Variant.threshold_jaccard(0.8)
        _, report = preprocess(
            tiny_dataset,
            variant,
            PreprocessConfig(relevance_threshold=0.5),
        )
        assert report.relevance_threshold == 0.5

    def test_threshold_overrides_applied(self, tiny_dataset):
        variant = Variant.threshold_jaccard(0.8)
        base, _ = preprocess(tiny_dataset, variant)
        target = base.sets[0].label
        inst, _ = preprocess(
            tiny_dataset,
            variant,
            PreprocessConfig(threshold_overrides={target: 0.4}),
        )
        overridden = [q for q in inst if q.label == target]
        assert overridden and overridden[0].threshold == 0.4
        untouched = [q for q in inst if q.label != target]
        assert all(q.threshold is None for q in untouched)


class TestPipelineProperties:
    def test_second_merge_never_increases_count(self, dataset_a):
        from repro.pipeline.merging import merge_similar_queries
        from repro.pipeline.result_sets import QueryResultSet

        variant = Variant.threshold_jaccard(0.8)
        inst, _ = preprocess(
            dataset_a, variant, PreprocessConfig(merge_queries=False)
        )
        results = [
            QueryResultSet(q.label, q.items, q.weight) for q in inst
        ]
        weights = [q.weight for q in inst]
        once = merge_similar_queries(results, weights, variant)
        again = merge_similar_queries(
            [QueryResultSet(m.text, m.items, m.weight) for m in once],
            [m.weight for m in once],
            variant,
        )
        assert len(again) <= len(once)
        assert math.isclose(
            sum(m.weight for m in again), sum(m.weight for m in once)
        )

    def test_merging_conserves_total_weight(self, dataset_a):
        variant = Variant.threshold_jaccard(0.8)
        merged, _ = preprocess(dataset_a, variant)
        plain, _ = preprocess(
            dataset_a, variant, PreprocessConfig(merge_queries=False)
        )
        assert math.isclose(merged.total_weight, plain.total_weight)

    def test_preprocess_deterministic(self, tiny_dataset):
        variant = Variant.perfect_recall(0.6)
        a, _ = preprocess(tiny_dataset, variant)
        b, _ = preprocess(tiny_dataset, variant)
        assert [(q.label, q.weight, q.items) for q in a] == [
            (q.label, q.weight, q.items) for q in b
        ]
