"""Tests for HAC and dendrograms, cross-checked against scipy."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.clustering import (
    Dendrogram,
    Merge,
    agglomerative_clustering,
    distance_matrix,
    pairwise_cosine,
    pairwise_euclidean,
)


class TestDistances:
    def test_euclidean_simple(self):
        d = pairwise_euclidean(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert math.isclose(d[0, 1], 5.0)
        assert d[0, 0] == 0.0

    def test_euclidean_symmetric(self):
        x = np.random.default_rng(0).normal(size=(6, 3))
        d = pairwise_euclidean(x)
        assert np.allclose(d, d.T)
        assert (d >= 0).all()

    def test_cosine_orthogonal(self):
        d = pairwise_cosine(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert math.isclose(d[0, 1], 1.0)

    def test_cosine_parallel(self):
        d = pairwise_cosine(np.array([[1.0, 1.0], [2.0, 2.0]]))
        assert math.isclose(d[0, 1], 0.0, abs_tol=1e-12)

    def test_cosine_zero_vectors(self):
        d = pairwise_cosine(np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 0.0]]))
        assert math.isclose(d[0, 2], 0.0)  # zero ~ zero
        assert math.isclose(d[0, 1], 1.0)  # zero far from nonzero

    def test_unknown_metric(self):
        with pytest.raises(
            ValueError,
            match=r"unknown metric 'chebyshev'; expected one of "
            r"\['cosine', 'euclidean'\]",
        ):
            distance_matrix(np.zeros((2, 2)), "chebyshev")


class TestDendrogram:
    def test_merge_count_enforced(self):
        with pytest.raises(ValueError):
            Dendrogram(n_leaves=3, merges=[])

    def test_single_leaf(self):
        d = Dendrogram(n_leaves=1, merges=[])
        assert d.root_id == 0
        assert d.leaves_under(0) == [0]

    def test_leaves_under(self):
        merges = [Merge(0, 1, 1.0, 3), Merge(2, 3, 2.0, 4)]
        d = Dendrogram(n_leaves=3, merges=merges)
        assert d.leaves_under(3) == [0, 1]
        assert d.leaves_under(4) == [0, 1, 2]
        assert d.root_id == 4

    def test_cut(self):
        merges = [Merge(0, 1, 1.0, 3), Merge(2, 3, 2.0, 4)]
        d = Dendrogram(n_leaves=3, merges=merges)
        assert d.cut(1.5) == [[0, 1], [2]]
        assert d.cut(2.5) == [[0, 1, 2]]
        assert d.cut(0.5) == [[0], [1], [2]]


class TestAgglomerative:
    def test_two_points(self):
        d = agglomerative_clustering(np.array([[0.0], [1.0]]))
        assert len(d.merges) == 1
        assert math.isclose(d.merges[0].height, 1.0)

    def test_obvious_clusters_merge_first(self):
        x = np.array([[0.0], [0.1], [10.0], [10.1]])
        d = agglomerative_clustering(x)
        first_two = {d.merges[0].left, d.merges[0].right} | {
            d.merges[1].left,
            d.merges[1].right,
        }
        assert {0, 1} <= first_two and {2, 3} <= first_two

    def test_average_linkage_heights_monotone(self):
        rng = np.random.default_rng(42)
        x = rng.normal(size=(20, 4))
        d = agglomerative_clustering(x, linkage="average")
        heights = [m.height for m in d.merges]
        assert all(b >= a - 1e-9 for a, b in zip(heights, heights[1:]))

    def test_all_leaves_in_root(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(9, 2))
        d = agglomerative_clustering(x)
        assert d.leaves_under(d.root_id) == list(range(9))

    def test_bad_linkage(self):
        with pytest.raises(ValueError):
            agglomerative_clustering(np.zeros((2, 2)), linkage="ward")

    def test_bad_engine(self):
        with pytest.raises(ValueError, match="engine"):
            agglomerative_clustering(np.zeros((2, 2)), engine="heap")

    def test_empty_input(self):
        with pytest.raises(ValueError):
            agglomerative_clustering(np.zeros((0, 2)))

    def test_precomputed_distance(self):
        dist = np.array([[0.0, 1.0, 9.0], [1.0, 0.0, 9.0], [9.0, 9.0, 0.0]])
        d = agglomerative_clustering(None, precomputed=dist)
        assert {d.merges[0].left, d.merges[0].right} == {0, 1}

    @pytest.mark.parametrize("linkage", ["average", "single", "complete"])
    def test_matches_scipy_merge_heights(self, linkage):
        scipy_hier = pytest.importorskip("scipy.cluster.hierarchy")
        rng = np.random.default_rng(7)
        x = rng.normal(size=(15, 3))
        ours = agglomerative_clustering(x, linkage=linkage)
        theirs = scipy_hier.linkage(x, method=linkage, metric="euclidean")
        ours_heights = sorted(m.height for m in ours.merges)
        theirs_heights = sorted(theirs[:, 2])
        assert np.allclose(ours_heights, theirs_heights, atol=1e-8)

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 12), st.integers(1, 3)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    def test_structural_invariants(self, x):
        for engine in ("nn-chain", "legacy"):
            d = agglomerative_clustering(x, engine=engine)
            n = x.shape[0]
            assert len(d.merges) == n - 1
            # Every node id is used exactly once as a merge operand
            # except the root.
            used = [m.left for m in d.merges] + [m.right for m in d.merges]
            assert sorted(used + [d.root_id]) == list(range(2 * n - 1))


def _leaf_sets(d):
    """The merge topology as a sorted list of leaf index tuples."""
    return sorted(tuple(d.leaves_under(m.node_id)) for m in d.merges)


class TestNNChainEngine:
    """The NN-chain engine against the legacy greedy oracle and scipy.

    The engines visit merges in different orders, so Lance–Williams
    averages accumulate differently: topologies must match exactly on
    tie-free inputs, heights only to floating-point tolerance.
    """

    @pytest.mark.parametrize("linkage", ["average", "single", "complete"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_legacy_engine(self, linkage, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(30, 4))
        chain = agglomerative_clustering(x, linkage=linkage)
        greedy = agglomerative_clustering(x, linkage=linkage, engine="legacy")
        assert _leaf_sets(chain) == _leaf_sets(greedy)
        assert np.allclose(
            [m.height for m in chain.merges],
            [m.height for m in greedy.merges],
            atol=1e-9,
        )

    @pytest.mark.parametrize("linkage", ["average", "single", "complete"])
    def test_matches_scipy_topology_and_heights(self, linkage):
        scipy_hier = pytest.importorskip("scipy.cluster.hierarchy")
        rng = np.random.default_rng(11)
        x = rng.normal(size=(25, 3))
        ours = agglomerative_clustering(x, linkage=linkage)
        theirs = scipy_hier.linkage(x, method=linkage, metric="euclidean")
        assert np.allclose(
            [m.height for m in ours.merges], theirs[:, 2], atol=1e-8
        )
        sets = {i: (i,) for i in range(25)}
        scipy_leafsets = []
        for t, (a, b, _h, _size) in enumerate(theirs):
            merged = tuple(sorted(sets[int(a)] + sets[int(b)]))
            sets[25 + t] = merged
            scipy_leafsets.append(merged)
        assert _leaf_sets(ours) == sorted(scipy_leafsets)

    def test_heights_nondecreasing(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(40, 6))
        d = agglomerative_clustering(x)
        heights = [m.height for m in d.merges]
        assert all(b >= a for a, b in zip(heights, heights[1:]))

    def test_tied_chain_terminates_deterministically(self):
        # Equidistant collinear points: every nearest-neighbor link is
        # tied; the chain must not oscillate and the result is the
        # left-leaning dendrogram.
        x = np.arange(8, dtype=np.float64)[:, None]
        d = agglomerative_clustering(x, linkage="single")
        assert len(d.merges) == 7
        assert d.leaves_under(d.root_id) == list(range(8))
