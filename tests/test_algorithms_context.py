"""Tests for BuildContext bookkeeping: bounds, minimal categories."""

from repro.algorithms.base import BuildContext, _is_strict_ancestor
from repro.core import CategoryTree, Variant, make_instance


def make_ctx():
    inst = make_instance([{"a", "b", "x"}], item_bounds={"x": 2})
    tree = CategoryTree()
    return BuildContext(
        tree=tree, instance=inst, variant=Variant.threshold_jaccard(0.6)
    )


class TestAncestry:
    def test_strict_ancestor(self):
        tree = CategoryTree()
        a = tree.add_category({"x"})
        b = tree.add_category({"y"}, parent=a)
        assert _is_strict_ancestor(tree.root, b)
        assert _is_strict_ancestor(a, b)
        assert not _is_strict_ancestor(b, a)
        assert not _is_strict_ancestor(a, a)

    def test_different_branches(self):
        tree = CategoryTree()
        a = tree.add_category(())
        b = tree.add_category(())
        assert not _is_strict_ancestor(a, b)
        assert not _is_strict_ancestor(b, a)


class TestBounds:
    def test_bound_left_reads_instance(self):
        ctx = make_ctx()
        assert ctx.bound_left("a") == 1
        assert ctx.bound_left("x") == 2

    def test_consume_bound(self):
        ctx = make_ctx()
        ctx.consume_bound("x")
        assert ctx.bound_left("x") == 1
        ctx.consume_bound("x")
        assert ctx.bound_left("x") == 0


class TestMinimalTracking:
    def test_record_then_slide_down(self):
        ctx = make_ctx()
        top = ctx.tree.add_category(())
        deep = ctx.tree.add_category((), parent=top)
        ctx.tree.assign_item(top, "a")
        ctx.record_assignment("a", top)
        # 'a' minimal at top: sliding into a descendant is free.
        assert ctx.slides_down("a", deep)

    def test_no_slide_across_branches(self):
        ctx = make_ctx()
        left = ctx.tree.add_category(())
        right = ctx.tree.add_category(())
        ctx.tree.assign_item(left, "a")
        ctx.record_assignment("a", left)
        assert not ctx.slides_down("a", right)

    def test_record_moves_minimal_down(self):
        ctx = make_ctx()
        top = ctx.tree.add_category(())
        deep = ctx.tree.add_category((), parent=top)
        ctx.record_assignment("a", top)
        ctx.record_assignment("a", deep)
        assert ctx.minimal_of["a"] == [deep]

    def test_two_branches_tracked_separately(self):
        ctx = make_ctx()
        left = ctx.tree.add_category(())
        right = ctx.tree.add_category(())
        ctx.record_assignment("x", left)
        ctx.record_assignment("x", right)
        assert len(ctx.minimal_of["x"]) == 2

    def test_unknown_item_never_slides(self):
        ctx = make_ctx()
        cat = ctx.tree.add_category(())
        assert not ctx.slides_down("nope", cat)
