"""Tests for the deterministic load generator and its hot-swap proof."""

import pytest

from repro.algorithms import CTCR
from repro.core import Variant
from repro.serving import (
    DEFAULT_MIX,
    HotSwapper,
    ServingEngine,
    SnapshotStore,
    build_workload,
    run_loadgen,
)
from repro.serving.loadgen import percentile


@pytest.fixture()
def built(figure2_instance):
    variant = Variant.threshold_jaccard(0.6)
    tree = CTCR().build(figure2_instance, variant)
    return tree, figure2_instance, variant


class TestWorkload:
    def test_deterministic_for_same_seed(self, built):
        tree, instance, _ = built
        a = build_workload(instance, tree, 200, seed=5)
        b = build_workload(instance, tree, 200, seed=5)
        assert a == b

    def test_different_seeds_differ(self, built):
        tree, instance, _ = built
        a = build_workload(instance, tree, 200, seed=5)
        b = build_workload(instance, tree, 200, seed=6)
        assert a != b

    def test_mix_respected(self, built):
        tree, instance, _ = built
        workload = build_workload(
            instance, tree, 100, mix={"browse": 1.0}
        )
        assert all(r.op == "browse" for r in workload)

    def test_all_default_ops_appear(self, built):
        tree, instance, _ = built
        ops = {r.op for r in build_workload(instance, tree, 500, seed=1)}
        assert ops == set(DEFAULT_MIX)

    def test_unknown_op_rejected(self, built):
        tree, instance, _ = built
        with pytest.raises(ValueError):
            build_workload(instance, tree, 10, mix={"nope": 1.0})


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.5) == 2.0
        assert percentile(samples, 1.0) == 4.0
        assert percentile(samples, 0.01) == 1.0


class TestRunLoadgen:
    def test_result_sanity(self, built):
        tree, instance, variant = built
        engine = ServingEngine.from_tree(tree, instance, variant)
        workload = build_workload(instance, tree, 300, seed=2)
        result = run_loadgen(engine, workload, n_workers=4)
        assert result.errors == 0
        assert result.n_requests == 300
        assert sum(result.per_op.values()) == 300
        assert result.throughput_rps > 0
        assert 0.0 <= result.p50_ms <= result.p95_ms <= result.p99_ms
        assert result.p99_ms <= result.max_ms
        assert 0.0 <= result.cache_hit_rate <= 1.0
        assert result.covered_fraction > 0.0
        assert result.swap_performed is False
        payload = result.to_dict()
        assert payload["latency_ms"]["p50"] == result.p50_ms

    def test_mid_run_swap_zero_errors(self, tmp_path, built):
        tree, instance, variant = built
        store = SnapshotStore(tmp_path)
        store.save(tree, instance, variant)
        loaded = store.load()
        engine = ServingEngine.from_snapshot(loaded)
        swapper = HotSwapper(engine)
        # cids are reassigned on reload, so draw them from the tree
        # actually being served, not the in-memory build.
        workload = build_workload(instance, loaded.tree, 400, seed=3)
        result = run_loadgen(
            engine,
            workload,
            n_workers=8,
            swap_at=0.5,
            swap=lambda: swapper.swap_from_store(store),
        )
        assert result.errors == 0, result.error_messages
        assert result.swap_performed is True
        assert result.generation_after == result.generation_before + 1

    def test_single_worker(self, built):
        tree, instance, variant = built
        engine = ServingEngine.from_tree(tree, instance, variant)
        workload = build_workload(instance, tree, 50, seed=4)
        result = run_loadgen(engine, workload, n_workers=1)
        assert result.errors == 0
        assert result.n_workers == 1
