"""Tests for the pairwise cover predicates against the paper's algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conflicts import (
    can_cover_separately,
    can_cover_together,
    max_removable_items,
    min_cover_size,
)
from repro.core import InputSet, Variant


def iset(sid: int, items: set) -> InputSet:
    return InputSet(sid=sid, items=frozenset(items))


class TestMaxRemovable:
    def test_exact_removes_nothing(self):
        assert max_removable_items(Variant.exact(), 10, 1.0) == 0

    def test_perfect_recall_removes_nothing(self):
        assert max_removable_items(Variant.perfect_recall(0.5), 10, 0.5) == 0

    def test_jaccard_budget(self):
        # |q| = 10, delta = 0.8: a subset of size 8 has J = 0.8 -> x = 2.
        v = Variant.threshold_jaccard(0.8)
        assert max_removable_items(v, 10, 0.8) == 2

    def test_f1_budget_exceeds_jaccard(self):
        # F1 tolerates more recall loss: r >= delta/(2-delta).
        vj = Variant.threshold_jaccard(0.8)
        vf = Variant.threshold_f1(0.8)
        for size in (5, 10, 40):
            assert max_removable_items(vf, size, 0.8) >= max_removable_items(
                vj, size, 0.8
            )

    @given(
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_removal_budget_is_achievable_and_tight(self, size, delta):
        """Removing x items keeps the score; removing x+1 drops it."""
        for ctor in (Variant.threshold_jaccard, Variant.threshold_f1):
            variant = ctor(min(delta, 1.0))
            x = max_removable_items(variant, size, variant.delta)
            q = frozenset(range(size))
            kept = frozenset(range(size - x))
            from repro.core import variant_score

            assert variant_score(variant, q, kept) > 0.0
            if x + 1 <= size:
                smaller = frozenset(range(size - x - 1))
                assert variant_score(variant, q, smaller) == 0.0

    def test_min_cover_size_complements(self):
        v = Variant.threshold_jaccard(0.7)
        assert min_cover_size(v, 10, 0.7) == 10 - max_removable_items(v, 10, 0.7)


class TestSeparately:
    def test_disjoint_always_separable(self):
        a, b = iset(0, {1, 2}), iset(1, {3, 4})
        for v in (Variant.exact(), Variant.perfect_recall(0.5),
                  Variant.threshold_jaccard(0.9)):
            assert can_cover_separately(v, a, b, v.delta, v.delta)

    def test_exact_intersecting_never_separable(self):
        a, b = iset(0, {1, 2, 3}), iset(1, {3, 4, 5})
        v = Variant.exact()
        assert not can_cover_separately(v, a, b, 1.0, 1.0)

    def test_perfect_recall_intersecting_never_separable(self):
        a, b = iset(0, set(range(20))), iset(1, set(range(19, 40)))
        v = Variant.perfect_recall(0.1)
        assert not can_cover_separately(v, a, b, 0.1, 0.1)

    def test_jaccard_partition_budget(self):
        # |I| = 2, x1 = x2 = 1 at delta 0.8 with sizes 10: 2 <= 2.
        a = iset(0, set(range(10)))
        b = iset(1, set(range(8, 18)))
        v = Variant.threshold_jaccard(0.8)
        assert can_cover_separately(v, a, b, 0.8, 0.8)

    def test_jaccard_partition_budget_exceeded(self):
        # |I| = 5 > x1 + x2 = 2 + 2.
        a = iset(0, set(range(10)))
        b = iset(1, set(range(5, 15)))
        v = Variant.threshold_jaccard(0.8)
        assert not can_cover_separately(v, a, b, 0.8, 0.8)

    def test_bound_items_relax_partition(self):
        a = iset(0, set(range(10)))
        b = iset(1, set(range(7, 17)))
        v = Variant.threshold_jaccard(0.8)
        # One of the three shared items may live on both branches.
        assert can_cover_separately(v, a, b, 0.8, 0.8, shared_bound1=2)

    def test_lower_delta_helps(self):
        a = iset(0, set(range(6)))
        b = iset(1, set(range(3, 9)))
        v = Variant.threshold_jaccard(0.9)
        assert not can_cover_separately(v, a, b, 0.9, 0.9)
        assert can_cover_separately(v.with_delta(0.5), a, b, 0.5, 0.5)


class TestTogether:
    def test_exact_requires_containment(self):
        big = iset(0, {1, 2, 3, 4})
        small = iset(1, {2, 3})
        other = iset(2, {3, 9})
        v = Variant.exact()
        assert can_cover_together(v, big, small, 1.0, 1.0)
        assert not can_cover_together(v, big, other, 1.0, 1.0)

    def test_perfect_recall_union_precision(self):
        # Example 3.2: q1 = {a,c,d,e,f}, q3 = {b,g,h}: |q1|/|q1 u q3| = 5/8.
        q1 = iset(0, {"a", "c", "d", "e", "f"})
        q3 = iset(1, {"b", "g", "h"})
        v61 = Variant.perfect_recall(0.61)
        assert can_cover_together(v61, q1, q3, 0.61, 0.61)  # 0.625 >= 0.61
        v70 = Variant.perfect_recall(0.7)
        assert not can_cover_together(v70, q1, q3, 0.7, 0.7)

    def test_jaccard_nested_always_together(self):
        big = iset(0, set(range(10)))
        small = iset(1, set(range(4)))
        v = Variant.threshold_jaccard(0.95)
        assert can_cover_together(v, big, small, 0.95, 0.95)

    def test_jaccard_disjoint_together_needs_budget(self):
        # Lower set forces y2 = ceil(delta |q2|) foreign items on the
        # upper category.
        big = iset(0, set(range(40)))
        small = iset(1, {100, 101})
        v = Variant.threshold_jaccard(0.8)
        # y2 = 2 <= 40 * 0.25 = 10 -> can cover together.
        assert can_cover_together(v, big, small, 0.8, 0.8)
        tiny = iset(2, set(range(4)))
        # upper budget = 4 * 0.25 = 1 < y2 = 2.
        assert not can_cover_together(v, tiny, small, 0.8, 0.8)

    @settings(max_examples=60, deadline=None)
    @given(
        st.sets(st.integers(0, 15), min_size=1, max_size=10),
        st.sets(st.integers(0, 15), min_size=1, max_size=10),
        st.floats(min_value=0.3, max_value=1.0),
    )
    def test_monotone_in_delta(self, a, b, delta):
        """Whatever is feasible at delta stays feasible below it."""
        upper = iset(0, a | b)  # ensure upper at least as large
        lower = iset(1, b)
        lower_delta = max(0.1, delta - 0.2)
        for ctor in (Variant.threshold_jaccard, Variant.threshold_f1,
                     Variant.perfect_recall):
            v_hi = ctor(delta)
            v_lo = ctor(lower_delta)
            if can_cover_separately(v_hi, upper, lower, delta, delta):
                assert can_cover_separately(
                    v_lo, upper, lower, lower_delta, lower_delta
                )
            if can_cover_together(v_hi, upper, lower, delta, delta):
                assert can_cover_together(
                    v_lo, upper, lower, lower_delta, lower_delta
                )
