"""Property-based tests: validity and optimality on random instances.

These exercise the full CTCR/CCT pipelines over arbitrary small inputs:
every produced tree must be valid, and for the Exact variant CTCR (with
the exact MIS solver) must match the brute-force optimum — the bound the
paper proves tight in Theorem 3.1's setting.
"""

import itertools
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import CCT, CTCR
from repro.core import OCTInstance, Variant, make_instance, score_tree

# Random weighted set families over a small universe.
instances = st.lists(
    st.tuples(
        st.sets(st.integers(0, 9), min_size=1, max_size=6),
        st.floats(min_value=0.1, max_value=5.0),
    ),
    min_size=1,
    max_size=6,
).map(
    lambda pairs: make_instance(
        [p[0] for p in pairs], weights=[p[1] for p in pairs]
    )
)

variants = st.sampled_from(
    [
        Variant.exact(),
        Variant.perfect_recall(0.9),
        Variant.perfect_recall(0.6),
        Variant.perfect_recall(0.3),
        Variant.threshold_jaccard(0.8),
        Variant.threshold_jaccard(0.5),
        Variant.cutoff_jaccard(0.7),
        Variant.threshold_f1(0.8),
        Variant.cutoff_f1(0.6),
    ]
)


def exact_brute_force_optimum(instance: OCTInstance) -> float:
    """Optimal Exact-variant score: the max-weight laminar subfamily.

    A family is coverable by one tree iff its sets are pairwise nested
    or disjoint (no 2-conflicts) — the paper's tight bound at delta = 1.
    """
    sets = instance.sets

    def compatible(a, b) -> bool:
        inter = a.items & b.items
        return not inter or a.items <= b.items or b.items <= a.items

    best = 0.0
    for r in range(len(sets) + 1):
        for family in itertools.combinations(sets, r):
            if all(
                compatible(a, b) for a, b in itertools.combinations(family, 2)
            ):
                best = max(best, sum(q.weight for q in family))
    return best


class TestValidity:
    @settings(max_examples=60, deadline=None)
    @given(instances, variants)
    def test_ctcr_always_valid(self, instance, variant):
        tree = CTCR().build(instance, variant)
        tree.validate(universe=instance.universe, bound=instance.bound)

    @settings(max_examples=60, deadline=None)
    @given(instances, variants)
    def test_cct_always_valid(self, instance, variant):
        tree = CCT().build(instance, variant)
        tree.validate(universe=instance.universe, bound=instance.bound)

    @settings(max_examples=30, deadline=None)
    @given(instances, variants, st.integers(min_value=2, max_value=3))
    def test_ctcr_valid_with_bounds(self, instance, variant, bound):
        bounded = OCTInstance(
            instance.sets, universe=instance.universe, default_bound=bound
        )
        tree = CTCR().build(bounded, variant)
        tree.validate(universe=bounded.universe, bound=bounded.bound)

    @settings(max_examples=40, deadline=None)
    @given(instances, variants)
    def test_scores_normalized(self, instance, variant):
        tree = CTCR().build(instance, variant)
        report = score_tree(tree, instance, variant)
        assert -1e-9 <= report.normalized <= 1.0 + 1e-9


class TestExactOptimality:
    @settings(max_examples=60, deadline=None)
    @given(instances)
    def test_ctcr_exact_is_optimal(self, instance):
        """CTCR + exact MIS solves the Exact variant optimally."""
        tree = CTCR().build(instance, Variant.exact())
        report = score_tree(tree, instance, Variant.exact())
        optimum = exact_brute_force_optimum(instance)
        assert math.isclose(report.total, optimum, abs_tol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(instances)
    def test_cct_never_beats_the_exact_optimum(self, instance):
        tree = CCT().build(instance, Variant.exact())
        report = score_tree(tree, instance, Variant.exact())
        assert report.total <= exact_brute_force_optimum(instance) + 1e-9


class TestCoverageAccounting:
    @settings(max_examples=40, deadline=None)
    @given(instances, variants)
    def test_covered_weight_bounded_by_selection(self, instance, variant):
        builder = CTCR()
        tree = builder.build(instance, variant)
        report = score_tree(tree, instance, variant)
        # The MIS selection upper-bounds what the tree can cover...
        # plus sets covered incidentally by other categories. Normalized
        # score can never exceed 1 regardless.
        assert report.covered_weight <= instance.total_weight + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(instances)
    def test_perfect_recall_covers_selection(self, instance):
        """For PR, every selected set's category achieves recall 1, so the
        covered weight equals the selection weight whenever no
        higher-order conflict interferes; it can never exceed it by more
        than the weight of incidentally covered unselected sets."""
        variant = Variant.perfect_recall(0.6)
        builder = CTCR()
        tree = builder.build(instance, variant)
        report = score_tree(tree, instance, variant)
        assert report.covered_weight >= 0.0
        tree.validate(universe=instance.universe, bound=instance.bound)
