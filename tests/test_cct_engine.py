"""Differential tests for CCT's bitset embedding engine and sweep cache.

The kernel path mirrors the reference loop's scalar closed forms
IEEE-op for IEEE-op, so embeddings — and therefore whole CCT trees —
must be *bit-identical* across every engine combination. The acceptance
grid pins that: {legacy, bitset} x {serial, pooled} x {cache on/off}
all return byte-identical trees on every similarity variant.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.algorithms import CCT, CCTConfig, clear_embedding_cache, set_embeddings
from repro.algorithms.cct import _set_embeddings_bitset, _set_embeddings_reference
from repro.algorithms.cct_cache import EmbeddingCache, get_embedding_cache
from repro.core import Variant, score_tree
from repro.io import tree_to_dict
from repro.observability import Tracer, use_tracer

from tests.test_ctcr_equivalence import EQUIV_VARIANTS, random_instance


class TestEmbeddingEquivalence:
    """Reference loop vs kernel path: exact (bitwise) matrix equality."""

    @pytest.mark.parametrize("variant", EQUIV_VARIANTS, ids=lambda v: str(v))
    def test_random_instances(self, variant):
        for seed in range(5):
            instance = random_instance(seed)
            ref = _set_embeddings_reference(instance, variant)
            fast = _set_embeddings_bitset(instance, variant)
            assert np.array_equal(ref, fast)

    def test_paper_examples(self, figure2_instance, example32_instance, all_variants):
        for instance in (figure2_instance, example32_instance):
            for variant in all_variants:
                ref = _set_embeddings_reference(instance, variant)
                fast = _set_embeddings_bitset(instance, variant)
                assert np.array_equal(ref, fast)

    def test_pooled_matches_serial(self):
        variant = Variant.threshold_jaccard(0.5)
        instance = random_instance(3, n_sets=40)
        serial = _set_embeddings_bitset(instance, variant, n_jobs=1)
        pooled = _set_embeddings_bitset(instance, variant, n_jobs=2)
        assert np.array_equal(serial, pooled)

    def test_empty_instance(self):
        from repro.core.input_sets import OCTInstance

        instance = OCTInstance([], universe=[])
        ref = _set_embeddings_reference(instance, Variant.exact())
        fast = _set_embeddings_bitset(instance, Variant.exact())
        assert ref.shape == fast.shape == (0, 0)

    def test_public_entrypoint_dispatches_by_flag(self):
        variant = Variant.cutoff_f1(0.5)
        instance = random_instance(7)
        on = set_embeddings(instance, variant, use_bitset=True)
        off = set_embeddings(instance, variant, use_bitset=False)
        auto = set_embeddings(instance, variant)
        assert np.array_equal(on, off)
        assert np.array_equal(on, auto)


class TestEmbeddingCache:
    """The sweep cache replays intersection counts, not similarity."""

    def setup_method(self):
        clear_embedding_cache()

    def teardown_method(self):
        clear_embedding_cache()

    def test_replay_is_identical(self):
        instance = random_instance(5)
        variant = Variant.threshold_jaccard(0.5)
        cold = _set_embeddings_bitset(instance, variant, use_cache=True)
        warm = _set_embeddings_bitset(instance, variant, use_cache=True)
        cache = get_embedding_cache()
        assert cache.misses == 1 and cache.hits == 1
        assert np.array_equal(cold, warm)

    def test_cross_variant_and_cross_delta_reuse(self):
        """Counts are variant-independent: one miss serves every δ and
        even every similarity kind on the same instance."""
        instance = random_instance(9)
        variants = [
            Variant.threshold_jaccard(0.5),
            Variant.threshold_jaccard(0.8),
            Variant.cutoff_f1(0.6),
            Variant.perfect_recall(0.7),
        ]
        for variant in variants:
            cached = _set_embeddings_bitset(instance, variant, use_cache=True)
            fresh = _set_embeddings_bitset(instance, variant, use_cache=False)
            assert np.array_equal(cached, fresh)
        cache = get_embedding_cache()
        assert cache.misses == 1
        assert cache.hits == len(variants) - 1

    def test_different_instances_do_not_collide(self):
        variant = Variant.exact()
        a = _set_embeddings_bitset(random_instance(1), variant, use_cache=True)
        b = _set_embeddings_bitset(random_instance(2), variant, use_cache=True)
        cache = get_embedding_cache()
        assert cache.misses == 2 and cache.hits == 0
        assert a.shape == b.shape and not np.array_equal(a, b)

    def test_fifo_eviction_bounds_entries(self):
        cache = EmbeddingCache(max_entries=2)
        empty = np.empty(0, dtype=np.int64)
        for seed in range(4):
            inst = random_instance(seed, n_sets=5, n_items=10)
            key = cache.key(inst)
            assert cache.get(key) is None
            cache.put(
                key, (5, np.ones(5, dtype=np.int64), empty, empty, empty)
            )
        assert len(cache) == 2

    def test_cached_arrays_are_read_only(self):
        instance = random_instance(4)
        _set_embeddings_bitset(instance, Variant.exact(), use_cache=True)
        cache = get_embedding_cache()
        entry = cache.get(cache.key(instance))
        assert entry is not None
        n, *arrays = entry
        assert n == len(instance)
        assert all(not a.flags.writeable for a in arrays)

    def test_counters_surface_in_tracer(self):
        instance = random_instance(6)
        variant = Variant.threshold_jaccard(0.5)
        with use_tracer(Tracer()) as tracer:
            _set_embeddings_bitset(instance, variant, use_cache=True)
            _set_embeddings_bitset(instance, variant, use_cache=True)
        assert tracer.counters.get("cct.cache_misses") == 1
        assert tracer.counters.get("cct.cache_hits") == 1


def cct_fingerprint(instance, variant, **config):
    tree = CCT(CCTConfig(**config)).build(instance, variant)
    report = score_tree(tree, instance, variant)
    return tree_to_dict(tree), report.normalized, report.total, tree.to_text()


class TestCCTEngineGrid:
    """Acceptance grid: every embedding-engine combination returns a
    byte-identical CCT tree on every similarity variant.

    The cache grid runs cold then warm, so replayed intersection counts
    are exercised, not just stored.
    """

    @pytest.mark.parametrize("variant", EQUIV_VARIANTS, ids=lambda v: str(v))
    def test_engine_grid(self, variant):
        clear_embedding_cache()
        instance = random_instance(21, n_sets=25)
        base = cct_fingerprint(instance, variant, use_bitset=False)
        for use_bitset in (False, True):
            for n_jobs in (1, 2):
                for use_cache in (False, True):
                    got = cct_fingerprint(
                        instance,
                        variant,
                        use_bitset=use_bitset,
                        n_jobs=n_jobs,
                        use_cache=use_cache,
                    )
                    assert got == base, (
                        f"bitset={use_bitset} jobs={n_jobs} cache={use_cache}"
                    )
        # Second cached pass replays from the now-warm cache.
        warm = cct_fingerprint(
            instance, variant, use_bitset=True, use_cache=True
        )
        assert warm == base
        clear_embedding_cache()

    def test_paper_examples_grid(
        self, figure2_instance, example32_instance, all_variants
    ):
        clear_embedding_cache()
        for instance in (figure2_instance, example32_instance):
            for variant in all_variants:
                base = cct_fingerprint(instance, variant, use_bitset=False)
                for use_cache in (False, True):
                    got = cct_fingerprint(
                        instance,
                        variant,
                        use_bitset=True,
                        use_cache=use_cache,
                    )
                    assert got == base
        clear_embedding_cache()

    @pytest.mark.slow
    def test_tiny_dataset_grid(self, tiny_dataset):
        from repro.pipeline import preprocess

        clear_embedding_cache()
        variant = Variant.threshold_jaccard(0.8)
        instance, _report = preprocess(tiny_dataset, variant)
        base = cct_fingerprint(instance, variant, use_bitset=False)
        for n_jobs in (1, 4):
            for use_cache in (False, True):
                got = cct_fingerprint(
                    instance,
                    variant,
                    use_bitset=True,
                    n_jobs=n_jobs,
                    use_cache=use_cache,
                )
                assert got == base, f"jobs={n_jobs} cache={use_cache}"
        clear_embedding_cache()


class TestClusterEngineContract:
    """NN-chain vs legacy clustering inside the full CCT build.

    Merge orders differ on ties, so trees need not be byte-identical —
    but both engines must produce valid trees with identical scores on
    tie-free inputs, and the config must reject unknown engines.
    """

    @pytest.mark.parametrize("variant", EQUIV_VARIANTS, ids=lambda v: str(v))
    def test_both_engines_build_valid_trees(self, variant):
        instance = random_instance(13, n_sets=20)
        for engine in ("nn-chain", "legacy"):
            tree = CCT(CCTConfig(cluster_engine=engine)).build(
                instance, variant
            )
            tree.validate(
                universe=instance.universe, bound=instance.bound
            )

    def test_unknown_cluster_engine_rejected(self):
        instance = random_instance(2, n_sets=5)
        with pytest.raises(ValueError, match="engine"):
            CCT(CCTConfig(cluster_engine="heap")).build(
                instance, Variant.exact()
            )
