"""CTCR end-to-end tests on the paper's worked examples."""

import math

import pytest

from repro.algorithms import CTCR, CTCRConfig
from repro.core import Variant, make_instance, score_tree
from repro.mis import MISConfig


class TestExactVariant:
    def test_figure4_optimal_tree(self, figure2_instance):
        """Figure 4: for the Exact variant the optimum covers q1 and q2
        (weight 3 of 5) with C(q2) nested inside C(q1)."""
        builder = CTCR()
        tree = builder.build(figure2_instance, Variant.exact())
        tree.validate(universe=figure2_instance.universe)
        report = score_tree(tree, figure2_instance, Variant.exact())
        assert math.isclose(report.normalized, 3 / 5)
        assert report.per_set[0].covered and report.per_set[1].covered
        # The nested structure: C(q2) is a descendant of C(q1).
        c_q1 = tree.find(report.per_set[0].best_cid)
        c_q2 = tree.find(report.per_set[1].best_cid)
        assert c_q2 in list(c_q1.descendants())
        assert c_q1.items == figure2_instance.get(0).items
        assert c_q2.items == figure2_instance.get(1).items

    def test_diagnostics_match_figure4(self, figure2_instance):
        builder = CTCR()
        builder.build(figure2_instance, Variant.exact())
        diag = builder.last_diagnostics
        assert diag.num_two_conflicts == 3
        assert diag.num_three_conflicts == 0
        assert diag.selected == 2
        assert diag.selected_weight == 3.0

    def test_misc_category_collects_leftovers(self, figure2_instance):
        tree = CTCR().build(figure2_instance, Variant.exact())
        misc = [c for c in tree.categories() if c.label == "C_misc"]
        assert len(misc) == 1
        # f, g, h appear in no selected set.
        assert misc[0].items == {"f", "g", "h"}


class TestPerfectRecall:
    def test_figure2_t1_optimal(self, figure2_instance):
        """The paper's T1: PR with delta 0.8 covers q1, q2, q3 (score 4/5)."""
        variant = Variant.perfect_recall(0.8)
        tree = CTCR().build(figure2_instance, variant)
        tree.validate(universe=figure2_instance.universe)
        report = score_tree(tree, figure2_instance, variant)
        assert math.isclose(report.normalized, 4 / 5)
        covered = {sid for sid, e in report.per_set.items() if e.covered}
        assert covered == {0, 1, 2}

    def test_example32_drops_exactly_one_set(self, example32_instance):
        """The 3-conflict {q1,q2,q3} forces giving up one set; optimal
        drops the lightest."""
        variant = Variant.perfect_recall(0.61)
        builder = CTCR()
        tree = builder.build(example32_instance, variant)
        tree.validate(universe=example32_instance.universe)
        report = score_tree(tree, example32_instance, variant)
        weights = [q.weight for q in example32_instance]
        expected = (sum(weights) - min(weights)) / sum(weights)
        assert math.isclose(report.normalized, expected)
        assert builder.last_diagnostics.num_three_conflicts == 1


class TestGeneralVariants:
    @pytest.mark.parametrize(
        "variant, minimum",
        [
            (Variant.threshold_jaccard(0.6), 4 / 5),
            (Variant.threshold_f1(0.7), 4 / 5),
            (Variant.cutoff_jaccard(0.65), 0.7),
            (Variant.cutoff_f1(0.7), 0.65),
        ],
    )
    def test_figure2_scores(self, figure2_instance, variant, minimum):
        tree = CTCR().build(figure2_instance, variant)
        tree.validate(universe=figure2_instance.universe)
        report = score_tree(tree, figure2_instance, variant)
        assert report.normalized >= minimum - 1e-9

    def test_threshold_handled_as_cutoff_never_uncovers(self, figure2_instance):
        """Binary variants must not lose covers to over-optimization."""
        variant = Variant.threshold_jaccard(0.6)
        tree = CTCR().build(figure2_instance, variant)
        report = score_tree(tree, figure2_instance, variant)
        assert report.covered_count >= 3


class TestConfigSwitches:
    def test_greedy_mis_config(self, figure2_instance):
        builder = CTCR(CTCRConfig(mis=MISConfig(exact=False)))
        tree = builder.build(figure2_instance, Variant.exact())
        tree.validate(universe=figure2_instance.universe)
        report = score_tree(tree, figure2_instance, Variant.exact())
        assert report.normalized > 0

    def test_three_conflicts_ablation(self, example32_instance):
        variant = Variant.perfect_recall(0.61)
        ablated = CTCR(CTCRConfig(use_three_conflicts=False))
        tree = ablated.build(example32_instance, variant)
        tree.validate(universe=example32_instance.universe)
        assert ablated.last_diagnostics.num_three_conflicts == 0
        # Without anticipating the triple the tree may cover fewer sets,
        # never more than the full algorithm on this instance.
        full_tree = CTCR().build(example32_instance, variant)
        full = score_tree(full_tree, example32_instance, variant)
        partial = score_tree(tree, example32_instance, variant)
        assert partial.normalized <= full.normalized + 1e-9

    def test_no_condense_keeps_score(self, figure2_instance):
        """Condensing may only increase the score (paper Section 3.2)."""
        for variant in (
            Variant.perfect_recall(0.8),
            Variant.threshold_jaccard(0.6),
        ):
            plain = CTCR(CTCRConfig(condense=False)).build(
                figure2_instance, variant
            )
            condensed = CTCR().build(figure2_instance, variant)
            s_plain = score_tree(plain, figure2_instance, variant).normalized
            s_cond = score_tree(condensed, figure2_instance, variant).normalized
            assert s_cond >= s_plain - 1e-9

    def test_parallel_jobs_give_same_tree_score(self, figure2_instance):
        variant = Variant.threshold_jaccard(0.6)
        s1 = score_tree(
            CTCR(CTCRConfig(n_jobs=1)).build(figure2_instance, variant),
            figure2_instance,
            variant,
        ).normalized
        s2 = score_tree(
            CTCR(CTCRConfig(n_jobs=2)).build(figure2_instance, variant),
            figure2_instance,
            variant,
        ).normalized
        assert math.isclose(s1, s2)


class TestItemBounds:
    def test_bound_two_lets_items_straddle_branches(self):
        """With bound 2 the memory-cards scenario needs no conflict: the
        shared items may live in both subtrees."""
        inst_b1 = make_instance(
            [set(range(8)), set(range(6, 14))], weights=[1.0, 1.0]
        )
        variant = Variant.perfect_recall(0.9)
        tree1 = CTCR().build(inst_b1, variant)
        r1 = score_tree(tree1, inst_b1, variant)

        inst_b2 = make_instance(
            [set(range(8)), set(range(6, 14))],
            weights=[1.0, 1.0],
            default_bound=2,
        )
        tree2 = CTCR().build(inst_b2, variant)
        tree2.validate(universe=inst_b2.universe, bound=inst_b2.bound)
        r2 = score_tree(tree2, inst_b2, variant)
        assert r1.normalized < 1.0
        assert math.isclose(r2.normalized, 1.0)
