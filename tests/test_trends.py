"""Tests for query-log trend detection."""

import pytest

from repro.catalog import (
    FASHION,
    detect_trending_queries,
    fading_queries,
    generate_query_log,
)
from repro.catalog.queries import QueryLog, RawQuery


def log_with(counts: dict[str, list[int]], days: int = 30) -> QueryLog:
    return QueryLog(
        queries=[
            RawQuery(text=text, daily_counts=tuple(c))
            for text, c in counts.items()
        ],
        days=days,
    )


class TestTrendDetection:
    def test_detects_injected_spike(self):
        log = generate_query_log(
            FASHION, 40, seed=3, trend_queries=["kobe memorabilia"]
        )
        trends = detect_trending_queries(log, window=14)
        assert any(t.text == "kobe memorabilia" for t in trends)

    def test_steady_queries_not_trending(self):
        log = log_with({"steady": [10] * 30})
        assert detect_trending_queries(log, window=10) == []

    def test_lift_computed(self):
        log = log_with({"spike": [2] * 20 + [20] * 10})
        (trend,) = detect_trending_queries(log, window=10)
        assert trend.lift == pytest.approx(10.0)
        assert trend.recent_daily == pytest.approx(20.0)
        assert trend.baseline_daily == pytest.approx(2.0)

    def test_new_query_infinite_lift(self):
        log = log_with({"fresh": [0] * 20 + [9] * 10})
        (trend,) = detect_trending_queries(log, window=10)
        assert trend.lift == float("inf")

    def test_small_spikes_filtered(self):
        log = log_with({"blip": [0] * 25 + [2] * 5})
        assert detect_trending_queries(log, window=5) == []

    def test_sorted_by_lift(self):
        log = log_with(
            {
                "big": [1] * 20 + [30] * 10,
                "small": [2] * 20 + [12] * 10,
            }
        )
        trends = detect_trending_queries(log, window=10)
        assert [t.text for t in trends] == ["big", "small"]

    def test_bad_window_rejected(self):
        log = log_with({"q": [1] * 30})
        with pytest.raises(ValueError):
            detect_trending_queries(log, window=0)
        with pytest.raises(ValueError):
            detect_trending_queries(log, window=30)


class TestFadingQueries:
    def test_detects_collapse(self):
        log = log_with({"world cup jersey": [20] * 25 + [1] * 5})
        fading = fading_queries(log, window=5)
        assert [q.text for q in fading] == ["world cup jersey"]

    def test_steady_not_fading(self):
        log = log_with({"steady": [10] * 30})
        assert fading_queries(log, window=5) == []

    def test_low_baseline_ignored(self):
        log = log_with({"rare": [1] * 25 + [0] * 5})
        assert fading_queries(log, window=5) == []
