"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_variant
from repro.core import ScoreMode, SimilarityKind


class TestParseVariant:
    def test_exact(self):
        assert parse_variant("exact").is_exact

    def test_threshold_jaccard(self):
        v = parse_variant("threshold-jaccard:0.8")
        assert v.kind is SimilarityKind.JACCARD
        assert v.mode is ScoreMode.THRESHOLD
        assert v.delta == 0.8

    def test_perfect_recall(self):
        v = parse_variant("perfect-recall:0.6")
        assert v.is_perfect_recall and v.delta == 0.6

    def test_bad_spec(self):
        with pytest.raises(SystemExit):
            parse_variant("jaccard")
        with pytest.raises(SystemExit):
            parse_variant("nope:0.5")
        with pytest.raises(SystemExit):
            parse_variant("threshold-jaccard:high")


class TestCommands:
    COMMON = ["--dataset", "A", "--scale", "0.01", "--seed", "7"]

    def test_build_prints_score(self, capsys):
        rc = main(["build", *self.COMMON, "--algorithm", "ctcr"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CTCR: score=" in out

    def test_build_show_and_output(self, capsys, tmp_path):
        out_path = tmp_path / "tree.json"
        rc = main(
            [
                "build", *self.COMMON,
                "--output", str(out_path), "--show",
            ]
        )
        assert rc == 0
        assert out_path.exists()
        assert "root" in capsys.readouterr().out

    def test_evaluate_saved_tree(self, capsys, tmp_path):
        out_path = tmp_path / "tree.json"
        main(["build", *self.COMMON, "--output", str(out_path)])
        capsys.readouterr()
        rc = main(["evaluate", *self.COMMON, "--tree", str(out_path)])
        assert rc == 0
        assert "score=" in capsys.readouterr().out

    def test_compare_lists_all_algorithms(self, capsys):
        rc = main(["compare", *self.COMMON])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("CTCR", "CCT", "IC-Q", "IC-S", "ET"):
            assert name in out

    def test_sweep(self, capsys):
        rc = main(
            [
                "sweep", *self.COMMON,
                "--start", "0.7", "--stop", "0.9", "--step", "0.1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0.7000" in out and "0.9000" in out

    def test_instance_json_input(self, capsys, tmp_path):
        from repro.core import make_instance
        from repro.io import dump_instance

        inst = make_instance([{"a", "b"}, {"c", "d"}])
        path = tmp_path / "inst.json"
        dump_instance(inst, str(path))
        rc = main(
            [
                "build", "--instance", str(path),
                "--variant", "exact", "--algorithm", "cct",
            ]
        )
        assert rc == 0
        assert "CCT: score=" in capsys.readouterr().out

    def test_baseline_requires_dataset(self, tmp_path):
        from repro.core import make_instance
        from repro.io import dump_instance

        inst = make_instance([{"a"}])
        path = tmp_path / "inst.json"
        dump_instance(inst, str(path))
        with pytest.raises(SystemExit):
            main(["build", "--instance", str(path), "--algorithm", "ic-s"])

    def test_preprocess_exports_instance(self, capsys, tmp_path):
        out_path = tmp_path / "inst.json"
        rc = main(["preprocess", *self.COMMON, "--output", str(out_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "candidate sets" in out
        from repro.io import load_instance

        instance = load_instance(str(out_path))
        assert len(instance) > 0

    def test_trends_command(self, capsys):
        rc = main(["trends", *self.COMMON, "--window", "14"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trending queries" in out
        assert "fading queries" in out
