"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_variant
from repro.core import ScoreMode, SimilarityKind


class TestParseVariant:
    def test_exact(self):
        assert parse_variant("exact").is_exact

    def test_threshold_jaccard(self):
        v = parse_variant("threshold-jaccard:0.8")
        assert v.kind is SimilarityKind.JACCARD
        assert v.mode is ScoreMode.THRESHOLD
        assert v.delta == 0.8

    def test_perfect_recall(self):
        v = parse_variant("perfect-recall:0.6")
        assert v.is_perfect_recall and v.delta == 0.6

    def test_bad_spec(self):
        with pytest.raises(SystemExit):
            parse_variant("jaccard")
        with pytest.raises(SystemExit):
            parse_variant("nope:0.5")
        with pytest.raises(SystemExit):
            parse_variant("threshold-jaccard:high")


class TestCommands:
    COMMON = ["--dataset", "A", "--scale", "0.01", "--seed", "7"]

    def test_build_prints_score(self, capsys):
        rc = main(["build", *self.COMMON, "--algorithm", "ctcr"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CTCR: score=" in out

    def test_build_show_and_output(self, capsys, tmp_path):
        out_path = tmp_path / "tree.json"
        rc = main(
            [
                "build", *self.COMMON,
                "--output", str(out_path), "--show",
            ]
        )
        assert rc == 0
        assert out_path.exists()
        assert "root" in capsys.readouterr().out

    def test_evaluate_saved_tree(self, capsys, tmp_path):
        out_path = tmp_path / "tree.json"
        main(["build", *self.COMMON, "--output", str(out_path)])
        capsys.readouterr()
        rc = main(["evaluate", *self.COMMON, "--tree", str(out_path)])
        assert rc == 0
        assert "score=" in capsys.readouterr().out

    def test_compare_lists_all_algorithms(self, capsys):
        rc = main(["compare", *self.COMMON])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("CTCR", "CCT", "IC-Q", "IC-S", "ET"):
            assert name in out

    def test_sweep(self, capsys):
        rc = main(
            [
                "sweep", *self.COMMON,
                "--start", "0.7", "--stop", "0.9", "--step", "0.1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0.7000" in out and "0.9000" in out

    def test_instance_json_input(self, capsys, tmp_path):
        from repro.core import make_instance
        from repro.io import dump_instance

        inst = make_instance([{"a", "b"}, {"c", "d"}])
        path = tmp_path / "inst.json"
        dump_instance(inst, str(path))
        rc = main(
            [
                "build", "--instance", str(path),
                "--variant", "exact", "--algorithm", "cct",
            ]
        )
        assert rc == 0
        assert "CCT: score=" in capsys.readouterr().out

    def test_baseline_requires_dataset(self, tmp_path):
        from repro.core import make_instance
        from repro.io import dump_instance

        inst = make_instance([{"a"}])
        path = tmp_path / "inst.json"
        dump_instance(inst, str(path))
        with pytest.raises(SystemExit):
            main(["build", "--instance", str(path), "--algorithm", "ic-s"])

    def test_preprocess_exports_instance(self, capsys, tmp_path):
        out_path = tmp_path / "inst.json"
        rc = main(["preprocess", *self.COMMON, "--output", str(out_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "candidate sets" in out
        from repro.io import load_instance

        instance = load_instance(str(out_path))
        assert len(instance) > 0

    def test_trends_command(self, capsys):
        rc = main(["trends", *self.COMMON, "--window", "14"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trending queries" in out
        assert "fading queries" in out


class TestObservabilityFlags:
    COMMON = ["--dataset", "A", "--scale", "0.01", "--seed", "7"]

    def test_oct_alias_builds_a_tree(self, capsys):
        rc = main(["oct", *self.COMMON])
        assert rc == 0
        assert "CTCR: score=" in capsys.readouterr().out

    def test_trace_prints_span_tree(self, capsys):
        rc = main(["oct", *self.COMMON, "--trace"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "ctcr.build" in captured.err
        assert "counters:" in captured.err

    def test_manifest_written_with_spans_counters_score(self, tmp_path):
        import json

        path = tmp_path / "manifest.json"
        rc = main(["oct", *self.COMMON, "--manifest", str(path)])
        assert rc == 0
        manifest = json.loads(path.read_text())
        assert len({s["name"] for s in manifest["spans"]}) >= 6
        assert len(manifest["counters"]) >= 4
        assert manifest["score"]["algorithm"] == "CTCR"
        assert 0.0 <= manifest["score"]["normalized"] <= 1.0
        assert manifest["dataset"]["n_sets"] > 0
        assert manifest["config"]["seed"] == 7
        assert manifest["tool"] == "repro oct"

    def test_manifest_round_trips_through_loader(self, tmp_path):
        from repro.observability import RunManifest

        path = tmp_path / "manifest.json"
        main(["build", *self.COMMON, "--manifest", str(path)])
        manifest = RunManifest.load(path)
        assert manifest.totals["wall_s"] > 0
        assert manifest.dominant_spans(top=1)[0]["wall_s"] > 0

    def test_tracing_does_not_change_the_tree(self, capsys, tmp_path):
        plain = tmp_path / "plain.json"
        traced = tmp_path / "traced.json"
        main(["build", *self.COMMON, "--output", str(plain)])
        main(
            [
                "build", *self.COMMON, "--output", str(traced),
                "--trace", "--manifest", str(tmp_path / "m.json"),
            ]
        )
        capsys.readouterr()
        assert plain.read_text() == traced.read_text()

    def test_profile_dump(self, tmp_path):
        import pstats

        path = tmp_path / "run.prof"
        rc = main(["oct", *self.COMMON, "--profile", str(path)])
        assert rc == 0
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0

    def test_tracer_restored_after_run(self):
        # The previously active tracer (usually the null tracer, but e.g.
        # the benchmark suite installs its own) comes back afterwards.
        from repro.observability import get_tracer

        before = get_tracer()
        main(["oct", *self.COMMON, "--trace"])
        assert get_tracer() is before

    def test_manifest_for_other_commands(self, tmp_path):
        import json

        path = tmp_path / "sweep.json"
        rc = main(
            [
                "sweep", *self.COMMON, "--manifest", str(path),
                "--start", "0.8", "--stop", "0.9", "--step", "0.1",
            ]
        )
        assert rc == 0
        manifest = json.loads(path.read_text())
        assert manifest["tool"] == "repro sweep"
        assert any(s["name"] == "ctcr.build" for s in manifest["spans"])
