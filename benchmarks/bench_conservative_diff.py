"""Conservative updates measured structurally (Sections 2.3, 5.4).

Table 1 shows the weight knob controls the *score* split; this bench
verifies it also controls what taxonomists actually see — how much of
the existing tree survives. Raising the existing-categories weight share
must raise the existing tree's category survival rate in the new tree.
"""

from benchmarks.common import bench_report
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR
from repro.catalog import tree_categories_as_input_sets
from repro.core import Variant
from repro.evaluation import diff_trees, reweight_sources

VARIANT = Variant.threshold_jaccard(0.8)
SHARES = [0.9, 0.5, 0.1]


def test_conservative_updates_structural(benchmark, dataset_a):
    queries = instance_for("A", VARIANT)
    existing_sets = tree_categories_as_input_sets(
        dataset_a.existing_tree, start_sid=500_000
    )
    mixed = queries.with_extra_sets(existing_sets)

    def run():
        rows = []
        for share in SHARES:
            tree = CTCR().build(reweight_sources(mixed, share), VARIANT)
            diff = diff_trees(
                dataset_a.existing_tree, tree, min_similarity=0.5
            )
            rows.append(
                [
                    f"{share:.0%} queries",
                    diff.survival_rate,
                    diff.item_stability,
                    len(diff.added_cids),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    bench_report(
        "Conservative updates — existing-tree survival vs weight share (A)",
        "lower query share -> more of the existing tree survives",
        ["weight share", "category survival", "item stability", "new categories"],
        rows,
    )

    survivals = [row[1] for row in rows]
    # Moving from query-dominated to existing-dominated must not reduce
    # survival of the existing categorization.
    assert survivals[-1] >= survivals[0] - 0.02
