"""Extreme-scale curves: synthetic catalogs from repro.scale, end to end.

Each point generates a planted catalog (``repro.scale``), materializes
the instance and planted tree, builds the succinct serving indexes, and
times the read path over a head-weighted query sample.  Points run in a
forked child process (one per point) so peak RSS is honest per point
instead of a running maximum across the sweep.

On the largest point the latency-budgeted shaper (``repro.shaping``) is
exercised as a gate: the cost model is calibrated against the measured
succinct read path, the planted tree is shaped to a budget halfway
between the estimated cost floor and the baseline, and the run *fails*
unless the budget is met and the reported quality delta matches an
offline ``score_tree`` of the shaped tree exactly (bit-equal, not
approximately).

Results go to ``BENCH_extreme.json`` (full sweep, up to 1M items / 50k
candidate sets) or ``BENCH_extreme_tiny.json`` (``--tiny``, the CI
smoke).  The old ``bench_large_scale.py`` entry point now delegates its
synthetic half to :func:`run_point` here.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
for _p in (str(_ROOT), str(_ROOT / "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

# (n_items, n_sets) per point; candidate categories scale as n_sets // 4
# plus the planted internal nodes (see ScaleSpec.resolved_nodes).
FULL_POINTS = (
    (50_000, 4_000),
    (200_000, 12_000),
    (500_000, 25_000),
    (1_000_000, 50_000),
)
TINY_POINTS = (
    (2_000, 150),
    (5_000, 300),
    (10_000, 600),
    (20_000, 1_200),
)

VARIANT_SPEC = "tj:0.1"
_CHILD_MARKER = "POINT_JSON:"


def _variant():
    from repro.core import Variant

    return Variant.threshold_jaccard(0.1)


def _peak_rss_bytes() -> int:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak * 1024 if os.uname().sysname == "Linux" else peak


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[idx]


def _shaping_gate(tree, instance, variant, queries: int) -> dict:
    """Calibrate, shape to a halfway latency budget, verify exactly.

    The budget sits halfway between the estimated irreducible floor
    (every query answered at the root) and the baseline cost of the
    planted tree, so it is always reachable by width pruning yet never
    trivially met.  Raises AssertionError when the budget is missed or
    the reported quality delta disagrees with an offline re-score.
    """
    from repro.core import score_tree
    from repro.shaping import (
        ShapingBudget,
        TreeShaper,
        calibrate_cost_model,
        estimate_cost,
    )

    t0 = time.perf_counter()
    model = calibrate_cost_model(
        tree, instance, variant, samples=min(queries, len(instance.sets))
    )
    calibrate_s = time.perf_counter() - t0

    baseline = estimate_cost(tree, instance, variant, model)
    total_w = sum(q.weight for q in instance.sets) or 1.0
    mean_size = sum(q.weight * len(q.items) for q in instance.sets) / total_w
    # Cost with only the root serving: one candidate, one path node, and
    # postings proportional to the query size.
    floor_ns = (
        model.base_ns
        + model.ns_per_posting * mean_size
        + model.ns_per_candidate
        + model.ns_per_path_node
    )
    budget_ns = floor_ns + 0.5 * max(
        baseline.expected_query_ns - floor_ns, 0.0
    )
    budget = ShapingBudget(max_query_ns=budget_ns)

    t0 = time.perf_counter()
    result = TreeShaper(instance, variant, model).shape(tree, budget)
    shape_s = time.perf_counter() - t0

    # The gate: budget met, and the reported delta is exact.
    ref_before = score_tree(tree, instance, variant).normalized
    ref_after = score_tree(result.tree, instance, variant).normalized
    assert result.met, (
        f"shaping missed its latency budget: "
        f"{result.cost_after.expected_query_ns:.0f}ns > {budget_ns:.0f}ns"
    )
    assert result.score_before == ref_before, (
        f"score_before {result.score_before!r} != offline {ref_before!r}"
    )
    assert result.score_after == ref_after, (
        f"score_after {result.score_after!r} != offline {ref_after!r}"
    )
    result.tree.validate(universe=instance.universe, bound=instance.bound)

    return {
        "budget_ns": budget_ns,
        "baseline_ns": baseline.expected_query_ns,
        "shaped_ns": result.cost_after.expected_query_ns,
        "met": result.met,
        "score_before": result.score_before,
        "score_after": result.score_after,
        "quality_given_up": result.quality_given_up,
        "offline_rescore_exact": True,
        "removed": result.removed,
        "width_pruned": result.width_pruned,
        "hub_splits": result.hub_splits,
        "depth_capped": result.depth_capped,
        "cost_model": model.to_dict(),
        "calibrate_s": round(calibrate_s, 3),
        "shape_s": round(shape_s, 3),
    }


def run_point(
    n_items: int,
    n_sets: int,
    seed: int = 0,
    queries: int = 200,
    shape: bool = False,
    fingerprint: bool = False,
) -> dict:
    """Generate, index, and serve one scale point; return its record.

    Meant to run in its own process (peak RSS is process-wide); the
    parent sweep forks one child per point for exactly that reason.
    """
    from repro.scale import ExtremeCatalog, scaled_spec
    from repro.serving.indexes import SnapshotIndexes

    variant = _variant()
    spec = scaled_spec(n_items=n_items, n_sets=n_sets, seed=seed)

    t0 = time.perf_counter()
    catalog = ExtremeCatalog(spec)
    gen_s = time.perf_counter() - t0

    fp = ""
    fp_s = 0.0
    if fingerprint:
        t0 = time.perf_counter()
        fp = catalog.fingerprint()
        fp_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    instance = catalog.instance()
    materialize_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    tree = catalog.planted_tree()
    tree_s = time.perf_counter() - t0

    # The bitset universe at 1M items would dwarf the postings; the
    # extreme tier measures the succinct representation only.
    t0 = time.perf_counter()
    indexes = SnapshotIndexes(
        tree, instance, variant, use_bitset=False, tree_repr="succinct"
    )
    index_s = time.perf_counter() - t0

    post_var = getattr(indexes, "_post_var", {}) or {}
    place_var = getattr(indexes, "_place_var", {}) or {}
    postings_bytes = sum(len(b) for b in post_var.values()) + sum(
        len(b) for b in place_var.values()
    )
    snapshot_bytes = postings_bytes + 64 * len(tree)

    # Head-weighted sample: Zipf weights make the first sids the bulk
    # of the served traffic; the back half strides the tail for p99.
    n_q = min(queries, n_sets)
    head = list(range(n_q // 2))
    stride = max(1, n_sets // max(1, n_q - len(head)))
    tail = list(range(n_q // 2, n_sets, stride))[: n_q - len(head)]
    sample = {k: None for k in head + tail}
    for q in catalog.iter_input_sets():
        if q.sid in sample:
            sample[q.sid] = q.items
    lat_ns = []
    for items in sample.values():
        if items is None:
            continue
        indexes.best_category(items)  # warm
        t0 = time.perf_counter_ns()
        indexes.best_category(items)
        lat_ns.append(time.perf_counter_ns() - t0)
    lat_ns.sort()

    stats = catalog.stats()
    record = {
        "n_items": n_items,
        "n_sets": n_sets,
        "n_nodes": stats["n_nodes"],
        "n_leaves": stats["n_leaves"],
        "depth": stats["max_depth"],
        "max_fanout": stats["max_fanout"],
        "seed": seed,
        "fingerprint": fp,
        "gen_s": round(gen_s, 4),
        "fingerprint_s": round(fp_s, 4),
        "materialize_s": round(materialize_s, 4),
        "planted_tree_s": round(tree_s, 4),
        "index_s": round(index_s, 4),
        "postings_bytes": postings_bytes,
        "snapshot_bytes": snapshot_bytes,
        "queries_timed": len(lat_ns),
        "serve_p50_us": round(_percentile(lat_ns, 0.50) / 1e3, 2),
        "serve_p99_us": round(_percentile(lat_ns, 0.99) / 1e3, 2),
    }
    if shape:
        record["shaping"] = _shaping_gate(tree, instance, variant, queries)
    record["peak_rss_mb"] = round(_peak_rss_bytes() / (1024 * 1024), 1)
    return record


def _run_point_subprocess(spec: dict) -> dict:
    """Fork one child per point so ru_maxrss is that point's peak."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--_child", json.dumps(spec)],
        capture_output=True, text=True, env=env, cwd=str(_ROOT),
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"point {spec} failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    for line in reversed(proc.stdout.splitlines()):
        if line.startswith(_CHILD_MARKER):
            return json.loads(line[len(_CHILD_MARKER):])
    raise RuntimeError(f"point {spec}: child produced no record")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI-sized points (seconds, BENCH_extreme_tiny.json)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="generator seed for every point"
    )
    parser.add_argument(
        "--queries", type=int, default=200,
        help="queries timed per point (head-weighted sample)",
    )
    parser.add_argument(
        "--in-process", action="store_true",
        help="run points in this process (no per-point RSS isolation)",
    )
    parser.add_argument("--_child", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args._child:
        spec = json.loads(args._child)
        record = run_point(**spec)
        print(_CHILD_MARKER + json.dumps(record))
        return 0

    from benchmarks.common import bench_report, write_bench_json

    points = TINY_POINTS if args.tiny else FULL_POINTS
    records = []
    for i, (n_items, n_sets) in enumerate(points):
        last = i == len(points) - 1
        spec = {
            "n_items": n_items,
            "n_sets": n_sets,
            "seed": args.seed,
            "queries": args.queries,
            "shape": last,  # the shaping gate runs on the largest point
            "fingerprint": last or args.tiny,
        }
        t0 = time.perf_counter()
        if args.in_process:
            record = run_point(**spec)
        else:
            record = _run_point_subprocess(spec)
        record["point_wall_s"] = round(time.perf_counter() - t0, 2)
        records.append(record)
        print(
            f"  point {n_items}x{n_sets}: gen {record['gen_s']}s, "
            f"index {record['index_s']}s, p50 {record['serve_p50_us']}us, "
            f"rss {record['peak_rss_mb']}MB",
            file=sys.__stdout__,
        )

    shaping = records[-1].get("shaping", {})
    rows = [
        [
            r["n_items"], r["n_sets"], r["n_nodes"],
            r["gen_s"], r["index_s"],
            f"{r['snapshot_bytes'] / 1e6:.1f}",
            r["serve_p50_us"], r["serve_p99_us"], r["peak_rss_mb"],
        ]
        for r in records
    ]
    bench_report(
        "Extreme scale — synthetic catalogs, succinct serving, shaped tail"
        + (" (tiny)" if args.tiny else ""),
        "build time and memory grow near-linearly; the shaper meets an "
        "explicit latency budget on the largest point and reports the "
        "exact score it gave up",
        ["items", "sets", "nodes", "gen s", "index s", "snap MB",
         "p50 us", "p99 us", "RSS MB"],
        rows,
    )
    if shaping:
        print(
            f"  shaping gate: budget {shaping['budget_ns']:.0f}ns "
            f"(baseline {shaping['baseline_ns']:.0f}ns) met={shaping['met']}"
            f", gave up {shaping['quality_given_up']:.6f} normalized score"
            f" ({shaping['removed']} categories removed)",
            file=sys.__stdout__,
        )
    write_bench_json(
        "extreme_tiny" if args.tiny else "extreme",
        {
            "mode": "tiny" if args.tiny else "full",
            "variant": VARIANT_SPEC,
            "seed": args.seed,
            "queries_per_point": args.queries,
            "points": records,
            "shaping_gate": shaping,
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
