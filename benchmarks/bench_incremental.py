"""Incremental delta rebuilds vs cold rebuilds under catalog churn.

For each dataset and churn fraction the benchmark perturbs the query
log (:func:`tests.churn.churn_query_log`), then publishes the churned
catalog both ways:

* **full** — cold :func:`repro.pipeline.preprocess` plus a from-scratch
  :class:`repro.algorithms.CTCR` build, exactly what a non-incremental
  deployment pays on every refresh;
* **delta** — :func:`repro.incremental.incremental_preprocess` through
  the warm :class:`~repro.incremental.ResultSetCache` plus
  :meth:`~repro.incremental.IncrementalBuilder.delta_build` against the
  carried state.

Both sides must produce byte-identical trees (asserted every cell —
this benchmark doubles as a coarse differential test at real scale).
Results go to ``benchmarks/BENCH_incremental.json``; the headline
number is the delta-vs-full wall-clock speedup, which must reach >= 5x
at 1% churn on D-large (the ISSUE acceptance bar; asserted in full
mode). ``--tiny`` runs a seconds-scale version on a scaled-down
dataset A for CI smoke (``BENCH_incremental_tiny.json``, no speedup
floor — tiny instances leave nothing for the delta path to amortize).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT) not in sys.path:  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(_ROOT))

from benchmarks.common import bench_report, write_bench_json
from benchmarks.conftest import dataset
from repro.algorithms import CTCR, CTCRConfig
from repro.core import Variant
from repro.incremental import (
    IncrementalBuilder,
    ResultSetCache,
    incremental_preprocess,
)
from repro.io import tree_to_dict
from repro.pipeline import preprocess
from tests.churn import churn_query_log

VARIANT = Variant.perfect_recall(0.6)
FRACS = (0.01, 0.05, 0.20)

# label, dataset name, load kwargs
FULL_SERIES = (
    ("C", "C", {}),
    ("D-large", "D", {"scale": 0.02}),
)
TINY_SERIES = (("A-tiny", "A", {"scale": 0.01}),)

# The >= 5x acceptance bar applies to this cell (full mode only).
SPEEDUP_FLOOR = 5.0
FLOOR_CELL = ("D-large", 0.01)


def _tree_fingerprint(tree) -> str:
    return json.dumps(tree_to_dict(tree), sort_keys=True)


def _publish_full(churned_dataset) -> tuple[float, object]:
    t0 = time.perf_counter()
    instance, _report = preprocess(churned_dataset, VARIANT)
    tree = CTCR(CTCRConfig()).build(instance, VARIANT)
    return time.perf_counter() - t0, tree


def _publish_delta(builder, state, cache, churned_dataset):
    t0 = time.perf_counter()
    instance, _report = incremental_preprocess(
        churned_dataset, VARIANT, cache
    )
    result = builder.delta_build(state, instance, VARIANT)
    return time.perf_counter() - t0, result


def run(tiny: bool = False) -> dict:
    series = TINY_SERIES if tiny else FULL_SERIES
    rows = []
    cells = []
    for label, name, kwargs in series:
        base = dataset(name, **kwargs)

        # Bootstrap: the first publish of any deployment — cold
        # preprocess (which also warms the result-set cache) plus a
        # full build capturing the reusable state.
        cache = ResultSetCache()
        builder = IncrementalBuilder(CTCRConfig())
        t0 = time.perf_counter()
        base_instance, _ = incremental_preprocess(base, VARIANT, cache)
        _tree, state = builder.full_build(base_instance, VARIANT)
        bootstrap_s = time.perf_counter() - t0

        for frac in FRACS:
            # str seeds hash deterministically (unlike tuple seeds).
            churned = churn_query_log(
                base, random.Random(f"churn-{label}-{frac}"), frac=frac
            )
            full_s, full_tree = _publish_full(churned)
            delta_s, result = _publish_delta(builder, state, cache, churned)
            assert _tree_fingerprint(result.tree) == _tree_fingerprint(
                full_tree
            ), f"delta tree diverged from full rebuild ({label}, {frac:.0%})"
            speedup = full_s / delta_s if delta_s > 0 else float("inf")
            counters = result.counters
            rows.append([
                label,
                f"{frac:.0%}",
                f"{full_s:.2f}",
                f"{delta_s:.3f}",
                f"{speedup:.1f}x",
                int(counters["incremental.pairs_reused"]),
                int(counters["incremental.components_reused"]),
                int(counters["incremental.components_resolved"]),
            ])
            cells.append({
                "dataset": label,
                "churn_frac": frac,
                "full_s": round(full_s, 4),
                "delta_s": round(delta_s, 4),
                "speedup": round(speedup, 2),
                "bootstrap_s": round(bootstrap_s, 4),
                "counters": {
                    k: v for k, v in sorted(counters.items())
                },
            })
            if not tiny and (label, frac) == FLOOR_CELL:
                assert speedup >= SPEEDUP_FLOOR, (
                    f"delta publish speedup {speedup:.1f}x is below the "
                    f"{SPEEDUP_FLOOR:.0f}x floor at {frac:.0%} churn on "
                    f"{label}"
                )

    bench_report(
        "Incremental delta rebuilds — publish cost under churn",
        f"delta publish is >= {SPEEDUP_FLOOR:.0f}x faster than a cold "
        "rebuild at 1% churn on D-large",
        ["dataset", "churn", "full s", "delta s", "speedup",
         "pairs reused", "comp reused", "comp resolved"],
        rows,
    )

    payload = {
        "mode": "tiny" if tiny else "full",
        "variant": "perfect-recall:0.6",
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_cell": list(FLOOR_CELL),
        "cells": cells,
    }
    write_bench_json("incremental_tiny" if tiny else "incremental", payload)
    return payload


def test_incremental_bench(benchmark):
    benchmark.pedantic(run, kwargs={"tiny": True}, rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="scaled-down dataset A — seconds-scale CI smoke",
    )
    args = parser.parse_args(argv)
    run(tiny=args.tiny)
    return 0


if __name__ == "__main__":
    sys.exit(main())
