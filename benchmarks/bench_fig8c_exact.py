"""Figure 8c: Exact variant over dataset C — all five algorithms.

Paper result: CTCR solves every Exact instance *optimally* (the exact
MIS solver closes the tight bound of Theorem 3.1), and its Exact scores
exceed its Perfect-Recall scores even for much lower PR thresholds in
[0.7, 1) — the paper's headline insight that the specialized Exact
pipeline is worth using even when similarity error is tolerable.
"""

from benchmarks.common import all_builders, bench_report
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR
from repro.core import Variant, score_tree
from repro.evaluation import run_comparison

VARIANT = Variant.exact()


def test_fig8c_exact(benchmark, dataset_c):
    instance = instance_for("C", VARIANT)
    builders = all_builders(dataset_c)

    rows = benchmark.pedantic(
        run_comparison,
        args=(builders, instance, VARIANT),
        rounds=1,
        iterations=1,
    )

    # Optimality certificate: the covered weight equals the MIS optimum,
    # which for the Exact variant is a tight upper bound on any tree.
    ctcr = CTCR()
    tree = ctcr.build(instance, VARIANT)
    report = score_tree(tree, instance, VARIANT)
    selected_weight = ctcr.last_diagnostics.selected_weight

    bench_report(
        "Figure 8c — Exact variant (delta=1), dataset C",
        "CTCR provably optimal (covered weight = exact MIS optimum)",
        ["algorithm", "normalized score", "covered", "categories"],
        [
            [r.name, r.normalized_score, r.covered_count, r.num_categories]
            for r in rows
        ],
    )
    bench_report(
        "Figure 8c (certificate)",
        "CTCR's Exact score equals the conflict-free optimum",
        ["covered weight", "MIS optimum", "normalized"],
        [[report.covered_weight, selected_weight, report.normalized]],
    )

    scores = {r.name: r.normalized_score for r in rows}
    assert scores["CTCR"] >= max(s for n, s in scores.items() if n != "CTCR")
    assert abs(report.covered_weight - selected_weight) < 1e-6


def test_fig8c_exact_beats_pr_at_lower_thresholds(benchmark, dataset_c):
    """Section 5.3 insight: Exact scores exceed PR scores for delta in
    [0.7, 1)."""
    exact_instance = instance_for("C", VARIANT)

    def exact_run() -> float:
        return score_tree(
            CTCR().build(exact_instance, VARIANT), exact_instance, VARIANT
        ).normalized

    exact_score = benchmark.pedantic(exact_run, rounds=1, iterations=1)

    rows = []
    for delta in (0.7, 0.8, 0.9):
        pr = Variant.perfect_recall(delta)
        pr_instance = instance_for("C", pr)
        pr_score = score_tree(
            CTCR().build(pr_instance, pr), pr_instance, pr
        ).normalized
        rows.append([delta, pr_score, exact_score])

    bench_report(
        "Figure 8c insight — Exact vs Perfect-Recall",
        "Exact-variant scores exceed PR scores even at lower PR deltas",
        ["PR delta", "PR score", "Exact score"],
        rows,
    )
    assert all(exact >= pr - 0.05 for _d, pr, exact in rows)
