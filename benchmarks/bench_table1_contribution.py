"""Table 1: score contribution of queries vs existing categories.

Paper result (D, threshold Jaccard delta = 0.8): setting the weight
ratio between query result sets and existing-tree categories to
90/10 ... 10/90 yields score-contribution splits of roughly the same
ratio (93/7 ... 7/93) — weight modulation is an effective control over
how conservative the update is.
"""

from benchmarks.common import bench_report
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR
from repro.catalog import tree_categories_as_input_sets
from repro.core import Variant
from repro.evaluation import contribution_table

VARIANT = Variant.threshold_jaccard(0.8)
SHARES = [0.9, 0.7, 0.5, 0.3, 0.1]


def test_table1_contribution(benchmark, dataset_d_small):
    queries = instance_for("D", VARIANT, scale=0.003)
    existing = tree_categories_as_input_sets(
        dataset_d_small.existing_tree, start_sid=1_000_000
    )
    mixed = queries.with_extra_sets(existing)

    rows = benchmark.pedantic(
        contribution_table,
        args=(CTCR(), mixed, VARIANT),
        kwargs={"query_shares": SHARES},
        rounds=1,
        iterations=1,
    )

    bench_report(
        "Table 1 — contribution per source (threshold Jaccard 0.8, D)",
        "weight ratio translates into roughly the same score-share ratio "
        "(paper: 90/10 -> 93.1/6.9 ... 10/90 -> 7.1/92.9)",
        ["weight queries/existing", "% score queries", "% score existing"],
        [
            [
                f"{r.query_weight_share:.0%}/{1 - r.query_weight_share:.0%}",
                f"{r.query_score_share:.2%}",
                f"{r.existing_score_share:.2%}",
            ]
            for r in rows
        ],
    )

    # Monotone: more query weight -> more query score share; the
    # extremes land on the right side of 50%.
    shares = [r.query_score_share for r in rows]
    assert all(a >= b - 0.03 for a, b in zip(shares, shares[1:]))
    assert shares[0] > 0.6
    assert shares[-1] < 0.4
