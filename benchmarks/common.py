"""Reporting helpers shared by the benchmarks.

Benchmark output must reach the console even under pytest's capture, so
the report writer targets the real stdout and also appends to
``benchmarks/results.log`` for the EXPERIMENTS.md record.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Sequence

from repro.algorithms import CCT, CTCR
from repro.baselines import ExistingTree, ICQ, ICS
from repro.evaluation import format_table

RESULTS_LOG = Path(__file__).parent / "results.log"


def bench_report(
    title: str,
    paper_expectation: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Print one experiment block to the real stdout and the log file."""
    block = "\n".join(
        [
            "",
            f"=== {title} ===",
            f"paper: {paper_expectation}",
            format_table(headers, rows),
            "",
        ]
    )
    print(block, file=sys.__stdout__)
    with RESULTS_LOG.open("a", encoding="utf-8") as f:
        f.write(block + "\n")


def all_builders(dataset):
    """The paper's five algorithms, wired to one dataset's metadata."""
    return [
        CTCR(),
        CCT(),
        ICQ(),
        ICS(dataset.titles),
        ExistingTree(dataset.existing_tree),
    ]
