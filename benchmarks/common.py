"""Reporting helpers shared by the benchmarks.

Benchmark output must reach the console even under pytest's capture, so
the report writer targets the real stdout and also appends to
``benchmarks/results.log`` for the EXPERIMENTS.md record.

Every benchmark process gets one run id.  Each ``results.log`` block is
stamped with it, and a machine-readable :class:`RunManifest` — config,
span timings, counters, peak RSS — is written to
``benchmarks/manifests/<run-id>.json`` alongside the log, so repeated
bench runs are distinguishable and diffable instead of silently appended
look-alikes.  Importing this module enables tracing for the process
(benchmarks always want stage timings; the overhead is bounded by the
observability regression test).
"""

from __future__ import annotations

import json
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Sequence

from repro.algorithms import CCT, CTCR
from repro.baselines import ExistingTree, ICQ, ICS
from repro.evaluation import format_table
from repro.observability import RunManifest, Tracer, make_run_id, set_tracer

RESULTS_LOG = Path(__file__).parent / "results.log"
MANIFEST_DIR = Path(__file__).parent / "manifests"

# One tracer and run id per benchmark process: every experiment block the
# process emits shares them, and the manifest accumulates across blocks.
TRACER = set_tracer(Tracer())
_RUN_ID: str | None = None
_EXPERIMENTS: list[str] = []


def bench_run_id() -> str:
    """This process's run id (created lazily on first report)."""
    global _RUN_ID
    if _RUN_ID is None:
        _RUN_ID = make_run_id(prefix="bench")
    return _RUN_ID


def manifest_path() -> Path:
    return MANIFEST_DIR / f"{bench_run_id()}.json"


def _write_manifest() -> None:
    MANIFEST_DIR.mkdir(exist_ok=True)
    manifest = RunManifest.collect(
        TRACER,
        run_id=bench_run_id(),
        tool="benchmarks",
        config={"experiments": list(_EXPERIMENTS)},
    )
    manifest.save(manifest_path())


def bench_report(
    title: str,
    paper_expectation: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Print one experiment block to the real stdout and the log file.

    The block carries the process's run id, tying it to the manifest at
    ``benchmarks/manifests/<run-id>.json`` (rewritten after every block
    so it always covers the whole run so far).
    """
    _EXPERIMENTS.append(title)
    rid = bench_run_id()
    block = "\n".join(
        [
            "",
            f"=== {title} ===",
            f"run-id: {rid} (manifest: manifests/{rid}.json)",
            f"paper: {paper_expectation}",
            format_table(headers, rows),
            "",
        ]
    )
    print(block, file=sys.__stdout__)
    with RESULTS_LOG.open("a", encoding="utf-8") as f:
        f.write(block + "\n")
    _write_manifest()


def write_bench_json(name: str, payload: dict) -> Path:
    """Write a machine-readable result file ``benchmarks/BENCH_<name>.json``.

    Unlike the per-run manifests, these files live at a stable path so
    the benchmark *trajectory* is diffable across commits: each writer
    overwrites its own file with the latest numbers plus the run id that
    produced them (the matching manifest keeps the full span/counter
    context).
    """
    path = Path(__file__).parent / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "run_id": bench_run_id(),
        "created_at": datetime.now(timezone.utc).isoformat(),
        **payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    print(f"bench json written to {path}", file=sys.__stdout__)
    return path


def all_builders(dataset):
    """The paper's five algorithms, wired to one dataset's metadata."""
    return [
        CTCR(),
        CCT(),
        ICQ(),
        ICS(dataset.titles),
        ExistingTree(dataset.existing_tree),
    ]
