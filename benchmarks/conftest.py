"""Shared fixtures for the benchmark suite.

Datasets and preprocessed instances are cached per session so each
figure's bench pays only for its own algorithm runs. Scales follow the
defaults in :mod:`repro.catalog.datasets` (see DESIGN.md Section 4 for
the paper-size mapping).
"""

from __future__ import annotations

import pytest

from repro.catalog import load_dataset
from repro.core import Variant
from repro.pipeline import preprocess

_DATASETS: dict = {}
_INSTANCES: dict = {}


def dataset(name: str, **kwargs):
    key = (name, tuple(sorted(kwargs.items())))
    if key not in _DATASETS:
        _DATASETS[key] = load_dataset(name, seed=42, **kwargs)
    return _DATASETS[key]


def instance_for(name: str, variant: Variant, **kwargs):
    key = (name, variant.kind, variant.mode, variant.delta,
           tuple(sorted(kwargs.items())))
    if key not in _INSTANCES:
        _INSTANCES[key] = preprocess(dataset(name, **kwargs), variant)[0]
    return _INSTANCES[key]


@pytest.fixture(scope="session")
def dataset_a():
    return dataset("A")


@pytest.fixture(scope="session")
def dataset_c():
    return dataset("C")


@pytest.fixture(scope="session")
def dataset_d_small():
    # Table 1 runs five CTCR builds over queries + existing categories;
    # a reduced D keeps that affordable while preserving the domain.
    return dataset("D", scale=0.003)


@pytest.fixture(scope="session")
def dataset_e():
    return dataset("E")
