"""Figure 8b: Perfect-Recall over dataset C — all five algorithms.

Paper result: same ranking as Figure 8a, with lower absolute scores than
the Jaccard variants (full recall is a hard requirement).
"""

from benchmarks.common import all_builders, bench_report
from benchmarks.conftest import instance_for
from repro.core import Variant
from repro.evaluation import run_comparison

VARIANT = Variant.perfect_recall(0.6)


def test_fig8b_perfect_recall(benchmark, dataset_c):
    instance = instance_for("C", VARIANT)
    builders = all_builders(dataset_c)

    rows = benchmark.pedantic(
        run_comparison,
        args=(builders, instance, VARIANT),
        rounds=1,
        iterations=1,
    )

    bench_report(
        "Figure 8b — Perfect-Recall (delta=0.6), dataset C",
        "CTCR > CCT > item-clustering baselines and the existing tree",
        ["algorithm", "normalized score", "covered", "categories"],
        [
            [r.name, r.normalized_score, r.covered_count, r.num_categories]
            for r in rows
        ],
    )

    scores = {r.name: r.normalized_score for r in rows}
    assert scores["CTCR"] >= scores["CCT"] - 0.02
    assert scores["CTCR"] > scores["IC-Q"]
    assert scores["CTCR"] > scores["ET"]
