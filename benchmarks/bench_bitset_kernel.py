"""Bitset kernel vs set-based engine on the pairwise 2-conflict stage.

Measures :func:`repro.conflicts.two_conflicts.compute_pairwise` under
both engines over the Figure 8f scalability series (datasets A-D at the
repro scale, plus a scaled-up D as the largest point — the repro scales
sit far below the paper's sizes, so the extra point restores some of the
growth the figure is about). The kernel's one-time packing cost is
reported separately: within CTCR one packed universe is shared by the
pairwise and assignment stages, so it is not a per-stage cost.

Checks, in bench mode (the ``--smoke`` flag relaxes to a quick parity
run for the test suite):

* both engines produce identical pair classifications everywhere;
* the kernel stage is at least 5x faster on the largest instance;
* CTCR trees built with either engine have byte-identical structure
  and scores.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT) not in sys.path:  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(_ROOT))

from benchmarks.common import bench_report
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR, CTCRConfig
from repro.conflicts.ranking import rank_sets
from repro.conflicts.two_conflicts import compute_pairwise
from repro.core import Variant, score_tree
from repro.core.bitset import BitsetUniverse
from repro.io import tree_to_dict

VARIANT = Variant.threshold_jaccard(0.8)

# (label, dataset, load kwargs, timing repetitions)
SERIES = [
    ("A", "A", {}, 3),
    ("B", "B", {}, 3),
    ("C", "C", {}, 3),
    ("D", "D", {}, 3),
    ("D-large", "D", {"scale": 0.02}, 3),
]
SMOKE_SERIES = SERIES[:2]
MIN_SPEEDUP_LARGEST = 5.0

# Datasets whose CTCR trees are compared between engines. The small pair
# keeps the check cheap; the structural comparison is byte-exact either
# way (both engines classify pairs identically, so every downstream
# stage sees the same inputs).
TREE_CHECK = ["A", "B"]


def _time(fn, reps: int) -> float:
    # Best-of-reps after a warmup call: the minimum is the noise-robust
    # estimator for microbenchmarks (scheduler preemption and frequency
    # scaling only ever add time), matching timeit's recommendation.
    fn()
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _assert_same_analysis(old, new) -> None:
    assert old.conflicts == new.conflicts
    assert old.must_together == new.must_together
    assert old.can_separately == new.can_separately
    assert old.intersections == new.intersections


def _stage_row(label: str, name: str, kwargs: dict, reps: int) -> list:
    instance = instance_for(name, VARIANT, **kwargs)
    ranking = rank_sets(instance)

    old = compute_pairwise(instance, VARIANT, ranking, use_bitset=False)
    t_old = _time(
        lambda: compute_pairwise(instance, VARIANT, ranking, use_bitset=False),
        reps,
    )
    t_pack = _time(lambda: BitsetUniverse.from_instance(instance), reps)
    universe = BitsetUniverse.from_instance(instance)
    new = compute_pairwise(instance, VARIANT, ranking, universe=universe)
    t_new = _time(
        lambda: compute_pairwise(instance, VARIANT, ranking, universe=universe),
        reps,
    )
    _assert_same_analysis(old, new)
    return [
        label,
        len(instance),
        len(instance.universe),
        round(t_old * 1e3, 1),
        round(t_pack * 1e3, 1),
        round(t_new * 1e3, 1),
        round(t_old / t_new, 1),
    ]


def _assert_trees_identical(name: str) -> None:
    instance = instance_for(name, VARIANT)
    results = []
    for flag in (False, True):
        tree = CTCR(CTCRConfig(use_bitset=flag)).build(instance, VARIANT)
        report = score_tree(tree, instance, VARIANT)
        results.append((tree_to_dict(tree), report.normalized, report.total))
    assert results[0][0] == results[1][0], f"tree structure differs on {name}"
    assert results[0][1] == results[1][1], f"normalized score differs on {name}"
    assert results[0][2] == results[1][2], f"total score differs on {name}"


def run(smoke: bool = False) -> list[list]:
    series = SMOKE_SERIES if smoke else SERIES
    rows = [
        _stage_row(label, name, kwargs, 1 if smoke else reps)
        for label, name, kwargs, reps in series
    ]
    for name in TREE_CHECK[:1] if smoke else TREE_CHECK:
        _assert_trees_identical(name)
    bench_report(
        "Bitset kernel — pairwise 2-conflict stage, set-based vs packed",
        "the stage is embarrassingly parallel/vectorizable; "
        "kernel >= 5x on the largest instance",
        [
            "instance",
            "sets",
            "items",
            "set-based ms",
            "pack ms",
            "kernel ms",
            "speedup",
        ],
        rows,
    )
    if not smoke:
        largest = rows[-1]
        assert largest[-1] >= MIN_SPEEDUP_LARGEST, (
            f"kernel speedup {largest[-1]}x on {largest[0]} "
            f"below {MIN_SPEEDUP_LARGEST}x"
        )
    return rows


def test_bitset_kernel_speedup(benchmark):
    benchmark.pedantic(run, rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small instances, one rep, no speedup assertion",
    )
    args = parser.parse_args(argv)
    run(smoke=args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
