"""Ablation benches for the design choices DESIGN.md calls out.

* 3-conflict detection on/off (Section 3.2's anticipation of branch
  merges) — without it, selected sets may be unplaceable.
* Intermediate categories on/off (Section 3.3) — recombining partitions
  may only help.
* Exact vs greedy MIS inside CTCR — the exact solver is what makes the
  Exact variant provably optimal.
* Query merging on/off in preprocessing (Section 5.1) — halves the
  input size without hurting quality.
* CCT global-context embeddings vs plain pairwise distances (Section 4).
"""

from benchmarks.common import bench_report
from benchmarks.conftest import instance_for
from repro.algorithms import CCT, CCTConfig, CTCR, CTCRConfig
from repro.core import Variant, score_tree
from repro.mis import MISConfig
from repro.pipeline import PreprocessConfig, preprocess

PR = Variant.perfect_recall(0.6)
TJ = Variant.threshold_jaccard(0.8)


def _score(builder, instance, variant) -> float:
    tree = builder.build(instance, variant)
    tree.validate(universe=instance.universe, bound=instance.bound)
    return score_tree(tree, instance, variant).normalized


def test_ablation_three_conflicts(benchmark):
    instance = instance_for("A", PR)

    def run():
        full = _score(CTCR(), instance, PR)
        ablated = _score(
            CTCR(CTCRConfig(use_three_conflicts=False)), instance, PR
        )
        return full, ablated

    full, ablated = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_report(
        "Ablation — 3-conflict detection (Perfect-Recall 0.6, A)",
        "anticipating branch merges should not hurt, usually helps",
        ["configuration", "normalized score"],
        [["with 3-conflicts", full], ["2-conflicts only", ablated]],
    )
    assert full >= ablated - 0.05


def test_ablation_intermediate_categories(benchmark):
    instance = instance_for("A", TJ)

    def run():
        with_mid = _score(CTCR(), instance, TJ)
        without = _score(
            CTCR(CTCRConfig(add_intermediate=False)), instance, TJ
        )
        return with_mid, without

    with_mid, without = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_report(
        "Ablation — intermediate categories (threshold Jaccard 0.8, A)",
        "recombining partitioned siblings may only add covers",
        ["configuration", "normalized score"],
        [["with intermediates", with_mid], ["without", without]],
    )
    assert with_mid >= without - 1e-9


def test_ablation_exact_vs_greedy_mis(benchmark):
    instance = instance_for("A", Variant.exact())

    def run():
        exact = _score(CTCR(), instance, Variant.exact())
        greedy = _score(
            CTCR(CTCRConfig(mis=MISConfig(exact=False))),
            instance,
            Variant.exact(),
        )
        return exact, greedy

    exact, greedy = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_report(
        "Ablation — MIS engine inside CTCR (Exact variant, A)",
        "exact branch-and-bound >= greedy + local search",
        ["MIS engine", "normalized score"],
        [["exact B&B", exact], ["greedy + LS", greedy]],
    )
    assert exact >= greedy - 1e-9


def test_ablation_query_merging(benchmark, dataset_a):
    def run():
        merged_inst, merged_rep = preprocess(dataset_a, TJ)
        plain_inst, plain_rep = preprocess(
            dataset_a, TJ, PreprocessConfig(merge_queries=False)
        )
        merged_tree = CTCR().build(merged_inst, TJ)
        plain_tree = CTCR().build(plain_inst, TJ)
        # Both evaluated over the original (unmerged) queries, as the
        # paper does.
        return (
            merged_rep.after_merging,
            plain_rep.after_merging,
            score_tree(merged_tree, plain_inst, TJ).normalized,
            score_tree(plain_tree, plain_inst, TJ).normalized,
        )

    n_merged, n_plain, s_merged, s_plain = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    bench_report(
        "Ablation — query merging (threshold Jaccard 0.8, A)",
        "merging shrinks the input with same-or-better original-query "
        "score (paper: more than halved XYZ query counts)",
        ["configuration", "candidate sets", "score on original queries"],
        [["merged", n_merged, s_merged], ["unmerged", n_plain, s_plain]],
    )
    assert n_merged < n_plain
    assert s_merged >= s_plain - 0.05


def test_ablation_cct_global_context(benchmark):
    instance = instance_for("A", TJ)

    def run():
        global_ctx = _score(CCT(), instance, TJ)
        plain = _score(
            CCT(CCTConfig(global_context=False)), instance, TJ
        )
        return global_ctx, plain

    global_ctx, plain = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_report(
        "Ablation — CCT global-context embeddings (threshold Jaccard, A)",
        "embedding sets by similarity-to-all-sets vs plain pairwise "
        "distance (the paper's stated novelty for CCT)",
        ["configuration", "normalized score"],
        [["global context", global_ctx], ["pairwise distance", plain]],
    )
    # Both must work; the global context should not be worse by much.
    assert global_ctx >= plain - 0.1
