"""The variants the paper omits for space (Section 5.3).

"Due to space constraints, we omitted results for the F1 variants and
the cutoff Jaccard variant, which demonstrated similar trends. Moreover,
the ranking of the algorithms ... is roughly the same ... across all
examined datasets." This bench verifies that claim for our stand-ins:
cutoff Jaccard, threshold F1, and cutoff F1 over dataset C must produce
the same leaders.
"""

from benchmarks.common import all_builders, bench_report
from benchmarks.conftest import instance_for
from repro.core import Variant
from repro.evaluation import run_comparison

VARIANTS = [
    ("cutoff Jaccard 0.8", Variant.cutoff_jaccard(0.8)),
    ("threshold F1 0.8", Variant.threshold_f1(0.8)),
    ("cutoff F1 0.8", Variant.cutoff_f1(0.8)),
]


def test_other_variants_same_ranking(benchmark, dataset_c):
    def run():
        outcome = {}
        for name, variant in VARIANTS:
            instance = instance_for("C", variant)
            rows = run_comparison(
                all_builders(dataset_c), instance, variant
            )
            outcome[name] = rows
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    for name, rows in outcome.items():
        bench_report(
            f"Omitted variant — {name}, dataset C",
            "same trends and ranking as the reported variants",
            ["algorithm", "normalized score", "covered"],
            [[r.name, r.normalized_score, r.covered_count] for r in rows],
        )
        scores = {r.name: r.normalized_score for r in rows}
        assert scores["CTCR"] >= scores["CCT"] - 0.02, name
        assert scores["CTCR"] > scores["IC-Q"], name
        assert scores["CTCR"] > scores["ET"], name
