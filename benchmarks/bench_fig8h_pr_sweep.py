"""Figure 8h: CTCR score across thresholds — Perfect-Recall, dataset E.

Paper result: PR is examined over the wider range [0.1, 1] because
faceted-search deployments tolerate low precision; the score rises
steeply as the precision requirement relaxes.
"""

from benchmarks.common import bench_report
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR, CTCRConfig
from repro.core import Variant
from repro.evaluation import threshold_sweep
from repro.mis import MISConfig

BASE = Variant.perfect_recall(0.6)
DELTAS = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0]

# MIS memo cache on: adjacent deltas re-solve shared conflict
# components (identical results either way).
BUILDER = CTCR(CTCRConfig(mis=MISConfig(use_cache=True)))


def test_fig8h_pr_sweep(benchmark):
    instance = instance_for("E", BASE)

    points = benchmark.pedantic(
        threshold_sweep,
        args=(BUILDER, instance, BASE, DELTAS),
        rounds=1,
        iterations=1,
    )

    bench_report(
        "Figure 8h — CTCR threshold sweep (Perfect-Recall, E)",
        "score rises steeply as the precision requirement relaxes",
        ["delta", "normalized score", "covered"],
        [[p.delta, p.normalized_score, p.covered_count] for p in points],
    )

    by_delta = {p.delta: p.normalized_score for p in points}
    assert by_delta[0.1] >= by_delta[0.9]
    assert by_delta[0.1] >= by_delta[1.0]
