"""Query categorization quality and speed: held-out accuracy, latency, swaps.

A train/test harness in the spirit of ``bench_fig8d_train_test.py``, but
measuring the *online* staged procedure instead of offline tree scores.
Dataset C is regenerated with the fig-8d settings (seed 42, synonym
fraction 0.6, unmerged queries) and split in half; a CTCR tree is built
and labeled over the training half only, snapshotted, and every held-out
query's *label text* is pushed through :func:`categorize_query` — the
same path a storefront search box exercises. Ground truth for a held-out
query is the category its item set scores best against
(``best_category``), so accuracy measures how well free-text matching
recovers the item-level assignment it never saw.

Written to ``benchmarks/BENCH_querycat.json``:

1. **accuracy@depth** for depths 1..3: the fraction of evaluable
   held-out queries whose predicted root path agrees with the ground
   truth path on the first *d* levels below the root (backing off to an
   ancestor keeps the shared prefix, so shallow accuracy stays high
   while deep accuracy pays for the back-off).
2. **stage mix and back-off rate** over the held-out predictions.
3. **Latency under load with a mid-run hot swap**: worker threads
   hammer ``engine.categorize_query`` closed-loop while a coordinator
   republishes the CURRENT snapshot at the halfway mark; p50/p95/p99
   latency, throughput, and an **asserted zero errors** across the flip.
4. **Backend identity gate**: every held-out prediction is recomputed on
   the mmap-backed ``MmapSnapshotIndexes`` and asserted equal to the
   in-memory result, dict for dict.

``--tiny`` runs a seconds-scale version on dataset A for CI smoke (own
file ``BENCH_querycat_tiny.json``; identity and zero-error assertions
still hold, accuracy floors are full-mode only).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT) not in sys.path:  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(_ROOT))

from benchmarks.common import bench_report, write_bench_json
from repro.algorithms import CTCR
from repro.catalog import load_dataset
from repro.core import Variant
from repro.evaluation import split_instance
from repro.labeling import apply_label_suggestions, suggest_labels
from repro.pipeline import PreprocessConfig, preprocess
from repro.serving import (
    HotSwapper,
    MmapSnapshotIndexes,
    ServingEngine,
    SnapshotStore,
    categorize_query,
)
from repro.serving.loadgen import percentile
from repro.utils.rng import make_rng

VARIANT = Variant.threshold_jaccard(0.7)
DEPTHS = (1, 2, 3)

# dataset, dataset kwargs, latency-loop requests, worker threads
FULL = ("C", {"seed": 42, "synonym_fraction": 0.6}, 6_000, 8)
TINY = ("A", {"seed": 42}, 600, 4)


def _held_out_predictions(indexes, test) -> list[dict]:
    """Prediction records for every evaluable held-out query.

    Evaluable = the query has a label to categorize and its item set is
    covered by the training tree (``best_category`` finds ground truth).
    """
    records = []
    for q in test.sets:
        if not q.label:
            continue
        truth = indexes.best_category(q.items)
        if truth is None:
            continue
        result = categorize_query(indexes, q.label)
        records.append(
            {
                "label": q.label,
                "truth_path": indexes.path_to_root(truth.cid),
                "pred_path": [step["cid"] for step in result["path"]],
                "result": result,
            }
        )
    return records


def _accuracy_at_depth(records: list[dict], depth: int) -> float:
    """Fraction of records agreeing on the first ``depth`` levels."""
    if not records:
        return 0.0
    hits = sum(
        1
        for r in records
        if r["pred_path"][: depth + 1] == r["truth_path"][: depth + 1]
    )
    return hits / len(records)


def _latency_loop(
    engine: ServingEngine,
    texts: list[str],
    n_requests: int,
    n_workers: int,
    swap,
) -> dict:
    """Closed-loop categorize-query load with a mid-run hot swap."""
    rng = make_rng(7)
    requests = [texts[rng.randrange(len(texts))] for _ in range(n_requests)]
    shares = [requests[w::n_workers] for w in range(n_workers)]
    latencies: list[list[float]] = [[] for _ in range(n_workers)]
    errors: list[list[str]] = [[] for _ in range(n_workers)]
    completed = [0] * n_workers
    start_barrier = threading.Barrier(n_workers + 2)
    generation_before = engine.generation

    def worker(w: int) -> None:
        start_barrier.wait()
        for text in shares[w]:
            t0 = time.perf_counter()
            try:
                engine.categorize_query(text)
            except Exception as exc:  # count, keep serving
                errors[w].append(f"{type(exc).__name__}: {exc}")
            latencies[w].append(time.perf_counter() - t0)
            completed[w] += 1

    def coordinator() -> None:
        start_barrier.wait()
        threshold = max(1, n_requests // 2)
        while sum(completed) < threshold and any(
            t.is_alive() for t in threads
        ):
            time.sleep(0.001)
        swap()

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(n_workers)
    ]
    swap_thread = threading.Thread(target=coordinator, daemon=True)
    for t in threads:
        t.start()
    swap_thread.start()
    start_barrier.wait()
    t_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t_start
    swap_thread.join()

    samples = sorted(x for per in latencies for x in per)
    all_errors = [msg for per in errors for msg in per]
    return {
        "n_requests": n_requests,
        "n_workers": n_workers,
        "errors": len(all_errors),
        "error_messages": all_errors[:5],
        "wall_s": round(wall, 4),
        "throughput_rps": round(n_requests / wall) if wall > 0 else 0,
        "latency_ms": {
            "p50": round(percentile(samples, 0.50) * 1e3, 4),
            "p95": round(percentile(samples, 0.95) * 1e3, 4),
            "p99": round(percentile(samples, 0.99) * 1e3, 4),
            "mean": round(sum(samples) / len(samples) * 1e3, 4)
            if samples
            else 0.0,
        },
        "generation_before": generation_before,
        "generation_after": engine.generation,
    }


def run(tiny: bool = False) -> dict:
    dataset_name, dataset_kwargs, n_requests, n_workers = (
        TINY if tiny else FULL
    )
    dataset = load_dataset(dataset_name, **dataset_kwargs)
    instance, _ = preprocess(
        dataset, VARIANT, PreprocessConfig(merge_queries=False)
    )
    train, test = split_instance(instance, make_rng(0))

    tree = CTCR().build(train, VARIANT)
    apply_label_suggestions(tree, suggest_labels(tree, train, VARIANT))

    with tempfile.TemporaryDirectory(prefix="bench-querycat-") as tmp:
        store = SnapshotStore(tmp)
        info = store.save(tree, train, VARIANT, build_run_id="bench-querycat")
        loaded = store.load()
        engine = ServingEngine.from_snapshot(loaded)
        indexes = engine.current.indexes

        # -- held-out accuracy over the in-memory backend --------------------
        records = _held_out_predictions(indexes, test)
        accuracy = {
            str(d): round(_accuracy_at_depth(records, d), 4) for d in DEPTHS
        }
        stages: dict[str, int] = {}
        for r in records:
            stage = r["result"]["stage"]
            stages[stage] = stages.get(stage, 0) + 1
        backoff_rate = (
            stages.get("backoff", 0) / len(records) if records else 0.0
        )

        # -- backend identity gate: mmap must answer dict-for-dict -----------
        flat_paths = store.flat_paths(info.snapshot_id)
        with MmapSnapshotIndexes(flat_paths) as mm:
            for r in records:
                assert categorize_query(mm, r["label"]) == r["result"], (
                    f"mmap backend diverged on {r['label']!r}"
                )

        # -- latency under load with a mid-run hot swap ----------------------
        swapper = HotSwapper(engine)
        texts = sorted({r["label"] for r in records}) or ["category"]
        load = _latency_loop(
            engine,
            texts,
            n_requests,
            n_workers,
            swap=lambda: swapper.swap_from_store(store),
        )
        assert load["errors"] == 0, (
            f"hot swap dropped requests: {load['error_messages']}"
        )
        assert load["generation_after"] == load["generation_before"] + 1

    bench_report(
        f"Query categorization — {dataset_name}, "
        f"{len(train.sets)} train / {len(test.sets)} test sets",
        "held-out free-text queries land on (an ancestor of) the"
        " item-level ground truth; swap is invisible",
        ["metric", "value"],
        [
            ["evaluable held-out queries", len(records)],
            *[[f"accuracy@{d}", accuracy[str(d)]] for d in DEPTHS],
            ["back-off rate", round(backoff_rate, 4)],
            ["stage mix", ", ".join(f"{k}={v}" for k, v in sorted(stages.items()))],
            ["p50 / p95 / p99 ms",
             f"{load['latency_ms']['p50']} / {load['latency_ms']['p95']}"
             f" / {load['latency_ms']['p99']}"],
            ["throughput rps", load["throughput_rps"]],
            ["swap errors", load["errors"]],
        ],
    )

    if not tiny:
        # Floors sit well under measured values; they catch regressions
        # in the staged procedure, not benchmark noise.
        assert accuracy["1"] >= 0.60, f"accuracy@1 collapsed: {accuracy}"
        assert accuracy["3"] >= 0.40, f"accuracy@3 collapsed: {accuracy}"
        assert backoff_rate <= 0.60, f"back-off rate blew up: {backoff_rate}"

    payload = {
        "mode": "tiny" if tiny else "full",
        "dataset": dataset_name,
        "variant": "threshold-jaccard:0.7",
        "snapshot_id": info.snapshot_id,
        "n_train_sets": len(train.sets),
        "n_test_sets": len(test.sets),
        "n_evaluated": len(records),
        "accuracy_at_depth": accuracy,
        "backoff_rate": round(backoff_rate, 4),
        "stage_counts": dict(sorted(stages.items())),
        "mmap_identical": True,
        "load": load,
    }
    write_bench_json("querycat_tiny" if tiny else "querycat", payload)
    return payload


def test_querycat(benchmark):
    benchmark.pedantic(run, kwargs={"tiny": True}, rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="dataset A, 600 requests — seconds-scale CI smoke",
    )
    args = parser.parse_args(argv)
    run(tiny=args.tiny)
    return 0


if __name__ == "__main__":
    sys.exit(main())
