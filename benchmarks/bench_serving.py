"""Serving layer: saturated throughput, latency percentiles, hot-swap safety.

Three experiments over one snapshotted CTCR tree, all written to
``benchmarks/BENCH_serving.json``:

1. **Load test with a mid-run hot swap**: a deterministic closed-loop
   workload (the storefront mix from :data:`repro.serving.DEFAULT_MIX`)
   hammered by 8 worker threads; at the halfway mark a coordinator
   reloads the CURRENT snapshot and publishes it as a new generation
   while the workers keep issuing requests. Records p50/p95/p99/mean
   latency, throughput, and cache hit rate; **asserts zero failed
   requests** — the flip is provably invisible to readers. The
   ``serving.generation`` gauge and ``serving.*`` counters land in this
   run's manifest (``benchmarks/manifests/<run-id>.json``).

2. **Result-cache effect**: the same workload against a cache-disabled
   engine vs the warmed cached engine — the hit rate the storefront mix
   actually achieves and the throughput it buys.

3. **Swap cost**: time to prepare a generation from the store (load +
   index build) vs the publish flip itself, showing the expensive half
   runs entirely off the read path.

The payload also records the snapshot's on-disk footprint: per-section
flat-file bytes summed across shards (``snapshot_sections``) and the
RSS the flat mappings keep resident after a read sweep
(``mapped_resident_bytes``, ``null`` off-Linux) — the representation
comparison itself lives in ``bench_serving_succinct.py``.

``--tiny`` runs a seconds-scale version on dataset A for CI smoke (own
file ``BENCH_serving_tiny.json``; the zero-error assertion still holds).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT) not in sys.path:  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(_ROOT))

from benchmarks.bench_serving_succinct import (
    mapped_resident_bytes,
    section_accounting,
)
from benchmarks.common import bench_report, write_bench_json
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR
from repro.core import Variant
from repro.observability import get_tracer
from repro.serving import (
    HotSwapper,
    ServingEngine,
    SnapshotStore,
    build_workload,
    prepare_mmap_generation,
    run_loadgen,
)

VARIANT = Variant.threshold_jaccard(0.8)

# dataset, requests, workers — full mode saturates; tiny keeps CI honest.
FULL = ("C", 20_000, 8)
TINY = ("A", 2_000, 4)


def _result_row(label: str, r) -> list:
    return [
        label, r.n_requests, r.n_workers,
        round(r.throughput_rps), r.p50_ms, r.p95_ms, r.p99_ms,
        f"{r.cache_hit_rate:.0%}", r.errors,
    ]


def run(tiny: bool = False) -> dict:
    dataset_name, n_requests, n_workers = TINY if tiny else FULL
    instance = instance_for(dataset_name, VARIANT)
    tree = CTCR().build(instance, VARIANT)

    with tempfile.TemporaryDirectory(prefix="bench-serving-") as tmp:
        store = SnapshotStore(tmp)
        info = store.save(tree, instance, VARIANT, build_run_id="bench")
        loaded = store.load()
        workload = build_workload(
            loaded.instance, loaded.tree, n_requests, seed=1234
        )

        # -- experiment 1: load + mid-run hot swap ---------------------------
        engine = ServingEngine.from_snapshot(loaded)
        swapper = HotSwapper(engine)
        swap_result = run_loadgen(
            engine,
            workload,
            n_workers=n_workers,
            swap_at=0.5,
            swap=lambda: swapper.swap_from_store(store),
        )
        assert swap_result.errors == 0, (
            f"hot swap dropped requests: {swap_result.error_messages}"
        )
        assert swap_result.swap_performed
        assert swap_result.generation_after == swap_result.generation_before + 1
        # Make the final generation explicit in the run manifest even if
        # a future engine stops gauging on publish.
        get_tracer().gauge("serving.generation", engine.generation)

        # -- experiment 2: cache disabled vs warmed --------------------------
        cold_engine = ServingEngine.from_snapshot(loaded, cache_size=0)
        cold = run_loadgen(cold_engine, workload, n_workers=n_workers)
        warm_engine = ServingEngine.from_snapshot(loaded)
        run_loadgen(warm_engine, workload, n_workers=n_workers)  # warm-up
        warm = run_loadgen(warm_engine, workload, n_workers=n_workers)

        # -- snapshot footprint: per-section bytes + mapped residency --------
        flat_paths = store.flat_paths(info.snapshot_id)
        snapshot_sections, _ = section_accounting(flat_paths)
        mmap_generation = prepare_mmap_generation(store)
        for item in list(loaded.instance.universe)[:200]:
            mmap_generation.indexes.placements(item)  # touch the pages
        resident = mapped_resident_bytes(flat_paths)
        mmap_generation.indexes.close()

        # -- experiment 3: prepare vs publish cost ---------------------------
        t0 = time.perf_counter()
        generation = swapper.generation_from_store(store)
        prepare_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        engine.publish(generation)
        publish_s = time.perf_counter() - t0

    bench_report(
        f"Serving engine — {dataset_name}, {n_requests} requests, "
        f"{n_workers} workers",
        "mid-run hot swap completes with zero failed requests",
        ["run", "requests", "workers", "rps", "p50 ms", "p95 ms",
         "p99 ms", "hit rate", "errors"],
        [
            _result_row("swap mid-run", swap_result),
            _result_row("cache off", cold),
            _result_row("cache warm", warm),
            ["swap cost", "-", "-", "-",
             f"prepare {prepare_s * 1e3:.1f}",
             f"publish {publish_s * 1e3:.3f}", "-", "-", "-"],
        ],
    )

    payload = {
        "mode": "tiny" if tiny else "full",
        "dataset": dataset_name,
        "variant": "threshold-jaccard:0.8",
        "snapshot_id": info.snapshot_id,
        "n_categories": info.n_categories,
        "hot_swap": swap_result.to_dict(),
        "cache_off": cold.to_dict(),
        "cache_warm": warm.to_dict(),
        "swap_cost": {
            "prepare_s": round(prepare_s, 4),
            "publish_s": round(publish_s, 6),
        },
        "snapshot_sections": snapshot_sections,
        "mapped_resident_bytes": resident,
        "final_generation": engine.generation,
    }
    write_bench_json("serving_tiny" if tiny else "serving", payload)
    return payload


def test_serving_load(benchmark):
    benchmark.pedantic(run, kwargs={"tiny": True}, rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="dataset A, 2000 requests — seconds-scale CI smoke",
    )
    args = parser.parse_args(argv)
    run(tiny=args.tiny)
    return 0


if __name__ == "__main__":
    sys.exit(main())
