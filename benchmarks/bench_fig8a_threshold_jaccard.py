"""Figure 8a: threshold Jaccard over dataset C — all five algorithms.

Paper result: CTCR best, CCT second (gap roughly 10% on average), then
the item-clustering baselines and the existing tree; IC-S near the
bottom. We reproduce the ranking and print the normalized scores.
"""

from benchmarks.common import all_builders, bench_report
from benchmarks.conftest import instance_for
from repro.core import Variant
from repro.evaluation import run_comparison

VARIANT = Variant.threshold_jaccard(0.8)


def test_fig8a_threshold_jaccard(benchmark, dataset_c):
    instance = instance_for("C", VARIANT)
    builders = all_builders(dataset_c)

    rows = benchmark.pedantic(
        run_comparison,
        args=(builders, instance, VARIANT),
        rounds=1,
        iterations=1,
    )

    bench_report(
        "Figure 8a — threshold Jaccard (delta=0.8), dataset C",
        "CTCR > CCT > {IC-Q, IC-S, ET}; CTCR ~10% over CCT on average",
        ["algorithm", "normalized score", "covered", "categories"],
        [
            [r.name, r.normalized_score, r.covered_count, r.num_categories]
            for r in rows
        ],
    )

    scores = {r.name: r.normalized_score for r in rows}
    assert scores["CTCR"] >= scores["CCT"] - 0.02
    assert scores["CTCR"] > scores["IC-Q"]
    assert scores["CTCR"] > scores["IC-S"]
    assert scores["CTCR"] > scores["ET"]
    assert scores["CTCR"] > 0.3
