"""Figure 8f: CTCR running time across the four XYZ datasets A-D.

Paper result: 5 seconds on A (450 queries / 28K items) up to ~37 minutes
on D (20K queries / 1.2M items) — superlinear but comfortably offline.
Our datasets are scaled down (see DESIGN.md Section 4), so we check the
*shape*: time grows with size, and even the largest dataset stays well
within an offline budget.
"""

from benchmarks.common import bench_report
from benchmarks.conftest import dataset, instance_for
from repro.algorithms import CTCR
from repro.core import Variant
from repro.utils.timer import Timer

VARIANT = Variant.threshold_jaccard(0.8)


def test_fig8f_scalability(benchmark):
    names = ["A", "B", "C", "D"]
    rows = []

    def run_all():
        measured = []
        for name in names:
            ds = dataset(name)
            instance = instance_for(name, VARIANT)
            with Timer() as timer:
                CTCR().build(instance, VARIANT)
            measured.append(
                (name, len(instance), ds.n_items, timer.elapsed)
            )
        return measured

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, n_sets, n_items, round(seconds, 2)]
        for name, n_sets, n_items, seconds in measured
    ]

    bench_report(
        "Figure 8f — CTCR scalability over datasets A-D",
        "5 s (A) to 37 min (D) in the paper; superlinear growth, offline-OK",
        ["dataset", "candidate sets", "items", "CTCR seconds"],
        rows,
    )

    times = [seconds for _n, _s, _i, seconds in measured]
    # Largest dataset strictly slower than smallest, and still offline-OK.
    assert times[-1] > times[0]
    assert times[-1] < 600
