"""Faceted-search effort under the Perfect-Recall variant (Section 2.2).

The paper motivates Perfect-Recall by faceted search: a full-recall,
moderate-precision cover is acceptable because the filtering interface
strips the extras. This bench quantifies it on dataset E: even at a low
precision threshold, covered queries reach 90% precision within a few
facet filters.
"""

from benchmarks.common import bench_report
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR
from repro.core import Variant
from repro.evaluation import facet_effort, mean_effort

VARIANT = Variant.perfect_recall(0.3)


def test_faceted_search_effort(benchmark, dataset_e):
    instance = instance_for("E", VARIANT)

    def run():
        tree = CTCR().build(instance, VARIANT)
        return facet_effort(
            tree, instance, VARIANT, dataset_e.products,
            precision_goal=0.9, max_steps=4,
        )

    paths = benchmark.pedantic(run, rounds=1, iterations=1)

    reached = sum(1 for p in paths if p.reached_goal)
    already_precise = sum(
        1 for p in paths if p.reached_goal and not p.steps
    )
    bench_report(
        "Faceted search — filter effort after a Perfect-Recall(0.3) cover, E",
        "low-precision PR covers refine to >=90% precision within a few "
        "facet filters (the variant's stated justification)",
        ["covered queries", "reach 90% precision", "no filter needed",
         "mean filters (when needed)"],
        [[len(paths), reached, already_precise, mean_effort(paths)]],
    )

    assert paths, "PR(0.3) must cover something on E"
    assert reached / len(paths) >= 0.8
    assert mean_effort(paths) <= 3.0
