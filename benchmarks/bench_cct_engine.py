"""CCT engine: bitset embeddings + NN-chain clustering vs the pre-PR path.

Three experiments, all written to ``benchmarks/BENCH_cct.json``:

1. **Embedding-stage speedup** (Figure 8f series, threshold-jaccard:0.8
   — the scalability protocol's variant): ``set_embeddings`` under the
   packed-bitset kernel (output-sensitive ``intersecting_pairs`` +
   vectorized similarity derivation) against the pre-PR pure-Python
   double loop — inlined below verbatim so the comparison stays honest
   as the engine evolves. The matrices are asserted bit-identical
   before timing, and the largest instance must show at least a 3x
   speedup.

2. **Clustering-engine comparison**: the nearest-neighbor-chain
   agglomeration against the legacy greedy global-minimum loop over the
   same embedding matrix (reported, not asserted — both are O(n²)
   *expected*; the chain's win is its worst-case guarantee and the
   absence of per-step global scans).

3. **Sweep cache hit rate** (Figure 8g/8h protocol): a fine threshold
   sweep around delta = 0.8 with the embedding cache enabled. The
   pairwise intersection counts are variant- and δ-independent, so
   every sweep point after the first replays them; the cache must
   serve more than half of all embedding builds.

``--tiny`` runs a seconds-scale version of all three (small instances,
coarse sweep, no thresholds asserted) so CI can keep the harness from
rotting.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT) not in sys.path:  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(_ROOT))

import numpy as np

from benchmarks.common import bench_report, write_bench_json
from benchmarks.conftest import instance_for
from repro.algorithms import CCT, CCTConfig, clear_embedding_cache
from repro.algorithms.cct import _set_embeddings_bitset
from repro.algorithms.cct_cache import get_embedding_cache
from repro.clustering import agglomerative_clustering
from repro.core import Variant
from repro.core.similarity import raw_similarity_from_sizes
from repro.evaluation import threshold_sweep

STAGE_VARIANT = Variant.threshold_jaccard(0.8)

# (label, dataset, load kwargs, timing repetitions)
SERIES = [
    ("A", "A", {}, 5),
    ("B", "B", {}, 5),
    ("C", "C", {}, 5),
    ("D", "D", {}, 3),
    ("D-large", "D", {"scale": 0.02}, 3),
]
TINY_SERIES = SERIES[:2]
MIN_SPEEDUP_LARGEST = 3.0

# Figure 8g/8h sweep: threshold Jaccard, fine grid around delta = 0.8.
SWEEP_BASE = Variant.threshold_jaccard(0.8)
SWEEP_DELTAS = [round(0.75 + 0.005 * i, 4) for i in range(31)]
TINY_SWEEP_DELTAS = [round(0.78 + 0.02 * i, 4) for i in range(5)]
MIN_CACHE_HIT_RATE = 0.5


# -- pre-PR embedding loop, inlined as the fixed baseline -------------------


def _legacy_set_embeddings(instance, variant) -> np.ndarray:
    """The pure-Python double loop this PR replaced (verbatim)."""
    sets = instance.sets
    n = len(sets)
    matrix = np.zeros((n, n), dtype=np.float64)
    index_of = {q.sid: i for i, q in enumerate(sets)}
    sizes = [len(q.items) for q in sets]

    pair_inter: dict[tuple[int, int], int] = {}
    for _item, with_item in instance.sets_containing().items():
        ids = sorted(index_of[q.sid] for q in with_item)
        for a_pos, a in enumerate(ids):
            for b in ids[a_pos + 1 :]:
                pair_inter[(a, b)] = pair_inter.get((a, b), 0) + 1
    for (a, b), inter in pair_inter.items():
        sim = raw_similarity_from_sizes(
            variant.kind, sizes[a], sizes[b], inter
        )
        matrix[a, b] = sim
        matrix[b, a] = sim
    np.fill_diagonal(matrix, 1.0)
    return matrix


def _time(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- experiment 1: embedding-stage speedup ----------------------------------


def _stage_row(label: str, name: str, kwargs: dict, reps: int) -> dict:
    instance = instance_for(name, STAGE_VARIANT, **kwargs)

    def legacy_stage() -> np.ndarray:
        return _legacy_set_embeddings(instance, STAGE_VARIANT)

    def engine_stage() -> np.ndarray:
        return _set_embeddings_bitset(instance, STAGE_VARIANT)

    # Differential guard before timing: the engines must agree bit for
    # bit, otherwise the speedup compares different computations.
    assert np.array_equal(legacy_stage(), engine_stage()), (
        f"embedding engines disagree on {label}"
    )

    t_legacy = _time(legacy_stage, reps)
    t_engine = _time(engine_stage, reps)
    return {
        "instance": label,
        "sets": len(instance),
        "items": len(instance.universe),
        "legacy_s": round(t_legacy, 4),
        "engine_s": round(t_engine, 4),
        "speedup": round(t_legacy / t_engine, 2),
    }


# -- experiment 2: clustering engines over the same embeddings --------------


def _cluster_row(label: str, name: str, kwargs: dict, reps: int) -> dict:
    instance = instance_for(name, STAGE_VARIANT, **kwargs)
    embeddings = _set_embeddings_bitset(instance, STAGE_VARIANT)

    chain = agglomerative_clustering(embeddings)
    greedy = agglomerative_clustering(embeddings, engine="legacy")
    # Same merge topology (engines only reorder tied merges; the Figure
    # 8f instances are tie-free at this variant).
    chain_sets = sorted(
        tuple(chain.leaves_under(m.node_id)) for m in chain.merges
    )
    greedy_sets = sorted(
        tuple(greedy.leaves_under(m.node_id)) for m in greedy.merges
    )
    assert chain_sets == greedy_sets, f"cluster engines disagree on {label}"

    t_chain = _time(lambda: agglomerative_clustering(embeddings), reps)
    t_greedy = _time(
        lambda: agglomerative_clustering(embeddings, engine="legacy"), reps
    )
    return {
        "instance": label,
        "sets": len(instance),
        "legacy_s": round(t_greedy, 4),
        "nn_chain_s": round(t_chain, 4),
        "speedup": round(t_greedy / t_chain, 2),
    }


# -- experiment 3: embedding-cache hit rate on the sweep --------------------


def _sweep_once(instance, deltas, use_cache: bool) -> float:
    clear_embedding_cache()
    builder = CCT(CCTConfig(use_cache=use_cache))
    start = time.perf_counter()
    threshold_sweep(builder, instance, SWEEP_BASE, deltas)
    return time.perf_counter() - start


def _cache_experiment(dataset_name: str, deltas: list[float]) -> dict:
    instance = instance_for(dataset_name, SWEEP_BASE)
    seconds_off = _sweep_once(instance, deltas, use_cache=False)
    seconds_on = _sweep_once(instance, deltas, use_cache=True)
    cache = get_embedding_cache()
    total = cache.hits + cache.misses
    result = {
        "dataset": dataset_name,
        "variant_family": "threshold-jaccard",
        "points": len(deltas),
        "delta_range": [deltas[0], deltas[-1]],
        "hits": cache.hits,
        "misses": cache.misses,
        "hit_rate": round(cache.hits / total, 4) if total else 0.0,
        "sweep_seconds_cache_off": round(seconds_off, 2),
        "sweep_seconds_cache_on": round(seconds_on, 2),
    }
    clear_embedding_cache()
    return result


def run(tiny: bool = False) -> dict:
    series = TINY_SERIES if tiny else SERIES
    stage_rows = [
        _stage_row(label, name, kwargs, 1 if tiny else reps)
        for label, name, kwargs, reps in series
    ]
    cluster_rows = [
        _cluster_row(label, name, kwargs, 1 if tiny else reps)
        for label, name, kwargs, reps in series[-2:]
    ]
    sweep = _cache_experiment(
        "A" if tiny else "C", TINY_SWEEP_DELTAS if tiny else SWEEP_DELTAS
    )

    bench_report(
        "CCT engine — embedding stage, pure-Python loop vs bitset kernel",
        "embeddings >= 3x on the largest instance; sweep cache hit rate > 50%",
        ["instance", "sets", "items", "legacy s", "engine s", "speedup"],
        [
            [
                r["instance"], r["sets"], r["items"],
                r["legacy_s"], r["engine_s"], r["speedup"],
            ]
            for r in stage_rows
        ]
        + [
            [
                f"cluster {r['instance']}", r["sets"], "-",
                r["legacy_s"], r["nn_chain_s"], r["speedup"],
            ]
            for r in cluster_rows
        ]
        + [
            [
                "8g sweep", f"{sweep['points']} pts",
                f"hit rate {sweep['hit_rate']:.0%}",
                sweep["sweep_seconds_cache_off"],
                sweep["sweep_seconds_cache_on"],
                "-",
            ]
        ],
    )

    payload = {
        "mode": "tiny" if tiny else "full",
        "stage_variant": "threshold-jaccard:0.8",
        "stage_rows": stage_rows,
        "cluster_rows": cluster_rows,
        "largest": {
            "instance": stage_rows[-1]["instance"],
            "speedup": stage_rows[-1]["speedup"],
            "min_required": MIN_SPEEDUP_LARGEST,
        },
        "cache_sweep": {**sweep, "min_required": MIN_CACHE_HIT_RATE},
    }
    # Tiny mode gets its own file so CI smoke runs never clobber the
    # committed full-mode numbers.
    write_bench_json("cct_tiny" if tiny else "cct", payload)

    if not tiny:
        assert stage_rows[-1]["speedup"] >= MIN_SPEEDUP_LARGEST, (
            f"embedding speedup {stage_rows[-1]['speedup']}x on "
            f"{stage_rows[-1]['instance']} below {MIN_SPEEDUP_LARGEST}x"
        )
        assert sweep["hit_rate"] > MIN_CACHE_HIT_RATE, (
            f"cache hit rate {sweep['hit_rate']:.0%} below "
            f"{MIN_CACHE_HIT_RATE:.0%}"
        )
    return payload


def test_cct_engine_speedup(benchmark):
    benchmark.pedantic(run, rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="small instances, coarse sweep, no threshold assertions",
    )
    args = parser.parse_args(argv)
    run(tiny=args.tiny)
    return 0


if __name__ == "__main__":
    sys.exit(main())
