"""Succinct read path: snapshot bytes, categorize latency, identity gate.

For each dataset the benchmark saves one CTCR snapshot carrying *both*
read-path representations and records, in
``benchmarks/BENCH_serving_succinct.json``:

1. **Snapshot byte accounting** (``snapshot_sections``,
   ``group_bytes``): per-section and per-group bytes from
   :func:`repro.serving.describe_flat`, summed across shards, plus the
   headline ratio — dense postings + bitset vs the succinct Euler
   arrays + varint blobs. The **≥3× compression floor** is only
   *enforced* in full mode (where ``cat_bits`` scales with
   ``n_categories × n_items / 8`` and dominates); tiny catalogs record
   the honest ratio with the gate spelled out in ``compression_floor``.

2. **Categorize latency per representation** (``latency``): batched
   ``categorize_items`` sweeps over the item universe through the mmap
   backend, cache off, one warmup rep then best-of-``REPS`` percentiles
   — and the per-item loop for comparison. The **no-regression gate**
   (succinct batched p99 ≤ ``LATENCY_HEADROOM`` × flat batched p99) is
   enforced in full mode only, spelled out in ``latency_floor``.

3. **Mapped-resident bytes** (``mapped_resident_bytes``): per
   representation, the RSS attributed to the flat shard mappings in
   ``/proc/self/smaps`` after one full sweep (``null`` off-Linux) — what
   the page cache actually keeps hot for each read path.

4. **Identity** (``identical_answers``): flat-mmap and succinct-mmap
   answers (placements, intersection counts *and their order*, best
   category) equal the in-memory reference on every sampled query —
   asserted in both modes, so CI smoke-tests the gate on every push.

``--tiny`` runs dataset A only for CI smoke (own file
``BENCH_serving_succinct_tiny.json``); full mode runs dataset C and a
large D slice (``scale=0.02``).
"""

from __future__ import annotations

import argparse
import random
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT) not in sys.path:  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(_ROOT))

from benchmarks.common import bench_report, write_bench_json
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR
from repro.core import Variant
from repro.serving import (
    MmapSnapshotIndexes,
    ServingEngine,
    SnapshotStore,
    describe_flat,
    prepare_mmap_generation,
)
from repro.serving.indexes import SnapshotIndexes

VARIANT = Variant.threshold_jaccard(0.8)

# (label, dataset name, load_dataset kwargs)
FULL = [("C", "C", {}), ("D-large", "D", {"scale": 0.02})]
TINY = [("A", "A", {})]

REPS = 5  # best-of reps per latency cell (after one warmup rep)
BATCH = 64  # items per categorize_items call
MAX_ITEMS = 4_000  # latency sweep cap; byte accounting is always exact
COMPRESSION_FLOOR = 3.0  # dense bytes / succinct bytes, full mode only
# Succinct batched-categorize p99 may not exceed flat by more than this
# factor. Headroom exists because single-process wall-clock percentiles
# are noisy at microsecond scale, not because a regression is expected;
# full runs typically land at or below 1.0×.
LATENCY_HEADROOM = 1.25

DENSE_GROUPS = ("dense",)
SUCCINCT_GROUPS = ("succinct_tree", "succinct_postings")


def section_accounting(paths) -> tuple[dict, dict]:
    """Per-section and per-group bytes, summed across shard files."""
    sections: dict[str, int] = {}
    groups: dict[str, int] = {}
    for path in paths:
        for sec in describe_flat(path)["sections"]:
            sections[sec["name"]] = sections.get(sec["name"], 0) + sec["bytes"]
            groups[sec["group"]] = groups.get(sec["group"], 0) + sec["bytes"]
    return sections, groups


def mapped_resident_bytes(paths) -> int | None:
    """RSS attributed to the given files in /proc/self/smaps (Linux)."""
    smaps = Path("/proc/self/smaps")
    if not smaps.exists():  # pragma: no cover - non-Linux
        return None
    names = {p.name for p in paths}
    total = 0
    tracking = False
    for line in smaps.read_text().splitlines():
        first = line.split(None, 1)[0] if line else ""
        if "-" in first:  # an address-range header line
            tracking = any(line.endswith(name) for name in names)
        elif tracking and line.startswith("Rss:"):
            total += int(line.split()[1]) * 1024
    return total


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _one_latency_rep(engine, items: list, batches: list) -> dict:
    batch_samples = []
    for batch in batches:
        t0 = time.perf_counter()
        engine.categorize_items(batch)
        batch_samples.append((time.perf_counter() - t0) * 1e3)
    t0 = time.perf_counter()
    for item in items:
        engine.categorize_item(item)
    per_item_sweep_ms = (time.perf_counter() - t0) * 1e3
    return {
        "batched_p50_ms": percentile(batch_samples, 0.50),
        "batched_p95_ms": percentile(batch_samples, 0.95),
        "batched_p99_ms": percentile(batch_samples, 0.99),
        "batched_sweep_ms": sum(batch_samples),
        "per_item_sweep_ms": per_item_sweep_ms,
    }


def categorize_latency(engines: dict, items: list) -> dict:
    """Batched and per-item categorize percentiles, best-of-REPS, in ms.

    The representations are measured *interleaved* — one rep of each
    per round — so background-load drift lands on both equally instead
    of biasing whichever ran last.
    """
    batches = [
        items[i: i + BATCH] for i in range(0, len(items), BATCH)
    ]
    best: dict[str, dict[str, float]] = {key: {} for key in engines}
    for engine in engines.values():  # warmup: page in + warm the dicts
        engine.categorize_items(items)
    for _ in range(REPS):
        for key, engine in engines.items():
            rep = _one_latency_rep(engine, items, batches)
            for metric, value in rep.items():
                best[key][metric] = min(
                    best[key].get(metric, value), value
                )
    return {
        key: {metric: round(value, 4) for metric, value in reps.items()}
        for key, reps in best.items()
    }


def identity_gate(reference: SnapshotIndexes, mm, queries) -> int:
    """Assert mm answers == the in-memory reference; returns checks run."""
    checks = 0
    for item in sorted(reference.item_postings, key=str)[:500]:
        assert mm.placements(item) == reference.placements(item)
        checks += 1
    for query in queries:
        got = mm.intersection_counts(query)
        want = reference.intersection_counts(query)
        assert got == want and list(got) == list(want)
        assert mm.best_category(query) == reference.best_category(query)
        checks += 2
    return checks


def run_dataset(label: str, name: str, kwargs: dict, tiny: bool) -> dict:
    instance = instance_for(name, VARIANT, **kwargs)
    tree = CTCR().build(instance, VARIANT)
    rng = random.Random(1234)

    with tempfile.TemporaryDirectory(prefix="bench-succinct-") as tmp:
        store = SnapshotStore(tmp)
        info = store.save(tree, instance, VARIANT, build_run_id="bench")
        paths = store.flat_paths(info.snapshot_id)
        sections, groups = section_accounting(paths)
        dense = sum(groups.get(g, 0) for g in DENSE_GROUPS)
        succinct = sum(groups.get(g, 0) for g in SUCCINCT_GROUPS)
        ratio = dense / succinct if succinct else float("inf")
        if not tiny:
            assert ratio >= COMPRESSION_FLOOR, (
                f"{label}: dense/succinct byte ratio {ratio:.2f} below the "
                f"{COMPRESSION_FLOOR}x floor"
            )

        loaded = store.load()
        reference = SnapshotIndexes(
            loaded.tree, loaded.instance, loaded.variant
        )
        queries = [q.items for q in loaded.instance.sets]
        queries = rng.sample(queries, min(len(queries), 300))

        all_items = sorted(reference.item_postings, key=str)
        items = (
            all_items
            if len(all_items) <= MAX_ITEMS
            else rng.sample(all_items, MAX_ITEMS)
        )

        engines: dict[str, ServingEngine] = {}
        maps: dict[str, MmapSnapshotIndexes] = {}
        checks = 0
        for repr_ in ("flat", "succinct"):
            generation = prepare_mmap_generation(store, tree_repr=repr_)
            engine = ServingEngine(cache_size=0)
            engine.publish(generation)
            engines[repr_] = engine
            maps[repr_] = generation.indexes
            checks += identity_gate(reference, generation.indexes, queries)
        latency = categorize_latency(engines, items)
        for mm in maps.values():
            mm.close()

        # Residency is measured one representation at a time — a fresh
        # mapping starts with nothing resident, so after one read sweep
        # the RSS is exactly what that read path touches.
        resident: dict[str, int | None] = {}
        for repr_ in ("flat", "succinct"):
            with MmapSnapshotIndexes(paths, tree_repr=repr_) as mm:
                for item in items:
                    mm.placements(item)
                resident[repr_] = mapped_resident_bytes(paths)

        if not tiny:
            ceiling = LATENCY_HEADROOM * latency["flat"]["batched_p99_ms"]
            assert latency["succinct"]["batched_p99_ms"] <= ceiling, (
                f"{label}: succinct batched categorize p99 "
                f"{latency['succinct']['batched_p99_ms']:.3f}ms exceeds "
                f"{LATENCY_HEADROOM}x flat "
                f"({latency['flat']['batched_p99_ms']:.3f}ms)"
            )

    return {
        "dataset": label,
        "snapshot_id": info.snapshot_id,
        "n_categories": info.n_categories,
        "n_items": len(all_items),
        "snapshot_sections": sections,
        "group_bytes": groups,
        "dense_bytes": dense,
        "succinct_bytes": succinct,
        "compression_ratio": round(ratio, 3),
        "latency": latency,
        "mapped_resident_bytes": resident,
        "identical_answers": {"asserted": True, "checks": checks},
    }


def run(tiny: bool = False) -> dict:
    results = [
        run_dataset(label, name, kwargs, tiny)
        for label, name, kwargs in (TINY if tiny else FULL)
    ]

    bench_report(
        "Succinct read path — snapshot bytes and categorize latency",
        "identical answers asserted for every representation",
        ["dataset", "dense KiB", "succinct KiB", "ratio",
         "flat batched p99 ms", "succinct batched p99 ms"],
        [
            [
                r["dataset"],
                round(r["dense_bytes"] / 1024, 1),
                round(r["succinct_bytes"] / 1024, 1),
                f"{r['compression_ratio']:.1f}x",
                r["latency"]["flat"]["batched_p99_ms"],
                r["latency"]["succinct"]["batched_p99_ms"],
            ]
            for r in results
        ],
    )

    payload = {
        "mode": "tiny" if tiny else "full",
        "variant": "threshold-jaccard:0.8",
        "batch_size": BATCH,
        "reps": REPS,
        "compression_floor": {
            "required": COMPRESSION_FLOOR,
            "enforced": not tiny,
        },
        "latency_floor": {
            "required_headroom": LATENCY_HEADROOM,
            "enforced": not tiny,
        },
        "datasets": results,
    }
    write_bench_json(
        "serving_succinct_tiny" if tiny else "serving_succinct", payload
    )
    return payload


def test_serving_succinct(benchmark):
    benchmark.pedantic(run, kwargs={"tiny": True}, rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="dataset A only — seconds-scale CI smoke",
    )
    args = parser.parse_args(argv)
    run(tiny=args.tiny)
    return 0


if __name__ == "__main__":
    sys.exit(main())
