"""Multi-process serving: aggregate HTTP throughput vs worker count.

One snapshotted CTCR tree served by a :class:`ServingSupervisor` at
1/2/4/8 worker processes, each cell hammered over real sockets by the
HTTP load generator — with a mid-run hot swap (``CURRENT`` flip to a
second, larger snapshot) fired in **every** cell.  Written to
``benchmarks/BENCH_serving_multi.json``:

- per-cell ``throughput_rps`` / ``latency_ms.{p50,p95,p99}`` /
  ``per_worker`` tallies and ``min_fair_share_ratio`` (kernel-level
  ``SO_REUSEPORT`` balance);
- **zero failed requests asserted in every cell**, swap included — the
  flip is provably invisible to clients even across processes;
- balance asserted for every multi-worker cell (no worker below 10% of
  its fair connection share);
- ``scaling``: aggregate throughput at 4 workers over 1 worker.  The
  >= 2.5x floor is only *enforced* where it can physically hold — the
  host must actually have >= 4 CPUs; the JSON records the honest curve
  either way, with the gate spelled out in ``scaling_floor``.

``--tiny`` runs a seconds-scale 1-vs-2-worker version on dataset A for
CI smoke (own file ``BENCH_serving_multi_tiny.json``; the zero-error
and balance assertions still hold).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT) not in sys.path:  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(_ROOT))

from benchmarks.common import bench_report, write_bench_json
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR
from repro.core import Variant, make_instance
from repro.observability import get_tracer
from repro.serving import SnapshotStore, build_workload, run_http_loadgen

VARIANT = Variant.threshold_jaccard(0.8)

# dataset, requests per cell, worker counts.
FULL = ("C", 2_000, (1, 2, 4, 8))
TINY = ("A", 300, (1, 2))

SCALING_FLOOR = 2.5  # x aggregate throughput at 4 workers vs 1
SCALING_WORKERS = 4


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _grown_instance(instance, extra: int):
    """The same instance plus ``extra`` synthetic sets.

    The grown tree has at least as many categories, and cids are
    contiguous preorder numbers, so every browse/path cid drawn from the
    base tree resolves in *both* snapshots — the swap can never 404 a
    pre-generated request.
    """
    sets = [q.items for q in instance.sets]
    weights = [q.weight for q in instance.sets]
    labels = [q.label for q in instance.sets]
    anchor = sorted(instance.universe, key=str)[0]
    for i in range(extra):
        sets.append({f"bench-x{i}", f"bench-y{i}", anchor})
        weights.append(1.0)
        labels.append(f"bench extra {i}")
    return make_instance(sets, weights=weights, labels=labels)


def run(tiny: bool = False) -> dict:
    dataset_name, n_requests, worker_counts = TINY if tiny else FULL
    cpus = _cpus()
    instance = instance_for(dataset_name, VARIANT)

    from repro.serving import ServingSupervisor

    with tempfile.TemporaryDirectory(prefix="bench-serving-multi-") as tmp:
        store = SnapshotStore(tmp)
        # Two content-distinct snapshots: the base one served at cell
        # start, and a strictly larger one the mid-run swap flips to.
        base_info = store.save(
            CTCR().build(instance, VARIANT), instance, VARIANT,
            build_run_id="bench",
        )
        grown = _grown_instance(instance, extra=4)
        grown_info = store.save(
            CTCR().build(grown, VARIANT), grown, VARIANT, activate=False,
            build_run_id="bench",
        )
        assert grown_info.n_categories >= base_info.n_categories
        loaded = store.load(base_info.snapshot_id)
        workload = build_workload(
            loaded.instance, loaded.tree, n_requests, seed=1234
        )

        cells = []
        for n_workers in worker_counts:
            store.activate(base_info.snapshot_id)
            supervisor = ServingSupervisor(
                store, n_workers=n_workers, poll_interval=0.1
            )
            with supervisor:
                # 8 connections per worker: the kernel balances whole
                # connections (not requests), so each worker must hold
                # several for the no-starvation assertion to be sound.
                result = run_http_loadgen(
                    supervisor.base_url,
                    workload,
                    n_connections=max(8, 8 * n_workers),
                    swap_at=0.5,
                    swap=lambda: store.activate(grown_info.snapshot_id),
                )
            assert result.errors == 0, (
                f"{n_workers} workers dropped requests: "
                f"{result.error_messages}"
            )
            assert result.swap_performed
            # Every response attributable to exactly one of the two
            # published snapshots — no torn state, no third generation.
            assert set(result.per_snapshot) <= {
                base_info.snapshot_id, grown_info.snapshot_id
            }, result.per_snapshot
            if n_workers > 1:
                assert len(result.per_worker) == n_workers, result.per_worker
                assert result.min_fair_share_ratio() >= 0.1, (
                    result.per_worker
                )
            cells.append((n_workers, result))

    by_workers = dict(cells)
    scaling = None
    if 1 in by_workers and SCALING_WORKERS in by_workers:
        scaling = (
            by_workers[SCALING_WORKERS].throughput_rps
            / by_workers[1].throughput_rps
        )
    enforce_floor = scaling is not None and cpus >= SCALING_WORKERS
    if enforce_floor:
        assert scaling >= SCALING_FLOOR, (
            f"aggregate throughput scaled only {scaling:.2f}x at "
            f"{SCALING_WORKERS} workers (floor {SCALING_FLOOR}x, "
            f"{cpus} CPUs)"
        )

    tracer = get_tracer()
    tracer.gauge("serving.workers.configured", max(worker_counts))
    tracer.gauge("serving.workers.cpus", cpus)

    bench_report(
        f"Multi-process serving — {dataset_name}, {n_requests} requests "
        f"per cell, CURRENT flip mid-run, {cpus} CPUs",
        "every cell swaps hot with zero failed requests; "
        + (
            f"4-worker scaling floor {SCALING_FLOOR}x enforced"
            if enforce_floor
            else f"scaling floor not enforced (needs >= {SCALING_WORKERS} CPUs)"
        ),
        ["workers", "conns", "rps", "p50 ms", "p95 ms", "p99 ms",
         "min fair share", "retries", "errors"],
        [
            [n, r.n_connections, round(r.throughput_rps), r.p50_ms,
             r.p95_ms, r.p99_ms, f"{r.min_fair_share_ratio():.2f}",
             r.retries, r.errors]
            for n, r in cells
        ],
    )

    payload = {
        "mode": "tiny" if tiny else "full",
        "dataset": dataset_name,
        "variant": "threshold-jaccard:0.8",
        "snapshot_id": base_info.snapshot_id,
        "swap_snapshot_id": grown_info.snapshot_id,
        "n_categories": base_info.n_categories,
        "requests_per_cell": n_requests,
        "cells": {str(n): r.to_dict() for n, r in cells},
        "scaling": {
            "workers": SCALING_WORKERS,
            "throughput_ratio": round(scaling, 3) if scaling else None,
        },
        "scaling_floor": {
            "required": SCALING_FLOOR,
            "enforced": enforce_floor,
            "cpus": cpus,
        },
    }
    write_bench_json(
        "serving_multi_tiny" if tiny else "serving_multi", payload
    )
    return payload


def test_serving_multi_load(benchmark):
    benchmark.pedantic(run, kwargs={"tiny": True}, rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="dataset A, 1-vs-2 workers, 300 requests — CI smoke",
    )
    args = parser.parse_args(argv)
    run(tiny=args.tiny)
    return 0


if __name__ == "__main__":
    sys.exit(main())
