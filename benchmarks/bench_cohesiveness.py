"""Section 5.4: semantic cohesiveness of CTCR categories vs the
existing tree.

Paper result: average pairwise TF-IDF title similarity within categories
is 0.52 (CTCR) vs 0.49 (existing tree) uniform-averaged, and 0.45 for
both when weighting by category size — CTCR's automatically derived
categories are as cohesive as the manually built ones.
"""

from benchmarks.common import bench_report
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR
from repro.baselines import ExistingTree
from repro.core import Variant
from repro.evaluation import tree_cohesiveness

VARIANT = Variant.threshold_jaccard(0.8)


def test_cohesiveness_ctcr_vs_existing(benchmark, dataset_d_small):
    instance = instance_for("D", VARIANT, scale=0.003)

    def run():
        ctcr_tree = CTCR().build(instance, VARIANT)
        et_tree = ExistingTree(dataset_d_small.existing_tree).build(
            instance, VARIANT
        )
        return (
            tree_cohesiveness(ctcr_tree, dataset_d_small.titles),
            tree_cohesiveness(et_tree, dataset_d_small.titles),
        )

    ctcr_report, et_report = benchmark.pedantic(run, rounds=1, iterations=1)

    bench_report(
        "Section 5.4 — category cohesiveness (TF-IDF title similarity)",
        "CTCR ~= existing tree (paper: 0.52 vs 0.49 uniform; 0.45 both "
        "size-weighted)",
        ["tree", "uniform avg", "size-weighted avg", "categories"],
        [
            [
                "CTCR",
                ctcr_report.uniform_average,
                ctcr_report.size_weighted_average,
                ctcr_report.categories_measured,
            ],
            [
                "Existing",
                et_report.uniform_average,
                et_report.size_weighted_average,
                et_report.categories_measured,
            ],
        ],
    )

    # CTCR's categories must be in the same cohesiveness ballpark as the
    # hand-built tree (the paper found a slight CTCR edge).
    assert ctcr_report.uniform_average >= et_report.uniform_average - 0.1
    assert ctcr_report.categories_measured > 0
