"""Figure 8d: train/test robustness — random half splits of the input.

Paper result: held-out scores are predictably lower than in-sample, but
CTCR still achieves the best performance (50 random partitions in the
paper; fewer here to respect the pure-Python time budget).

The split runs over the *unmerged* queries: merging deduplicates
near-synonym queries, and a tree can only generalize to held-out queries
that resemble some training query — exactly the redundancy a real query
log carries. The paper's own merging step shrank dataset D from 100K to
20K queries (~80% near-duplicate mass); this bench regenerates C with a
0.6 synonym fraction — still conservative — and uses delta 0.7 to leave
measurable held-out signal at our reduced scale.
"""

from benchmarks.common import all_builders, bench_report
from repro.catalog import load_dataset
from repro.core import Variant
from repro.evaluation import train_test_evaluation
from repro.pipeline import PreprocessConfig, preprocess

VARIANT = Variant.threshold_jaccard(0.7)
REPETITIONS = 3


def test_fig8d_train_test(benchmark):
    dataset_c = load_dataset("C", seed=42, synonym_fraction=0.6)
    instance, _ = preprocess(
        dataset_c, VARIANT, PreprocessConfig(merge_queries=False)
    )
    builders = all_builders(dataset_c)

    results = benchmark.pedantic(
        train_test_evaluation,
        args=(builders, instance, VARIANT),
        kwargs={"repetitions": REPETITIONS, "seed": 0},
        rounds=1,
        iterations=1,
    )

    bench_report(
        "Figure 8d — train/test robustness (threshold Jaccard 0.7, C)",
        "held-out scores lower than in-sample; CTCR still best",
        ["algorithm", "mean test score", "std", "mean train score"],
        [
            [r.name, r.mean_test_score, r.std_test_score, r.mean_train_score]
            for r in results
        ],
    )

    by_name = {r.name: r for r in results}
    assert by_name["CTCR"].mean_test_score >= (
        by_name["CCT"].mean_test_score - 0.03
    )
    for r in results:
        assert r.mean_test_score <= r.mean_train_score + 0.05
    assert by_name["CTCR"].mean_test_score > by_name["ET"].mean_test_score
