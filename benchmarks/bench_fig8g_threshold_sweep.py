"""Figure 8g: CTCR score across thresholds — threshold Jaccard, dataset C.

Paper result: lowering the threshold consistently covers more input sets
and raises the score; around the taxonomists' preferred delta = 0.8 the
curve is locally flat (robust tuning, Section 5.4).
"""

from benchmarks.common import bench_report
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR, CTCRConfig
from repro.core import Variant
from repro.evaluation import threshold_sweep
from repro.mis import MISConfig

BASE = Variant.threshold_jaccard(0.8)
DELTAS = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0]

# The sweep re-solves near-identical conflict components at adjacent
# deltas, so the MIS memo cache is on (results are identical either
# way; bench_mis_engine measures the hit rate on a fine grid).
BUILDER = CTCR(CTCRConfig(mis=MISConfig(use_cache=True)))


def test_fig8g_threshold_sweep(benchmark):
    instance = instance_for("C", BASE)

    points = benchmark.pedantic(
        threshold_sweep,
        args=(BUILDER, instance, BASE, DELTAS),
        rounds=1,
        iterations=1,
    )

    bench_report(
        "Figure 8g — CTCR threshold sweep (threshold Jaccard, C)",
        "score rises as delta drops; locally flat around delta=0.8",
        ["delta", "normalized score", "covered"],
        [[p.delta, p.normalized_score, p.covered_count] for p in points],
    )

    by_delta = {p.delta: p.normalized_score for p in points}
    assert by_delta[0.5] >= by_delta[1.0]
    assert by_delta[0.5] >= by_delta[0.9] - 0.02
    # Robustness claim: moving delta within [0.6, 0.9] changes the score
    # only moderately.
    band = [by_delta[d] for d in (0.6, 0.7, 0.8, 0.9)]
    assert max(band) - min(band) < 0.35
