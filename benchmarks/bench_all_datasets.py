"""Cross-dataset robustness (paper Section 5.2).

"As the obtained results over all datasets demonstrated very similar
trends, for space limitations, we provide representative results only
for some private and public datasets." This bench runs the headline
setting (threshold Jaccard 0.8) over every dataset stand-in — the four
private ones plus all four public ones — and checks that the ranking
holds everywhere, plus the paper's sparsity observation: "in all
examined datasets, the derived MIS instances are sparse".
"""

from benchmarks.common import bench_report
from benchmarks.conftest import dataset, instance_for
from repro.algorithms import CCT, CTCR
from repro.baselines import ExistingTree
from repro.core import Variant
from repro.evaluation import run_comparison

VARIANT = Variant.threshold_jaccard(0.8)
DATASETS = ["A", "B", "C", "E", "CrowdFlower", "HomeDepot", "VictoriasSecret"]


def test_all_datasets_same_trends(benchmark):
    def run():
        rows = []
        for name in DATASETS:
            ds = dataset(name)
            instance = instance_for(name, VARIANT)
            builder = CTCR()
            comparison = run_comparison(
                [builder, CCT(), ExistingTree(ds.existing_tree)],
                instance,
                VARIANT,
            )
            scores = {r.name: r.normalized_score for r in comparison}
            # Rebuild once more for the sparsity diagnostic.
            builder.build(instance, VARIANT)
            rows.append(
                [
                    name,
                    scores["CTCR"],
                    scores["CCT"],
                    scores["ET"],
                    builder.last_diagnostics.c2_weighted_avg,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    bench_report(
        "All datasets — threshold Jaccard 0.8 (private + public stand-ins)",
        "very similar trends on every dataset; conflict graphs sparse "
        "(low weighted conflicts-per-set)",
        ["dataset", "CTCR", "CCT", "ET", "C2(Q,W)"],
        rows,
    )

    for name, ctcr, cct, et, c2 in rows:
        assert ctcr >= cct - 0.03, name
        assert ctcr > et, name
        # Sparsity: on average each set participates in only a few
        # conflicts (the paper's enabling observation for exact MIS).
        assert c2 < 20.0, name
