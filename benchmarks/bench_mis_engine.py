"""Conflict-resolution engine: kernelized bitset MIS vs the pre-PR engine.

Two experiments, both written to ``benchmarks/BENCH_mis.json``:

1. **Stage speedup** (Figure 8f series, perfect-recall:0.6 — the variant
   whose dense must-together relation makes 3-conflict enumeration and
   the hypergraph MIS the dominant stage): the full conflict-resolution
   stage (triple enumeration + hypergraph build + MIS solve) under the
   current engine (bitset enumeration, hypergraph kernelization, greedy
   warm start, bitset branch-and-bound) against the pre-PR baseline
   (nested-loop enumeration, counter-based branch-and-bound, no
   reductions, shared declining budget) — inlined below verbatim so the
   comparison stays honest as the engine evolves. The largest instance
   must show at least a 3x speedup.

2. **Cache hit rate** (Figure 8g robustness protocol): a fine threshold
   sweep around the taxonomists' preferred delta = 0.8 on dataset C with
   the component memo-cache enabled. Fine grids mostly do not cross
   classification boundaries between adjacent deltas, so consecutive
   sweep points re-solve identical conflict components; the cache must
   serve more than half of all component solves.

``--tiny`` runs a seconds-scale version of both experiments (small
instances, coarse sweep, no thresholds asserted) so CI can keep the
harness from rotting.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT) not in sys.path:  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(_ROOT))

from benchmarks.common import bench_report, write_bench_json
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR, CTCRConfig
from repro.conflicts.ranking import rank_sets
from repro.conflicts.three_conflicts import (
    _three_conflicts_reference,
    compute_three_conflicts,
)
from repro.conflicts.two_conflicts import compute_pairwise
from repro.core import Variant
from repro.evaluation import threshold_sweep
from repro.mis import MISConfig
from repro.mis.cache import clear_mis_cache, get_mis_cache
from repro.mis.exact import BudgetExceededError
from repro.mis.hypergraph_mis import (
    WeightedHypergraph,
    _subhypergraph,
    greedy_hypergraph_mis,
    solve_hypergraph_mis,
)

STAGE_VARIANT = Variant.perfect_recall(0.6)

# (label, dataset, load kwargs, timing repetitions)
SERIES = [
    ("A", "A", {}, 3),
    ("B", "B", {}, 3),
    ("C", "C", {}, 3),
    ("D", "D", {}, 2),
    ("D-large", "D", {"scale": 0.02}, 1),
]
TINY_SERIES = SERIES[:2]
MIN_SPEEDUP_LARGEST = 3.0

# Figure 8g sweep: threshold Jaccard on C, fine grid around delta = 0.8.
SWEEP_BASE = Variant.threshold_jaccard(0.8)
SWEEP_DELTAS = [round(0.75 + 0.005 * i, 4) for i in range(31)]
TINY_SWEEP_DELTAS = [round(0.78 + 0.02 * i, 4) for i in range(5)]
MIN_CACHE_HIT_RATE = 0.5


# -- pre-PR engine, inlined as the fixed baseline --------------------------


class _LegacyHyperBranchAndBound:
    """The counter-based branch-and-bound this PR replaced (verbatim)."""

    def __init__(self, hg: WeightedHypergraph, node_budget: int) -> None:
        self.hg = hg
        self.node_budget = node_budget
        self.nodes_used = 0
        self.order = sorted(
            hg.vertices, key=lambda v: (-hg.weights[v], str(v))
        )
        self.suffix = [0.0] * (len(self.order) + 1)
        for i in range(len(self.order) - 1, -1, -1):
            self.suffix[i] = self.suffix[i + 1] + max(
                0.0, hg.weights[self.order[i]]
            )
        self.incidence = hg.incidence()
        self.chosen_count = [0] * len(hg.edges)
        self.excluded_count = [0] * len(hg.edges)
        self.best_weight = -1.0
        self.best_set: set = set()
        self.current: set = set()
        self.current_weight = 0.0

    def solve(self) -> set:
        self._recurse(0)
        return self.best_set

    def _recurse(self, index: int) -> None:
        self.nodes_used += 1
        if self.nodes_used > self.node_budget:
            raise BudgetExceededError(
                f"hypergraph MIS exceeded {self.node_budget} nodes"
            )
        if self.current_weight > self.best_weight:
            self.best_weight = self.current_weight
            self.best_set = set(self.current)
        if index == len(self.order):
            return
        if self.current_weight + self.suffix[index] <= self.best_weight:
            return
        v = self.order[index]

        violating = any(
            self.chosen_count[e] == len(self.hg.edges[e]) - 1
            and self.excluded_count[e] == 0
            for e in self.incidence[v]
        )
        if not violating:
            self.current.add(v)
            self.current_weight += self.hg.weights[v]
            for e in self.incidence[v]:
                self.chosen_count[e] += 1
            self._recurse(index + 1)
            self.current.remove(v)
            self.current_weight -= self.hg.weights[v]
            for e in self.incidence[v]:
                self.chosen_count[e] -= 1

        for e in self.incidence[v]:
            self.excluded_count[e] += 1
        self._recurse(index + 1)
        for e in self.incidence[v]:
            self.excluded_count[e] -= 1


def _legacy_solve_hypergraph_mis(
    hg: WeightedHypergraph,
    node_budget: int = 500_000,
    exact: bool = True,
    max_exact_component: int = 2000,
) -> set:
    """Pre-PR solve loop: no kernelization, shared declining budget."""
    needed_depth = len(hg.vertices) + 100
    if sys.getrecursionlimit() < needed_depth:
        sys.setrecursionlimit(needed_depth)
    solution: set = set()
    remaining = node_budget
    for component in sorted(hg.connected_components(), key=len):
        sub = _subhypergraph(hg, component)
        if not sub.edges:
            solution |= component
            continue
        attempt_exact = (
            exact and remaining > 0 and len(component) <= max_exact_component
        )
        if attempt_exact:
            solver = _LegacyHyperBranchAndBound(sub, remaining)
            try:
                solution |= solver.solve()
                remaining -= solver.nodes_used
                continue
            except BudgetExceededError:
                remaining = 0
        solution |= greedy_hypergraph_mis(sub)
    return solution


# -- experiment 1: conflict-resolution stage speedup -----------------------


def _build_hypergraph(instance, analysis, triples) -> WeightedHypergraph:
    return WeightedHypergraph(
        vertices=[q.sid for q in instance],
        weights={q.sid: q.weight for q in instance},
        edges=[frozenset(e) for e in analysis.conflicts]
        + [frozenset(e) for e in triples],
    )


def _time(fn, reps: int) -> float:
    # Best-of-reps: the minimum is the noise-robust estimator for
    # benchmarks (preemption and frequency scaling only add time).  The
    # differential guards in _stage_row already serve as the warmup.
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _stage_row(label: str, name: str, kwargs: dict, reps: int) -> dict:
    instance = instance_for(name, STAGE_VARIANT, **kwargs)
    ranking = rank_sets(instance)
    analysis = compute_pairwise(instance, STAGE_VARIANT, ranking)

    def legacy_stage() -> tuple[set, float]:
        triples = _three_conflicts_reference(analysis)
        hg = _build_hypergraph(instance, analysis, triples)
        selected = _legacy_solve_hypergraph_mis(hg)
        return selected, hg.weight_of(selected)

    def engine_stage() -> tuple[set, float]:
        triples = compute_three_conflicts(analysis)
        hg = _build_hypergraph(instance, analysis, triples)
        selected = solve_hypergraph_mis(hg)
        return selected, hg.weight_of(selected)

    # Differential guards before timing: identical triples, and the new
    # engine never selects less weight (the legacy engine may have
    # greedy-degraded after exhausting its shared budget).
    ref_triples = _three_conflicts_reference(analysis)
    new_triples = compute_three_conflicts(analysis)
    assert ref_triples == new_triples, f"triple enumeration differs on {label}"
    _, legacy_weight = legacy_stage()
    _, engine_weight = engine_stage()
    assert engine_weight >= legacy_weight - 1e-9, (
        f"engine lost weight on {label}: {engine_weight} < {legacy_weight}"
    )

    t_legacy = _time(legacy_stage, reps)
    t_engine = _time(engine_stage, reps)
    return {
        "instance": label,
        "sets": len(instance),
        "three_conflicts": len(new_triples),
        "legacy_s": round(t_legacy, 4),
        "engine_s": round(t_engine, 4),
        "speedup": round(t_legacy / t_engine, 2),
    }


# -- experiment 2: memo-cache hit rate on the Figure 8g sweep --------------


def _sweep_once(instance, deltas, use_cache: bool) -> float:
    clear_mis_cache()
    builder = CTCR(CTCRConfig(mis=MISConfig(use_cache=use_cache)))
    start = time.perf_counter()
    threshold_sweep(builder, instance, SWEEP_BASE, deltas)
    return time.perf_counter() - start


def _cache_experiment(deltas: list[float]) -> dict:
    instance = instance_for("C", SWEEP_BASE)
    seconds_off = _sweep_once(instance, deltas, use_cache=False)
    seconds_on = _sweep_once(instance, deltas, use_cache=True)
    cache = get_mis_cache()
    total = cache.hits + cache.misses
    return {
        "dataset": "C",
        "variant_family": "threshold-jaccard",
        "points": len(deltas),
        "delta_range": [deltas[0], deltas[-1]],
        "hits": cache.hits,
        "misses": cache.misses,
        "hit_rate": round(cache.hits / total, 4) if total else 0.0,
        "sweep_seconds_cache_off": round(seconds_off, 2),
        "sweep_seconds_cache_on": round(seconds_on, 2),
    }


def run(tiny: bool = False) -> dict:
    series = TINY_SERIES if tiny else SERIES
    rows = [
        _stage_row(label, name, kwargs, 1 if tiny else reps)
        for label, name, kwargs, reps in series
    ]
    sweep = _cache_experiment(TINY_SWEEP_DELTAS if tiny else SWEEP_DELTAS)

    bench_report(
        "MIS engine — conflict-resolution stage, pre-PR vs kernelized bitset",
        "stage >= 3x on the largest instance; sweep cache hit rate > 50%",
        [
            "instance", "sets", "3-conflicts",
            "legacy s", "engine s", "speedup",
        ],
        [
            [
                r["instance"], r["sets"], r["three_conflicts"],
                r["legacy_s"], r["engine_s"], r["speedup"],
            ]
            for r in rows
        ]
        + [
            [
                "8g sweep", f"{sweep['points']} pts",
                f"hit rate {sweep['hit_rate']:.0%}",
                sweep["sweep_seconds_cache_off"],
                sweep["sweep_seconds_cache_on"],
                "-",
            ]
        ],
    )

    payload = {
        "mode": "tiny" if tiny else "full",
        "stage_variant": "perfect-recall:0.6",
        "stage_rows": rows,
        "largest": {
            "instance": rows[-1]["instance"],
            "speedup": rows[-1]["speedup"],
            "min_required": MIN_SPEEDUP_LARGEST,
        },
        "cache_sweep": {**sweep, "min_required": MIN_CACHE_HIT_RATE},
    }
    # Tiny mode gets its own file so CI smoke runs never clobber the
    # committed full-mode numbers.
    write_bench_json("mis_tiny" if tiny else "mis", payload)

    if not tiny:
        assert rows[-1]["speedup"] >= MIN_SPEEDUP_LARGEST, (
            f"stage speedup {rows[-1]['speedup']}x on {rows[-1]['instance']} "
            f"below {MIN_SPEEDUP_LARGEST}x"
        )
        assert sweep["hit_rate"] > MIN_CACHE_HIT_RATE, (
            f"cache hit rate {sweep['hit_rate']:.0%} below "
            f"{MIN_CACHE_HIT_RATE:.0%}"
        )
    return payload


def test_mis_engine_speedup(benchmark):
    benchmark.pedantic(run, rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="small instances, coarse sweep, no threshold assertions",
    )
    args = parser.parse_args(argv)
    run(tiny=args.tiny)
    return 0


if __name__ == "__main__":
    sys.exit(main())
