"""Figure 8e: Perfect-Recall over the public dataset E.

The paper's E is BestBuy queries evaluated over the Amazon Electronics
catalog through Elasticsearch; our stand-in is the synthetic electronics
catalog with uniform query weights (public data has no frequencies).
Paper result: the same algorithm ranking as on the private datasets.
"""

from benchmarks.common import all_builders, bench_report
from benchmarks.conftest import instance_for
from repro.core import Variant
from repro.evaluation import run_comparison

VARIANT = Variant.perfect_recall(0.6)


def test_fig8e_public_dataset(benchmark, dataset_e):
    instance = instance_for("E", VARIANT)
    builders = all_builders(dataset_e)

    rows = benchmark.pedantic(
        run_comparison,
        args=(builders, instance, VARIANT),
        rounds=1,
        iterations=1,
    )

    bench_report(
        "Figure 8e — Perfect-Recall (delta=0.6), public dataset E",
        "ranking persists on public data with uniform weights",
        ["algorithm", "normalized score", "covered", "categories"],
        [
            [r.name, r.normalized_score, r.covered_count, r.num_categories]
            for r in rows
        ],
    )

    scores = {r.name: r.normalized_score for r in rows}
    assert scores["CTCR"] >= scores["CCT"] - 0.02
    assert scores["CTCR"] > scores["IC-Q"]
    assert scores["CTCR"] > scores["ET"]
