"""Item branch bounds above 1 (paper Sections 1, 2.1, 3.3).

Platforms like eBay let sellers list an item on a second branch for a
fee. The model supports a per-item bound, and the algorithms exploit it:
shared items no longer need partitioning, dissolving separate-cover
constraints. Raising the default bound from 1 to 2 must never lower the
score and should lift it on overlap-heavy inputs.
"""

from benchmarks.common import bench_report
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR
from repro.core import OCTInstance, Variant, score_tree

VARIANT = Variant.perfect_recall(0.7)


def test_item_bounds_lift_scores(benchmark):
    base = instance_for("A", VARIANT)

    def run():
        rows = []
        for bound in (1, 2):
            instance = OCTInstance(
                base.sets, universe=base.universe, default_bound=bound
            )
            tree = CTCR().build(instance, VARIANT)
            tree.validate(universe=instance.universe, bound=instance.bound)
            report = score_tree(tree, instance, VARIANT)
            rows.append([bound, report.normalized, report.covered_count])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    bench_report(
        "Item branch bounds — Perfect-Recall 0.7, dataset A",
        "allowing a second branch per item (the eBay fee option) never "
        "hurts and typically lifts coverage",
        ["default bound", "normalized score", "covered"],
        rows,
    )

    score_b1 = rows[0][1]
    score_b2 = rows[1][1]
    assert score_b2 >= score_b1 - 1e-9
