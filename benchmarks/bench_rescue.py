"""The uncovered-query rescue workflow (paper Sections 3.1 and 5.4).

"Reemploying the algorithm with reduced thresholds for uncovered
queries" is how taxonomists handled under-represented categories; the
paper reports a few reemployments suffice. This bench quantifies the
loop: each round relaxes only the still-uncovered sets' thresholds and
rebuilds, strictly increasing coverage.
"""

from benchmarks.common import bench_report
from benchmarks.conftest import instance_for
from repro.algorithms import CTCR
from repro.core import Variant
from repro.maintenance import rescue_uncovered

VARIANT = Variant.threshold_jaccard(0.8)


def test_rescue_workflow(benchmark):
    instance = instance_for("C", VARIANT)

    result = benchmark.pedantic(
        rescue_uncovered,
        args=(CTCR(), instance, VARIANT),
        kwargs={"factor": 0.75, "max_rounds": 3},
        rounds=1,
        iterations=1,
    )

    bench_report(
        "Rescue workflow — reemploying CTCR with relaxed thresholds (C)",
        "a few reemployments cover most of the initially missed queries",
        ["rounds used", "uncovered before", "uncovered after",
         "final score (relaxed acceptance)"],
        [[
            result.rounds_used,
            result.initially_uncovered,
            result.finally_uncovered,
            result.report.normalized,
        ]],
    )

    assert result.finally_uncovered < result.initially_uncovered
    assert result.rounds_used <= 3
    result.tree.validate(
        universe=result.instance.universe, bound=result.instance.bound
    )
