"""Opt-in larger-scale smoke run (set REPRO_LARGE=1 to enable).

This bench is folded into the extreme tier: the synthetic-scale half
delegates to :func:`benchmarks.bench_extreme.run_point` (the
``repro.scale`` planted-catalog generator), and the catalog half keeps
the original dataset-C pipeline check.  For the full scale *curves* —
four points up to 1M items with per-point RSS isolation and the
latency-budgeted shaping gate — run ``benchmarks/bench_extreme.py``
directly; its blocks land in ``results.log`` under the same run-id
conventions as every other bench.
"""

import os

import pytest

from benchmarks.common import bench_report
from repro.algorithms import CTCR
from repro.catalog import load_dataset
from repro.core import Variant, score_tree
from repro.pipeline import preprocess

VARIANT = Variant.threshold_jaccard(0.8)

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_LARGE"),
    reason="set REPRO_LARGE=1 for the larger-scale smoke runs",
)


def test_large_scale_c(benchmark):
    dataset = load_dataset("C", scale=0.1, seed=42)

    def run():
        instance, report = preprocess(dataset, VARIANT)
        tree = CTCR().build(instance, VARIANT)
        tree.validate(universe=instance.universe, bound=instance.bound)
        return instance, report, score_tree(tree, instance, VARIANT)

    instance, prep, result = benchmark.pedantic(run, rounds=1, iterations=1)

    bench_report(
        "Large-scale smoke — dataset C at 10% of paper size",
        "pipeline and CTCR remain correct and tractable as sizes grow",
        ["items", "raw queries", "candidate sets", "normalized score"],
        [[dataset.n_items, prep.raw_queries, len(instance),
          result.normalized]],
    )
    assert result.normalized > 0.2


def test_large_scale_synthetic(benchmark):
    """One mid-scale point of the extreme tier, run in-process."""
    from benchmarks.bench_extreme import run_point

    record = benchmark.pedantic(
        lambda: run_point(100_000, 5_000, queries=100, shape=True),
        rounds=1, iterations=1,
    )

    bench_report(
        "Large-scale smoke — synthetic 100K-item planted catalog",
        "repro.scale generation streams, the succinct index serves, and "
        "the shaper meets its latency budget with an exact quality delta",
        ["items", "sets", "index s", "p50 us", "budget met",
         "quality given up"],
        [[record["n_items"], record["n_sets"], record["index_s"],
          record["serve_p50_us"], record["shaping"]["met"],
          record["shaping"]["quality_given_up"]]],
    )
    assert record["shaping"]["met"]
    assert record["shaping"]["offline_rescore_exact"]
