"""Opt-in larger-scale smoke run (set REPRO_LARGE=1 to enable).

The default benches run reduced datasets so the whole suite finishes in
minutes. This bench exercises the `scale=` path towards paper sizes —
dataset C at a tenth of the paper's size (~34K items) — verifying that
the pipeline and CTCR stay correct and tractable as instances grow.
"""

import os

import pytest

from benchmarks.common import bench_report
from repro.algorithms import CTCR
from repro.catalog import load_dataset
from repro.core import Variant, score_tree
from repro.pipeline import preprocess

VARIANT = Variant.threshold_jaccard(0.8)


@pytest.mark.skipif(
    not os.environ.get("REPRO_LARGE"),
    reason="set REPRO_LARGE=1 for the larger-scale smoke run",
)
def test_large_scale_c(benchmark):
    dataset = load_dataset("C", scale=0.1, seed=42)

    def run():
        instance, report = preprocess(dataset, VARIANT)
        tree = CTCR().build(instance, VARIANT)
        tree.validate(universe=instance.universe, bound=instance.bound)
        return instance, report, score_tree(tree, instance, VARIANT)

    instance, prep, result = benchmark.pedantic(run, rounds=1, iterations=1)

    bench_report(
        "Large-scale smoke — dataset C at 10% of paper size",
        "pipeline and CTCR remain correct and tractable as sizes grow",
        ["items", "raw queries", "candidate sets", "normalized score"],
        [[dataset.n_items, prep.raw_queries, len(instance),
          result.normalized]],
    )
    assert result.normalized > 0.2
