"""Build -> snapshot -> serve -> query: the serving-layer walkthrough.

The offline pipeline builds a category tree; ``repro.serving`` puts it
online. This example runs the whole loop in one process: build a tree
from a small synthetic dataset, persist it as a content-addressed
snapshot, serve it over HTTP on a private port, issue the storefront's
read requests, hot-swap to a rebuilt tree mid-flight, and read the
engine's own stats. Run::

    python examples/serving_quickstart.py

The same server is available from the shell as
``python -m repro serve --dataset A --snapshot-dir snapshots/``.
"""

import json
import tempfile
import urllib.request

from repro import CTCR, Variant
from repro.catalog import load_dataset
from repro.labeling import apply_label_suggestions, suggest_labels
from repro.pipeline import preprocess
from repro.serving import (
    HotSwapper,
    ServingEngine,
    SnapshotStore,
    make_server,
    serve_in_background,
)


def get(port: int, path: str) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return json.loads(response.read())


def main() -> None:
    # 1. Build a labeled tree offline.
    dataset = load_dataset("A", scale=0.05, seed=11)
    variant = Variant.threshold_jaccard(0.8)
    instance, _ = preprocess(dataset, variant)
    tree = CTCR().build(instance, variant)
    apply_label_suggestions(tree, suggest_labels(tree, instance, variant))

    with tempfile.TemporaryDirectory(prefix="serving-quickstart-") as tmp:
        # 2. Persist it as a content-addressed snapshot.
        store = SnapshotStore(tmp)
        info = store.save(tree, instance, variant, build_run_id="quickstart")
        print(
            f"snapshot {info.snapshot_id}: {info.n_categories} categories, "
            f"score {info.score:.4f}"
        )

        # 3. Serve the store's CURRENT snapshot over HTTP (port 0 = free).
        engine = ServingEngine.from_snapshot(store.load())
        server = make_server(engine, store=store)
        serve_in_background(server)
        port = server.server_port

        # 4. The storefront's reads: browse, categorize, score a query.
        root = get(port, "/browse")
        print(f"root has {len(root['children'])} child categories")
        item = sorted(instance.universe, key=str)[0]
        placements = get(port, f"/categorize?item={item}")["placements"]
        print(f"item {item!r} placed under {len(placements)} categories")
        some_query = sorted(instance.sets, key=lambda q: q.sid)[0]
        items_param = ",".join(sorted(some_query.items, key=str)[:5])
        best = get(port, f"/best-category?items={items_param}")
        if best["covered"]:
            print(
                f"best category for {items_param!r}: "
                f"{best['best']['label']!r} (score {best['best']['score']:.3f})"
            )

        # 5. Hot-swap to a rebuilt tree: prepare off-path, publish with
        #    one atomic flip — readers never block, no request drops.
        swapper = HotSwapper(engine)
        generation = swapper.swap_from_build(
            CTCR(), instance, variant, store=store
        )
        print(f"hot-swapped to generation {generation.number}")
        health = get(port, "/healthz")
        assert health["generation"] == generation.number

        # 6. The engine reports its own serving stats.
        stats = get(port, "/stats")
        print(
            f"served {stats['requests']} requests, cache hit rate "
            f"{stats['cache']['hit_rate']:.0%}, generation "
            f"{stats['generation']}"
        )

        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
