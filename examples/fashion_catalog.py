"""Full pipeline on a synthetic fashion catalog (the paper's A dataset).

Generates a catalog plus a 90-day query log, runs the Section 5.1
preprocessing (cleaning, result sets, weighting, merging), builds trees
with all five algorithms, and prints the score comparison that Figure 8a
plots, together with a peek at CTCR's tree and labeling hints. Run::

    python examples/fashion_catalog.py
"""

from repro import CCT, CTCR, ExistingTree, ICQ, ICS, Variant
from repro.catalog import load_dataset
from repro.core import annotate_matches, score_tree
from repro.evaluation import format_table, run_comparison
from repro.pipeline import preprocess


def main() -> None:
    dataset = load_dataset("A", seed=11)
    print(
        f"dataset A: {dataset.n_items} products, "
        f"{dataset.n_queries} raw queries"
    )

    variant = Variant.threshold_jaccard(0.8)
    instance, report = preprocess(dataset, variant)
    print(
        f"preprocessing: {report.raw_queries} raw -> "
        f"{report.after_cleaning} cleaned -> "
        f"{report.after_merging} merged candidate categories"
    )

    builders = [
        CTCR(),
        CCT(),
        ICQ(),
        ICS(dataset.titles),
        ExistingTree(dataset.existing_tree),
    ]
    rows = run_comparison(builders, instance, variant)
    print("\nthreshold Jaccard, delta = 0.8 (the taxonomists' setting):")
    print(
        format_table(
            ["algorithm", "score", "covered", "categories", "seconds"],
            [
                [r.name, r.normalized_score, r.covered_count,
                 r.num_categories, round(r.seconds, 2)]
                for r in rows
            ],
        )
    )

    # Show how CTCR's matched queries hint at category labels.
    tree = CTCR().build(instance, variant)
    annotate_matches(tree, instance, variant)
    print("\nsample CTCR categories with label hints:")
    shown = 0
    for cat in tree.categories():
        if cat.matched_sids and shown < 8:
            labels = [instance.get(sid).label for sid in cat.matched_sids]
            print(f"  {len(cat.items):4d} items <- {labels}")
            shown += 1
    total = score_tree(tree, instance, variant)
    print(f"\nCTCR normalized score: {total.normalized:.4f}")


if __name__ == "__main__":
    main()
