"""Quickstart: build category trees for the paper's running example.

This reproduces Figure 2: four candidate categories over nine shirts
("black shirt", "black adidas shirt", "nike shirt", "long sleeve
shirt"), solved under three OCT variants. Run with::

    python examples/quickstart.py
"""

from repro import CTCR, Variant, make_instance, score_tree
from repro.core import annotate_matches


def main() -> None:
    # The paper's Figure 2 input: items a-h are shirts, each set is the
    # result set of one search query, weighted by query frequency.
    instance = make_instance(
        [
            {"a", "b", "c", "d", "e"},  # "black shirt"
            {"a", "b"},                 # "black adidas shirt"
            {"c", "d", "e", "f"},       # "nike shirt"
            {"a", "b", "f", "g", "h"},  # "long sleeve shirt"
        ],
        weights=[2.0, 1.0, 1.0, 1.0],
        labels=[
            "black shirt",
            "black adidas shirt",
            "nike shirt",
            "long sleeve shirt",
        ],
    )

    builder = CTCR()
    for variant in (
        Variant.exact(),
        Variant.perfect_recall(0.8),
        Variant.threshold_jaccard(0.6),
    ):
        tree = builder.build(instance, variant)
        tree.validate(universe=instance.universe, bound=instance.bound)
        report = score_tree(tree, instance, variant)
        annotate_matches(tree, instance, variant)

        print(f"\n=== {variant.describe()} ===")
        print(f"normalized score: {report.normalized:.4f} "
              f"({report.covered_count}/{len(instance)} queries covered)")
        print(tree.to_text())
        for cat in tree.categories():
            if cat.matched_sids:
                matched = ", ".join(
                    repr(instance.get(sid).label) for sid in cat.matched_sids
                )
                print(f"  {cat.label or f'C{cat.cid}'} covers: {matched}")


if __name__ == "__main__":
    main()
