"""One-shot reproduction driver: every headline experiment, one run.

Runs compact versions of the paper's experiments back to back and
prints each table/figure's series with the paper's expectation. The
full benchmark suite (`pytest benchmarks/ --benchmark-only`) runs the
same experiments at larger scale with shape assertions; this script is
the quick interactive tour. Run::

    python examples/reproduce_paper.py
"""

from repro import CCT, CTCR, ExistingTree, ICQ, ICS, Variant
from repro.catalog import load_dataset, tree_categories_as_input_sets
from repro.evaluation import (
    contribution_table,
    print_experiment,
    run_comparison,
    threshold_sweep,
    train_test_evaluation,
    tree_cohesiveness,
)
from repro.pipeline import preprocess
from repro.utils.timer import Timer


def main() -> None:
    dataset = load_dataset("A", seed=42)
    builders_of = lambda ds: [
        CTCR(), CCT(), ICQ(), ICS(ds.titles), ExistingTree(ds.existing_tree)
    ]

    # Figures 8a-8c: score comparison per variant.
    for title, variant in [
        ("Figure 8a (threshold Jaccard 0.8)", Variant.threshold_jaccard(0.8)),
        ("Figure 8b (Perfect-Recall 0.6)", Variant.perfect_recall(0.6)),
        ("Figure 8c (Exact)", Variant.exact()),
    ]:
        instance, _ = preprocess(dataset, variant)
        rows = run_comparison(builders_of(dataset), instance, variant)
        print_experiment(
            title + ", dataset A",
            "CTCR first, CCT second, baselines behind",
            ["algorithm", "score", "covered"],
            [[r.name, r.normalized_score, r.covered_count] for r in rows],
        )

    # Figure 8d: train/test robustness. The split must run over the
    # *unmerged* queries (merging removes the near-duplicates that carry
    # held-out signal), on a log with realistic redundancy.
    from repro.pipeline import PreprocessConfig

    redundant = load_dataset("A", seed=42, synonym_fraction=0.6)
    variant = Variant.threshold_jaccard(0.7)
    instance, _ = preprocess(
        redundant, variant, PreprocessConfig(merge_queries=False)
    )
    results = train_test_evaluation(
        builders_of(redundant), instance, variant, repetitions=3
    )
    print_experiment(
        "Figure 8d (train/test, threshold Jaccard 0.7)",
        "held-out scores lower; CTCR still leads",
        ["algorithm", "test score", "train score"],
        [[r.name, r.mean_test_score, r.mean_train_score] for r in results],
    )

    # Figure 8f: scalability flavour (A vs B).
    rows = []
    for name in ("A", "B"):
        ds = load_dataset(name, seed=42)
        v = Variant.threshold_jaccard(0.8)
        inst, _ = preprocess(ds, v)
        with Timer() as t:
            CTCR().build(inst, v)
        rows.append([name, len(inst), ds.n_items, round(t.elapsed, 2)])
    print_experiment(
        "Figure 8f (scalability, A vs B)",
        "time grows with dataset size, offline-friendly",
        ["dataset", "sets", "items", "seconds"],
        rows,
    )

    # Figures 8g/8h: threshold sweeps.
    variant = Variant.threshold_jaccard(0.8)
    instance, _ = preprocess(dataset, variant)
    points = threshold_sweep(
        CTCR(), instance, variant, [0.5, 0.7, 0.9]
    )
    print_experiment(
        "Figure 8g (CTCR threshold sweep)",
        "score rises as delta drops",
        ["delta", "score", "covered"],
        [[p.delta, p.normalized_score, p.covered_count] for p in points],
    )

    # Table 1: source contributions.
    existing_sets = tree_categories_as_input_sets(
        dataset.existing_tree, start_sid=900_000
    )
    mixed = instance.with_extra_sets(existing_sets)
    rows = contribution_table(
        CTCR(), mixed, variant, query_shares=[0.9, 0.5, 0.1]
    )
    print_experiment(
        "Table 1 (source contributions)",
        "score shares track the weight shares",
        ["weight queries", "% score queries", "% score existing"],
        [
            [f"{r.query_weight_share:.0%}",
             f"{r.query_score_share:.1%}",
             f"{r.existing_score_share:.1%}"]
            for r in rows
        ],
    )

    # Section 5.4: cohesiveness parity.
    tree = CTCR().build(instance, variant)
    et_tree = ExistingTree(dataset.existing_tree).build(instance, variant)
    ours = tree_cohesiveness(tree, dataset.titles)
    theirs = tree_cohesiveness(et_tree, dataset.titles)
    print_experiment(
        "Section 5.4 (cohesiveness)",
        "CTCR categories as cohesive as the manual tree",
        ["tree", "uniform avg tf-idf similarity"],
        [["CTCR", ours.uniform_average], ["Existing", theirs.uniform_average]],
    )


if __name__ == "__main__":
    main()
