"""The taxonomist's human-in-the-loop workflow (paper Section 5.4).

Walks through the maintenance cycle the XYZ taxonomists evaluated:
build a tree with CTCR, suggest category labels from the matched
queries, detect misassigned items (the "Nike Blazer" scenario), rescue
uncovered queries by lowering their thresholds and re-running, and
classify newly arriving items into the finished tree. Run::

    python examples/maintenance_workflow.py
"""

from repro import CTCR, Variant
from repro.catalog import generate_products, load_dataset
from repro.core import score_tree
from repro.labeling import apply_label_suggestions, suggest_labels
from repro.maintenance import (
    classify_new_items,
    detect_misassigned_items,
    orphaned_items,
    rescue_uncovered,
    uncovered_sets,
)
from repro.pipeline import preprocess


def main() -> None:
    dataset = load_dataset("A", seed=17)
    variant = Variant.threshold_jaccard(0.8)
    instance, _ = preprocess(dataset, variant)

    builder = CTCR()
    tree = builder.build(instance, variant)
    report = score_tree(tree, instance, variant)
    print(f"initial build: score={report.normalized:.4f}, "
          f"uncovered={len(instance) - report.covered_count}")

    # 1. Label the categories from their matched queries.
    suggestions = suggest_labels(tree, instance, variant)
    applied = apply_label_suggestions(tree, suggestions)
    print(f"labeling: {len(suggestions)} suggestions, {applied} applied")
    for s in suggestions[:5]:
        print(f"  C{s.cid}: {s.suggestion!r} "
              f"(matches {list(s.matched_labels)[:2]}, "
              f"confidence {s.confidence:.2f})")

    # 2. Detect misassigned items within categories.
    outliers = detect_misassigned_items(tree, dataset.titles)
    print(f"\nmisassignment check: {len(outliers)} suspicious items")
    for o in outliers[:3]:
        print(f"  {o.item} in {o.category_label!r}: "
              f"sim {o.similarity_to_centroid:.2f} vs "
              f"category avg {o.category_average:.2f}")

    # 3. Rescue uncovered queries: lower their thresholds and re-run.
    missed = uncovered_sets(instance, report)
    orphans = orphaned_items(instance, report)
    print(f"\nuncovered queries: {len(missed)} "
          f"(heaviest: {[q.label for q in missed[:3]]})")
    print(f"orphaned items (only in uncovered queries): {len(orphans)}")
    rescue = rescue_uncovered(builder, instance, variant, factor=0.75)
    print(f"after rescue ({rescue.rounds_used} rounds): "
          f"uncovered {rescue.initially_uncovered} -> "
          f"{rescue.finally_uncovered}, "
          f"score={rescue.report.normalized:.4f}")

    # 4. Classify newly arriving items into the finished tree.
    new_products = generate_products(dataset.schema, 5, seed=999)
    new_titles = {f"NEW-{p.pid}": p.title for p in new_products}
    placements = classify_new_items(rescue.tree, dataset.titles, new_titles)
    print(f"\nnew-item classification ({len(placements)} placed):")
    for p in placements:
        print(f"  {new_titles[p.item]!r} -> {p.category_label!r} "
              f"(sim {p.similarity:.2f})")


if __name__ == "__main__":
    main()
