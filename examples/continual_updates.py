"""Conservative continual updates (paper Sections 2.3 and 5.4, Table 1).

To update a tree without radical change, the existing tree's categories
are added to the input as weighted candidate sets. Modulating the weight
ratio between query result sets and existing categories translates into
roughly the same ratio of score contributions — the control knob the
taxonomists in the user study tuned in hours instead of days. Run::

    python examples/continual_updates.py
"""

from repro import CTCR, Variant
from repro.catalog import load_dataset, tree_categories_as_input_sets
from repro.evaluation import contribution_table, format_table
from repro.pipeline import preprocess


def main() -> None:
    dataset = load_dataset("A", seed=5)
    variant = Variant.threshold_jaccard(0.8)
    query_instance, _ = preprocess(dataset, variant)

    existing_sets = tree_categories_as_input_sets(
        dataset.existing_tree, start_sid=100_000
    )
    mixed = query_instance.with_extra_sets(existing_sets)
    print(
        f"input: {len(query_instance)} query result sets + "
        f"{len(existing_sets)} existing-tree categories"
    )

    rows = contribution_table(
        CTCR(), mixed, variant, query_shares=[0.9, 0.7, 0.5, 0.3, 0.1]
    )
    print("\nTable 1 — contribution of each source to the CTCR score:")
    print(
        format_table(
            [
                "queries/existing weight",
                "% score from queries",
                "% score from existing",
                "normalized score",
            ],
            [
                [
                    f"{row.query_weight_share:.0%}/{1 - row.query_weight_share:.0%}",
                    f"{row.query_score_share:.2%}",
                    f"{row.existing_score_share:.2%}",
                    row.normalized_score,
                ]
                for row in rows
            ],
        )
    )
    print(
        "\nReading: raising the weight share of one source raises its "
        "share of the final score roughly one-for-one, so taxonomists "
        "can dial how conservative the update is."
    )


if __name__ == "__main__":
    main()
