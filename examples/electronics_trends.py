"""Trend-chasing on an electronics catalog (the paper's Kobe scenario).

The paper reports that a demand spike (memorabilia after February 2020)
was surfaced by CTCR as a dedicated subtree once the input weights were
skewed towards the recent period. This example injects a late-window
trend query into the log and shows that the trend's category appears
when weighting by the last two weeks, but not under full-window
weighting. Run::

    python examples/electronics_trends.py
"""

from repro import CTCR, Variant
from repro.catalog import load_dataset
from repro.core import annotate_matches, score_tree
from repro.pipeline import PreprocessConfig, preprocess

TREND = "sony camera"


def covered_labels(tree, instance) -> set[str]:
    labels = set()
    for cat in tree.categories():
        for sid in cat.matched_sids:
            labels.add(instance.get(sid).label)
    return labels


def main() -> None:
    dataset = load_dataset("E", seed=23, trend_queries=[TREND])
    variant = Variant.threshold_jaccard(0.8)

    # Full-window weighting: the trend query averages out to a low weight.
    full_instance, _ = preprocess(dataset, variant)
    # Recent-window weighting: the last 14 days dominate.
    recent_instance, _ = preprocess(
        dataset, variant, PreprocessConfig(recent_window=14)
    )

    def weight_of(instance, label):
        matches = [q.weight for q in instance if q.label == label]
        return matches[0] if matches else 0.0

    print(f"trend query: {TREND!r}")
    print(f"  weight under full-window averaging:  "
          f"{weight_of(full_instance, TREND):8.2f}")
    print(f"  weight under recent-window (14d):    "
          f"{weight_of(recent_instance, TREND):8.2f}")

    builder = CTCR()
    for name, instance in (
        ("full window", full_instance),
        ("recent window", recent_instance),
    ):
        tree = builder.build(instance, variant)
        annotate_matches(tree, instance, variant)
        report = score_tree(tree, instance, variant)
        has_trend = TREND in covered_labels(tree, instance)
        print(
            f"\n[{name}] score={report.normalized:.4f}, "
            f"covered={report.covered_count}/{len(instance)}"
        )
        print(
            f"  dedicated '{TREND}' category: "
            f"{'YES' if has_trend else 'no'}"
        )


if __name__ == "__main__":
    main()
