"""Extreme-scale synthetic OCT catalogs (ROADMAP: extreme-scale tier).

The named datasets in :mod:`repro.catalog` mirror the paper's A–E at
repro-friendly sizes (hundreds of sets, tens of thousands of items).
This module generates catalogs at the paper's *"millions of users"*
framing — millions of items, up to ~100k candidate categories — with the
statistical structure the serving stack actually has to survive:

* **a planted taxonomy** whose fan-in follows a power law (preferential
  attachment by parent copying): a few hub categories with hundreds of
  children, a long tail of narrow ones;
* **Zipfian query weights** over the candidate sets (head queries carry
  most of the workload mass) and Zipfian category sizes (leaf item
  quotas), so both the demand and the catalog are realistically skewed;
* **controllable overlap and conflict density**: a tunable fraction of
  candidate sets borrow items from a sibling branch (partial-overlap
  2-conflicts) or span two unrelated branches outright (the conflicts
  the MIS stage must arbitrate).

Items are integers and every leaf owns a **contiguous id range** (leaf
quotas are assigned in planted pre-order), so any planted category's
item set is itself a contiguous interval. That single invariant is what
makes the generator *streaming*: sampling a category's items, walking
candidate sets, or fingerprinting the whole dataset needs the O(nodes)
planted arrays and nothing per-item — a billion-item catalog costs the
same resident memory as a thousand-item one until a caller explicitly
materializes a tree or an instance.

Determinism is absolute: every draw is a stateless splitmix64 hash of
``(seed, record coordinates)`` (see :mod:`repro.scale.rng`), so the same
:class:`ScaleSpec` yields byte-identical datasets across processes,
platforms with IEEE-754 doubles, and Python 3.10–3.12 — pinned by the
golden fingerprint in ``tests/test_scale.py``.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.core.input_sets import InputSet, OCTInstance
from repro.core.tree import CategoryTree
from repro.scale.rng import h64, randint, sample_range, u01

# Tags keep the hash streams of unrelated record kinds disjoint.
_T_PARENT, _T_COPY, _T_RANK = 1, 2, 3
_T_ANCHOR, _T_LIFT, _T_SIZE = 10, 11, 12
_T_OVERLAP, _T_CONFLICT, _T_ITEMS = 13, 14, 15
_T_SIBLING, _T_FAR = 16, 17


@dataclass(frozen=True)
class ScaleSpec:
    """Shape knobs for one synthetic extreme-scale catalog.

    ``n_nodes`` defaults to ``max(16, n_sets // 4)`` planted taxonomy
    nodes. ``zipf_s`` skews candidate-set weights by sid rank;
    ``size_zipf_s`` skews leaf item quotas. ``fanin_alpha`` is the
    parent-copying probability of the preferential-attachment step
    (higher → heavier-tailed fan-in). ``overlap`` is the fraction of
    sets that borrow items from a sibling branch; ``conflict_density``
    the fraction that span two unrelated branches.
    """

    n_items: int
    n_sets: int
    n_nodes: int | None = None
    seed: int = 0
    zipf_s: float = 1.05
    size_zipf_s: float = 1.1
    fanin_alpha: float = 0.6
    overlap: float = 0.15
    conflict_density: float = 0.05
    min_set_size: int = 4
    max_set_size: int = 64
    base_weight: float = 1000.0

    def __post_init__(self) -> None:
        if self.n_items < 1 or self.n_sets < 1:
            raise ValueError("n_items and n_sets must be positive")
        resolved = self.resolved_nodes
        if resolved < 2:
            raise ValueError("need at least 2 planted nodes")
        if self.n_items < resolved:
            raise ValueError(
                f"n_items={self.n_items} cannot cover "
                f"{resolved} planted nodes (every leaf owns >= 1 item)"
            )
        if not 1 <= self.min_set_size <= self.max_set_size:
            raise ValueError("need 1 <= min_set_size <= max_set_size")
        for name in ("overlap", "conflict_density"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= self.fanin_alpha <= 1.0:
            raise ValueError("fanin_alpha must be in [0, 1]")

    @property
    def resolved_nodes(self) -> int:
        return self.n_nodes if self.n_nodes is not None else max(
            16, self.n_sets // 4
        )

    def canonical(self) -> str:
        """The fingerprint's stable rendering of every knob."""
        return (
            f"scale-v1|items={self.n_items}|sets={self.n_sets}"
            f"|nodes={self.resolved_nodes}|seed={self.seed}"
            f"|zipf={self.zipf_s!r}|size_zipf={self.size_zipf_s!r}"
            f"|fanin={self.fanin_alpha!r}|overlap={self.overlap!r}"
            f"|conflict={self.conflict_density!r}"
            f"|set_size=[{self.min_set_size},{self.max_set_size}]"
            f"|base_weight={self.base_weight!r}"
        )


@dataclass
class PlantedTaxonomy:
    """The O(nodes) skeleton every streaming operation reads from.

    Nodes are numbered in generation order (``parent[v] < v``; node 0 is
    the root). ``lo``/``hi`` give each node's contiguous item interval
    — its planted item set is exactly ``range(lo[v], hi[v])``.
    """

    parent: list[int]
    children: list[list[int]]
    leaves: list[int]          # pre-order over the planted tree
    leaf_quota: list[int]      # items owned per leaf, aligned with leaves
    leaf_start: list[int]      # cumulative starts, aligned with leaves
    lo: list[int] = field(default_factory=list)
    hi: list[int] = field(default_factory=list)
    depth: list[int] = field(default_factory=list)

    @property
    def n_nodes(self) -> int:
        return len(self.parent)

    def leaf_of_item(self, item: int) -> int:
        """The planted leaf owning one item id (binary search)."""
        idx = bisect_right(self.leaf_start, item) - 1
        return self.leaves[idx]

    def fanout_histogram(self) -> dict[int, int]:
        """``{fan_out: node count}`` — the power-law tail at a glance."""
        hist: dict[int, int] = {}
        for kids in self.children:
            hist[len(kids)] = hist.get(len(kids), 0) + 1
        return hist


def _plant_taxonomy(spec: ScaleSpec) -> PlantedTaxonomy:
    """Grow the planted tree and assign leaf item quotas.

    Parent selection is preferential attachment by copying: with
    probability ``fanin_alpha`` a new node adopts the parent of a
    random earlier non-root node (so a parent's chance of gaining a
    child is proportional to its current fan-out — the classic
    power-law mechanism); otherwise the parent is uniform over all
    earlier nodes.
    """
    seed = spec.seed
    n = spec.resolved_nodes
    parent = [-1] * n
    children: list[list[int]] = [[] for _ in range(n)]
    for v in range(1, n):
        if v >= 2 and u01(seed, _T_PARENT, v) < spec.fanin_alpha:
            donor = randint(seed, 1, v, _T_COPY, v)
            p = parent[donor]
        else:
            p = randint(seed, 0, v, _T_PARENT, v)
        parent[v] = p
        children[p].append(v)

    depth = [0] * n
    for v in range(1, n):
        depth[v] = depth[parent[v]] + 1

    # Leaves in planted pre-order, so sibling subtrees own contiguous
    # item ranges and every internal node's range is an interval too.
    leaves: list[int] = []
    stack = [0]
    while stack:
        v = stack.pop()
        if children[v]:
            stack.extend(reversed(children[v]))
        else:
            leaves.append(v)

    # Zipfian quotas by a hash-permuted leaf ranking: position in the
    # pre-order does not dictate size, and largest-remainder rounding
    # makes the quotas sum to exactly n_items with every leaf >= 1.
    n_leaves = len(leaves)
    ranked = sorted(
        range(n_leaves), key=lambda i: (h64(seed, _T_RANK, leaves[i]), i)
    )
    raw = [0.0] * n_leaves
    for rank, idx in enumerate(ranked):
        raw[idx] = (rank + 1) ** -spec.size_zipf_s
    total_raw = sum(raw)
    spare = spec.n_items - n_leaves
    exact = [spare * r / total_raw for r in raw]
    quota = [1 + int(e) for e in exact]
    short = spec.n_items - sum(quota)
    remainders = sorted(
        range(n_leaves), key=lambda i: (-(exact[i] - int(exact[i])), i)
    )
    for i in remainders[:short]:
        quota[i] += 1

    leaf_start = [0] * n_leaves
    acc = 0
    for i, q in enumerate(quota):
        leaf_start[i] = acc
        acc += q
    assert acc == spec.n_items

    lo = [spec.n_items] * n
    hi = [0] * n
    for i, leaf in enumerate(leaves):
        lo[leaf] = leaf_start[i]
        hi[leaf] = leaf_start[i] + quota[i]
    for v in range(n - 1, 0, -1):
        p = parent[v]
        lo[p] = min(lo[p], lo[v])
        hi[p] = max(hi[p], hi[v])

    return PlantedTaxonomy(
        parent=parent,
        children=children,
        leaves=leaves,
        leaf_quota=quota,
        leaf_start=leaf_start,
        lo=lo,
        hi=hi,
        depth=depth,
    )


class ExtremeCatalog:
    """A streaming view over one :class:`ScaleSpec`'s synthetic dataset.

    Construction builds only the planted taxonomy (O(nodes) memory).
    :meth:`iter_input_sets` streams the candidate categories one
    :class:`~repro.core.input_sets.InputSet` at a time;
    :meth:`instance` and :meth:`planted_tree` are the explicit
    materialization points — everything else stays lazy.
    """

    def __init__(self, spec: ScaleSpec) -> None:
        self.spec = spec
        self.taxonomy = _plant_taxonomy(spec)

    # -- streaming candidate sets ------------------------------------------

    def _anchor_node(self, k: int) -> int:
        """The planted node a candidate set is built around.

        The anchor leaf is drawn item-proportionally (big categories
        attract more queries), then lifted 0–2 levels so some sets
        target mid-tree categories.
        """
        tax = self.taxonomy
        item = randint(self.spec.seed, 0, self.spec.n_items, _T_ANCHOR, k)
        node = tax.leaf_of_item(item)
        lift_roll = u01(self.spec.seed, _T_LIFT, k)
        lifts = 0 if lift_roll < 0.6 else (1 if lift_roll < 0.85 else 2)
        for _ in range(lifts):
            if tax.parent[node] <= 0:
                break
            node = tax.parent[node]
        return node

    def _set_size(self, k: int, span: int) -> int:
        spec = self.spec
        # Sets cover a random fraction of their anchor's interval
        # (squared-uniform, so most queries are narrow) and are capped
        # at max_set_size — small categories get well-covered sets with
        # high Jaccard, hub categories get partial cover.
        frac = 0.1 + 0.8 * u01(spec.seed, _T_SIZE, k) ** 2
        size = max(spec.min_set_size, int(frac * span))
        return max(1, min(size, span, spec.max_set_size))

    def _sibling_of(self, node: int, k: int) -> int | None:
        tax = self.taxonomy
        p = tax.parent[node]
        if p < 0:
            return None
        siblings = [c for c in tax.children[p] if c != node]
        if not siblings:
            return None
        return siblings[
            randint(self.spec.seed, 0, len(siblings), _T_SIBLING, k)
        ]

    def _far_node(self, node: int, k: int) -> int | None:
        """A leaf outside ``node``'s item interval (a different branch)."""
        tax = self.taxonomy
        lo, hi = tax.lo[node], tax.hi[node]
        outside = self.spec.n_items - (hi - lo)
        if outside <= 0:
            return None
        pick = randint(self.spec.seed, 0, outside, _T_FAR, k)
        item = pick if pick < lo else pick + (hi - lo)
        return tax.leaf_of_item(item)

    def candidate_items(self, k: int) -> tuple[list[int], int]:
        """The item list of candidate set ``k`` plus its anchor node."""
        spec, tax = self.spec, self.taxonomy
        node = self._anchor_node(k)
        lo, hi = tax.lo[node], tax.hi[node]
        size = self._set_size(k, hi - lo)
        items = sample_range(spec.seed, lo, hi, size, _T_ITEMS, k)

        if u01(spec.seed, _T_OVERLAP, k) < spec.overlap:
            sibling = self._sibling_of(node, k)
            if sibling is not None:
                s_lo, s_hi = tax.lo[sibling], tax.hi[sibling]
                borrow = max(1, len(items) // 4)
                borrowed = sample_range(
                    spec.seed, s_lo, s_hi, min(borrow, s_hi - s_lo),
                    _T_OVERLAP, k,
                )
                items = sorted(set(items[: len(items) - len(borrowed)])
                               | set(borrowed))

        if u01(spec.seed, _T_CONFLICT, k) < spec.conflict_density:
            far = self._far_node(node, k)
            if far is not None:
                f_lo, f_hi = tax.lo[far], tax.hi[far]
                extra = max(1, len(items) // 2)
                items = sorted(
                    set(items)
                    | set(sample_range(
                        spec.seed, f_lo, f_hi, min(extra, f_hi - f_lo),
                        _T_CONFLICT, k,
                    ))
                )
        return items, node

    def weight_of(self, k: int) -> float:
        """Zipfian workload weight of candidate set ``k`` (head-heavy)."""
        return self.spec.base_weight * (k + 1) ** -self.spec.zipf_s

    def iter_input_sets(self) -> Iterator[InputSet]:
        """Stream the candidate categories in sid order, O(1) state."""
        for k in range(self.spec.n_sets):
            items, node = self.candidate_items(k)
            yield InputSet(
                sid=k,
                items=frozenset(items),
                weight=self.weight_of(k),
                label=f"syn-{k}-n{node}",
                source="query",
            )

    # -- fingerprinting -----------------------------------------------------

    def fingerprint(self) -> str:
        """A streaming sha256 over the full dataset content.

        Covers the spec knobs, the planted structure (parents + leaf
        quotas), and every candidate set's ``sid|weight|items`` record
        — byte-identical across processes and Python versions for the
        same spec (pinned by the golden test).
        """
        digest = hashlib.sha256()
        digest.update(self.spec.canonical().encode())
        tax = self.taxonomy
        digest.update((",".join(map(str, tax.parent)) + ";").encode())
        digest.update((",".join(map(str, tax.leaf_quota)) + ";").encode())
        for k in range(self.spec.n_sets):
            items, _node = self.candidate_items(k)
            digest.update(
                f"{k}|{self.weight_of(k)!r}|{','.join(map(str, items))};"
                .encode()
            )
        return digest.hexdigest()

    # -- materialization ----------------------------------------------------

    def instance(self) -> OCTInstance:
        """Materialize the candidate sets as one OCT instance.

        The universe is ``range(n_items)`` — memory scales with the
        dataset, so at extreme sizes prefer the streaming APIs and
        materialize only inside a measured benchmark point.
        """
        return OCTInstance(
            list(self.iter_input_sets()),
            universe=range(self.spec.n_items),
        )

    def planted_tree(self) -> CategoryTree:
        """Materialize the planted taxonomy as a CategoryTree.

        Every node's item set is its contiguous interval, so assembly
        is a pre-order walk with ``set(range(lo, hi))`` per node — no
        up-propagation passes. This is the scalable "builder" of the
        extreme benchmark tier: the paper's heuristics are quadratic in
        the candidate sets, while the planted tree is the ground truth
        those candidates were sampled from.
        """
        tax = self.taxonomy
        tree = CategoryTree(root_label="root")
        tree.root.items = set(range(tax.lo[0], tax.hi[0]))
        by_node = {0: tree.root}
        stack = [0]
        while stack:
            v = stack.pop()
            for child in reversed(tax.children[v]):
                cat = tree.add_category(parent=by_node[v], label=f"n{child}")
                cat.items = set(range(tax.lo[child], tax.hi[child]))
                by_node[child] = cat
                stack.append(child)
        return tree

    def stats(self) -> dict:
        """Small summary dict for logs and the benchmark JSON."""
        tax = self.taxonomy
        hist = tax.fanout_histogram()
        return {
            "n_items": self.spec.n_items,
            "n_sets": self.spec.n_sets,
            "n_nodes": tax.n_nodes,
            "n_leaves": len(tax.leaves),
            "max_depth": max(tax.depth),
            "max_fanout": max(hist),
            "seed": self.spec.seed,
        }


def scaled_spec(
    n_items: int, n_sets: int, seed: int = 0, **overrides
) -> ScaleSpec:
    """Convenience constructor used by the benchmark scale axis."""
    return replace(
        ScaleSpec(n_items=n_items, n_sets=n_sets, seed=seed), **overrides
    )
