"""Extreme-scale synthetic catalogs (streaming, seeded, cross-version).

See :mod:`repro.scale.generator` for the planted-taxonomy design and
:mod:`repro.scale.rng` for the stateless hash randomness that makes
fingerprints byte-identical across processes and Python versions.
"""

from repro.scale.generator import (
    ExtremeCatalog,
    PlantedTaxonomy,
    ScaleSpec,
    scaled_spec,
)
from repro.scale.rng import h64, mix64, randint, sample_range, u01, weighted_index

__all__ = [
    "ExtremeCatalog",
    "PlantedTaxonomy",
    "ScaleSpec",
    "h64",
    "mix64",
    "randint",
    "sample_range",
    "scaled_spec",
    "u01",
    "weighted_index",
]
