"""Counter-based deterministic randomness for the scale generator.

:mod:`random.Random` is deterministic for a fixed seed, but its draw
methods consume generator state *sequentially*: reordering two draws, or
adding one in the middle, silently perturbs everything after it — and a
streaming generator that must be resumable, sliceable, and byte-identical
across processes and Python 3.10–3.12 cannot afford either hazard.

This module instead derives every draw from a **stateless hash**: a
splitmix64 finalizer over ``(seed, tag, counter...)``. Each record of the
synthetic dataset is a pure function of its coordinates, so

* generation streams in any order (or in parallel) with identical output,
* draws for one record never perturb another record's draws, and
* the output depends only on integer arithmetic — no libc, no hashing
  salt, no :mod:`random` internals — so fingerprints stay byte-identical
  across interpreter versions.
"""

from __future__ import annotations

from typing import Sequence

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def mix64(x: int) -> int:
    """The splitmix64 finalizer: a 64-bit avalanche of one integer.

    >>> mix64(0) == mix64(0)
    True
    >>> mix64(1) != mix64(2)
    True
    """
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def h64(seed: int, *parts: int) -> int:
    """A 64-bit hash of a seed plus integer coordinates.

    Sequential splitmix64 rounds, one per coordinate, so ``h64(s, a, b)``
    and ``h64(s, b, a)`` differ and appending a coordinate never
    collides with the shorter tuple.
    """
    x = mix64(seed)
    for part in parts:
        x = mix64(x + _GOLDEN + (part & _MASK64))
    return x


def u01(seed: int, *parts: int) -> float:
    """A uniform float in [0, 1) from hash coordinates (53-bit mantissa)."""
    return (h64(seed, *parts) >> 11) * (1.0 / (1 << 53))


def randint(seed: int, lo: int, hi: int, *parts: int) -> int:
    """A uniform integer in ``[lo, hi)`` from hash coordinates.

    Uses multiply-shift reduction on the hash's top bits; the modulo
    bias is below 2**-40 for any span this library draws from.
    """
    if hi <= lo:
        raise ValueError(f"empty range [{lo}, {hi})")
    span = hi - lo
    return lo + (h64(seed, *parts) * span >> 64)


def weighted_index(
    seed: int, cumulative: Sequence[float], *parts: int
) -> int:
    """Sample an index by a cumulative-weight table (binary search)."""
    total = cumulative[-1]
    target = u01(seed, *parts) * total
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) >> 1
        if cumulative[mid] <= target:
            lo = mid + 1
        else:
            hi = mid
    return lo


def sample_range(
    seed: int, lo: int, hi: int, k: int, *parts: int
) -> list[int]:
    """``k`` distinct integers from ``[lo, hi)``, ascending.

    Draws with a per-attempt counter and rejects duplicates; when ``k``
    is most of the range it falls back to a hash-keyed selection over
    the whole range so termination never depends on rejection luck.
    """
    span = hi - lo
    if k >= span:
        return list(range(lo, hi))
    if k * 3 >= span:
        # Dense request: rank the whole range by per-element hash and
        # keep the k smallest — one pass, no rejection loop.
        ranked = sorted(
            range(lo, hi), key=lambda v: (h64(seed, v, *parts), v)
        )
        return sorted(ranked[:k])
    chosen: set[int] = set()
    attempt = 0
    while len(chosen) < k:
        chosen.add(lo + (h64(seed, attempt, *parts) * span >> 64))
        attempt += 1
    return sorted(chosen)
