"""CTCR — the Category Tree Conflict Resolver (paper Section 3).

The algorithm identifies pairs (and, for thresholds below 1, triplets)
of input sets that no tree can cover simultaneously, extracts a
maximum-weight conflict-free subfamily via an MIS solver, and builds a
tree covering it: one category per selected set, parents chosen along
must-cover-together chains, followed by item assignment, intermediate
categories, and condensing.

For the Exact variant the machinery collapses to the conflict *graph*
(2-conflicts only) with the exact MWIS solver — the configuration under
which the paper reports provably optimal trees — and for Perfect-Recall
the duplicate-assignment stage is unnecessary (selected sets never share
items across branches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.assignment import assign_duplicates, assign_safe_items
from repro.algorithms.base import BuildContext, TreeBuilder
from repro.algorithms.condense import (
    add_misc_category,
    remove_noncovered_items,
    remove_noncovering_categories,
)
from repro.algorithms.intermediate import add_intermediate_categories
from repro.conflicts.hypergraph import (
    build_conflict_graph,
    build_conflict_hypergraph,
    conflict_statistics,
)
from repro.conflicts.ranking import Ranking, rank_sets
from repro.conflicts.two_conflicts import PairwiseAnalysis, compute_pairwise
from repro.core import bitset
from repro.core.bitset import BitsetUniverse
from repro.core.input_sets import InputSet, OCTInstance
from repro.core.tree import Category, CategoryTree
from repro.core.variants import SimilarityKind, Variant
from repro.mis.cache import MISComponentCache, get_mis_cache
from repro.mis.hypergraph_mis import WeightedHypergraph
from repro.mis.solver import MISConfig, solve_conflicts
from repro.observability import get_tracer


@dataclass(frozen=True)
class BuildReuse:
    """Precomputed artifacts injected into :meth:`CTCR.build`.

    The incremental pipeline (:mod:`repro.incremental`) maintains the
    pairwise analysis and 3-conflict set across catalog deltas and
    hands them to CTCR here, so the build skips straight to the MIS
    stage. ``mis_cache`` overrides the process-global component cache
    with a snapshot-scoped, payload-keeping one (cross-*build* reuse).

    Correctness contract: ``analysis`` must equal what
    ``compute_pairwise(instance, variant)`` would return and ``triples``
    what ``compute_three_conflicts(analysis)`` would return — the
    differential churn suite pins exactly that.
    """

    analysis: PairwiseAnalysis | None = None
    triples: set | None = None
    mis_cache: MISComponentCache | None = None


@dataclass(frozen=True)
class CTCRConfig:
    """Tuning and ablation switches for CTCR.

    ``use_bitset`` selects the engine for batched set intersections
    (2-conflict classification, cover scoring): ``True`` forces the
    packed-bitset kernel of :mod:`repro.core.bitset`, ``False`` the
    set-based paths, ``None`` (default) auto-selects by instance size.
    Both engines build identical trees.
    """

    mis: MISConfig = field(default_factory=MISConfig)
    n_jobs: int = 1
    use_three_conflicts: bool = True
    add_intermediate: bool = True
    condense: bool = True
    use_bitset: bool | None = None


@dataclass
class CTCRDiagnostics:
    """Observability into one CTCR run (sizes of each stage).

    ``c2_weighted_avg`` is the paper's C2(Q, W): the weighted average
    number of 2-conflicts per input set, which bounds CTCR's Exact
    performance ratio (Theorem 3.1) and measures instance sparsity.
    """

    num_sets: int = 0
    num_two_conflicts: int = 0
    num_three_conflicts: int = 0
    c2_weighted_avg: float = 0.0
    selected: int = 0
    selected_weight: float = 0.0
    intermediates_added: int = 0
    mis_cache_hits: int = 0
    mis_cache_misses: int = 0

    _GAUGE_PREFIX = "ctcr.diag."

    def record(self, tracer) -> None:
        """Publish every field as a ``ctcr.diag.*`` gauge on a tracer."""
        for name, value in self.as_dict().items():
            tracer.gauge(self._GAUGE_PREFIX + name, value)

    def as_dict(self) -> dict[str, float]:
        return {
            "num_sets": self.num_sets,
            "num_two_conflicts": self.num_two_conflicts,
            "num_three_conflicts": self.num_three_conflicts,
            "c2_weighted_avg": self.c2_weighted_avg,
            "selected": self.selected,
            "selected_weight": self.selected_weight,
            "intermediates_added": self.intermediates_added,
            "mis_cache_hits": self.mis_cache_hits,
            "mis_cache_misses": self.mis_cache_misses,
        }

    @classmethod
    def from_manifest(cls, manifest) -> "CTCRDiagnostics":
        """Reconstruct the diagnostics view from a :class:`RunManifest`.

        The gauges recorded by :meth:`record` round-trip through the
        manifest JSON, so a saved run can be inspected with the same
        object the in-process API returns.
        """
        gauges = manifest.gauges
        fields = {
            name: gauges.get(cls._GAUGE_PREFIX + name, 0.0)
            for name in cls().as_dict()
        }
        for int_field in (
            "num_sets", "num_two_conflicts", "num_three_conflicts",
            "selected", "intermediates_added",
            "mis_cache_hits", "mis_cache_misses",
        ):
            fields[int_field] = int(fields[int_field])
        return cls(**fields)


class CTCR(TreeBuilder):
    """MIS-based category tree construction (Algorithm 1)."""

    name = "CTCR"

    def __init__(self, config: CTCRConfig | None = None) -> None:
        self.config = config or CTCRConfig()
        self.last_diagnostics = CTCRDiagnostics()

    # -- pipeline ----------------------------------------------------------

    def build(
        self,
        instance: OCTInstance,
        variant: Variant,
        *,
        reuse: BuildReuse | None = None,
    ) -> CategoryTree:
        diag = CTCRDiagnostics(num_sets=len(instance))
        self.last_diagnostics = diag
        tracer = get_tracer()

        with tracer.span("ctcr.build"):
            universe = None
            if bitset.should_use(
                len(instance), len(instance.universe), self.config.use_bitset
            ):
                # One packed universe serves both the pairwise stage and the
                # per-category cover scores of the assignment stage.
                with tracer.span("ctcr.pack"):
                    universe = BitsetUniverse.from_instance(instance)
            if reuse is not None and reuse.analysis is not None:
                # Incrementally-maintained conflicts: skip straight past
                # the rank + pairwise stages (repro.incremental owns the
                # guarantee that this equals a from-scratch analysis).
                analysis = reuse.analysis
                ranking = analysis.ranking
            else:
                with tracer.span("ctcr.rank"):
                    ranking = rank_sets(instance)
                with tracer.span("ctcr.two_conflicts"):
                    analysis = compute_pairwise(
                        instance,
                        variant,
                        ranking,
                        n_jobs=self.config.n_jobs,
                        use_bitset=self.config.use_bitset,
                        universe=universe,
                    )
            with tracer.span("ctcr.conflict_structure"):
                conflict_structure = self._conflict_structure(
                    instance,
                    variant,
                    analysis,
                    diag,
                    triples=reuse.triples if reuse is not None else None,
                )
                hypergraph = WeightedHypergraph(
                    vertices=conflict_structure.vertices,
                    weights=conflict_structure.weights,
                    edges=[frozenset(e) for e in conflict_structure.pairs]
                    + [frozenset(e) for e in conflict_structure.triples],
                )
            with tracer.span("ctcr.mis"):
                # Cache deltas are read off the cache object directly so
                # the diagnostics view works even under a NullTracer.
                if reuse is not None and reuse.mis_cache is not None:
                    cache = reuse.mis_cache
                else:
                    cache = (
                        get_mis_cache() if self.config.mis.use_cache else None
                    )
                hits0, misses0 = (
                    (cache.hits, cache.misses) if cache else (0, 0)
                )
                selected_sids = solve_conflicts(
                    hypergraph, self.config.mis, cache=cache
                )
                if cache is not None:
                    diag.mis_cache_hits = cache.hits - hits0
                    diag.mis_cache_misses = cache.misses - misses0
            selected = [
                q for q in ranking.ordered if q.sid in selected_sids
            ]  # rank order: parents appear before children
            diag.selected = len(selected)
            diag.selected_weight = sum(q.weight for q in selected)

            tree = CategoryTree()
            ctx = BuildContext(
                tree=tree, instance=instance, variant=variant, bitset=universe
            )
            with tracer.span("ctcr.skeleton"):
                self._build_skeleton(ctx, selected, ranking, analysis)
            with tracer.span("ctcr.assign"):
                duplicates = assign_safe_items(ctx, selected)

                if not variant.is_exact:
                    # Perfect-Recall selections never produce duplicates
                    # (shared items force must-together pairs onto one
                    # branch), so the duplicate stage is a no-op there, as
                    # the paper notes.
                    if duplicates:
                        assign_duplicates(ctx, selected, duplicates)
            if not variant.is_exact:
                if (
                    variant.kind is not SimilarityKind.PERFECT_RECALL
                    and self.config.add_intermediate
                ):
                    with tracer.span("ctcr.intermediate"):
                        diag.intermediates_added = add_intermediate_categories(
                            ctx
                        )
            if not variant.is_exact and self.config.condense:
                with tracer.span("ctcr.condense"):
                    remove_noncovered_items(tree, instance, variant)
                    remove_noncovering_categories(tree, instance, variant)
            add_misc_category(tree, instance)
            diag.record(tracer)
        return tree

    # -- stages ------------------------------------------------------------

    def _conflict_structure(
        self,
        instance: OCTInstance,
        variant: Variant,
        analysis: PairwiseAnalysis,
        diag: CTCRDiagnostics,
        triples=None,
    ):
        if variant.is_exact or not self.config.use_three_conflicts:
            graph = build_conflict_graph(instance, analysis)
        else:
            graph = build_conflict_hypergraph(
                instance, analysis, triples=triples
            )
        diag.num_two_conflicts = len(graph.pairs)
        diag.num_three_conflicts = len(graph.triples)
        diag.c2_weighted_avg = conflict_statistics(graph)["c2_weighted_avg"]
        return graph

    def _build_skeleton(
        self,
        ctx: BuildContext,
        selected: list[InputSet],
        ranking: Ranking,
        analysis: PairwiseAnalysis,
    ) -> None:
        """Create ``C(q)`` per selected set and wire parents (lines 11-15).

        The parent of ``C(q)`` is the category of the highest-ranked set
        of rank below ``rank(q)`` that must be covered on the same branch
        as ``q`` — for the Exact variant this is exactly the smallest
        selected superset.
        """
        by_rank = sorted(selected, key=lambda q: ranking.rank_of[q.sid])
        placed: list[InputSet] = []
        for q in by_rank:
            parent_cat: Category | None = None
            best_rank = -1
            for other in placed:
                if analysis.is_must_together(q.sid, other.sid):
                    other_rank = ranking.rank_of[other.sid]
                    if other_rank < ranking.rank_of[q.sid] and other_rank > best_rank:
                        best_rank = other_rank
                        parent_cat = ctx.designated[other.sid]
            cat = ctx.tree.add_category(
                items=(), parent=parent_cat, label=q.label or f"q{q.sid}"
            )
            cat.matched_sids = [q.sid]
            ctx.designated[q.sid] = cat
            ctx.target_sets[cat.cid] = q.items
            placed.append(q)
