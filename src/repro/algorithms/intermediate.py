"""Intermediate categories (Algorithm 1, lines 21-23).

When recall errors are allowed, intersecting sets may end up covered on
separate branches with their shared items partitioned. For every
category with more than two children, a new child is repeatedly inserted
as the parent of the two child categories whose corresponding sets share
the largest fraction of the smaller set, recombining the partitioned
items; the new category corresponds to the union of its children's sets
and can itself be merged further in later iterations.

Pair intersections are seeded once through an item index and maintained
incrementally across merges, so the stage costs roughly one pass over
the children's sets rather than an all-pairs rescan per insertion.
"""

from __future__ import annotations

from repro.algorithms.base import BuildContext
from repro.core.tree import Category


def _recombine_children(ctx: BuildContext, parent: Category) -> int:
    """Insert intermediate parents under one category; returns count."""
    child_sets: dict[int, frozenset] = {}
    cats: dict[int, Category] = {}
    for child in parent.children:
        target = ctx.target_sets.get(child.cid)
        if target:
            child_sets[child.cid] = target
            cats[child.cid] = child

    # Seed pairwise intersection counts through an item index.
    index: dict = {}
    for cid, items in child_sets.items():
        for item in items:
            index.setdefault(item, []).append(cid)
    inter: dict[tuple[int, int], int] = {}
    for cids in index.values():
        cids.sort()
        for i, a in enumerate(cids):
            for b in cids[i + 1 :]:
                inter[(a, b)] = inter.get((a, b), 0) + 1

    added = 0
    while len(parent.children) > 2 and inter:
        (a, b), shared = max(
            inter.items(),
            key=lambda kv: (
                kv[1] / min(len(child_sets[kv[0][0]]), len(child_sets[kv[0][1]])),
                -kv[0][0],
                -kv[0][1],
            ),
        )
        if shared == 0:
            break
        label = " + ".join(
            filter(None, (cats[a].label, cats[b].label))
        )
        node = ctx.tree.insert_parent([cats[a], cats[b]], label=label)
        union = frozenset(child_sets[a] | child_sets[b])
        ctx.target_sets[node.cid] = union
        added += 1

        # Retire a and b; introduce the union node.
        for cid in (a, b):
            del child_sets[cid]
            del cats[cid]
        inter = {
            pair: count
            for pair, count in inter.items()
            if a not in pair and b not in pair
        }
        for cid, items in child_sets.items():
            common = len(union & items)
            if common:
                pair = (min(cid, node.cid), max(cid, node.cid))
                inter[pair] = common
        child_sets[node.cid] = union
        cats[node.cid] = node
    return added


def add_intermediate_categories(ctx: BuildContext) -> int:
    """Insert recombining intermediate categories; returns how many."""
    added = 0
    queue = [cat for cat in ctx.tree.categories() if len(cat.children) > 2]
    for parent in queue:
        added += _recombine_children(ctx, parent)
    return added
