"""CCT — the Clustering-based Category Tree algorithm (paper Section 4).

CCT clusters the *input sets* (not the items) to derive the tree
structure: each set is embedded as the vector of its similarities to all
other sets (the "global context"), an agglomerative clustering over the
embeddings yields a dendrogram, the dendrogram becomes the tree skeleton
with one leaf category per input set, and the items are then rationed by
the same greedy assignment procedure as CTCR (Algorithm 2), followed by
condensing. Conflicts are never resolved explicitly — once a conflicting
set's items are spent, the greedy assignment simply stops prioritizing
the sets that can no longer be covered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.assignment import assign_duplicates, assign_safe_items
from repro.algorithms.base import BuildContext, TreeBuilder
from repro.algorithms.cct_cache import get_embedding_cache
from repro.algorithms.condense import (
    add_misc_category,
    remove_noncovered_items,
    remove_noncovering_categories,
)
from repro.clustering.agglomerative import agglomerative_clustering
from repro.clustering.dendrogram import Dendrogram
from repro.core import bitset
from repro.core.input_sets import OCTInstance
from repro.core.similarity import raw_similarity_from_sizes
from repro.core.tree import CategoryTree
from repro.core.variants import Variant
from repro.observability import get_tracer


@dataclass(frozen=True)
class CCTConfig:
    """Tuning switches for CCT."""

    linkage: str = "average"
    metric: str = "euclidean"
    condense: bool = True
    # Ablation: replace the global-context embeddings with plain pairwise
    # dissimilarities (1 - S(q_i, q_j)) as the clustering distance.
    global_context: bool = True
    # Embedding-engine knobs, mirroring CTCRConfig: use_bitset=None
    # auto-selects the packed-bitset kernel by instance size, n_jobs
    # fans the dense intersection pass over a process pool, use_cache
    # replays intersection counts across builds (threshold sweeps).
    use_bitset: bool | None = None
    n_jobs: int = 1
    use_cache: bool = False
    # Clustering engine: "nn-chain" (default) or the "legacy" greedy
    # global-minimum loop (see repro.clustering.agglomerative).
    cluster_engine: str = "nn-chain"


def set_embeddings(
    instance: OCTInstance,
    variant: Variant,
    *,
    use_bitset: bool | None = None,
    n_jobs: int = 1,
    use_cache: bool = False,
) -> np.ndarray:
    """The n x n similarity embeddings of Section 4.

    Entry ``[j, i]`` is the raw similarity of sets ``j`` and ``i`` under
    the variant's base measure; for Perfect-Recall the paper uses the
    average of precision and recall (which is symmetric across the pair):

    >>> from repro.core import Variant, make_instance
    >>> inst = make_instance([{"a", "b", "c"}, {"b", "c"}, {"x"}])
    >>> m = set_embeddings(inst, Variant.threshold_jaccard(0.5))
    >>> float(m[1, 0])            # row = set 1, column = set 0: |∩|/|∪|
    0.6666666666666666
    >>> bool(m[1, 0] == m[0, 1])  # raw similarity is symmetric
    True
    >>> float(m[2, 0])            # disjoint sets embed as 0
    0.0

    ``use_bitset`` selects the engine (``None`` auto-selects by instance
    size via :func:`repro.core.bitset.should_use`); both produce
    bit-identical matrices. ``n_jobs``/``use_cache`` only apply to the
    kernel path.
    """
    if not bitset.should_use(len(instance), len(instance.universe), use_bitset):
        return _set_embeddings_reference(instance, variant)
    return _set_embeddings_bitset(
        instance, variant, n_jobs=n_jobs, use_cache=use_cache
    )


def _set_embeddings_reference(
    instance: OCTInstance, variant: Variant
) -> np.ndarray:
    """Pure-Python embedding loop: the differential oracle.

    Kept verbatim as the semantic reference the kernel path is tested
    against; only pairs that share items get a similarity entry, the
    rest stay 0, and the diagonal is pinned to 1.
    """
    sets = instance.sets
    n = len(sets)
    matrix = np.zeros((n, n), dtype=np.float64)
    index_of = {q.sid: i for i, q in enumerate(sets)}
    sizes = [len(q.items) for q in sets]

    # Sparse pairwise intersections through the item -> sets index.
    pair_inter: dict[tuple[int, int], int] = {}
    for _item, with_item in instance.sets_containing().items():
        ids = sorted(index_of[q.sid] for q in with_item)
        for a_pos, a in enumerate(ids):
            for b in ids[a_pos + 1 :]:
                pair_inter[(a, b)] = pair_inter.get((a, b), 0) + 1
    for (a, b), inter in pair_inter.items():
        sim = raw_similarity_from_sizes(
            variant.kind, sizes[a], sizes[b], inter
        )
        matrix[a, b] = sim
        matrix[b, a] = sim
    np.fill_diagonal(matrix, 1.0)
    return matrix


def _set_embeddings_bitset(
    instance: OCTInstance,
    variant: Variant,
    *,
    n_jobs: int = 1,
    use_cache: bool = False,
) -> np.ndarray:
    """Packed-bitset embedding engine, bit-identical to the reference.

    The expensive, variant-independent part — the pairwise intersection
    counts — comes from the PR 1 kernel: the output-sensitive
    ``intersecting_pairs`` enumeration when serial, or blocked popcount
    rows fanned over ``utils.parallel`` when ``n_jobs != 1``. With
    ``use_cache`` the sparse ``(ii, jj, counts)`` triple is replayed
    across builds on the same instance (δ and even the similarity kind
    only enter the cheap derivation below), which is what makes
    Fig. 8g/8h-style threshold sweeps nearly free after the first point.
    """
    tracer = get_tracer()
    entry = key = None
    if use_cache:
        cache = get_embedding_cache()
        key = cache.key(instance)
        entry = cache.get(key)
        tracer.count("cct.cache_hits" if entry is not None else "cct.cache_misses")
    if entry is None:
        uni = bitset.BitsetUniverse.from_instance(instance)
        if n_jobs != 1:
            dense = uni.pairwise_intersections(n_jobs=n_jobs)
            iu, ju = np.nonzero(np.triu(dense, k=1))
            counts = dense[iu, ju]
        else:
            iu, ju, counts = uni.intersecting_pairs()
        entry = (uni.n_sets, uni.sizes, iu, ju, counts)
        if key is not None:
            cache.put(key, entry)
    n, sizes, iu, ju, counts = entry

    # Derive the variant's similarity matrix from the counts. Only
    # intersecting pairs get an entry (matching the reference loop);
    # the vectorized closed forms mirror raw_similarity_from_sizes
    # IEEE-op for IEEE-op, so entries are bit-identical.
    matrix = np.zeros((n, n), dtype=np.float64)
    if iu.size:
        values = bitset.raw_similarity_from_size_arrays(
            variant.kind, sizes[iu], sizes[ju], counts
        )
        matrix[iu, ju] = values
        matrix[ju, iu] = values
    np.fill_diagonal(matrix, 1.0)
    return matrix


class CCT(TreeBuilder):
    """Clustering-based category tree construction (Algorithm 3)."""

    name = "CCT"

    def __init__(self, config: CCTConfig | None = None) -> None:
        self.config = config or CCTConfig()

    def build(self, instance: OCTInstance, variant: Variant) -> CategoryTree:
        tree = CategoryTree()
        ctx = BuildContext(tree=tree, instance=instance, variant=variant)
        tracer = get_tracer()
        if len(instance) == 0:
            add_misc_category(tree, instance)
            return tree

        with tracer.span("cct.build"):
            with tracer.span("cct.embeddings"):
                similarities = set_embeddings(
                    instance,
                    variant,
                    use_bitset=self.config.use_bitset,
                    n_jobs=self.config.n_jobs,
                    use_cache=self.config.use_cache,
                )
            with tracer.span("cct.clustering"):
                if self.config.global_context:
                    dendrogram = agglomerative_clustering(
                        similarities,
                        linkage=self.config.linkage,
                        metric=self.config.metric,
                        engine=self.config.cluster_engine,
                    )
                else:
                    dendrogram = agglomerative_clustering(
                        similarities,
                        linkage=self.config.linkage,
                        precomputed=1.0 - similarities,
                        engine=self.config.cluster_engine,
                    )
            with tracer.span("cct.skeleton"):
                self._skeleton_from_dendrogram(ctx, dendrogram)

            with tracer.span("cct.assign"):
                duplicates = assign_safe_items(ctx, instance.sets)
                if duplicates:
                    assign_duplicates(ctx, instance.sets, duplicates)
            if self.config.condense:
                with tracer.span("cct.condense"):
                    remove_noncovered_items(tree, instance, variant)
                    remove_noncovering_categories(tree, instance, variant)
            add_misc_category(tree, instance)
        return tree

    def _skeleton_from_dendrogram(
        self, ctx: BuildContext, dendrogram: Dendrogram
    ) -> None:
        """Materialize the dendrogram as the category-tree skeleton.

        The dendrogram root maps onto the tree root; every other internal
        node becomes an (initially empty) category and every dendrogram
        leaf becomes the dedicated leaf category of one input set.
        """
        sets = ctx.instance.sets
        child_map = dendrogram.children()
        stack = [(dendrogram.root_id, ctx.tree.root)]
        while stack:
            node_id, parent_cat = stack.pop()
            if node_id < dendrogram.n_leaves:
                q = sets[node_id]
                cat = ctx.tree.add_category(
                    items=(),
                    parent=parent_cat,
                    label=q.label or f"q{q.sid}",
                )
                cat.matched_sids = [q.sid]
                ctx.designated[q.sid] = cat
                ctx.target_sets[cat.cid] = q.items
                continue
            if node_id == dendrogram.root_id:
                cat = ctx.tree.root
            else:
                cat = ctx.tree.add_category(
                    items=(), parent=parent_cat, label=f"cluster{node_id}"
                )
            for child in child_map[node_id]:
                stack.append((child, cat))
