"""Category-tree construction algorithms: CTCR, CCT, and shared stages."""

from repro.algorithms.assignment import (
    assign_duplicates,
    assign_safe_items,
    cover_gap,
)
from repro.algorithms.base import BuildContext, TreeBuilder
from repro.algorithms.cct import CCT, CCTConfig, set_embeddings
from repro.algorithms.cct_cache import (
    EmbeddingCache,
    clear_embedding_cache,
    get_embedding_cache,
)
from repro.algorithms.condense import (
    add_misc_category,
    condense,
    remove_noncovered_items,
    remove_noncovering_categories,
)
from repro.algorithms.ctcr import (
    CTCR,
    BuildReuse,
    CTCRConfig,
    CTCRDiagnostics,
)
from repro.algorithms.intermediate import add_intermediate_categories

__all__ = [
    "BuildContext",
    "BuildReuse",
    "CCT",
    "CCTConfig",
    "CTCR",
    "CTCRConfig",
    "CTCRDiagnostics",
    "EmbeddingCache",
    "TreeBuilder",
    "add_intermediate_categories",
    "add_misc_category",
    "assign_duplicates",
    "assign_safe_items",
    "clear_embedding_cache",
    "condense",
    "cover_gap",
    "get_embedding_cache",
    "remove_noncovered_items",
    "remove_noncovering_categories",
    "set_embeddings",
]
