"""Tree-builder interface and the shared construction context."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.bitset import BitsetUniverse
from repro.core.input_sets import InputSet, Item, OCTInstance
from repro.core.scoring import ScoreReport, score_tree
from repro.core.similarity import variant_score
from repro.core.tree import Category, CategoryTree
from repro.core.variants import Variant


class TreeBuilder(abc.ABC):
    """Common interface of all category-tree construction algorithms."""

    name: str = "builder"

    @abc.abstractmethod
    def build(self, instance: OCTInstance, variant: Variant) -> CategoryTree:
        """Construct a valid category tree for an instance and variant."""

    def build_scored(
        self, instance: OCTInstance, variant: Variant
    ) -> tuple[CategoryTree, ScoreReport]:
        """Build a tree and evaluate it in one call."""
        tree = self.build(instance, variant)
        return tree, score_tree(tree, instance, variant)


@dataclass
class BuildContext:
    """Mutable state threaded through the construction stages.

    ``designated`` maps each selected input set to the category created
    for it (``C(q)`` in the paper); ``target_sets`` maps category ids to
    the item set a category corresponds to (its input set, or the union
    of its children's sets for intermediate categories).
    """

    tree: CategoryTree
    instance: OCTInstance
    variant: Variant
    designated: dict[int, Category] = field(default_factory=dict)
    # Optional packed-bitset kernel over the instance (repro.core.bitset),
    # shared by the stages that batch set intersections; None means the
    # set-based paths are in force.
    bitset: "BitsetUniverse | None" = None
    target_sets: dict[int, frozenset] = field(default_factory=dict)
    remaining_bound: dict[Item, int] = field(default_factory=dict)
    # Item -> its current most-specific categories. Maintained by
    # record_assignment so branch-bound questions avoid tree scans.
    minimal_of: dict[Item, list[Category]] = field(default_factory=dict)

    def delta(self, q: InputSet) -> float:
        return self.instance.effective_threshold(q, self.variant.delta)

    def bound_left(self, item: Item) -> int:
        if item not in self.remaining_bound:
            self.remaining_bound[item] = self.instance.bound(item)
        return self.remaining_bound[item]

    def consume_bound(self, item: Item) -> None:
        self.remaining_bound[item] = self.bound_left(item) - 1

    def record_assignment(self, item: Item, cat: Category) -> None:
        """Track that ``item`` was just listed in ``cat``.

        A previous minimal category that is an ancestor of ``cat`` stops
        being minimal (the item now continues down its branch); minimal
        categories on other branches are untouched.
        """
        current = self.minimal_of.get(item, [])
        kept = [
            m
            for m in current
            if m is not cat and not _is_strict_ancestor(m, cat)
        ]
        kept.append(cat)
        self.minimal_of[item] = kept

    def slides_down(self, item: Item, target: Category) -> bool:
        """True when listing ``item`` in ``target`` opens no new branch.

        Exactly one minimal category of the item can be an ancestor of
        ``target`` (upward closure forbids two on one branch); when one
        is, the item merely moves down its existing branch.
        """
        return any(
            _is_strict_ancestor(m, target)
            for m in self.minimal_of.get(item, ())
        )

    def covers_with(self, q: InputSet, cat: Category) -> bool:
        """Does a category currently cover an input set?"""
        return (
            variant_score(self.variant, q.items, cat.items, self.delta(q)) > 0.0
        )

    def covered_on_branch(self, q: InputSet) -> bool:
        """Is ``q`` covered by its designated category or any ancestor?

        Item additions propagate upwards, so during construction only the
        designated category's path to the root can cover the set.
        """
        cat: Category | None = self.designated.get(q.sid)
        while cat is not None:
            if self.covers_with(q, cat):
                return True
            cat = cat.parent
        return False


def _is_strict_ancestor(a: Category, b: Category) -> bool:
    """True when ``a`` is a strict ancestor of ``b`` (depth-bounded walk)."""
    steps = b.depth - a.depth
    if steps <= 0:
        return False
    node: Category | None = b
    for _ in range(steps):
        assert node is not None
        node = node.parent
    return node is a


def is_on_same_branch(a: Category, b: Category) -> bool:
    """True when one category is an ancestor of (or equal to) the other."""
    if a is b:
        return True
    da, db = a.depth, b.depth
    deep, shallow = (a, b) if da >= db else (b, a)
    node: Category | None = deep
    for _ in range(abs(da - db)):
        assert node is not None
        node = node.parent
    return node is shallow


def chain_deepest(categories: list[Category]) -> Category | None:
    """If the categories lie on one branch, return the deepest; else None."""
    if not categories:
        return None
    ordered = sorted(categories, key=lambda c: c.depth)
    for prev, nxt in zip(ordered, ordered[1:]):
        if not is_on_same_branch(prev, nxt):
            return None
    return ordered[-1]
