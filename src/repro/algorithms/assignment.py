"""Item assignment — Algorithm 2 of the paper.

Items appearing only in input sets whose categories share one branch are
assigned directly (the "safe" stage, lines 16-19 of Algorithm 1). Items
shared by separately-covered sets — *duplicates* — are rationed by an
iterative greedy procedure prioritizing sets by their *gain factor*
(weight over *cover gap*, the number of missing items), matching each
duplicate to the branch where the sets containing it have the highest
total gain and placing it at the lowest relevant category of that branch.
Whatever remains is assigned by marginal gain to the cutoff score, with
the guard that no already-covered set may become uncovered.
"""

from __future__ import annotations

import math

from repro.algorithms.base import BuildContext, chain_deepest
from repro.core.input_sets import InputSet, Item
from repro.core.similarity import (
    raw_similarity_from_sizes,
    variant_score_from_sizes,
)
from repro.core.tree import Category
from repro.core.variants import ScoreMode, SimilarityKind, Variant

_EPS = 1e-9


# ---------------------------------------------------------------------------
# Safe stage: items whose selected sets lie on a single branch.
# ---------------------------------------------------------------------------


def assign_safe_items(
    ctx: BuildContext, selected: list[InputSet]
) -> set[Item]:
    """Assign single-branch items; return the set of duplicate items.

    An item is safe when all selected sets containing it have categories
    on one branch; it goes to the deepest of those categories and
    propagates upwards (the ancestor-closure of lines 18-19 follows from
    :meth:`CategoryTree.assign_item`).
    """
    membership: dict[Item, list[InputSet]] = {}
    for q in selected:
        for item in q.items:
            membership.setdefault(item, []).append(q)
    duplicates: set[Item] = set()
    for item, sets_with_item in membership.items():
        cats = [ctx.designated[q.sid] for q in sets_with_item]
        deepest = chain_deepest(cats)
        if deepest is None:
            duplicates.add(item)
        else:
            ctx.tree.assign_item(deepest, item)
            ctx.record_assignment(item, deepest)
            ctx.consume_bound(item)
    return duplicates


# ---------------------------------------------------------------------------
# Cover gaps and gain factors.
# ---------------------------------------------------------------------------


def cover_gap(
    ctx: BuildContext, q: InputSet, c_in: int | None = None
) -> int | None:
    """Items from ``q`` that must be added to ``C(q)`` to cover it.

    Returns ``None`` when no number of additions from ``q`` can reach the
    threshold (the category already carries too many foreign items).
    ``c_in`` optionally supplies a precomputed ``|C(q).items & q.items|``
    (the bitset kernel batches these across sets — see
    :func:`_cover_intersections`).
    """
    cat = ctx.designated[q.sid]
    delta = ctx.delta(q)
    q_size = len(q.items)
    if c_in is None:
        c_in = len(cat.items & q.items)
    c_out = len(cat.items) - c_in
    kind = ctx.variant.kind
    if kind is SimilarityKind.PERFECT_RECALL:
        gap = q_size - c_in
        precision = q_size / (c_out + q_size) if (c_out + q_size) else 0.0
        return gap if precision >= delta - _EPS else None
    if kind is SimilarityKind.JACCARD:
        needed = delta * (q_size + c_out) - c_in
    else:  # F1: 2(c_in + k) / (q + |C| + k) >= delta
        needed = (delta * (q_size + c_in + c_out) - 2.0 * c_in) / (2.0 - delta)
    gap = max(0, math.ceil(needed - _EPS))
    if gap > q_size - c_in:
        return None
    return gap


def _gain_factor(ctx: BuildContext, q: InputSet) -> float | None:
    gap = cover_gap(ctx, q)
    if gap is None:
        return None
    return _factor_from_gap(q, gap)


def _factor_from_gap(q: InputSet, gap: int) -> float:
    if gap == 0:
        return math.inf
    return q.weight / gap


def _cover_intersections(
    ctx: BuildContext, pending: list[InputSet]
) -> dict[int, int] | None:
    """``{sid: |C(q).items & q.items|}`` for all pending sets, batched.

    Uses the build context's bitset kernel when present: the designated
    categories' current item sets are packed once and intersected against
    the pre-packed input-set rows in a single popcount pass. Returns
    ``None`` (caller falls back to per-set ``len(&)``) without a kernel.
    """
    uni = ctx.bitset
    if uni is None or not pending:
        return None
    rows = [uni.row_of[q.sid] for q in pending]
    packed = uni.pack_many(
        [ctx.designated[q.sid].items for q in pending]
    )
    inter = uni.rowwise_intersections(rows, packed)
    return {q.sid: int(v) for q, v in zip(pending, inter)}


# ---------------------------------------------------------------------------
# Duplicate placement.
# ---------------------------------------------------------------------------


def _available_for(
    ctx: BuildContext, q: InputSet, duplicates: set[Item]
) -> list[Item]:
    """Duplicates of ``q`` that could still be added to its category.

    A duplicate is available when it has branch bound left, or when it
    can slide down an existing branch into the category for free (its
    current minimal category is an ancestor — see
    :meth:`BuildContext.slides_down`).
    """
    cat = ctx.designated[q.sid]
    result = []
    for item in q.items:
        if item in cat.items or item not in duplicates:
            continue
        if ctx.bound_left(item) > 0 or ctx.slides_down(item, cat):
            result.append(item)
    return result


def _designated_by_cid(ctx: BuildContext) -> dict[int, list[int]]:
    rev: dict[int, list[int]] = {}
    for sid, cat in ctx.designated.items():
        rev.setdefault(cat.cid, []).append(sid)
    return rev


def _match_branch(
    ctx: BuildContext,
    item: Item,
    anchor: Category,
    gains: dict[int, float],
    rev: dict[int, list[int]],
) -> tuple[float, Category]:
    """Best branch through ``anchor`` for a duplicate.

    Returns ``(gain_sum, placement)`` where ``placement`` is the lowest
    category on the winning branch whose input set contains the item.
    """
    best_gain = -1.0
    best_target = anchor
    for leaf in anchor.leaves_below():
        total = 0.0
        lowest: Category | None = None
        node: Category | None = leaf
        while node is not None:
            for sid in rev.get(node.cid, ()):
                q = ctx.instance.get(sid)
                if item in q.items:
                    total += gains.get(sid, 0.0)
                    if lowest is None:
                        lowest = node
            node = node.parent
        if lowest is None:
            continue
        if total > best_gain:
            best_gain = total
            best_target = lowest
    return best_gain, best_target


def _breaks_covered_ancestors(
    ctx: BuildContext,
    additions: list[tuple[Item, Category]],
    rev: dict[int, list[int]],
) -> bool:
    """Would jointly applying ``additions`` uncover a covered set above?

    For every category receiving new items (directly or by upward
    propagation), re-evaluate the sets designated to it.
    """
    incoming: dict[int, set[Item]] = {}
    for item, target in additions:
        node: Category | None = target
        while node is not None:
            if item not in node.items:
                incoming.setdefault(node.cid, set()).add(item)
            node = node.parent
    by_cid = {cat.cid: cat for cat in ctx.tree.categories()}
    for cid, new_items in incoming.items():
        cat = by_cid[cid]
        for sid in rev.get(cid, ()):
            q = ctx.instance.get(sid)
            if not ctx.covers_with(q, cat):
                continue
            delta = ctx.delta(q)
            inter = len(cat.items & q.items) + len(new_items & q.items)
            c_size = len(cat.items) + len(new_items)
            score = variant_score_from_sizes(
                ctx.variant, len(q.items), c_size, inter, delta
            )
            if score <= 0.0:
                return True
    return False


def _assign_duplicate(ctx: BuildContext, item: Item, target: Category) -> None:
    """Place a duplicate, consuming branch bound unless it merely slides
    down the branch from its current minimal category."""
    slides = ctx.slides_down(item, target)
    ctx.tree.assign_item(target, item)
    ctx.record_assignment(item, target)
    if not slides:
        ctx.consume_bound(item)


def _cutoff_marginal_gain(
    ctx: BuildContext, item: Item, target: Category, rev: dict[int, list[int]]
) -> float:
    """Marginal gain (cutoff semantics) of adding an item to a category.

    Aggregates over the target and every ancestor the change in the
    designated sets' cutoff scores, with a vanishing raw-similarity term
    to break ties towards semantically better placements.
    """
    cutoff = Variant(
        kind=(
            SimilarityKind.JACCARD
            if ctx.variant.kind is SimilarityKind.PERFECT_RECALL
            else ctx.variant.kind
        ),
        mode=ScoreMode.CUTOFF,
        delta=ctx.variant.delta,
    )
    total = 0.0
    node: Category | None = target
    while node is not None:
        if item not in node.items:
            for sid in rev.get(node.cid, ()):
                q = ctx.instance.get(sid)
                delta = ctx.delta(q)
                q_size = len(q.items)
                inter = len(node.items & q.items)
                c_size = len(node.items)
                in_q = 1 if item in q.items else 0
                old = variant_score_from_sizes(
                    cutoff, q_size, c_size, inter, delta
                )
                new = variant_score_from_sizes(
                    cutoff, q_size, c_size + 1, inter + in_q, delta
                )
                old_raw = raw_similarity_from_sizes(
                    cutoff.kind, q_size, c_size, inter
                )
                new_raw = raw_similarity_from_sizes(
                    cutoff.kind, q_size, c_size + 1, inter + in_q
                )
                total += q.weight * (new - old)
                total += 1e-9 * q.weight * (new_raw - old_raw)
        node = node.parent
    return total


def assign_duplicates(
    ctx: BuildContext, selected: list[InputSet], duplicates: set[Item]
) -> None:
    """The greedy duplicate-assignment loop plus the leftover pass."""
    rev = _designated_by_cid(ctx)
    failed: set[int] = set()

    while True:
        # Gain factors of the sets still uncovered but coverable. The
        # cover intersections behind the gaps are batched through the
        # bitset kernel when one is attached to the context.
        pending = [
            q
            for q in selected
            if q.sid not in failed and not ctx.covered_on_branch(q)
        ]
        batched = _cover_intersections(ctx, pending)
        gains: dict[int, float] = {}
        gaps: dict[int, int] = {}
        for q in pending:
            gap = cover_gap(
                ctx, q, c_in=None if batched is None else batched[q.sid]
            )
            if gap is None:
                continue
            available = _available_for(ctx, q, duplicates)
            if gap <= len(available):
                gains[q.sid] = _factor_from_gap(q, gap)
                gaps[q.sid] = gap
        if not gains:
            break

        best_sid = max(gains, key=lambda sid: (gains[sid], -sid))
        best = ctx.instance.get(best_sid)
        gap = gaps[best_sid]
        anchor = ctx.designated[best_sid]
        candidates = _available_for(ctx, best, duplicates)
        ranked: list[tuple[float, Item, Category]] = []
        for item in candidates:
            gain, target = _match_branch(ctx, item, anchor, gains, rev)
            ranked.append((gain, item, target))
        ranked.sort(key=lambda entry: (-entry[0], str(entry[1])))
        chosen = ranked[:gap]
        additions = [(item, target) for _g, item, target in chosen]
        if len(chosen) < gap or _breaks_covered_ancestors(ctx, additions, rev):
            failed.add(best_sid)
            continue
        for item, target in additions:
            _assign_duplicate(ctx, item, target)
        if not ctx.covered_on_branch(best):
            # Defensive: the gap computation should guarantee coverage.
            failed.add(best_sid)

    # Leftover duplicates: place by marginal cutoff gain, or leave them
    # for the miscellaneous category when nothing positive exists.
    leftovers = sorted(
        (item for item in duplicates if ctx.bound_left(item) > 0),
        key=str,
    )
    member_cats: dict[Item, list[Category]] = {}
    for sid, cat in ctx.designated.items():
        q = ctx.instance.get(sid)
        for item in q.items:
            if item in duplicates:
                member_cats.setdefault(item, []).append(cat)
    for item in leftovers:
        best_gain = 0.0
        best_target: Category | None = None
        for cat in member_cats.get(item, ()):
            if item in cat.items:
                continue
            gain = _cutoff_marginal_gain(ctx, item, cat, rev)
            if gain > best_gain + _EPS and not _breaks_covered_ancestors(
                ctx, [(item, cat)], rev
            ):
                # A net-positive gain may still hide one uncovered set
                # behind larger gains elsewhere; the paper's rule is to
                # never uncover, so such placements are skipped outright.
                best_gain = gain
                best_target = cat
        if best_target is not None:
            _assign_duplicate(ctx, item, best_target)
