"""Cross-sweep memo cache for CCT's pairwise intersection counts.

The Fig. 8g/8h-style threshold sweeps rebuild CCT over a δ grid on one
instance. The variant's δ (and even its similarity kind) only enters the
embedding *derivation* — the expensive part, packing the instance and
counting all pairwise intersections, depends on the input sets alone.
This cache therefore stores the pairwise intersection counts — in the
kernel's sparse ``(n, sizes, ii, jj, counts)`` form — keyed on the
instance's content, so every sweep point after the first replays the
counts and pays only the cheap vectorized similarity derivation.

Mirrors :mod:`repro.mis.cache` structurally: bounded FIFO eviction, a
process-global instance behind :func:`get_embedding_cache`, and
hit/miss counters that the CCT build surfaces as tracer counters
(``cct.cache_hits`` / ``cct.cache_misses``).

The key hashes, per input set in instance order, ``(sid, |items|,
hash(items))``. ``frozenset`` hashes are content-derived and cached on
the object, so the key costs O(n_sets) after the first build of an
instance. They are only stable *within* a process (string hash
randomization), which is exactly the cache's lifetime — entries are
never serialized or shared across processes.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

__all__ = [
    "EmbeddingCache",
    "get_embedding_cache",
    "clear_embedding_cache",
]


class EmbeddingCache:
    """Bounded FIFO cache: instance content key -> intersection counts.

    Entries are ``(n_sets, sizes, ii, jj, counts)`` tuples; the arrays
    are marked read-only before storage and handed back without
    copying — callers derive similarity matrices from them but never
    mutate them.
    """

    def __init__(self, max_entries: int = 32) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(instance) -> str:
        """Content hash of the instance's sets, in instance order."""
        canon = [
            (q.sid, len(q.items), hash(q.items)) for q in instance.sets
        ]
        return hashlib.sha1(repr(("cct-inter-v1", canon)).encode()).hexdigest()

    def get(self, key: str):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: str, entry: tuple) -> None:
        if key in self._entries:
            return
        for part in entry[1:]:
            part.flags.writeable = False
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_GLOBAL_CACHE: EmbeddingCache | None = None


def get_embedding_cache() -> EmbeddingCache:
    """Process-global cache shared by every CCT build in this process."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = EmbeddingCache()
    return _GLOBAL_CACHE


def clear_embedding_cache() -> None:
    """Reset the process-global cache (tests, benchmark baselines)."""
    if _GLOBAL_CACHE is not None:
        _GLOBAL_CACHE.clear()
