"""Tree condensing (Algorithm 1, lines 24-26).

After item assignment, items appearing only in uncovered input sets are
stripped (they can only hurt precision and are re-homed in the
miscellaneous category), and categories that are the best cover of no
input set are spliced out. Both operations can only increase the score.
Finally, every universe item absent from the tree lands in a fresh
``C_misc`` category under the root.
"""

from __future__ import annotations

from repro.core.input_sets import OCTInstance
from repro.core.scoring import score_tree
from repro.core.tree import Category, CategoryTree
from repro.core.variants import Variant

MISC_LABEL = "C_misc"


def remove_noncovered_items(
    tree: CategoryTree, instance: OCTInstance, variant: Variant
) -> int:
    """Strip items that appear in no covered input set; returns count."""
    report = score_tree(tree, instance, variant)
    keep: set = set()
    for q in instance:
        if report.per_set[q.sid].covered:
            keep |= q.items
    removed: set = set()
    for cat in tree.categories():
        extraneous = cat.items - keep
        if extraneous:
            removed |= extraneous
            cat.items -= extraneous
    return len(removed)


def _best_nonroot_covers(
    tree: CategoryTree, instance: OCTInstance, variant: Variant
) -> set[int]:
    """cids of the best non-root cover of each coverable set.

    The root is deliberately ignored: its contents change when the
    miscellaneous category is added later, so a cover that exists only
    at the root cannot justify retaining anything.
    """
    from repro.core.similarity import variant_score_from_sizes

    cats = [c for c in tree.non_root_categories()]
    sizes = {c.cid: len(c.items) for c in cats}
    depths = {c.cid: c.depth for c in cats}
    item_to_cids: dict = {}
    for cat in cats:
        for item in cat.items:
            item_to_cids.setdefault(item, []).append(cat.cid)
    retained: set[int] = set()
    for q in instance:
        delta = instance.effective_threshold(q, variant.delta)
        counts: dict[int, int] = {}
        for item in q.items:
            for cid in item_to_cids.get(item, ()):
                counts[cid] = counts.get(cid, 0) + 1
        best = None  # (score, precision, depth, -cid)
        best_cid = None
        for cid, common in counts.items():
            s = variant_score_from_sizes(
                variant, len(q.items), sizes[cid], common, delta
            )
            if s <= 0.0:
                continue
            prec = common / sizes[cid] if sizes[cid] else 0.0
            key = (s, prec, depths[cid], -cid)
            if best is None or key > best:
                best = key
                best_cid = cid
        if best_cid is not None:
            retained.add(best_cid)
    return retained


def remove_noncovering_categories(
    tree: CategoryTree, instance: OCTInstance, variant: Variant
) -> int:
    """Splice out categories that are no set's best cover; returns count.

    When several categories cover a set, only the highest-precision one
    is considered covering and retained. Covers provided solely by the
    root retain nothing — the root is not final until the miscellaneous
    category lands.
    """
    covering_cids = _best_nonroot_covers(tree, instance, variant)
    doomed = [
        cat
        for cat in tree.non_root_categories()
        if cat.cid not in covering_cids
    ]
    for cat in doomed:
        tree.remove_category(cat)
    return len(doomed)


def add_misc_category(
    tree: CategoryTree, instance: OCTInstance
) -> Category | None:
    """Gather universe items absent from the tree under ``C_misc``."""
    missing = set(instance.universe) - tree.root.items
    if not missing:
        return None
    return tree.add_category(missing, parent=tree.root, label=MISC_LABEL)


def condense(
    tree: CategoryTree, instance: OCTInstance, variant: Variant
) -> None:
    """Full condensing pass: strip items, drop categories, add misc."""
    remove_noncovered_items(tree, instance, variant)
    remove_noncovering_categories(tree, instance, variant)
    add_misc_category(tree, instance)
