"""repro — reproduction of "Automated Category Tree Construction in
E-Commerce" (Avron, Gershtein, Guy, Milo, Novgorodov; SIGMOD 2022).

The package implements the paper's Optimal Category Tree (OCT) model,
its two construction heuristics — the MIS-based **CTCR** and the
clustering-based **CCT** — the baselines it compares against (IC-S,
IC-Q, and the existing tree), every substrate they need (weighted MIS
solvers, agglomerative clustering, a search-engine simulator, synthetic
e-commerce catalogs and query logs, the preprocessing pipeline), and the
full evaluation harness for the paper's tables and figures.

Quickstart::

    from repro import CTCR, Variant, make_instance, score_tree

    instance = make_instance(
        [{"a", "b", "c"}, {"a", "b"}, {"d", "e"}], weights=[3, 2, 1]
    )
    variant = Variant.threshold_jaccard(0.8)
    tree = CTCR().build(instance, variant)
    print(score_tree(tree, instance, variant).normalized)
"""

from repro.algorithms import CCT, CCTConfig, CTCR, CTCRConfig, TreeBuilder
from repro.baselines import ICQ, ICS, ExistingTree
from repro.core import (
    Category,
    CategoryTree,
    InputSet,
    OCTInstance,
    ScoreMode,
    ScoreReport,
    SimilarityKind,
    Variant,
    make_instance,
    score_tree,
)

__version__ = "1.0.0"

__all__ = [
    "CCT",
    "CCTConfig",
    "CTCR",
    "CTCRConfig",
    "Category",
    "CategoryTree",
    "ExistingTree",
    "ICQ",
    "ICS",
    "InputSet",
    "OCTInstance",
    "ScoreMode",
    "ScoreReport",
    "SimilarityKind",
    "TreeBuilder",
    "Variant",
    "__version__",
    "make_instance",
    "score_tree",
]
