"""Hot-swap choreography: prepare off-path, publish with one flip.

A swap has two halves with very different costs:

1. **prepare** — load or rebuild a tree and compute its
   :class:`~repro.serving.indexes.SnapshotIndexes`. Arbitrarily slow;
   runs on a background thread (or before serving starts), never holding
   any lock the read path touches.
2. **publish** — :meth:`ServingEngine.publish`: assign the next
   generation number and flip one reference. In-flight requests finish
   on the generation they started with; requests that arrive after the
   flip see the new tree. No request is ever dropped or served a
   half-installed generation.

:class:`HotSwapper` packages the common sources of a new generation
(a snapshot store reload, a fresh builder run, an incremental delta
rebuild) behind that two-phase protocol, synchronously or on a daemon
thread. Delta rebuilds (``rebuild_mode="delta"``) carry a
:class:`~repro.incremental.BuildState` between swaps: the first swap
pays a full build, later swaps pay only the churned neighborhood, and
any state mismatch falls back to a full rebuild — full mode stays both
the fallback and the correctness oracle.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from repro.algorithms.base import TreeBuilder
from repro.core.input_sets import OCTInstance
from repro.core.variants import Variant
from repro.observability import get_tracer
from repro.serving.engine import Generation, ServingEngine, prepare_generation
from repro.serving.snapshot import SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.incremental import BuildState, IncrementalBuilder
    from repro.shaping import CostModel, ShapingBudget, ShapingResult


class HotSwapper:
    """Builds new generations for one engine and publishes them atomically.

    With a ``shaping_budget``, every rebuilt tree is passed through
    :class:`~repro.shaping.TreeShaper` *before* it is snapshotted or
    published (shape-then-publish): serving only ever sees trees that
    were shaped against the budget, the snapshot store archives the
    shaped form, and ``last_shaping`` carries the exact quality/cost
    accounting of the most recent swap.
    """

    def __init__(
        self,
        engine: ServingEngine,
        use_bitset: bool | None = None,
        backend: str = "object",
        tree_repr: str | None = None,
        shaping_budget: "ShapingBudget | None" = None,
        cost_model: "CostModel | None" = None,
    ) -> None:
        if backend not in ("object", "mmap"):
            raise ValueError(
                f"backend must be 'object' or 'mmap', got {backend!r}"
            )
        self.engine = engine
        self.use_bitset = use_bitset
        self.backend = backend
        # None = each backend's default ("flat" for object generations,
        # auto-resolution for mmap'ed flat files).
        self.tree_repr = tree_repr
        self.shaping_budget = shaping_budget
        self.cost_model = cost_model
        self.last_shaping: "ShapingResult | None" = None
        self._swap_lock = threading.Lock()  # serializes whole swaps
        # Carried between delta swaps; None until the first delta
        # rebuild bootstraps it with a full build.
        self.delta_state: "BuildState | None" = None

    def _maybe_shape(self, tree, instance: OCTInstance, variant: Variant):
        """Apply the configured shaping budget to a freshly built tree."""
        if self.shaping_budget is None or self.shaping_budget.unbounded:
            return tree
        from repro.shaping import TreeShaper

        tracer = get_tracer()
        with tracer.span("serving.shape"):
            result = TreeShaper(instance, variant, self.cost_model).shape(
                tree, self.shaping_budget
            )
        self.last_shaping = result
        return result.tree

    # -- generation sources --------------------------------------------------

    def generation_from_store(
        self, store: SnapshotStore, snapshot_id: str | None = None
    ) -> Generation:
        """Prepare (not publish) a generation from a stored snapshot.

        With ``backend="mmap"`` the snapshot's flat layout is mapped
        read-only instead of deserializing the JSON payloads — the
        worker-process path (:mod:`repro.serving.supervisor`).
        """
        if self.backend == "mmap":
            from repro.serving.shm import prepare_mmap_generation

            return prepare_mmap_generation(
                store, snapshot_id, use_bitset=self.use_bitset,
                tree_repr=self.tree_repr,
            )
        loaded = store.load(snapshot_id)
        return prepare_generation(
            loaded.tree,
            loaded.instance,
            loaded.variant,
            snapshot_id=loaded.info.snapshot_id,
            use_bitset=self.use_bitset,
            tree_repr=self.tree_repr or "flat",
        )

    def generation_from_build(
        self,
        builder: TreeBuilder,
        instance: OCTInstance,
        variant: Variant,
        store: SnapshotStore | None = None,
    ) -> Generation:
        """Prepare a generation by running a tree builder from scratch.

        With ``store`` the rebuilt tree is also saved (and activated) as
        a snapshot, so the rebuild is durable and rollback-able.
        """
        tracer = get_tracer()
        with tracer.span("serving.rebuild"):
            tree = builder.build(instance, variant)
        tree = self._maybe_shape(tree, instance, variant)
        snapshot_id = ""
        if store is not None:
            snapshot_id = store.save(tree, instance, variant).snapshot_id
            # Serve the snapshot's canonical (round-tripped) form, so a
            # later reload from disk is indistinguishable from this build.
            return self.generation_from_store(store, snapshot_id)
        return prepare_generation(
            tree, instance, variant,
            snapshot_id=snapshot_id, use_bitset=self.use_bitset,
            tree_repr=self.tree_repr or "flat",
        )

    def generation_from_delta(
        self,
        incremental: "IncrementalBuilder",
        instance: OCTInstance,
        variant: Variant,
        store: SnapshotStore | None = None,
    ) -> Generation:
        """Prepare a generation via an incremental delta rebuild.

        Uses the swapper's carried ``delta_state`` when it exists; the
        first call (or any state mismatch, counted as
        ``incremental.fallbacks``) runs a full build instead. With
        ``store`` the result is saved as a snapshot and its build state
        as a sidecar (:class:`~repro.incremental.IncrementalStateStore`),
        so a restarted process can keep delta-building. The snapshot is
        only saved after the build succeeds — a crash mid-build leaves
        the store's CURRENT pointer untouched.
        """
        from repro.incremental import (
            DeltaMismatchError,
            IncrementalStateStore,
        )

        tracer = get_tracer()
        with tracer.span("serving.delta_rebuild"):
            state = self.delta_state
            if state is None:
                tree, new_state = incremental.full_build(instance, variant)
            else:
                try:
                    result = incremental.delta_build(
                        state, instance, variant
                    )
                    tree, new_state = result.tree, result.state
                except DeltaMismatchError:
                    tracer.count("incremental.fallbacks")
                    tree, new_state = incremental.full_build(
                        instance, variant
                    )
        self.delta_state = new_state
        # Shape only the published/archived form; the carried delta
        # state keeps tracking the unshaped build lineage so later
        # deltas still match it.
        tree = self._maybe_shape(tree, instance, variant)
        if store is not None:
            snapshot_id = store.save(tree, instance, variant).snapshot_id
            IncrementalStateStore(store.root).save(snapshot_id, new_state)
            return self.generation_from_store(store, snapshot_id)
        return prepare_generation(
            tree, instance, variant,
            snapshot_id="", use_bitset=self.use_bitset,
            tree_repr=self.tree_repr or "flat",
        )

    # -- swapping ------------------------------------------------------------

    def swap(self, prepare: Callable[[], Generation]) -> Generation:
        """Run a prepare callable and publish its result (synchronous).

        Swaps are serialized against each other so two concurrent
        rebuilds cannot publish out of order; the read path is never
        blocked by this lock.
        """
        with self._swap_lock:
            generation = prepare()
            return self.engine.publish(generation)

    def swap_from_store(
        self, store: SnapshotStore, snapshot_id: str | None = None
    ) -> Generation:
        """Reload a snapshot (default: CURRENT) and publish it."""
        return self.swap(lambda: self.generation_from_store(store, snapshot_id))

    def swap_from_build(
        self,
        builder,
        instance: OCTInstance,
        variant: Variant,
        store: SnapshotStore | None = None,
        rebuild_mode: str = "full",
    ) -> Generation:
        """Rebuild and publish the result.

        ``rebuild_mode="full"`` takes any :class:`TreeBuilder` and
        rebuilds from scratch; ``rebuild_mode="delta"`` takes an
        :class:`~repro.incremental.IncrementalBuilder` and reuses the
        swapper's carried build state (full rebuild on first use or
        state mismatch).
        """
        if rebuild_mode == "delta":
            return self.swap(
                lambda: self.generation_from_delta(
                    builder, instance, variant, store
                )
            )
        if rebuild_mode != "full":
            raise ValueError(
                f"rebuild_mode must be 'full' or 'delta', got {rebuild_mode!r}"
            )
        return self.swap(
            lambda: self.generation_from_build(builder, instance, variant, store)
        )

    def swap_in_background(
        self,
        prepare: Callable[[], Generation],
        on_published: Callable[[Generation], None] | None = None,
    ) -> threading.Thread:
        """Start a daemon thread doing prepare+publish; returns it.

        The caller can ``join()`` the thread to wait for the publish or
        pass ``on_published`` to be notified with the new generation.
        """

        def worker() -> None:
            generation = self.swap(prepare)
            if on_published is not None:
                on_published(generation)

        thread = threading.Thread(
            target=worker, name="repro-serving-hotswap", daemon=True
        )
        thread.start()
        return thread
