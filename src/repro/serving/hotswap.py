"""Hot-swap choreography: prepare off-path, publish with one flip.

A swap has two halves with very different costs:

1. **prepare** — load or rebuild a tree and compute its
   :class:`~repro.serving.indexes.SnapshotIndexes`. Arbitrarily slow;
   runs on a background thread (or before serving starts), never holding
   any lock the read path touches.
2. **publish** — :meth:`ServingEngine.publish`: assign the next
   generation number and flip one reference. In-flight requests finish
   on the generation they started with; requests that arrive after the
   flip see the new tree. No request is ever dropped or served a
   half-installed generation.

:class:`HotSwapper` packages the common sources of a new generation
(a snapshot store reload, a fresh builder run) behind that two-phase
protocol, synchronously or on a daemon thread.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.algorithms.base import TreeBuilder
from repro.core.input_sets import OCTInstance
from repro.core.variants import Variant
from repro.observability import get_tracer
from repro.serving.engine import Generation, ServingEngine, prepare_generation
from repro.serving.snapshot import SnapshotStore


class HotSwapper:
    """Builds new generations for one engine and publishes them atomically."""

    def __init__(
        self, engine: ServingEngine, use_bitset: bool | None = None
    ) -> None:
        self.engine = engine
        self.use_bitset = use_bitset
        self._swap_lock = threading.Lock()  # serializes whole swaps

    # -- generation sources --------------------------------------------------

    def generation_from_store(
        self, store: SnapshotStore, snapshot_id: str | None = None
    ) -> Generation:
        """Prepare (not publish) a generation from a stored snapshot."""
        loaded = store.load(snapshot_id)
        return prepare_generation(
            loaded.tree,
            loaded.instance,
            loaded.variant,
            snapshot_id=loaded.info.snapshot_id,
            use_bitset=self.use_bitset,
        )

    def generation_from_build(
        self,
        builder: TreeBuilder,
        instance: OCTInstance,
        variant: Variant,
        store: SnapshotStore | None = None,
    ) -> Generation:
        """Prepare a generation by running a tree builder from scratch.

        With ``store`` the rebuilt tree is also saved (and activated) as
        a snapshot, so the rebuild is durable and rollback-able.
        """
        tracer = get_tracer()
        with tracer.span("serving.rebuild"):
            tree = builder.build(instance, variant)
        snapshot_id = ""
        if store is not None:
            snapshot_id = store.save(tree, instance, variant).snapshot_id
            # Serve the snapshot's canonical (round-tripped) form, so a
            # later reload from disk is indistinguishable from this build.
            return self.generation_from_store(store, snapshot_id)
        return prepare_generation(
            tree, instance, variant,
            snapshot_id=snapshot_id, use_bitset=self.use_bitset,
        )

    # -- swapping ------------------------------------------------------------

    def swap(self, prepare: Callable[[], Generation]) -> Generation:
        """Run a prepare callable and publish its result (synchronous).

        Swaps are serialized against each other so two concurrent
        rebuilds cannot publish out of order; the read path is never
        blocked by this lock.
        """
        with self._swap_lock:
            generation = prepare()
            return self.engine.publish(generation)

    def swap_from_store(
        self, store: SnapshotStore, snapshot_id: str | None = None
    ) -> Generation:
        """Reload a snapshot (default: CURRENT) and publish it."""
        return self.swap(lambda: self.generation_from_store(store, snapshot_id))

    def swap_from_build(
        self,
        builder: TreeBuilder,
        instance: OCTInstance,
        variant: Variant,
        store: SnapshotStore | None = None,
    ) -> Generation:
        """Rebuild with ``builder`` and publish the result."""
        return self.swap(
            lambda: self.generation_from_build(builder, instance, variant, store)
        )

    def swap_in_background(
        self,
        prepare: Callable[[], Generation],
        on_published: Callable[[Generation], None] | None = None,
    ) -> threading.Thread:
        """Start a daemon thread doing prepare+publish; returns it.

        The caller can ``join()`` the thread to wait for the publish or
        pass ``on_published`` to be notified with the new generation.
        """

        def worker() -> None:
            generation = self.swap(prepare)
            if on_published is not None:
                on_published(generation)

        thread = threading.Thread(
            target=worker, name="repro-serving-hotswap", daemon=True
        )
        thread.start()
        return thread
