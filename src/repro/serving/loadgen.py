"""Deterministic closed-loop load generator for the serving engine.

The workload is a seeded mix of the four read operations, drawn from the
snapshot's own data (query result sets from the instance, items from the
universe, cids from the tree), so the request distribution matches what
a platform would actually serve. Generation is fully deterministic: the
same (instance, tree, seed, mix) produce the same request list.

Execution is *closed-loop*: ``n_workers`` threads each issue their share
of requests back to back, a new request only after the previous response
— so measured latency is pure service time and throughput is the
saturated requests/second of the engine. Every request is timed
client-side; failures are counted (and kept) rather than raised, so a
mid-run hot swap can be *proven* harmless by ``result.errors == 0``.

:func:`run_loadgen` optionally triggers a swap mid-run: when the
completed-request count crosses ``swap_at`` × total, a coordinator
thread invokes the provided callable (typically
``HotSwapper.swap_from_store``) while the workers keep hammering.
"""

from __future__ import annotations

import http.client
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence
from urllib.parse import quote, urlsplit

from repro.core.input_sets import OCTInstance
from repro.core.tree import CategoryTree
from repro.serving.engine import ServingEngine

# Operation mix of a navigation-heavy storefront: mostly query->category
# scoring and item categorization, some tree browsing and breadcrumbs.
DEFAULT_MIX: dict[str, float] = {
    "best_category": 0.45,
    "categorize": 0.30,
    "browse": 0.15,
    "path": 0.05,
    "search": 0.05,
}


@dataclass(frozen=True)
class Request:
    """One pre-generated request: an operation and its argument."""

    op: str
    arg: object


@dataclass
class LoadGenResult:
    """Everything one load-generator run measured."""

    n_requests: int
    n_workers: int
    errors: int
    wall_s: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    covered_fraction: float  # best_category requests that found a category
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    per_op: dict[str, int] = field(default_factory=dict)
    generation_before: int = 0
    generation_after: int = 0
    swap_performed: bool = False
    error_messages: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "n_workers": self.n_workers,
            "errors": self.errors,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "p50": self.p50_ms,
                "p95": self.p95_ms,
                "p99": self.p99_ms,
                "mean": self.mean_ms,
                "max": self.max_ms,
            },
            "covered_fraction": self.covered_fraction,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate,
            },
            "per_op": dict(self.per_op),
            "generation_before": self.generation_before,
            "generation_after": self.generation_after,
            "swap_performed": self.swap_performed,
        }


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(0, min(len(sorted_samples) - 1, int(q * len(sorted_samples)) - 1))
    return sorted_samples[rank]


def build_workload(
    instance: OCTInstance,
    tree: CategoryTree,
    n_requests: int,
    seed: int = 0,
    mix: Mapping[str, float] | None = None,
) -> list[Request]:
    """A deterministic request list drawn from the snapshot's own data.

    ``best_category`` queries reuse the instance's input sets — most
    verbatim (cache-friendly, like repeated popular searches), some with
    one item dropped (near-miss variations). ``categorize`` items come
    from the universe, ``browse``/``path`` cids from the tree, and
    ``search`` texts from the input sets' labels.
    """
    mix = dict(mix or DEFAULT_MIX)
    ops = sorted(mix)
    weights = [mix[op] for op in ops]
    rng = random.Random(seed)

    query_sets = [q.items for q in instance.sets] or [frozenset()]
    labels = [q.label for q in instance.sets if q.label] or ["category"]
    items = sorted(instance.universe, key=str) or [""]
    cids = sorted(c.cid for c in tree.categories())

    requests: list[Request] = []
    for _ in range(n_requests):
        op = rng.choices(ops, weights=weights)[0]
        if op == "best_category":
            q = rng.choice(query_sets)
            if len(q) > 1 and rng.random() < 0.25:
                dropped = rng.choice(sorted(q, key=str))
                q = q - {dropped}
            requests.append(Request(op, q))
        elif op == "categorize":
            requests.append(Request(op, rng.choice(items)))
        elif op == "browse":
            requests.append(Request(op, rng.choice(cids)))
        elif op == "path":
            requests.append(Request(op, rng.choice(cids)))
        elif op == "search":
            requests.append(Request(op, rng.choice(labels)))
        else:
            raise ValueError(f"unknown op {op!r} in mix")
    return requests


def _issue(engine: ServingEngine, request: Request) -> bool:
    """Execute one request; returns whether a best_category was covered."""
    if request.op == "best_category":
        return engine.best_category(request.arg) is not None
    if request.op == "categorize":
        engine.categorize_item(request.arg)
    elif request.op == "browse":
        engine.browse(request.arg)
    elif request.op == "path":
        engine.path_to_root(request.arg)
    elif request.op == "search":
        engine.find_categories(request.arg)
    else:
        raise ValueError(f"unknown op {request.op!r}")
    return True


def run_loadgen(
    engine: ServingEngine,
    workload: Sequence[Request],
    n_workers: int = 4,
    swap_at: float | None = None,
    swap: Callable[[], object] | None = None,
) -> LoadGenResult:
    """Drive a workload through an engine and measure it client-side.

    With ``swap_at`` (a fraction in (0, 1)) and ``swap`` (a callable
    performing prepare+publish), a coordinator thread fires the swap
    once, as soon as that fraction of requests has completed — proving
    in-flight reads survive the flip (``errors`` stays 0).
    """
    n_workers = max(1, n_workers)
    shares = [list(workload[w::n_workers]) for w in range(n_workers)]
    latencies: list[list[float]] = [[] for _ in range(n_workers)]
    failures: list[list[str]] = [[] for _ in range(n_workers)]
    covered = [0] * n_workers
    best_total = [0] * n_workers
    completed = [0] * n_workers  # per-worker, summed by the coordinator

    cache0 = engine.stats()["cache"]
    generation_before = engine.generation
    start_barrier = threading.Barrier(n_workers + 1)

    def worker(w: int) -> None:
        start_barrier.wait()
        for request in shares[w]:
            t0 = time.perf_counter()
            try:
                was_covered = _issue(engine, request)
                if request.op == "best_category":
                    best_total[w] += 1
                    if was_covered:
                        covered[w] += 1
            except Exception as exc:  # count, keep serving
                failures[w].append(f"{request.op}: {type(exc).__name__}: {exc}")
            latencies[w].append(time.perf_counter() - t0)
            completed[w] += 1

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(n_workers)
    ]
    for t in threads:
        t.start()

    swap_performed = False
    swap_error: str | None = None
    swap_thread: threading.Thread | None = None
    if swap is not None and swap_at is not None:
        threshold = max(1, int(len(workload) * swap_at))

        def coordinator() -> None:
            nonlocal swap_performed, swap_error
            while sum(completed) < threshold and any(
                t.is_alive() for t in threads
            ):
                time.sleep(0.001)
            try:
                swap()
                swap_performed = True
            except Exception as exc:  # pragma: no cover - surfaced in result
                swap_error = f"swap: {type(exc).__name__}: {exc}"

        swap_thread = threading.Thread(target=coordinator, daemon=True)
        swap_thread.start()

    start_barrier.wait()
    t_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t_start
    if swap_thread is not None:
        swap_thread.join()

    all_latencies = sorted(x for per in latencies for x in per)
    all_failures = [msg for per in failures for msg in per]
    if swap_error is not None:
        all_failures.append(swap_error)
    cache1 = engine.stats()["cache"]
    hits = cache1["hits"] - cache0["hits"]
    misses = cache1["misses"] - cache0["misses"]
    lookups = hits + misses
    per_op: dict[str, int] = {}
    for request in workload:
        per_op[request.op] = per_op.get(request.op, 0) + 1
    n_best = sum(best_total)
    return LoadGenResult(
        n_requests=len(workload),
        n_workers=n_workers,
        errors=len(all_failures),
        wall_s=wall,
        throughput_rps=len(workload) / wall if wall > 0 else 0.0,
        p50_ms=percentile(all_latencies, 0.50) * 1000.0,
        p95_ms=percentile(all_latencies, 0.95) * 1000.0,
        p99_ms=percentile(all_latencies, 0.99) * 1000.0,
        mean_ms=(
            sum(all_latencies) / len(all_latencies) * 1000.0
            if all_latencies else 0.0
        ),
        max_ms=all_latencies[-1] * 1000.0 if all_latencies else 0.0,
        covered_fraction=sum(covered) / n_best if n_best else 0.0,
        cache_hits=hits,
        cache_misses=misses,
        cache_hit_rate=hits / lookups if lookups else 0.0,
        per_op=per_op,
        generation_before=generation_before,
        generation_after=engine.generation,
        swap_performed=swap_performed,
        error_messages=all_failures[:20],
    )


# -- HTTP mode (multi-process serving) ---------------------------------------


def request_path(request: Request) -> str:
    """The HTTP path+query serving the same operation as :func:`_issue`."""
    if request.op == "best_category":
        items = ",".join(sorted(request.arg, key=str))
        return f"/best-category?items={quote(items, safe='')}"
    if request.op == "categorize":
        return f"/categorize?item={quote(str(request.arg), safe='')}"
    if request.op == "browse":
        return f"/browse?cid={int(request.arg)}"
    if request.op == "path":
        return f"/path?cid={int(request.arg)}"
    if request.op == "search":
        return f"/search?q={quote(str(request.arg), safe='')}"
    raise ValueError(f"unknown op {request.op!r}")


@dataclass
class HttpLoadGenResult:
    """What a closed-loop HTTP run measured, per worker and generation.

    ``per_worker`` / ``per_generation`` / ``per_snapshot`` tally the
    ``X-Repro-*`` attribution headers, so a multi-worker run can assert
    kernel-level balance (no worker starved) and that every response
    came from a known generation — the cross-process consistency tier's
    raw evidence.
    """

    n_requests: int
    n_connections: int
    errors: int
    retries: int
    wall_s: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    per_worker: dict[str, int] = field(default_factory=dict)
    per_generation: dict[str, int] = field(default_factory=dict)
    per_snapshot: dict[str, int] = field(default_factory=dict)
    swap_performed: bool = False
    error_messages: list[str] = field(default_factory=list)

    def worker_shares(self) -> dict[str, float]:
        """Fraction of responses answered by each worker."""
        total = sum(self.per_worker.values())
        if not total:
            return {}
        return {w: n / total for w, n in self.per_worker.items()}

    def min_fair_share_ratio(self) -> float:
        """Smallest worker share relative to a perfectly fair 1/N split.

        1.0 is perfect balance; the supervisor tests assert >= 0.1
        (no worker below 10% of its fair share).
        """
        shares = self.worker_shares()
        if not shares:
            return 0.0
        fair = 1.0 / len(shares)
        return min(shares.values()) / fair

    def to_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "n_connections": self.n_connections,
            "errors": self.errors,
            "retries": self.retries,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "p50": self.p50_ms,
                "p95": self.p95_ms,
                "p99": self.p99_ms,
                "mean": self.mean_ms,
                "max": self.max_ms,
            },
            "per_worker": dict(sorted(self.per_worker.items())),
            "per_generation": dict(sorted(self.per_generation.items())),
            "per_snapshot": dict(sorted(self.per_snapshot.items())),
            "min_fair_share_ratio": self.min_fair_share_ratio(),
            "swap_performed": self.swap_performed,
        }


# Connection-level failures worth a reconnect+retry: a worker that was
# kill -9'd mid-response, a connection the kernel routed to a dying
# worker, or a stale keep-alive socket.
_RETRYABLE = (
    ConnectionError,
    http.client.HTTPException,
    socket.timeout,
    TimeoutError,
    OSError,
)


def run_http_loadgen(
    base_url: str,
    workload: Sequence[Request],
    n_connections: int = 4,
    swap_at: float | None = None,
    swap: Callable[[], object] | None = None,
    max_retries: int = 5,
    timeout: float = 30.0,
) -> HttpLoadGenResult:
    """Drive a workload over HTTP with persistent connections.

    Each of ``n_connections`` threads holds one keep-alive connection —
    SO_REUSEPORT balances *connections*, not requests, so balance
    assertions need ``n_connections`` comfortably above the worker
    count. Connection-level failures (a killed worker, a torn socket)
    are retried on a fresh connection up to ``max_retries`` times and
    counted in ``retries``; only exhausted retries and non-200 statuses
    count as ``errors``. ``swap_at``/``swap`` fire a mid-run publish
    exactly like :func:`run_loadgen`.
    """
    parts = urlsplit(base_url)
    host, port = parts.hostname, parts.port
    if host is None or port is None:
        raise ValueError(f"base_url must be http://host:port, got {base_url!r}")

    n_connections = max(1, n_connections)
    shares = [list(workload[w::n_connections]) for w in range(n_connections)]
    latencies: list[list[float]] = [[] for _ in range(n_connections)]
    failures: list[list[str]] = [[] for _ in range(n_connections)]
    retries = [0] * n_connections
    completed = [0] * n_connections
    per_worker: list[dict[str, int]] = [{} for _ in range(n_connections)]
    per_generation: list[dict[str, int]] = [{} for _ in range(n_connections)]
    per_snapshot: list[dict[str, int]] = [{} for _ in range(n_connections)]
    start_barrier = threading.Barrier(n_connections + 1)

    def fetch(conn_box: list, path: str) -> tuple[int, dict[str, str]]:
        """One GET over the held connection, reconnecting on demand."""
        if conn_box[0] is None:
            conn_box[0] = http.client.HTTPConnection(host, port, timeout=timeout)
        conn = conn_box[0]
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            response.read()  # drain so the connection can be reused
            return response.status, {
                k: v for k, v in response.getheaders()
            }
        except _RETRYABLE:
            # The socket is in an unknown state; drop it so the next
            # attempt dials fresh (the kernel will pick a live worker).
            try:
                conn.close()
            finally:
                conn_box[0] = None
            raise

    def worker(w: int) -> None:
        conn_box: list = [None]
        start_barrier.wait()
        for request in shares[w]:
            path = request_path(request)
            t0 = time.perf_counter()
            status = None
            headers: dict[str, str] = {}
            for attempt in range(max_retries + 1):
                try:
                    status, headers = fetch(conn_box, path)
                    break
                except _RETRYABLE as exc:
                    if attempt == max_retries:
                        failures[w].append(
                            f"{request.op}: {type(exc).__name__}: {exc}"
                        )
                    else:
                        retries[w] += 1
            latencies[w].append(time.perf_counter() - t0)
            completed[w] += 1
            if status is None:
                continue
            if status != 200:
                failures[w].append(f"{request.op}: HTTP {status}")
                continue
            wid = headers.get("X-Repro-Worker")
            if wid is not None:
                per_worker[w][wid] = per_worker[w].get(wid, 0) + 1
            gen = headers.get("X-Repro-Generation")
            if gen is not None:
                per_generation[w][gen] = per_generation[w].get(gen, 0) + 1
            snap = headers.get("X-Repro-Snapshot")
            if snap is not None:
                per_snapshot[w][snap] = per_snapshot[w].get(snap, 0) + 1
        conn = conn_box[0]
        if conn is not None:
            conn.close()

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(n_connections)
    ]
    for t in threads:
        t.start()

    swap_performed = False
    swap_error: str | None = None
    swap_thread: threading.Thread | None = None
    if swap is not None and swap_at is not None:
        threshold = max(1, int(len(workload) * swap_at))

        def coordinator() -> None:
            nonlocal swap_performed, swap_error
            while sum(completed) < threshold and any(
                t.is_alive() for t in threads
            ):
                time.sleep(0.001)
            try:
                swap()
                swap_performed = True
            except Exception as exc:  # pragma: no cover - surfaced in result
                swap_error = f"swap: {type(exc).__name__}: {exc}"

        swap_thread = threading.Thread(target=coordinator, daemon=True)
        swap_thread.start()

    start_barrier.wait()
    t_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t_start
    if swap_thread is not None:
        swap_thread.join()

    all_latencies = sorted(x for per in latencies for x in per)
    all_failures = [msg for per in failures for msg in per]
    if swap_error is not None:
        all_failures.append(swap_error)

    def merged(tallies: list[dict[str, int]]) -> dict[str, int]:
        out: dict[str, int] = {}
        for tally in tallies:
            for key, count in tally.items():
                out[key] = out.get(key, 0) + count
        return out

    return HttpLoadGenResult(
        n_requests=len(workload),
        n_connections=n_connections,
        errors=len(all_failures),
        retries=sum(retries),
        wall_s=wall,
        throughput_rps=len(workload) / wall if wall > 0 else 0.0,
        p50_ms=percentile(all_latencies, 0.50) * 1000.0,
        p95_ms=percentile(all_latencies, 0.95) * 1000.0,
        p99_ms=percentile(all_latencies, 0.99) * 1000.0,
        mean_ms=(
            sum(all_latencies) / len(all_latencies) * 1000.0
            if all_latencies else 0.0
        ),
        max_ms=all_latencies[-1] * 1000.0 if all_latencies else 0.0,
        per_worker=merged(per_worker),
        per_generation=merged(per_generation),
        per_snapshot=merged(per_snapshot),
        swap_performed=swap_performed,
        error_messages=all_failures[:20],
    )
