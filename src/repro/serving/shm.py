"""Flat mmap-able snapshot layout for zero-copy multi-process serving.

One ``ThreadingHTTPServer`` process tops out when every read holds the
GIL; the multi-process tier (:mod:`repro.serving.supervisor`) instead
runs N workers that all ``mmap`` the *same* read-only flat snapshot
file, so the kernel shares one page-cache copy of the indexes across
every worker — no per-process deserialization, no per-process heap.

The layout is a single self-describing binary file per shard::

    magic "ROCT" | u32 flat_format_version | u64 header_len
    header JSON  (section table: name -> {offset, count, kind}, plus
                  variant spec, category/item/label counts, shard k-of-S)
    8-aligned little/native-endian sections (offsets relative to the
                  8-aligned end of the header)
    trailer "TROC" | u64 file_size

The trailer is written last and echoes the total file size, so a torn or
truncated write is detected structurally before any section is trusted
(the staged ``os.replace`` publish in :class:`~repro.serving.snapshot.
SnapshotStore` means readers should never see one, but crash-injection
tests do).

Sections (``i64``/``u64`` arrays are read through zero-copy
``memoryview.cast`` views; NumPy is only needed for the packed-bitset
intersection path and the postings fallback matches it exactly):

==================  ========================================================
``cat_cids``        row -> cid, category pre-order (root first)
``cat_parent``      row -> parent row (-1 for the root)
``cat_depth``       row -> depth
``cat_size``        row -> ``|items|``
``cat_children``    child rows, ``cat_children_off[row] .. [row+1]``
``cat_labels``      utf-8 label blob, ``cat_label_off`` byte offsets
``cid_to_row``      cid -> row (-1 when the cid does not exist)
``item_keys``       canonical JSON item keys, sorted, ``item_off`` offsets
``item_post``       item -> containing category rows (``item_post_off``)
``item_place``      item -> minimal category rows (``item_place_off``)
``cat_bits``        ``n_categories x n_words`` u64 bit matrix over the
                    shard's items (bit = sorted item position)
``tok_blob``        sorted label-search tokens (``tok_off`` offsets)
``tok_df``          token -> document frequency
``tok_post``        token -> label doc rows (``tok_post_off``)
==================  ========================================================

Format version 2 adds the *succinct* section group (see
:mod:`repro.serving.succinct` and the "Succinct read path" section of
docs/operations.md): Euler-tour interval arrays (``cat_tin``/``cat_tout``),
the sparse-table LCA structure (``euler_tour``/``euler_first``/
``lca_sparse``), and delta-compressed varint postings
(``item_post_var``/``item_place_var``/``cat_items_var`` with their byte
offset arrays) that replace the dense i64 row arrays and the bit matrix
on the sparse read path. The header's ``reprs`` list records which
groups a file carries ("flat", "succinct", or both); readers pick via
the ``tree_repr`` knob and :meth:`SnapshotStore.ensure_flat` recompiles
stale or repr-missing files in place.

Sharding splits the *item* sections by ``crc32(item key) % shard_count``;
the category tree and label-search sections are replicated into every
shard, so any single shard answers ``browse``/``path``/``search`` alone
and :class:`MmapSnapshotIndexes` only fans out item lookups.
:meth:`MmapSnapshotIndexes.intersection_counts` sums the per-shard
integer counts, which is exact — sharded and unsharded answers are
identical, as the differential tests in ``tests/test_serving_shm.py``
assert against the in-memory :class:`~repro.serving.indexes.
SnapshotIndexes` for every read op.
"""

from __future__ import annotations

import json
import math
import mmap
import struct
import sys
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, Iterable, Sequence

from repro.core import bitset
from repro.observability import get_tracer
from repro.search.analyzer import tokenize
from repro.search.engine import SearchHit
from repro.serving.indexes import BaseSnapshotIndexes, SnapshotIndexes
from repro.serving.snapshot import SnapshotError, variant_from_spec, variant_spec
from repro.serving.succinct import (
    BITSET_FANIN_THRESHOLD,
    EulerTour,
    concat_postings,
    decode_postings,
)

Item = Hashable

FLAT_MAGIC = b"ROCT"
FLAT_FORMAT_VERSION = 2
_TRAILER_MAGIC = b"TROC"
_PREFIX = struct.Struct("<4sIQ")  # magic, version, header byte length
_TRAILER = struct.Struct("<4sQ")  # trailer magic, total file size

# Section element kinds -> (memoryview cast format, element size).
_KINDS = {"i64": ("q", 8), "u64": ("Q", 8), "u8": ("B", 1), "i32": ("i", 4)}

# Logical section groups: byte accounting for `repro inspect-snapshot`
# and the benchmarks, and (via _GROUPS_FOR) required-section validation.
# "tree"/"items"/"tokens" appear in every file; "dense" only when the
# header's `reprs` includes "flat", "succinct_*" only with "succinct".
SECTION_GROUPS: dict[str, tuple[str, ...]] = {
    "tree": (
        "cat_cids", "cat_parent", "cat_depth", "cat_size",
        "cat_children_off", "cat_children", "cat_label_off", "cat_labels",
        "cid_to_row",
    ),
    "items": ("item_off", "item_keys"),
    "dense": (
        "item_post_off", "item_post", "item_place_off", "item_place",
        "cat_bits",
    ),
    "succinct_tree": (
        "cat_tin", "cat_tout", "euler_tour", "euler_first", "lca_sparse",
    ),
    "succinct_postings": (
        "item_post_voff", "item_post_var", "item_place_voff",
        "item_place_var", "cat_items_voff", "cat_items_var",
    ),
    "tokens": ("tok_off", "tok_blob", "tok_df", "tok_post_off", "tok_post"),
}


def _groups_for(reprs: Sequence[str]) -> list[str]:
    """The section groups a file with these representations must carry."""
    groups = ["tree", "items"]
    if "flat" in reprs:
        groups.append("dense")
    if "succinct" in reprs:
        groups += ["succinct_tree", "succinct_postings"]
    groups.append("tokens")
    return groups


def _align8(n: int) -> int:
    return (n + 7) & ~7


def encode_item(item: Item) -> bytes | None:
    """The canonical byte key of an item (None when not encodable).

    Canonical JSON is injective over the JSON-representable items the
    snapshot payloads allow, so lookups by key agree with lookups by
    value. Query items that cannot be encoded (arbitrary hashables)
    simply miss, exactly like an unknown item.
    """
    try:
        payload = json.dumps(
            item, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError):
        return None
    return payload.encode("utf-8")


def shard_of(key: bytes, shard_count: int) -> int:
    """The shard owning an item key (deterministic across processes)."""
    return zlib.crc32(key) % shard_count if shard_count > 1 else 0


# -- compiler ----------------------------------------------------------------


class _SectionWriter:
    """Accumulates 8-aligned sections and renders the final file bytes."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._table: dict[str, dict] = {}
        self._cursor = 0

    def add(self, name: str, kind: str, payload: bytes, count: int) -> None:
        self._table[name] = {
            "offset": self._cursor, "count": count, "kind": kind
        }
        padded = payload + b"\0" * (_align8(len(payload)) - len(payload))
        self._chunks.append(padded)
        self._cursor += len(padded)

    def add_i64(self, name: str, values: Sequence[int]) -> None:
        self.add(
            name, "i64", struct.pack(f"<{len(values)}q", *values), len(values)
        )

    def add_u64(self, name: str, values: Sequence[int]) -> None:
        self.add(
            name, "u64", struct.pack(f"<{len(values)}Q", *values), len(values)
        )

    def add_i32(self, name: str, values: Sequence[int]) -> None:
        self.add(
            name, "i32", struct.pack(f"<{len(values)}i", *values), len(values)
        )

    def add_blob(self, name: str, payload: bytes) -> None:
        self.add(name, "u8", payload, len(payload))

    def render(self, header: dict) -> bytes:
        header = dict(header)
        header["sections"] = self._table
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        prefix = _PREFIX.pack(FLAT_MAGIC, FLAT_FORMAT_VERSION, len(header_bytes))
        data_start = _align8(len(prefix) + len(header_bytes))
        pad = b"\0" * (data_start - len(prefix) - len(header_bytes))
        body = b"".join([prefix, header_bytes, pad, *self._chunks])
        return body + _TRAILER.pack(
            _TRAILER_MAGIC, len(body) + _TRAILER.size
        )


def _offsets(lengths: Sequence[int]) -> list[int]:
    """Prefix-sum offsets array: ``len(lengths) + 1`` entries from 0."""
    out = [0]
    for n in lengths:
        out.append(out[-1] + n)
    return out


def compile_flat_indexes(
    indexes: SnapshotIndexes, shards: int = 1, tree_repr: str = "both"
) -> list[bytes]:
    """Serialize in-memory snapshot indexes into flat shard files.

    Compiling *from* a built :class:`SnapshotIndexes` (rather than from
    the tree directly) guarantees the flat file encodes exactly what the
    in-memory read path would answer — the differential tests then pin
    the mmap reader to it.

    ``tree_repr`` selects the emitted section groups: ``"flat"`` (dense
    i64 postings + bit matrix), ``"succinct"`` (Euler-tour intervals,
    sparse-table LCA, delta-compressed varint postings), or ``"both"``
    (the default — any reader knob works against the file).
    """
    if shards < 1:
        raise SnapshotError(f"shard count must be >= 1, got {shards}")
    if tree_repr not in ("flat", "succinct", "both"):
        raise SnapshotError(
            f"tree_repr must be 'flat', 'succinct' or 'both', "
            f"got {tree_repr!r}"
        )
    if indexes.tree_repr != "flat":
        raise SnapshotError(
            "compile_flat_indexes needs flat-repr indexes (the dense "
            "postings dicts are the compilation source); got "
            f"tree_repr={indexes.tree_repr!r}"
        )
    reprs = ["flat", "succinct"] if tree_repr == "both" else [tree_repr]
    tracer = get_tracer()
    with tracer.span("serving.compile_flat"):
        cids = list(indexes._cids)  # category pre-order, root first
        if any(cid < 0 for cid in cids):
            raise SnapshotError("flat snapshot layout requires cids >= 0")
        row_of = {cid: row for row, cid in enumerate(cids)}
        n_cats = len(cids)
        max_cid = max(cids) if cids else -1

        labels = []
        for cid in cids:
            cat = indexes.by_cid[cid]
            labels.append((cat.label or "").encode("utf-8"))
        label_offsets = _offsets([len(b) for b in labels])
        cid_to_row = [-1] * (max_cid + 1)
        for row, cid in enumerate(cids):
            cid_to_row[cid] = row

        # Token sections (replicated per shard): sorted token order makes
        # the per-token binary search possible; posting order within a
        # token is irrelevant to the (sorted) search results.
        tok_index = indexes.label_engine.index
        tokens = sorted(tok_index.postings)
        tok_blobs = [t.encode("utf-8") for t in tokens]
        tok_offsets = _offsets([len(b) for b in tok_blobs])
        tok_df = [len(tok_index.postings[t]) for t in tokens]
        tok_posts = [
            sorted(row_of[doc_id] for doc_id in tok_index.postings[t])
            for t in tokens
        ]
        tok_post_offsets = _offsets([len(p) for p in tok_posts])
        n_label_docs = len(tok_index.doc_lengths)

        # Succinct tree structure (replicated per shard, like the other
        # category sections): built once from the pre-order parent array.
        euler: EulerTour | None = None
        if "succinct" in reprs:
            euler = EulerTour.build(
                [
                    row_of[p] if (p := indexes.parent_of[cid]) is not None
                    else -1
                    for cid in cids
                ],
                [indexes.depths[cid] for cid in cids],
            )

        # Items, partitioned by key shard and sorted by key within it.
        per_shard: list[list[tuple[bytes, Item]]] = [[] for _ in range(shards)]
        for item in indexes.item_postings:
            key = encode_item(item)
            if key is None:
                raise SnapshotError(
                    "flat snapshot layout requires JSON-representable "
                    f"items, got {type(item).__name__}: {item!r}"
                )
            per_shard[shard_of(key, shards)].append((key, item))
        universe_size = len(indexes.item_postings)

        files: list[bytes] = []
        for shard_index in range(shards):
            entries = sorted(per_shard[shard_index], key=lambda kv: kv[0])
            keys = [key for key, _ in entries]
            item_offsets = _offsets([len(k) for k in keys])
            posts = [
                [row_of[cid] for cid in indexes.item_postings[item]]
                for _, item in entries
            ]
            places = [
                [row_of[cid] for cid in indexes.item_placements.get(item, ())]
                for _, item in entries
            ]
            n_words = (len(entries) + 63) >> 6

            writer = _SectionWriter()
            writer.add_i64("cat_cids", cids)
            writer.add_i64(
                "cat_parent",
                [
                    row_of[p] if (p := indexes.parent_of[cid]) is not None
                    else -1
                    for cid in cids
                ],
            )
            writer.add_i64("cat_depth", [indexes.depths[cid] for cid in cids])
            writer.add_i64("cat_size", [indexes.sizes[cid] for cid in cids])
            children = [
                [row_of[child] for child in indexes.children_of[cid]]
                for cid in cids
            ]
            writer.add_i64("cat_children_off", _offsets(map(len, children)))
            writer.add_i64(
                "cat_children", [row for per in children for row in per]
            )
            writer.add_i64("cat_label_off", label_offsets)
            writer.add_blob("cat_labels", b"".join(labels))
            writer.add_i64("cid_to_row", cid_to_row)
            writer.add_i64("item_off", item_offsets)
            writer.add_blob("item_keys", b"".join(keys))
            if "flat" in reprs:
                # Dense layout: plain i64 row arrays plus the packed
                # category-membership bit matrix over the shard's items
                # (bit i of row r <=> item i, sorted order, is in the
                # category at pre-order row r — exactly the postings
                # relation, so both read paths agree by layout).
                words = [0] * (n_cats * n_words)
                for code, rows in enumerate(posts):
                    word, bit = code >> 6, 1 << (code & 63)
                    for row in rows:
                        words[row * n_words + word] |= bit
                writer.add_i64(
                    "item_post_off", _offsets([len(p) for p in posts])
                )
                writer.add_i64("item_post", [r for per in posts for r in per])
                writer.add_i64(
                    "item_place_off", _offsets([len(p) for p in places])
                )
                writer.add_i64(
                    "item_place", [r for per in places for r in per]
                )
                writer.add_u64("cat_bits", words)
            if euler is not None:
                for name, values in euler.arrays().items():
                    writer.add_i32(name, values)
                # Delta-compressed varint postings: item -> category
                # rows, item -> minimal rows, and the transpose
                # (category row -> sorted item codes) replacing the
                # dense bit matrix on the sparse read path.
                post_blob, post_voff = concat_postings(posts)
                place_blob, place_voff = concat_postings(places)
                cat_items: list[list[int]] = [[] for _ in range(n_cats)]
                for code, rows in enumerate(posts):
                    for row in rows:
                        cat_items[row].append(code)
                items_blob, items_voff = concat_postings(cat_items)
                writer.add_i32("item_post_voff", post_voff)
                writer.add_blob("item_post_var", post_blob)
                writer.add_i32("item_place_voff", place_voff)
                writer.add_blob("item_place_var", place_blob)
                writer.add_i32("cat_items_voff", items_voff)
                writer.add_blob("cat_items_var", items_blob)
            writer.add_i64("tok_off", tok_offsets)
            writer.add_blob("tok_blob", b"".join(tok_blobs))
            writer.add_i64("tok_df", tok_df)
            writer.add_i64("tok_post_off", tok_post_offsets)
            writer.add_i64("tok_post", [r for per in tok_posts for r in per])

            files.append(
                writer.render(
                    {
                        "format": "repro-flat-snapshot",
                        "byteorder": sys.byteorder,
                        "variant": variant_spec(indexes.variant),
                        "root_cid": indexes.root_cid,
                        "n_categories": n_cats,
                        "max_cid": max_cid,
                        "universe_size": universe_size,
                        "n_label_docs": n_label_docs,
                        "shard_index": shard_index,
                        "shard_count": shards,
                        "n_shard_items": len(entries),
                        "n_words": n_words,
                        "reprs": reprs,
                        "n_euler": len(euler.tour) if euler else 0,
                        "lca_levels": euler.n_levels if euler else 0,
                    }
                )
            )
        tracer.count("serving.flat_bytes", sum(len(f) for f in files))
    return files


# -- reader ------------------------------------------------------------------


def flat_header(path: str | Path) -> tuple[int, dict]:
    """``(format_version, header dict)`` of a flat file, without mapping.

    Validates only the prefix (magic + header JSON); section payloads and
    the trailer are not touched, so this works on any version — it is
    how :meth:`SnapshotStore.ensure_flat` detects stale files that need
    an in-place recompile.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        prefix = fh.read(_PREFIX.size)
        if len(prefix) < _PREFIX.size:
            raise SnapshotError(
                f"flat snapshot {path} is truncated "
                f"({len(prefix)} bytes is smaller than any valid file)"
            )
        magic, version, header_len = _PREFIX.unpack(prefix)
        if magic != FLAT_MAGIC:
            raise SnapshotError(
                f"{path} is not a flat snapshot "
                f"(bad magic {magic!r}, expected {FLAT_MAGIC!r})"
            )
        header_bytes = fh.read(header_len)
        if len(header_bytes) < header_len:
            raise SnapshotError(f"flat snapshot {path} header overruns the file")
        try:
            header = json.loads(header_bytes)
        except json.JSONDecodeError as exc:
            raise SnapshotError(
                f"flat snapshot {path} has a corrupt header"
            ) from exc
    return version, header


def flat_format_version(path: str | Path) -> int:
    """The on-disk format version of one flat shard file."""
    return flat_header(path)[0]


def describe_flat(path: str | Path) -> dict:
    """The section table of one flat shard, for ``repro inspect-snapshot``.

    Returns ``{"path", "format_version", "header", "file_bytes",
    "sections": [{"name", "group", "kind", "count", "bytes"}, ...]}``
    with sections in file-offset order. Works on any readable version —
    unknown sections land in group ``"?"``.
    """
    path = Path(path)
    version, header = flat_header(path)
    group_of = {
        name: group
        for group, names in SECTION_GROUPS.items()
        for name in names
    }
    sections = []
    for name, spec in sorted(
        header.get("sections", {}).items(), key=lambda kv: kv[1]["offset"]
    ):
        width = _KINDS.get(spec["kind"], (None, 1))[1]
        sections.append(
            {
                "name": name,
                "group": group_of.get(name, "?"),
                "kind": spec["kind"],
                "count": spec["count"],
                "bytes": spec["count"] * width,
            }
        )
    return {
        "path": str(path),
        "format_version": version,
        "header": {
            k: v for k, v in header.items() if k != "sections"
        },
        "file_bytes": path.stat().st_size,
        "sections": sections,
    }


@dataclass(frozen=True)
class FlatCategory:
    """A lightweight category view resolved from the flat layout."""

    cid: int
    label: str | None
    depth: int
    n_items: int


class _FlatShard:
    """One mapped shard file: validated header + zero-copy section views."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = open(self.path, "rb")
        try:
            size = self.path.stat().st_size
            if size < _PREFIX.size + _TRAILER.size:
                raise SnapshotError(
                    f"flat snapshot {self.path} is truncated "
                    f"({size} bytes is smaller than any valid file)"
                )
            self._mm = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except SnapshotError:
            self._file.close()
            raise
        except OSError as exc:
            self._file.close()
            raise SnapshotError(
                f"cannot map flat snapshot {self.path}: {exc}"
            ) from exc
        try:
            self.header = self._validate(size)
            view = memoryview(self._mm)
            data_start = _align8(_PREFIX.size + len(self._header_bytes))
            self._views: dict[str, memoryview] = {}
            for name, spec in self.header["sections"].items():
                fmt, width = _KINDS[spec["kind"]]
                lo = data_start + spec["offset"]
                hi = lo + spec["count"] * width
                if hi > size - _TRAILER.size:
                    raise SnapshotError(
                        f"flat snapshot {self.path}: section {name!r} "
                        "extends past the end of the file"
                    )
                self._views[name] = view[lo:hi].cast(fmt)
            self.reprs = tuple(self.header.get("reprs", ["flat"]))
            for group in _groups_for(self.reprs):
                for name in SECTION_GROUPS[group]:
                    if name not in self._views:
                        raise SnapshotError(
                            f"flat snapshot {self.path} is missing "
                            f"section {name!r}"
                        )
        except Exception:
            self.close()
            raise
        self._matrix = None  # lazy numpy view over cat_bits
        self._var_cache: dict[str, tuple[memoryview, memoryview]] = {}

    def _validate(self, size: int) -> dict:
        magic, version, header_len = _PREFIX.unpack(
            self._mm[: _PREFIX.size]
        )
        if magic != FLAT_MAGIC:
            raise SnapshotError(
                f"{self.path} is not a flat snapshot "
                f"(bad magic {magic!r}, expected {FLAT_MAGIC!r})"
            )
        if version > FLAT_FORMAT_VERSION:
            raise SnapshotError(
                f"flat snapshot format version {version} is newer than "
                f"supported version {FLAT_FORMAT_VERSION}; upgrade repro "
                "to read it"
            )
        if version != FLAT_FORMAT_VERSION:
            raise SnapshotError(
                f"unsupported flat snapshot format version {version!r} "
                f"(supported: {FLAT_FORMAT_VERSION}); recompile it with "
                "SnapshotStore.ensure_flat"
            )
        trailer = self._mm[size - _TRAILER.size:]
        t_magic, t_size = _TRAILER.unpack(trailer)
        if t_magic != _TRAILER_MAGIC or t_size != size:
            raise SnapshotError(
                f"flat snapshot {self.path} is torn or truncated "
                f"(trailer records {t_size} bytes, file has {size})"
            )
        if _PREFIX.size + header_len > size - _TRAILER.size:
            raise SnapshotError(
                f"flat snapshot {self.path} header overruns the file"
            )
        self._header_bytes = self._mm[_PREFIX.size: _PREFIX.size + header_len]
        try:
            header = json.loads(self._header_bytes)
        except json.JSONDecodeError as exc:
            raise SnapshotError(
                f"flat snapshot {self.path} has a corrupt header"
            ) from exc
        if header.get("byteorder") != sys.byteorder:
            raise SnapshotError(
                f"flat snapshot {self.path} was written on a "
                f"{header.get('byteorder')}-endian machine; this one is "
                f"{sys.byteorder}-endian"
            )
        return header

    # -- item lookup -------------------------------------------------------

    def find_item(self, key: bytes) -> int | None:
        """Binary search the sorted key blob; item code or None."""
        offsets, blob = self._views["item_off"], self._views["item_keys"]
        lo, hi = 0, len(offsets) - 1
        while lo < hi:
            mid = (lo + hi) >> 1
            probe = bytes(blob[offsets[mid]: offsets[mid + 1]])
            if probe < key:
                lo = mid + 1
            elif probe > key:
                hi = mid
            else:
                return mid
        return None

    def item_rows(self, section: str, code: int) -> memoryview:
        """The ``item_post``/``item_place`` row slice of one item code."""
        offsets = self._views[f"{section}_off"]
        return self._views[section][offsets[code]: offsets[code + 1]]

    def var_views(self, section: str) -> tuple[memoryview, memoryview]:
        """Cached ``(offsets, blob)`` view pair of one varint section."""
        try:
            return self._var_cache[section]
        except KeyError:
            pair = (
                self._views[section + "_voff"],
                self._views[section + "_var"],
            )
            self._var_cache[section] = pair
            return pair

    @property
    def matrix(self):
        """The ``(n_categories, n_words)`` uint64 bit matrix (zero copy)."""
        if self._matrix is None:
            import numpy as np

            spec = self.header["sections"]["cat_bits"]
            data_start = _align8(_PREFIX.size + len(self._header_bytes))
            self._matrix = np.frombuffer(
                self._mm,
                dtype=np.uint64,
                count=spec["count"],
                offset=data_start + spec["offset"],
            ).reshape(self.header["n_categories"], self.header["n_words"])
        return self._matrix

    def find_token(self, token: str) -> int | None:
        """Binary search the sorted token blob; token index or None."""
        key = token.encode("utf-8")
        offsets, blob = self._views["tok_off"], self._views["tok_blob"]
        lo, hi = 0, len(offsets) - 1
        while lo < hi:
            mid = (lo + hi) >> 1
            probe = bytes(blob[offsets[mid]: offsets[mid + 1]])
            if probe < key:
                lo = mid + 1
            elif probe > key:
                hi = mid
            else:
                return mid
        return None

    def close(self) -> None:
        # Closing the descriptor releases the fd immediately; the mapping
        # itself stays valid for any live views and is reclaimed with
        # them. Idempotent: a second close is a no-op.
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "_FlatShard":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _RowMapping:
    """cid-keyed read-only mapping over a per-row i64 section view."""

    __slots__ = ("_shard", "_view")

    def __init__(self, shard: _FlatShard, name: str) -> None:
        self._shard = shard
        self._view = shard._views[name]

    def _row(self, cid: int) -> int:
        cid_to_row = self._shard._views["cid_to_row"]
        if isinstance(cid, int) and 0 <= cid < len(cid_to_row):
            row = cid_to_row[cid]
            if row >= 0:
                return row
        raise KeyError(cid)

    def __getitem__(self, cid: int) -> int:
        return self._view[self._row(cid)]

    def __contains__(self, cid) -> bool:
        try:
            self._row(cid)
        except (KeyError, TypeError):
            return False
        return True

    def __len__(self) -> int:
        return self._shard.header["n_categories"]

    def __iter__(self):
        return iter(self._shard._views["cat_cids"])


class _ParentMapping(_RowMapping):
    """cid -> parent cid (None at the root), resolved through rows."""

    def __getitem__(self, cid: int) -> int | None:
        parent_row = self._view[self._row(cid)]
        if parent_row < 0:
            return None
        return self._shard._views["cat_cids"][parent_row]


class _ChildrenMapping(_RowMapping):
    """cid -> tuple of child cids, in tree (pre-)order."""

    def __init__(self, shard: _FlatShard) -> None:
        super().__init__(shard, "cat_children_off")

    def __getitem__(self, cid: int) -> tuple[int, ...]:
        row = self._row(cid)
        children = self._shard._views["cat_children"]
        cat_cids = self._shard._views["cat_cids"]
        return tuple(
            cat_cids[child_row]
            for child_row in children[self._view[row]: self._view[row + 1]]
        )


class MmapSnapshotIndexes(BaseSnapshotIndexes):
    """The :class:`SnapshotIndexes` read API over mmap'ed flat shards.

    Answers are asserted byte-identical to the in-memory indexes (same
    integers, same IEEE floats — the scoring loop itself is shared via
    :class:`BaseSnapshotIndexes`). All per-category state is read through
    zero-copy views of the shared mapping; the only per-process memory is
    this object and the tiny header dicts.
    """

    def __init__(
        self,
        paths: Sequence[str | Path],
        use_bitset: bool | None = None,
        tree_repr: str | None = None,
    ) -> None:
        if not paths:
            raise SnapshotError("no flat snapshot shard files to map")
        shards = [_FlatShard(p) for p in paths]
        try:
            shards.sort(key=lambda s: s.header["shard_index"])
            first = shards[0].header
            expected = first["shard_count"]
            if len(shards) != expected or [
                s.header["shard_index"] for s in shards
            ] != list(range(expected)):
                raise SnapshotError(
                    f"expected {expected} flat shards, got "
                    f"{[s.header['shard_index'] for s in shards]}"
                )
            for shard in shards[1:]:
                for field in ("variant", "root_cid", "n_categories",
                              "universe_size", "shard_count"):
                    if shard.header[field] != first[field]:
                        raise SnapshotError(
                            f"flat shard {shard.path} disagrees with "
                            f"{shards[0].path} on {field!r}"
                        )
            reprs = shards[0].reprs
            if tree_repr is None:
                # Auto: prefer the dense layout when present (the
                # serving default), fall back to whatever the file has.
                tree_repr = "flat" if "flat" in reprs else "succinct"
            if tree_repr not in reprs:
                raise SnapshotError(
                    f"flat snapshot {shards[0].path} does not carry the "
                    f"{tree_repr!r} representation (has: {list(reprs)}); "
                    "recompile with SnapshotStore.ensure_flat"
                )
        except Exception:
            for shard in shards:
                shard.close()
            raise
        self._shards = shards
        self._tree_shard = shards[0]  # category/token sections: any shard
        self.tree_repr = tree_repr
        self.variant = variant_from_spec(first["variant"])
        self.root_cid = int(first["root_cid"])
        self._n_categories = int(first["n_categories"])
        self._n_label_docs = int(first["n_label_docs"])
        self.sizes = _RowMapping(self._tree_shard, "cat_size")
        self.depths = _RowMapping(self._tree_shard, "cat_depth")
        self.parent_of = _ParentMapping(self._tree_shard, "cat_parent")
        self.children_of = _ChildrenMapping(self._tree_shard)
        self._use_bitset = "cat_bits" in self._tree_shard._views and (
            bitset.should_use(
                self._n_categories, int(first["universe_size"]), use_bitset
            )
        )
        if tree_repr == "succinct":
            # Zero-copy views drive the exact same EulerTour query code
            # the in-memory backend runs over plain lists.
            views = self._tree_shard._views
            self._euler = EulerTour(
                parent=views["cat_parent"],
                depth=views["cat_depth"],
                tin=views["cat_tin"],
                tout=views["cat_tout"],
                tour=views["euler_tour"],
                first=views["euler_first"],
                sparse=views["lca_sparse"],
                n_levels=int(first["lca_levels"]),
            )

    # -- simple lookups ------------------------------------------------------

    @property
    def n_categories(self) -> int:
        return self._n_categories

    @property
    def uses_bitset(self) -> bool:
        return self._use_bitset

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def _row(self, cid: int) -> int:
        return self.sizes._row(cid)

    def _row_of(self, cid: int) -> int:
        return self.sizes._row(cid)

    def _cid_of(self, row: int) -> int:
        return self._tree_shard._views["cat_cids"][row]

    @staticmethod
    def _var_rows(shard: _FlatShard, section: str, code: int) -> Sequence[int]:
        """Decode one item's varint row list from a succinct section."""
        voff, blob = shard.var_views(section)
        lo, hi = voff[code], voff[code + 1]
        if hi - lo == 1:
            # One posting with gap < 128 — a single byte holding
            # value + 1 (gaps are taken against -1). Placements lists
            # are overwhelmingly singletons, so skip the decoder loop.
            return (blob[lo] - 1,)
        return decode_postings(blob[lo:hi])

    def _raw_label(self, row: int) -> str:
        shard = self._tree_shard
        offsets = shard._views["cat_label_off"]
        return bytes(
            shard._views["cat_labels"][offsets[row]: offsets[row + 1]]
        ).decode("utf-8")

    def category(self, cid: int) -> FlatCategory:
        """The category view for a cid; raises ``KeyError`` when unknown."""
        row = self._row(cid)
        shard = self._tree_shard
        return FlatCategory(
            cid=cid,
            label=self._raw_label(row) or None,
            depth=shard._views["cat_depth"][row],
            n_items=shard._views["cat_size"][row],
        )

    def label_of(self, cid: int) -> str:
        return self._raw_label(self._row(cid)) or f"C{cid}"

    def _item_cids(self, item: Item, section: str) -> tuple[int, ...]:
        key = encode_item(item)
        if key is None:
            return ()
        shard = self._shards[shard_of(key, len(self._shards))]
        code = shard.find_item(key)
        if code is None:
            return ()
        cat_cids = shard._views["cat_cids"]
        if self.tree_repr == "succinct":
            get_tracer().count("serving.succinct.postings_decoded")
            rows = self._var_rows(shard, section, code)
        else:
            rows = shard.item_rows(section, code)
        return tuple(cat_cids[row] for row in rows)

    def placements(self, item: Item) -> tuple[int, ...]:
        """The most-specific categories containing an item (pre-order)."""
        return self._item_cids(item, "item_place")

    def postings(self, item: Item) -> tuple[int, ...]:
        """All categories containing an item (pre-order)."""
        return self._item_cids(item, "item_post")

    # -- label search --------------------------------------------------------

    def _idf(self, df: int) -> float:
        # Identical arithmetic to repro.search.index.InvertedIndex.idf.
        return math.log(1.0 + self._n_label_docs / (1.0 + df))

    def find_labels(self, query: str, top_k: int | None = 10):
        """Scored label hits, replicating ``SearchEngine.search`` exactly.

        Same tokenization, same idf smoothing, same (sorted-token) weight
        accumulation order — so relevance floats match the in-memory
        engine bit for bit, in any process.
        """
        shard = self._tree_shard
        tokens = tokenize(query)
        if not tokens:
            return []
        weights: dict[str, float] = {}
        token_ids: dict[str, int | None] = {}
        for token in sorted(set(tokens)):
            ti = shard.find_token(token)
            token_ids[token] = ti
            df = shard._views["tok_df"][ti] if ti is not None else 0
            weights[token] = self._idf(df)
        best_possible = sum(weights.values())
        if best_possible <= 0:
            return []
        cat_cids = shard._views["cat_cids"]
        tok_post = shard._views["tok_post"]
        tok_post_off = shard._views["tok_post_off"]
        scores: dict[int, float] = {}
        for token, weight in weights.items():
            ti = token_ids[token]
            if ti is None:
                continue
            for i in range(tok_post_off[ti], tok_post_off[ti + 1]):
                doc_id = cat_cids[tok_post[i]]
                scores[doc_id] = scores.get(doc_id, 0.0) + weight
        hits = [
            SearchHit(doc_id=doc_id, relevance=score / best_possible)
            for doc_id, score in scores.items()
        ]
        hits.sort(key=lambda h: (-h.relevance, str(h.doc_id)))
        if top_k is not None:
            hits = hits[:top_k]
        return hits

    # -- query scoring -------------------------------------------------------

    def intersection_counts(self, items: frozenset) -> dict[int, int]:
        """``{cid: |q ∩ C|}`` for the nonzero categories, pre-order.

        Item codes resolve in their owning shard; per-shard counts come
        from one AND+popcount pass over the mapped bit matrix (or the
        postings fallback) and sum exactly across shards.
        """
        n_shards = len(self._shards)
        codes_per_shard: list[list[int]] = [[] for _ in range(n_shards)]
        n_known = 0
        for item in items:
            key = encode_item(item)
            if key is None:
                continue
            shard_index = shard_of(key, n_shards)
            code = self._shards[shard_index].find_item(key)
            if code is not None:
                codes_per_shard[shard_index].append(code)
                n_known += 1
        if self.tree_repr == "succinct":
            if not n_known:
                return {}
            # Large fan-in amortizes the dense AND+popcount pass (when
            # the file carries cat_bits); small queries decode a handful
            # of varint rows. Both arms emit row-ascending dicts.
            if self._use_bitset and n_known >= BITSET_FANIN_THRESHOLD:
                get_tracer().count("serving.succinct.bitset_fanin")
                return self._bitset_counts(codes_per_shard)
            get_tracer().count(
                "serving.succinct.postings_decoded", n_known
            )
            counts: dict[int, int] = {}
            for shard_index, codes in enumerate(codes_per_shard):
                shard = self._shards[shard_index]
                for code in codes:
                    for row in self._var_rows(shard, "item_post", code):
                        counts[row] = counts.get(row, 0) + 1
            cat_cids = self._tree_shard._views["cat_cids"]
            return {
                cat_cids[row]: counts[row] for row in sorted(counts)
            }
        if self._use_bitset:
            return self._bitset_counts(codes_per_shard)
        counts = {}
        for shard_index, codes in enumerate(codes_per_shard):
            shard = self._shards[shard_index]
            for code in codes:
                for row in shard.item_rows("item_post", code):
                    counts[row] = counts.get(row, 0) + 1
        cat_cids = self._tree_shard._views["cat_cids"]
        return {
            cat_cids[row]: counts[row]
            for row in range(self._n_categories)
            if row in counts
        }

    def _bitset_counts(
        self, codes_per_shard: Sequence[Sequence[int]]
    ) -> dict[int, int]:
        """One AND+popcount pass per shard, summed exactly across shards."""
        import numpy as np

        total = None
        for shard_index, codes in enumerate(codes_per_shard):
            if not codes:
                continue
            shard = self._shards[shard_index]
            packed = np.zeros(shard.header["n_words"], dtype=np.uint64)
            arr = np.asarray(codes, dtype=np.int64)
            np.bitwise_or.at(
                packed,
                arr >> 6,
                np.uint64(1) << (arr & 63).astype(np.uint64),
            )
            sizes = bitset._popcount(shard.matrix & packed).sum(
                -1, dtype=np.int64
            )
            total = sizes if total is None else total + sizes
        if total is None:
            return {}
        cat_cids = self._tree_shard._views["cat_cids"]
        return {
            cat_cids[row]: int(common)
            for row, common in enumerate(total.tolist())
            if common
        }

    # `path_to_root` and `best_category` are inherited from
    # BaseSnapshotIndexes — literally the same code the in-memory
    # SnapshotIndexes runs.

    def close(self) -> None:
        """Release the shard file descriptors (mappings follow their views)."""
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "MmapSnapshotIndexes":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def prepare_mmap_generation(
    store,
    snapshot_id: str | None = None,
    use_bitset: bool | None = None,
    tree_repr: str | None = None,
):
    """Prepare (not publish) an mmap-backed generation from a store.

    The counterpart of :func:`repro.serving.engine.prepare_generation`
    for worker processes: no tree or instance is deserialized — the flat
    shard files are mapped read-only (compiled on demand for stores
    written before the flat layout existed) and the generation carries
    ``tree=None, instance=None``.
    """
    from repro.serving.engine import Generation

    if snapshot_id is None:
        snapshot_id = store.current_id()
        if snapshot_id is None:
            raise SnapshotError(f"no current snapshot in {store.root}")
    tracer = get_tracer()
    with tracer.span("serving.prepare_mmap"):
        paths = store.ensure_flat(snapshot_id)
        indexes = MmapSnapshotIndexes(
            paths, use_bitset=use_bitset, tree_repr=tree_repr
        )
    return Generation(
        tree=None,
        instance=None,
        variant=indexes.variant,
        indexes=indexes,
        snapshot_id=snapshot_id,
    )
