"""Multi-process serving: N SO_REUSEPORT workers over one mmap snapshot.

The single-process tier keeps every read under one GIL; this supervisor
runs N worker *processes* instead, each a full
:class:`~repro.serving.http.ServingHTTPServer` bound to the same
host:port with ``SO_REUSEPORT`` — the kernel load-balances connections
across the workers, no userspace proxy. Every worker maps the same
read-only flat snapshot (:mod:`repro.serving.shm`), so the indexes
exist once in the page cache no matter how many workers serve them.

Generation flips stay coordinated through the store's ``CURRENT``
pointer, exactly like the single-process tier: a publisher (any
process) saves + activates a snapshot, and each worker's poller thread
notices the pointer change and hot-swaps its engine through the mmap
backend. Between the publish and the last worker's poll tick, requests
are answered by *either* the old or the new generation — never a torn
mix — and every response says which via its ``X-Repro-Snapshot`` /
``X-Repro-Generation`` headers (the cross-process consistency tests
assert exactly that).

The parent process never serves; it watches its children and respawns
any that die (crash, ``kill -9``) unless the supervisor is stopping.
Worker liveness and respawn counts are exported as
``serving.workers.*`` gauges (manifest schema v5).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass

from repro.observability import get_tracer
from repro.serving.engine import ServingEngine
from repro.serving.http import make_server
from repro.serving.shm import prepare_mmap_generation
from repro.serving.snapshot import SnapshotError, SnapshotStore


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs (picklable for spawn starts)."""

    store_root: str
    host: str
    port: int
    cache_size: int = 4096
    use_bitset: bool | None = None
    poll_interval: float = 0.25
    quiet: bool = True
    max_requests: int | None = None
    tree_repr: str | None = None


def _poll_current(server, store: SnapshotStore, interval: float) -> None:
    """Worker poller: follow the store's CURRENT pointer, flip on change."""
    while True:
        time.sleep(interval)
        try:
            current = store.current_id()
            if current is None:
                continue
            _, serving = server.engine.generation_info()
            if current != serving:
                server.swapper.swap_from_store(store, current)
        except Exception:
            # A half-published snapshot or racing compile: retry on the
            # next tick; the engine keeps serving its generation.
            get_tracer().count("serving.workers.poll_errors")


def _worker_main(config: WorkerConfig, worker_id: int, ready) -> None:
    """One worker process: mmap the CURRENT snapshot and serve it."""
    # A clean SIGTERM exit keeps 'supervisor.stop()' quiet; anything
    # harder (SIGKILL) is what the watchdog respawn path is for.
    signal.signal(signal.SIGTERM, lambda *_: os._exit(0))
    store = SnapshotStore(config.store_root)
    engine = ServingEngine(cache_size=config.cache_size)
    engine.publish(
        prepare_mmap_generation(
            store, use_bitset=config.use_bitset, tree_repr=config.tree_repr
        )
    )
    server = make_server(
        engine,
        host=config.host,
        port=config.port,
        store=store,
        max_requests=config.max_requests,
        quiet=config.quiet,
        reuse_port=True,
        worker_id=worker_id,
        backend="mmap",
        tree_repr=config.tree_repr,
    )
    threading.Thread(
        target=_poll_current,
        args=(server, store, config.poll_interval),
        name="repro-serving-poll",
        daemon=True,
    ).start()
    ready.set()  # the socket is bound + listening; flag readiness
    try:
        server.serve_forever()
    finally:
        server.server_close()


def _free_port(host: str) -> int:
    """Reserve-and-release a free TCP port on ``host``."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.bind((host, 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


class ServingSupervisor:
    """Fork, watch, and respawn N SO_REUSEPORT serving workers."""

    def __init__(
        self,
        store: SnapshotStore | str | os.PathLike,
        n_workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 4096,
        use_bitset: bool | None = None,
        poll_interval: float = 0.25,
        quiet: bool = True,
        max_requests: int | None = None,
        start_method: str | None = None,
        tree_repr: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.store = (
            store if isinstance(store, SnapshotStore) else SnapshotStore(store)
        )
        self.n_workers = n_workers
        self.host = host
        self.port = port  # 0 -> resolved by start()
        self.cache_size = cache_size
        self.use_bitset = use_bitset
        self.poll_interval = poll_interval
        self.quiet = quiet
        self.max_requests = max_requests
        self.tree_repr = tree_repr
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)
        self._procs: list = [None] * n_workers
        self._events: list = [None] * n_workers
        self.respawns = 0
        self._stopping = threading.Event()
        self._watchdog: threading.Thread | None = None
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self, ready_timeout: float = 60.0) -> "ServingSupervisor":
        """Resolve the port, spawn every worker, wait until all serve."""
        if self.store.current_id() is None:
            raise SnapshotError(
                f"no current snapshot in {self.store.root}; publish one "
                "before starting workers"
            )
        if self.port == 0:
            # SO_REUSEPORT needs one concrete port for every worker; a
            # reserve-and-release probe picks it (the tiny window before
            # the first worker binds is test-only surface).
            self.port = _free_port(self.host)
        for worker_id in range(self.n_workers):
            self._spawn(worker_id)
        self.wait_ready(ready_timeout)
        self._watchdog = threading.Thread(
            target=self._watch, name="repro-serving-watchdog", daemon=True
        )
        self._watchdog.start()
        self._gauge()
        return self

    def _config(self) -> WorkerConfig:
        return WorkerConfig(
            store_root=str(self.store.root),
            host=self.host,
            port=self.port,
            cache_size=self.cache_size,
            use_bitset=self.use_bitset,
            poll_interval=self.poll_interval,
            quiet=self.quiet,
            max_requests=self.max_requests,
            tree_repr=self.tree_repr,
        )

    def _spawn(self, worker_id: int) -> None:
        event = self._ctx.Event()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._config(), worker_id, event),
            name=f"repro-serving-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        self._procs[worker_id] = proc
        self._events[worker_id] = event

    def wait_ready(self, timeout: float = 60.0) -> None:
        """Block until every worker has bound its socket (or raise)."""
        deadline = time.monotonic() + timeout
        for worker_id, event in enumerate(self._events):
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not event.wait(remaining):
                raise SnapshotError(
                    f"worker {worker_id} did not become ready within "
                    f"{timeout:.0f}s"
                )

    def _watch(self) -> None:
        """Respawn dead workers until the supervisor stops.

        With ``max_requests`` set, workers exiting after their request
        budget is the *expected* end state, so the watchdog only
        observes — it never respawns.
        """
        while not self._stopping.is_set():
            for worker_id, proc in enumerate(self._procs):
                if proc is None or proc.is_alive():
                    continue
                if self._stopping.is_set() or self.max_requests is not None:
                    continue
                proc.join()
                with self._lock:
                    self.respawns += 1
                get_tracer().count("serving.workers.respawned")
                self._spawn(worker_id)
                self._gauge()
            self._stopping.wait(0.1)

    def stop(self, timeout: float = 10.0) -> None:
        """Terminate every worker and join them; idempotent."""
        self._stopping.set()
        if self._watchdog is not None and self._watchdog.is_alive():
            self._watchdog.join(timeout)
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(1.0)
        self._gauge()

    def join(self) -> None:
        """Wait for every worker to exit on its own (max_requests runs)."""
        for proc in self._procs:
            if proc is not None:
                proc.join()

    def __enter__(self) -> "ServingSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- introspection -------------------------------------------------------

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def pids(self) -> list[int | None]:
        return [p.pid if p is not None else None for p in self._procs]

    def alive_count(self) -> int:
        return sum(
            1 for p in self._procs if p is not None and p.is_alive()
        )

    def kill_worker(self, worker_id: int, sig: int = signal.SIGKILL) -> int:
        """Send a signal to one worker (crash injection); returns its pid."""
        proc = self._procs[worker_id]
        if proc is None or proc.pid is None:
            raise ValueError(f"worker {worker_id} is not running")
        pid = proc.pid
        os.kill(pid, sig)
        return pid

    def _gauge(self) -> None:
        tracer = get_tracer()
        for name, value in self.gauges().items():
            tracer.gauge(name, value)

    def gauges(self) -> dict[str, float]:
        """The ``serving.workers.*`` gauges (manifest schema v5)."""
        return {
            "serving.workers.count": self.alive_count(),
            "serving.workers.configured": self.n_workers,
            "serving.workers.respawns": self.respawns,
        }
