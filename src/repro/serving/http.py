"""Zero-dependency HTTP/JSON frontend for a :class:`ServingEngine`.

Built on the standard library's ``ThreadingHTTPServer`` so the serving
layer needs nothing the container does not already have. One handler
thread per connection; every handler reads the engine's current
generation independently, so a hot swap never blocks or drops a request.

Endpoints (all JSON):

========================  =====================================================
``GET /healthz``          liveness + serving generation/snapshot
``GET /stats``            :meth:`ServingEngine.stats` (cache, latency, ops)
``GET /categorize?item=`` the item's branch placements
``GET /categorize-batch?items=a,b,c``
                          batched categorize: one placement list per
                          item (succinct generations share path
                          prefixes through one LCA sweep)
``GET /best-category?items=a,b,c[&delta=0.7][&variant=spec]``
                          best-scoring category for a query result set
``GET /browse[?cid=N]``   one navigation page (root when ``cid`` omitted)
``GET /path?cid=N``       root-to-category breadcrumb
``GET /search?q=text[&top_k=N]``
                          free-text label search over categories
``GET /categorize-query?q=text`` or ``?queries=a|b|c``
                          staged free-text query categorization (exact
                          label hit -> token overlap -> hierarchy
                          back-off); optional ``threshold=0.5`` and
                          ``top_k=N`` knobs, ``queries`` (pipe-
                          separated) for a batch
``POST /admin/swap``      hot-swap to a stored snapshot
                          (body: ``{"snapshot_id": "..."}``; empty body
                          reloads the store's CURRENT snapshot)
========================  =====================================================

Errors: 400 on malformed parameters, 404 on unknown paths/cids, 409 when
``/admin/swap`` is called on a server without a snapshot store.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.serving.engine import ServingEngine
from repro.serving.hotswap import HotSwapper
from repro.serving.snapshot import SnapshotError, SnapshotStore, variant_from_spec


class _BadRequest(Exception):
    """Maps to a 400 response with the message as the error body."""


class ServingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one engine (and optional store).

    With ``reuse_port`` the listening socket is bound with
    ``SO_REUSEPORT``, so N worker processes share one port and the
    kernel load-balances connections across them (see
    :mod:`repro.serving.supervisor`). ``worker_id`` and the serving
    generation are stamped on every response (``X-Repro-Worker``,
    ``X-Repro-Generation``, ``X-Repro-Snapshot``), making each answer
    attributable to exactly one worker and one generation.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: ServingEngine,
        store: SnapshotStore | None = None,
        max_requests: int | None = None,
        quiet: bool = True,
        reuse_port: bool = False,
        worker_id: int | None = None,
        backend: str = "object",
        tree_repr: str | None = None,
    ) -> None:
        # server_bind runs inside super().__init__, so the bind options
        # must be set first.
        self.reuse_port = reuse_port
        super().__init__(address, _Handler)
        self.engine = engine
        self.store = store
        self.swapper = HotSwapper(engine, backend=backend, tree_repr=tree_repr)
        self.quiet = quiet
        self.max_requests = max_requests
        self.worker_id = worker_id
        self._handled = 0
        self._handled_lock = threading.Lock()
        self._serving_thread: threading.Thread | None = None

    def server_bind(self) -> None:
        if self.reuse_port:
            # Python 3.11+ has allow_reuse_port; setting the option
            # directly keeps 3.10 workers on the same code path.
            self.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
        super().server_bind()

    def stop(self, timeout: float = 5.0) -> None:
        """Shut down, join the serving thread, and release the port.

        Safe ordering for tests and supervisors: ``shutdown()`` stops
        the accept loop, the join waits for :func:`serve_in_background`'s
        thread to actually exit, and ``server_close()`` closes the
        listening socket — on return the port is rebindable and no
        serving thread is leaked.
        """
        self.shutdown()
        thread = self._serving_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
        self.server_close()

    def note_request_handled(self) -> None:
        """Count a finished request; shut down at ``max_requests``."""
        if self.max_requests is None:
            return
        with self._handled_lock:
            self._handled += 1
            done = self._handled >= self.max_requests
        if done:
            # shutdown() blocks until serve_forever exits, so it must run
            # off the handler thread.
            threading.Thread(target=self.shutdown, daemon=True).start()


class _Handler(BaseHTTPRequestHandler):
    server: ServingHTTPServer  # narrowed for readability

    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict | list) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        # Attribution: the exact generation the op computed against
        # (thread-local marker), falling back to the current one for
        # endpoints that never touch the read path (healthz, errors).
        marker = self.server.engine.pop_served_marker()
        if marker is None:
            marker = self.server.engine.generation_info()
        number, snapshot_id = marker
        self.send_header("X-Repro-Generation", str(number))
        if snapshot_id:
            self.send_header("X-Repro-Snapshot", snapshot_id)
        if self.server.worker_id is not None:
            self.send_header("X-Repro-Worker", str(self.server.worker_id))
        self.end_headers()
        self.wfile.write(body)
        self.server.note_request_handled()

    def _params(self) -> dict[str, str]:
        query = urlsplit(self.path).query
        return {k: v[-1] for k, v in parse_qs(query).items()}

    def _require(self, params: dict[str, str], name: str) -> str:
        try:
            return params[name]
        except KeyError:
            raise _BadRequest(f"missing query parameter {name!r}") from None

    def _int_param(self, params: dict[str, str], name: str) -> int:
        raw = self._require(params, name)
        try:
            return int(raw)
        except ValueError:
            raise _BadRequest(f"{name} must be an integer, got {raw!r}") from None

    def _float_param(self, params: dict[str, str], name: str) -> float:
        raw = self._require(params, name)
        try:
            return float(raw)
        except ValueError:
            raise _BadRequest(f"{name} must be a float, got {raw!r}") from None

    # -- dispatch ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        route = urlsplit(self.path).path
        # Keep-alive reuses this thread: drop any marker a previous
        # request on the connection left behind.
        self.server.engine.pop_served_marker()
        try:
            handler = {
                "/healthz": self._get_healthz,
                "/stats": self._get_stats,
                "/categorize": self._get_categorize,
                "/categorize-batch": self._get_categorize_batch,
                "/best-category": self._get_best_category,
                "/browse": self._get_browse,
                "/path": self._get_path,
                "/search": self._get_search,
                "/categorize-query": self._get_categorize_query,
            }.get(route)
            if handler is None:
                self._reply(404, {"error": f"unknown path {route!r}"})
                return
            handler()
        except _BadRequest as exc:
            self._reply(400, {"error": str(exc)})
        except KeyError as exc:
            self._reply(404, {"error": f"unknown category {exc}"})
        except Exception as exc:  # pragma: no cover - defensive 500
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        route = urlsplit(self.path).path
        self.server.engine.pop_served_marker()
        try:
            if route != "/admin/swap":
                self._reply(404, {"error": f"unknown path {route!r}"})
                return
            self._post_swap()
        except _BadRequest as exc:
            self._reply(400, {"error": str(exc)})
        except SnapshotError as exc:
            self._reply(404, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive 500
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- GET endpoints -------------------------------------------------------

    def _get_healthz(self) -> None:
        engine = self.server.engine
        gen = engine.current
        self._reply(
            200,
            {
                "status": "ok",
                "generation": gen.number,
                "snapshot_id": gen.snapshot_id,
            },
        )

    def _get_stats(self) -> None:
        self._reply(200, self.server.engine.stats())

    def _get_categorize(self) -> None:
        params = self._params()
        item = self._require(params, "item")
        placements = self.server.engine.categorize_item(item)
        self._reply(200, {"item": item, "placements": placements})

    def _get_categorize_batch(self) -> None:
        params = self._params()
        raw_items = self._require(params, "items")
        items = [i for i in raw_items.split(",") if i]
        if not items:
            raise _BadRequest("items must be a non-empty comma-separated list")
        results = self.server.engine.categorize_items(items)
        self._reply(200, {"items": items, "results": results})

    def _get_best_category(self) -> None:
        params = self._params()
        raw_items = self._require(params, "items")
        items = frozenset(i for i in raw_items.split(",") if i)
        if not items:
            raise _BadRequest("items must be a non-empty comma-separated list")
        delta = None
        if "delta" in params:
            try:
                delta = float(params["delta"])
            except ValueError:
                raise _BadRequest(
                    f"delta must be a float, got {params['delta']!r}"
                ) from None
        variant = None
        if "variant" in params:
            try:
                variant = variant_from_spec(params["variant"])
            except SnapshotError as exc:
                raise _BadRequest(str(exc)) from None
        best = self.server.engine.best_category(
            items, variant=variant, delta=delta
        )
        self._reply(
            200,
            {
                "items": sorted(items),
                "covered": best is not None,
                "best": None
                if best is None
                else {
                    "cid": best.cid,
                    "label": best.label,
                    "score": best.score,
                    "precision": best.precision,
                    "depth": best.depth,
                },
            },
        )

    def _get_browse(self) -> None:
        params = self._params()
        cid = self._int_param(params, "cid") if "cid" in params else None
        self._reply(200, self.server.engine.browse(cid))

    def _get_path(self) -> None:
        cid = self._int_param(self._params(), "cid")
        self._reply(200, {"cid": cid, "path": self.server.engine.path_to_root(cid)})

    def _get_search(self) -> None:
        params = self._params()
        query = self._require(params, "q")
        top_k = 10
        if "top_k" in params:
            top_k = self._int_param(params, "top_k")
        self._reply(
            200,
            {"q": query, "hits": self.server.engine.find_categories(query, top_k)},
        )

    def _get_categorize_query(self) -> None:
        params = self._params()
        threshold = (
            self._float_param(params, "threshold")
            if "threshold" in params
            else None
        )
        top_k = self._int_param(params, "top_k") if "top_k" in params else None
        if "queries" in params:
            queries = [q for q in params["queries"].split("|") if q.strip()]
            if not queries:
                raise _BadRequest(
                    "queries must be a non-empty pipe-separated list"
                )
            results = self.server.engine.categorize_queries(
                queries, threshold=threshold, top_k=top_k
            )
            self._reply(200, {"queries": queries, "results": results})
            return
        query = self._require(params, "q")
        self._reply(
            200,
            self.server.engine.categorize_query(
                query, threshold=threshold, top_k=top_k
            ),
        )

    # -- POST endpoints ------------------------------------------------------

    def _post_swap(self) -> None:
        store = self.server.store
        if store is None:
            self._reply(
                409, {"error": "this server has no snapshot store attached"}
            )
            return
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        snapshot_id: str | None = None
        if body.strip():
            try:
                payload = json.loads(body)
            except json.JSONDecodeError:
                raise _BadRequest("swap body must be JSON") from None
            if not isinstance(payload, dict):
                raise _BadRequest("swap body must be a JSON object")
            snapshot_id = payload.get("snapshot_id")
        generation = self.server.swapper.swap_from_store(store, snapshot_id)
        self._reply(
            200,
            {
                "status": "swapped",
                "generation": generation.number,
                "snapshot_id": generation.snapshot_id,
            },
        )


def make_server(
    engine: ServingEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    store: SnapshotStore | None = None,
    max_requests: int | None = None,
    quiet: bool = True,
    reuse_port: bool = False,
    worker_id: int | None = None,
    backend: str = "object",
    tree_repr: str | None = None,
) -> ServingHTTPServer:
    """Bind a serving HTTP server (``port=0`` picks a free port).

    The caller drives it: ``serve_forever()`` inline, or on a thread via
    :func:`serve_in_background`. The bound port is ``server.server_port``.
    ``backend="mmap"`` makes ``/admin/swap`` reload snapshots through the
    flat mmap layout instead of deserializing them; ``tree_repr``
    selects the representation swapped-in generations use (None = the
    backend default).
    """
    return ServingHTTPServer(
        (host, port), engine, store=store,
        max_requests=max_requests, quiet=quiet,
        reuse_port=reuse_port, worker_id=worker_id, backend=backend,
        tree_repr=tree_repr,
    )


def serve_in_background(server: ServingHTTPServer) -> threading.Thread:
    """Run ``server.serve_forever()`` on a daemon thread; returns it.

    The thread is remembered on the server so :meth:`ServingHTTPServer.
    stop` can join it — shutdown, join, close, port released, no leaked
    listener between test cases.
    """
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serving-http", daemon=True
    )
    server._serving_thread = thread
    thread.start()
    return thread
