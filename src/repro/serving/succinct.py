"""Succinct tree-retrieval structures for the serving read path.

The flat read path (PRs 5 & 7) answers ``browse``/``path``/``categorize``
by chasing parent pointers and ANDing a dense category×item bit matrix,
so per-query cost scales with tree size and snapshot memory with the
full matrix. This module grounds the same three ops in the
tree-retrieval literature (Belazzougui–Kucherov "Efficient
tree-structured categorical retrieval"; "The Common Prefix Problem on
Trees") with three structures:

* **Euler-tour intervals** — the categories are laid out in pre-order,
  so each node ``v`` owns the half-open row interval
  ``[tin[v], tout[v])`` covering exactly its subtree.
  Ancestor/descendant tests and subtree aggregation become two integer
  comparisons instead of a pointer walk.
* **Sparse-table LCA** — an Euler tour of the tree (2n-1 entries) plus
  a range-minimum sparse table over tour depths answers
  ``lca(u, v)`` in O(1) after O(n log n) preprocessing. Batched
  multi-item ``categorize`` sorts the requested nodes in pre-order and
  computes each root path from its predecessor's path plus one LCA —
  one sweep, sharing every common prefix, instead of per-item root
  walks.
* **Delta-compressed varint postings** — item→category and
  category→item lists are strictly increasing row/code sequences, so
  they store as LEB128 varints of gaps (~1-2 bytes per posting instead
  of 8), replacing the dense bitset rows on the sparse read path. The
  packed bitset is retained for large intersection fan-in
  (:data:`BITSET_FANIN_THRESHOLD`).

Everything here is backend-neutral: :class:`EulerTour` reads its arrays
through plain indexing, so the in-memory
:class:`~repro.serving.indexes.SnapshotIndexes` hands it lists while the
mmap-backed :class:`~repro.serving.shm.MmapSnapshotIndexes` hands it
zero-copy ``memoryview`` casts of the flat snapshot sections — the same
code runs over both, which is how "bit-identical answers" stays a
structural property rather than a test-only promise.
"""

from __future__ import annotations

from typing import Iterable, Sequence

TREE_REPRS = ("flat", "succinct")

# Queries with at least this many known items use the packed bitset
# kernel (when compiled in) instead of decoding per-item varint
# postings: the AND+popcount pass amortizes over large fan-in, the
# postings walk wins on small queries. Both paths return identical
# dicts, so the switch is invisible to callers.
BITSET_FANIN_THRESHOLD = 32


def validate_tree_repr(value: str) -> str:
    """The validated ``tree_repr`` knob value ('flat' or 'succinct')."""
    if value not in TREE_REPRS:
        raise ValueError(
            f"tree_repr must be one of {TREE_REPRS}, got {value!r}"
        )
    return value


# -- delta-compressed varint postings ----------------------------------------


def encode_postings(values: Iterable[int]) -> bytes:
    """LEB128 varints of the gaps of a strictly increasing sequence.

    The first gap is taken against -1, so any non-negative strictly
    increasing sequence (including one starting at 0) encodes with every
    gap >= 1. Raises ``ValueError`` on a non-increasing input — postings
    are pre-order row (or sorted item-code) lists, which are strictly
    increasing by construction.
    """
    out = bytearray()
    prev = -1
    for value in values:
        gap = value - prev
        if gap <= 0:
            raise ValueError(
                f"postings must be strictly increasing; {value} follows {prev}"
            )
        prev = value
        while gap >= 0x80:
            out.append((gap & 0x7F) | 0x80)
            gap >>= 7
        out.append(gap)
    return bytes(out)


def decode_postings(buf) -> list[int]:
    """Invert :func:`encode_postings` (accepts bytes or a u8 memoryview)."""
    out: list[int] = []
    prev = -1
    gap = 0
    shift = 0
    for byte in buf:
        gap |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            prev += gap
            out.append(prev)
            gap = 0
            shift = 0
    if shift:
        raise ValueError("truncated varint postings")
    return out


def concat_postings(lists: Sequence[Iterable[int]]) -> tuple[bytes, list[int]]:
    """Encode many postings lists into one blob plus byte offsets.

    Returns ``(blob, offsets)`` with ``len(lists) + 1`` offsets;
    list ``i`` decodes from ``blob[offsets[i]:offsets[i + 1]]``.
    """
    chunks = [encode_postings(values) for values in lists]
    offsets = [0]
    for chunk in chunks:
        offsets.append(offsets[-1] + len(chunk))
    return b"".join(chunks), offsets


# -- Euler-tour intervals + sparse-table LCA ---------------------------------


class EulerTour:
    """Pre-order intervals and O(1) LCA over one category tree.

    Nodes are pre-order rows (root = 0, ``parent[v] < v``). The arrays
    may be lists (in-memory backend) or ``memoryview`` casts of mmap'ed
    sections (flat backend); only ``__getitem__`` and ``__len__`` are
    used, and the same query code runs over both.
    """

    __slots__ = (
        "parent", "depth", "tin", "tout", "tour", "first",
        "sparse", "n_levels", "_n_euler",
    )

    def __init__(
        self,
        parent: Sequence[int],
        depth: Sequence[int],
        tin: Sequence[int],
        tout: Sequence[int],
        tour: Sequence[int],
        first: Sequence[int],
        sparse: Sequence[int],
        n_levels: int,
    ) -> None:
        self.parent = parent
        self.depth = depth
        self.tin = tin
        self.tout = tout
        self.tour = tour
        self.first = first
        self.sparse = sparse
        self.n_levels = n_levels
        self._n_euler = len(tour)

    @classmethod
    def build(cls, parent: Sequence[int], depth: Sequence[int]) -> "EulerTour":
        """Build every array from a pre-order parent array.

        ``parent[0]`` must be -1 (the root) and every other node's
        parent must precede it — exactly the layout ``tree.categories()``
        and the flat ``cat_parent`` section guarantee.
        """
        n = len(parent)
        if n == 0:
            raise ValueError("cannot build an EulerTour over zero nodes")
        if parent[0] != -1:
            raise ValueError("row 0 must be the root (parent -1)")

        # Pre-order intervals: with descendants laid out contiguously
        # after their ancestor, tin is the row itself and tout follows
        # from subtree sizes accumulated leaf-to-root.
        size = [1] * n
        for v in range(n - 1, 0, -1):
            p = parent[v]
            if not 0 <= p < v:
                raise ValueError(
                    f"row {v} has parent {p}; pre-order requires parent < row"
                )
            size[p] += size[v]
        tin = list(range(n))
        tout = [v + size[v] for v in range(n)]
        for v in range(1, n):
            # parent < row alone is only topological order; the interval
            # trick additionally needs each subtree laid out contiguously,
            # i.e. every row inside its parent's interval.
            if v >= tout[parent[v]]:
                raise ValueError(
                    f"row {v} falls outside its parent's subtree interval; "
                    "the layout is not a contiguous pre-order"
                )

        children: list[list[int]] = [[] for _ in range(n)]
        for v in range(1, n):
            children[parent[v]].append(v)

        # Iterative Euler tour: enter each node once, re-append the
        # parent after each child subtree -> 2n-1 entries.
        tour: list[int] = [0]
        first = [0] * n
        stack: list[tuple[int, int]] = [(0, 0)]  # (node, next-child index)
        while stack:
            v, i = stack[-1]
            kids = children[v]
            if i == len(kids):
                stack.pop()
                if stack:
                    tour.append(stack[-1][0])
            else:
                stack[-1] = (v, i + 1)
                child = kids[i]
                first[child] = len(tour)
                tour.append(child)
                stack.append((child, 0))

        m = len(tour)
        n_levels = m.bit_length()  # floor(log2(m)) + 1 levels, k in [0, L)
        # Sparse table of argmin-by-depth positions, one padded row of m
        # entries per level (level 0 is the identity; entries past
        # m - 2^k + 1 are never queried and stay clamped in-range).
        sparse = list(range(m))
        prev_level = sparse
        for k in range(1, n_levels):
            half = 1 << (k - 1)
            level = list(prev_level)
            limit = m - (1 << k) + 1
            for i in range(max(0, limit)):
                a = prev_level[i]
                b = prev_level[i + half]
                level[i] = a if depth[tour[a]] <= depth[tour[b]] else b
            sparse.extend(level)
            prev_level = level
        return cls(parent, depth, tin, tout, tour, first, sparse, n_levels)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.first)

    def is_ancestor(self, u: int, v: int) -> bool:
        """Whether ``u`` is an ancestor of ``v`` (inclusive): a range check."""
        return self.tin[u] <= self.tin[v] < self.tout[u]

    def subtree_interval(self, v: int) -> tuple[int, int]:
        """The half-open pre-order row interval covering ``v``'s subtree."""
        return self.tin[v], self.tout[v]

    def lca(self, u: int, v: int) -> int:
        """The lowest common ancestor of two rows, in O(1)."""
        lo, hi = self.first[u], self.first[v]
        if lo > hi:
            lo, hi = hi, lo
        k = (hi - lo + 1).bit_length() - 1
        m = self._n_euler
        base = k * m
        a = self.sparse[base + lo]
        b = self.sparse[base + hi - (1 << k) + 1]
        tour = self.tour
        pos = a if self.depth[tour[a]] <= self.depth[tour[b]] else b
        return tour[pos]

    def lca_of(self, rows: Iterable[int]) -> int:
        """The LCA of a whole set of rows: one LCA of its tin extremes."""
        it = iter(rows)
        try:
            lo = hi = next(it)
        except StopIteration:
            raise ValueError("lca_of needs at least one row") from None
        tin = self.tin
        for v in it:
            if tin[v] < tin[lo]:
                lo = v
            elif tin[v] > tin[hi]:
                hi = v
        return self.lca(lo, hi)

    def walk_to_root(self, v: int) -> list[int]:
        """Root-to-``v`` row path via the parent array."""
        path = [v]
        p = self.parent[v]
        while p >= 0:
            path.append(p)
            p = self.parent[p]
        path.reverse()
        return path

    def root_paths(self, rows: Iterable[int]) -> dict[int, list[int]]:
        """Root paths for many rows with one LCA sweep.

        Rows are visited in pre-order; each path is its predecessor's
        path truncated at their LCA plus the walk up from the row to
        that LCA — every shared prefix is computed once instead of one
        full root walk per row. The LCA itself is an interval binary
        search over the predecessor's chain: chain ``tout`` values are
        non-increasing and every chain ``tin`` precedes ``tin[v]`` in
        pre-order, so "deepest ancestor of v" is the rightmost chain
        entry with ``tout > tin[v]`` — a couple of integer compares,
        cheaper than the sparse-table constant for point
        :meth:`lca` queries. Returns exactly what calling
        :meth:`walk_to_root` per row would.
        """
        tin, tout, parent = self.tin, self.tout, self.parent
        order = sorted(set(rows), key=tin.__getitem__)
        paths: dict[int, list[int]] = {}
        prev_path: list[int] = []
        for v in order:
            if not prev_path:
                path = self.walk_to_root(v)
            else:
                tin_v = tin[v]
                lo, hi = 0, len(prev_path) - 1
                while lo < hi:
                    mid = (lo + hi + 1) >> 1
                    if tout[prev_path[mid]] > tin_v:
                        lo = mid
                    else:
                        hi = mid - 1
                a = prev_path[lo]
                path = prev_path[: lo + 1]
                suffix = []
                u = v
                while u != a:
                    suffix.append(u)
                    u = parent[u]
                suffix.reverse()
                path += suffix
            paths[v] = path
            prev_path = path
        return paths

    # -- serialization -------------------------------------------------------

    def arrays(self) -> dict[str, list[int]]:
        """The flat-snapshot section payloads of this structure."""
        return {
            "cat_tin": list(self.tin),
            "cat_tout": list(self.tout),
            "euler_tour": list(self.tour),
            "euler_first": list(self.first),
            "lca_sparse": list(self.sparse),
        }
