"""Read-optimized per-snapshot index structures.

A :class:`SnapshotIndexes` is computed once when a snapshot is loaded
(off the request path — see :mod:`repro.serving.hotswap`) and answers
every read-side question without walking or mutating the tree:

* **item -> category postings** — for each item, the categories that
  contain it (pre-order) and the *minimal* (most-specific) ones, i.e.
  the item's branch/leaf placements;
* **label lookup** — a :class:`repro.search.SearchEngine` over category
  labels, so free-text navigation queries resolve to categories;
* **packed category bitsets** — each category's item set packed into a
  :class:`repro.core.bitset.BitsetUniverse` row, so ``best_category``
  scores a query against *all* categories with one AND+popcount pass of
  the PR 1 kernel instead of per-category Python set ops.

Scoring reuses the scalar
:func:`repro.core.similarity.variant_score_from_sizes` on the
intersection counts, so both the bitset and the postings path return
bit-identical scores to the offline :func:`repro.core.scoring.score_tree`
reference (the differential test in ``tests/test_serving_engine.py``
pins this). Ties between equally scoring categories break exactly like
the offline scorer — higher precision, then greater depth — with the
lower cid as the final deterministic tie-break.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.core import bitset
from repro.core.input_sets import OCTInstance
from repro.core.similarity import variant_score_from_sizes
from repro.core.tree import Category, CategoryTree
from repro.core.variants import Variant
from repro.observability import get_tracer
from repro.search.engine import SearchEngine
from repro.serving.succinct import (
    BITSET_FANIN_THRESHOLD,
    EulerTour,
    decode_postings,
    encode_postings,
    validate_tree_repr,
)

Item = Hashable


@dataclass(frozen=True)
class BestCategory:
    """The winning category for one query, with its score breakdown."""

    cid: int
    label: str
    score: float
    precision: float
    depth: int


class BaseSnapshotIndexes:
    """The backend-independent half of the snapshot read API.

    Both the in-memory :class:`SnapshotIndexes` and the mmap-backed
    :class:`repro.serving.shm.MmapSnapshotIndexes` inherit the scoring
    loop and the path walk from here, so "bit-identical answers" is a
    structural property — the two backends literally run the same
    ``best_category`` code over their own ``intersection_counts`` /
    ``sizes`` / ``depths`` / ``parent_of`` / ``label_of`` primitives.
    """

    variant: Variant
    sizes: "object"  # cid -> |items| mapping (dict or flat-array view)
    depths: "object"  # cid -> depth mapping
    parent_of: "object"  # cid -> parent cid | None mapping
    # Set by succinct-backed subclasses; None keeps every default on the
    # flat pointer-chase code paths.
    tree_repr: str = "flat"
    _euler: "EulerTour | None" = None

    def label_of(self, cid: int) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def intersection_counts(
        self, items: frozenset
    ) -> dict[int, int]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _row_of(self, cid: int) -> int:  # pragma: no cover - abstract
        """The pre-order row of a cid (succinct backends only)."""
        raise NotImplementedError

    def _cid_of(self, row: int) -> int:  # pragma: no cover - abstract
        """The cid at a pre-order row (succinct backends only)."""
        raise NotImplementedError

    def path_to_root(self, cid: int) -> list[int]:
        """Root-to-``cid`` cid path, inclusive (no scan: O(answer))."""
        if self._euler is not None:
            cid_of = self._cid_of
            return [
                cid_of(row)
                for row in self._euler.walk_to_root(self._row_of(cid))
            ]
        path = [cid]
        parent = self.parent_of[cid]
        while parent is not None:
            path.append(parent)
            parent = self.parent_of[parent]
        path.reverse()
        return path

    def is_ancestor(self, ancestor_cid: int, cid: int) -> bool:
        """Whether ``ancestor_cid`` lies on ``cid``'s root path (inclusive).

        Succinct backends answer with one Euler-interval range check;
        flat backends walk the (short) root path. Both agree exactly —
        the property tier pins the equivalence on random trees.
        """
        if self._euler is not None:
            return self._euler.is_ancestor(
                self._row_of(ancestor_cid), self._row_of(cid)
            )
        return ancestor_cid in self.path_to_root(cid)

    def paths_to_root_batch(
        self, cids: Iterable[int]
    ) -> dict[int, list[int]]:
        """Root paths for many cids at once (batched ``categorize``).

        Succinct backends share every common path prefix through one
        LCA sweep (:meth:`EulerTour.root_paths`); flat backends fall
        back to one pointer chase per cid. Returns exactly what calling
        :meth:`path_to_root` per cid would.
        """
        cids = set(cids)
        if self._euler is None:
            return {cid: self.path_to_root(cid) for cid in cids}
        rows = {cid: self._row_of(cid) for cid in cids}
        get_tracer().count("serving.succinct.batched_lca", max(0, len(rows) - 1))
        row_paths = self._euler.root_paths(rows.values())
        cid_of = self._cid_of
        return {
            cid: [cid_of(r) for r in row_paths[row]]
            for cid, row in rows.items()
        }

    def best_category(
        self,
        items: Iterable[Item],
        variant: Variant | None = None,
        delta: float | None = None,
    ) -> BestCategory | None:
        """The category scoring best against a query item set.

        Scoring follows the offline reference bit for bit: the scalar
        ``variant_score_from_sizes`` on each nonzero intersection, ties
        broken towards higher precision, then greater depth, then lower
        cid. Returns None when no category scores above zero (the query
        is not covered by this tree under the variant).
        """
        variant = variant if variant is not None else self.variant
        effective_delta = delta if delta is not None else variant.delta
        q = items if isinstance(items, frozenset) else frozenset(items)
        q_size = len(q)
        best: BestCategory | None = None
        for cid, common in self.intersection_counts(q).items():
            c_size = self.sizes[cid]
            score = variant_score_from_sizes(
                variant, q_size, c_size, common, effective_delta
            )
            if score <= 0.0:
                continue
            precision = common / c_size if c_size else 0.0
            depth = self.depths[cid]
            if best is None or (score, precision, depth, -cid) > (
                best.score, best.precision, best.depth, -best.cid
            ):
                best = BestCategory(
                    cid=cid,
                    label=self.label_of(cid),
                    score=score,
                    precision=precision,
                    depth=depth,
                )
        return best


class SnapshotIndexes(BaseSnapshotIndexes):
    """Immutable read-side indexes over one (tree, instance, variant)."""

    def __init__(
        self,
        tree: CategoryTree,
        instance: OCTInstance,
        variant: Variant,
        use_bitset: bool | None = None,
        tree_repr: str = "flat",
    ) -> None:
        self.variant = variant
        self.tree_repr = validate_tree_repr(tree_repr)
        cats = list(tree.categories())  # pre-order, root first
        self.by_cid: dict[int, Category] = {c.cid: c for c in cats}
        self.root_cid = tree.root.cid
        self.sizes: dict[int, int] = {c.cid: len(c.items) for c in cats}
        self.depths: dict[int, int] = {c.cid: c.depth for c in cats}
        self.parent_of: dict[int, int | None] = {
            c.cid: (c.parent.cid if c.parent is not None else None)
            for c in cats
        }
        self.children_of: dict[int, tuple[int, ...]] = {
            c.cid: tuple(child.cid for child in c.children) for c in cats
        }

        # Item -> containing categories (pre-order) and item -> minimal
        # (most-specific) categories: the branch placements a bound-k
        # item occupies. One pass each, mirroring tree.item_branch_counts.
        postings: dict[Item, list[int]] = {}
        minimal: dict[Item, list[int]] = {}
        for cat in cats:
            covered_by_children: set[Item] = set()
            for child in cat.children:
                covered_by_children |= child.items
            for item in cat.items:
                postings.setdefault(item, []).append(cat.cid)
                if item not in covered_by_children:
                    minimal.setdefault(item, []).append(cat.cid)
        self._cids = [c.cid for c in cats]
        self._row_of_map = {cid: row for row, cid in enumerate(self._cids)}
        if self.tree_repr == "succinct":
            # Euler-tour intervals + sparse-table LCA over pre-order
            # rows, and the postings/placements delta-compressed into
            # varint blobs (decoded on access) instead of tuple dicts —
            # the in-process mirror of the flat layout's ROCT sections.
            row_of = self._row_of_map
            self._euler = EulerTour.build(
                [
                    row_of[c.parent.cid] if c.parent is not None else -1
                    for c in cats
                ],
                [c.depth for c in cats],
            )
            self._post_var: dict[Item, bytes] = {
                item: encode_postings(row_of[cid] for cid in cids)
                for item, cids in postings.items()
            }
            self._place_var: dict[Item, bytes] = {
                item: encode_postings(row_of[cid] for cid in cids)
                for item, cids in minimal.items()
            }
            self.item_postings: dict[Item, tuple[int, ...]] = {}
            self.item_placements: dict[Item, tuple[int, ...]] = {}
        else:
            self.item_postings = {
                item: tuple(cids) for item, cids in postings.items()
            }
            self.item_placements = {
                item: tuple(cids) for item, cids in minimal.items()
            }

        # Label -> category lookup over the labeled categories.
        self.label_engine = SearchEngine()
        for cat in cats:
            if cat.label:
                self.label_engine.add_document(cat.cid, cat.label)

        # Packed category bitsets (PR 1 kernel). The universe is the
        # root's item set: every indexable item is in it, and query items
        # outside it cannot intersect any category.
        self._bitset: "bitset.BitsetUniverse | None" = None
        if bitset.should_use(len(cats), len(tree.root.items), use_bitset):
            self._bitset = bitset.BitsetUniverse(
                [c.items for c in cats], universe=tree.root.items
            )

    # -- simple lookups ------------------------------------------------------

    @property
    def n_categories(self) -> int:
        return len(self.by_cid)

    @property
    def uses_bitset(self) -> bool:
        return self._bitset is not None

    def category(self, cid: int) -> Category:
        """The category for a cid; raises ``KeyError`` when unknown."""
        return self.by_cid[cid]

    def _row_of(self, cid: int) -> int:
        return self._row_of_map[cid]

    def _cid_of(self, row: int) -> int:
        return self._cids[row]

    def label_of(self, cid: int) -> str:
        cat = self.by_cid[cid]
        return cat.label or f"C{cat.cid}"

    def placements(self, item: Item) -> tuple[int, ...]:
        """The most-specific categories containing an item ('' when unknown)."""
        if self.tree_repr == "succinct":
            blob = self._place_var.get(item)
            if blob is None:
                return ()
            get_tracer().count("serving.succinct.postings_decoded")
            return tuple(self._cids[row] for row in decode_postings(blob))
        return self.item_placements.get(item, ())

    def find_labels(self, query: str, top_k: int = 10):
        """Scored category hits for a free-text label query."""
        return self.label_engine.search(query, top_k=top_k)

    # -- query scoring -------------------------------------------------------

    def intersection_counts(self, items: frozenset) -> dict[int, int]:
        """``{cid: |q ∩ C|}`` for the nonzero categories, cid-ascending.

        Uses the packed bitset kernel when available (one AND+popcount
        pass over all category rows), the item postings otherwise. Both
        paths return identical dicts.
        """
        if self.tree_repr == "succinct":
            known = [i for i in items if i in self._post_var]
            if not known:
                return {}
            # Large fan-in amortizes the dense AND+popcount pass; small
            # queries win by decoding a handful of varint rows. Both
            # arms emit row-ascending (= pre-order = cid-table order).
            if (
                self._bitset is not None
                and len(known) >= BITSET_FANIN_THRESHOLD
            ):
                get_tracer().count("serving.succinct.bitset_fanin")
                sizes = self._bitset.intersection_sizes(
                    self._bitset.pack(known)
                )
                return {
                    self._cids[row]: int(common)
                    for row, common in enumerate(sizes.tolist())
                    if common
                }
            get_tracer().count(
                "serving.succinct.postings_decoded", len(known)
            )
            row_counts: dict[int, int] = {}
            for item in known:
                for row in decode_postings(self._post_var[item]):
                    row_counts[row] = row_counts.get(row, 0) + 1
            return {
                self._cids[row]: row_counts[row]
                for row in sorted(row_counts)
            }
        if self._bitset is not None:
            known = [i for i in items if i in self._bitset.index]
            if not known:
                return {}
            sizes = self._bitset.intersection_sizes(self._bitset.pack(known))
            return {
                self._cids[row]: int(common)
                for row, common in enumerate(sizes.tolist())
                if common
            }
        counts: dict[int, int] = {}
        for item in items:
            for cid in self.item_postings.get(item, ()):
                counts[cid] = counts.get(cid, 0) + 1
        # Postings insert in query-item order; normalize to the bitset
        # path's pre-order (row) order for dict-level equality.
        return {
            cid: counts[cid] for cid in self._cids if cid in counts
        }
