"""Free-text query categorization: the staged decision procedure.

Maps the traffic e-commerce serving actually receives — free-text search
queries — onto the built category tree. The procedure follows the
chain-of-thought query-categorization spec (PAPERS.md) and the
taxonomist rule of SNIPPETS.md Snippet 1 ("if uncertain between
categories: choose the broader one"): decide in stages, and back off
*up* the hierarchy whenever confidence falls below a threshold instead
of committing to a wrong leaf.

Stages, in order:

1. **exact** — the query's token set equals a category label's token set
   (both through :func:`repro.search.analyzer.tokenize`): confidence 1.
2. **overlap** — candidate labels from
   :meth:`~repro.serving.indexes.SnapshotIndexes.find_labels` are scored
   by token-set Jaccard through the packed-bitset kernel
   (:class:`repro.core.bitset.BitsetUniverse`); the best candidate wins
   outright when its Jaccard reaches the confidence threshold.
3. **backoff** — otherwise walk the best candidate's root path upward
   (Euler-tour ancestor tests on succinct backends) and stop at the
   deepest ancestor whose *subtree* accumulates enough relevance mass
   from all candidates, bottoming out at the root.

Queries with no usable tokens resolve to stage ``empty``; queries whose
tokens match no label resolve to stage ``nohit`` (both uncategorized).

Everything here is written against the backend-independent
:class:`~repro.serving.indexes.BaseSnapshotIndexes` API only —
``find_labels``, ``label_of``, ``path_to_root``, ``is_ancestor``,
``depths`` — so in-memory, mmap, and sharded-supervisor backends return
bit-identical results by construction (the differential tier in
``tests/test_querycat.py`` pins this). Results are JSON-native dicts, so
an HTTP round trip preserves them exactly.
"""

from __future__ import annotations

from typing import Iterable

from repro.core import bitset
from repro.observability import get_tracer
from repro.search.analyzer import tokenize

# Below this Jaccard confidence the overlap stage refuses to commit and
# the procedure backs off up the hierarchy. 0.5 means "the query and the
# label agree on at least half their combined vocabulary".
DEFAULT_CONFIDENCE_THRESHOLD = 0.5

# How many label-search candidates feed the overlap/back-off stages.
DEFAULT_TOP_K = 10


def overlap_sizes(
    query_tokens: frozenset, candidate_tokens: Iterable[frozenset]
) -> list[int]:
    """``|query ∩ candidate|`` per candidate, via the packed-bitset kernel.

    Candidate token sets are packed as rows of a
    :class:`~repro.core.bitset.BitsetUniverse` over the combined token
    vocabulary and answered with one AND+popcount pass. Falls back to
    plain set intersections when NumPy is unavailable — the counts are
    integers, so both paths are trivially identical.
    """
    candidates = list(candidate_tokens)
    if not candidates:
        return []
    if not bitset.available():
        return [len(query_tokens & ts) for ts in candidates]
    universe = set(query_tokens)
    for ts in candidates:
        universe |= ts
    rows = bitset.BitsetUniverse(candidates, universe=universe)
    sizes = rows.intersection_sizes(rows.pack(query_tokens))
    return [int(n) for n in sizes.tolist()]


def _result(
    indexes,
    query: str,
    tokens: list[str],
    *,
    cid: int | None,
    stage: str,
    confidence: float,
    stages: list[dict],
    backoff_steps: int = 0,
) -> dict:
    path = indexes.path_to_root(cid) if cid is not None else []
    return {
        "query": query,
        "tokens": list(tokens),
        "matched": cid is not None,
        "cid": cid,
        "label": indexes.label_of(cid) if cid is not None else None,
        "confidence": float(confidence),
        "stage": stage,
        "backoff_steps": int(backoff_steps),
        "path": [{"cid": c, "label": indexes.label_of(c)} for c in path],
        "stages": stages,
    }


def categorize_query(
    indexes,
    text: str,
    threshold: float | None = None,
    top_k: int | None = None,
) -> dict:
    """Run the staged decision procedure for one free-text query.

    Returns a JSON-native dict: the winning ``cid``/``label`` (None when
    uncategorized), its root ``path``, the final ``confidence``, which
    ``stage`` decided (``exact``/``overlap``/``backoff``/``nohit``/
    ``empty``), how many levels the back-off climbed, and the per-stage
    confidence trail in ``stages``.
    """
    threshold = (
        DEFAULT_CONFIDENCE_THRESHOLD if threshold is None else float(threshold)
    )
    top_k = DEFAULT_TOP_K if top_k is None else int(top_k)
    tokens = tokenize(text)
    if not tokens:
        return _result(
            indexes, text, tokens, cid=None, stage="empty", confidence=0.0,
            stages=[{"stage": "empty", "confidence": 0.0}],
        )
    hits = indexes.find_labels(text, top_k=top_k)
    if not hits:
        return _result(
            indexes, text, tokens, cid=None, stage="nohit", confidence=0.0,
            stages=[{"stage": "nohit", "confidence": 0.0}],
        )
    query_set = frozenset(tokens)
    candidate_sets = [
        frozenset(tokenize(indexes.label_of(hit.doc_id))) for hit in hits
    ]
    common_sizes = overlap_sizes(query_set, candidate_sets)
    stages: list[dict] = []

    # Stage 1: exact label hit. Hits arrive best-first in a
    # deterministic order, so the first equal token set wins.
    for hit, tokens_c, common in zip(hits, candidate_sets, common_sizes):
        if common == len(query_set) and len(tokens_c) == len(query_set):
            stages.append({"stage": "exact", "confidence": 1.0})
            return _result(
                indexes, text, tokens, cid=hit.doc_id, stage="exact",
                confidence=1.0, stages=stages,
            )
    stages.append({"stage": "exact", "confidence": 0.0})

    # Stage 2: token-overlap (Jaccard) scoring over the candidates.
    # Ties break on search relevance, then toward the lower cid.
    best_cid: int | None = None
    best_key: tuple | None = None
    best_confidence = 0.0
    for hit, tokens_c, common in zip(hits, candidate_sets, common_sizes):
        union = len(query_set) + len(tokens_c) - common
        confidence = common / union if union else 0.0
        key = (confidence, hit.relevance, -hit.doc_id)
        if best_key is None or key > best_key:
            best_key = key
            best_cid = hit.doc_id
            best_confidence = confidence
    stages.append({"stage": "overlap", "confidence": float(best_confidence)})
    if best_confidence >= threshold:
        return _result(
            indexes, text, tokens, cid=best_cid, stage="overlap",
            confidence=best_confidence, stages=stages,
        )

    # Stage 3: back off up the hierarchy. An ancestor's confidence is
    # the relevance mass of all candidates inside its subtree (capped at
    # 1); commit to the deepest ancestor that clears the threshold, or
    # the root if none does. Summation runs in hit order, so the floats
    # are identical on every backend.
    path = indexes.path_to_root(best_cid)
    ancestors = path[:-1] if len(path) > 1 else path
    final_cid = path[0]
    final_confidence = 0.0
    for ancestor in reversed(ancestors):
        mass = 0.0
        for hit in hits:
            if indexes.is_ancestor(ancestor, hit.doc_id):
                mass += hit.relevance
        confidence = min(1.0, mass)
        if confidence >= threshold or ancestor == path[0]:
            final_cid = ancestor
            final_confidence = confidence
            break
    steps = indexes.depths[best_cid] - indexes.depths[final_cid]
    stages.append({"stage": "backoff", "confidence": float(final_confidence)})
    return _result(
        indexes, text, tokens, cid=final_cid, stage="backoff",
        confidence=final_confidence, stages=stages, backoff_steps=steps,
    )


def record_query_counters(result: dict, tracer=None) -> None:
    """Emit the ``serving.querycat.*`` counters for one result.

    Called by the engine *outside* the LRU-cached compute, so repeated
    (cached) queries still record traffic — the analytics report counts
    requests, not distinct queries.
    """
    tracer = tracer if tracer is not None else get_tracer()
    tracer.count("serving.querycat.requests")
    tracer.count(f"serving.querycat.{result['stage']}")
    if result["cid"] is None:
        tracer.count("serving.querycat.unmatched")
        return
    tracer.count(f"serving.querycat.traffic.{result['cid']}")
    if result["stage"] == "backoff":
        tracer.count("serving.querycat.backoff_steps", result["backoff_steps"])
        tracer.count(f"serving.querycat.backoff_traffic.{result['cid']}")
