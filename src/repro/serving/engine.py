"""The thread-safe category-tree serving engine.

A :class:`ServingEngine` answers navigation and categorization queries
against one *generation* — an immutable bundle of (tree, instance,
variant, :class:`~repro.serving.indexes.SnapshotIndexes`). Requests read
the current generation through a single attribute load (atomic under the
GIL), so readers never block each other and never see a half-installed
tree; :meth:`ServingEngine.publish` installs a fully prepared generation
with one reference flip (see :mod:`repro.serving.hotswap` for the swap
choreography). In-flight requests keep using the generation they
started on.

Read results are memoized in an LRU cache keyed by (generation, op,
args), so a swap invalidates logically without a stop-the-world flush:
new-generation keys miss, old-generation entries age out. Per-request
latency and cache counters go both to the engine's local stats (exposed
by :meth:`stats` and the ``/stats`` HTTP endpoint) and to the PR 2
tracer (``serving.*`` counters) when tracing is enabled.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.core.exceptions import ReproError
from repro.core.input_sets import OCTInstance
from repro.core.tree import CategoryTree
from repro.core.variants import Variant
from repro.observability import get_tracer
from repro.serving.indexes import BaseSnapshotIndexes, BestCategory, SnapshotIndexes
from repro.serving.querycat import categorize_query as _categorize_query
from repro.serving.querycat import record_query_counters
from repro.serving.snapshot import LoadedSnapshot

Item = Hashable


class ServingError(ReproError):
    """Raised on serving-layer misuse (e.g. querying before publish)."""


@dataclass
class Generation:
    """One immutable, queryable build of the category tree.

    ``number`` is assigned by :meth:`ServingEngine.publish` (monotonic,
    starting at 1); before publication it is 0. ``tree`` and
    ``instance`` are None for mmap-backed generations
    (:func:`repro.serving.shm.prepare_mmap_generation`): worker
    processes never deserialize them — the indexes alone answer every
    read op.
    """

    tree: CategoryTree | None
    instance: OCTInstance | None
    variant: Variant
    indexes: BaseSnapshotIndexes
    snapshot_id: str = ""
    number: int = 0
    published_at: float = 0.0


def prepare_generation(
    tree: CategoryTree,
    instance: OCTInstance,
    variant: Variant,
    snapshot_id: str = "",
    use_bitset: bool | None = None,
    tree_repr: str = "flat",
) -> Generation:
    """Build the read-side indexes for a tree (expensive; off-path).

    This is the slow half of a hot swap — run it in the background (or
    before serving starts) and hand the result to
    :meth:`ServingEngine.publish`. ``tree_repr="succinct"`` builds the
    Euler-tour/varint read path (identical answers, smaller indexes).
    """
    tracer = get_tracer()
    with tracer.span("serving.prepare"):
        indexes = SnapshotIndexes(
            tree, instance, variant, use_bitset=use_bitset,
            tree_repr=tree_repr,
        )
    return Generation(
        tree=tree,
        instance=instance,
        variant=variant,
        indexes=indexes,
        snapshot_id=snapshot_id,
    )


class _LRUCache:
    """A tiny thread-safe LRU with hit/miss counters; size 0 disables."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = max(0, int(maxsize))
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key) -> tuple[bool, object]:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return False, None
            self._data.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key, value) -> None:
        if self.maxsize == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)


@dataclass
class _OpStats:
    requests: int = 0
    errors: int = 0
    wall_s: float = 0.0


class ServingEngine:
    """Concurrent query interface over hot-swappable tree generations."""

    def __init__(
        self, cache_size: int = 4096, latency_window: int = 65536
    ) -> None:
        self._gen: Generation | None = None
        self._publish_lock = threading.Lock()
        self._generation_counter = 0
        self._cache = _LRUCache(cache_size)
        self._op_stats: dict[str, _OpStats] = {}
        self._stats_lock = threading.Lock()
        # deque.append is atomic; percentile readers copy a snapshot.
        self._latencies: deque[float] = deque(maxlen=latency_window)
        # Per-thread record of the generation the last op *actually*
        # used, so the HTTP layer can attribute each response exactly —
        # a concurrent publish between compute and reply cannot skew it.
        self._served = threading.local()

    # -- construction / swapping -------------------------------------------

    @classmethod
    def from_snapshot(
        cls,
        loaded: LoadedSnapshot,
        cache_size: int = 4096,
        use_bitset: bool | None = None,
        tree_repr: str = "flat",
    ) -> "ServingEngine":
        """An engine serving one loaded snapshot (generation 1)."""
        engine = cls(cache_size=cache_size)
        engine.publish(
            prepare_generation(
                loaded.tree,
                loaded.instance,
                loaded.variant,
                snapshot_id=loaded.info.snapshot_id,
                use_bitset=use_bitset,
                tree_repr=tree_repr,
            )
        )
        return engine

    @classmethod
    def from_tree(
        cls,
        tree: CategoryTree,
        instance: OCTInstance,
        variant: Variant,
        cache_size: int = 4096,
        use_bitset: bool | None = None,
        tree_repr: str = "flat",
    ) -> "ServingEngine":
        """An engine serving an in-memory tree (no snapshot store)."""
        engine = cls(cache_size=cache_size)
        engine.publish(
            prepare_generation(
                tree, instance, variant, use_bitset=use_bitset,
                tree_repr=tree_repr,
            )
        )
        return engine

    def publish(self, generation: Generation) -> Generation:
        """Atomically make a prepared generation the serving one.

        The only mutation readers can observe is the single ``_gen``
        reference flip: requests that already grabbed the old generation
        finish on it untouched, new requests see the new tree. Returns
        the generation with its number assigned.
        """
        with self._publish_lock:
            self._generation_counter += 1
            generation.number = self._generation_counter
            generation.published_at = time.time()
            self._gen = generation  # the atomic flip
        tracer = get_tracer()
        tracer.count("serving.swaps")
        tracer.gauge("serving.generation", generation.number)
        return generation

    @property
    def generation(self) -> int:
        """The serving generation number (0 before the first publish)."""
        gen = self._gen
        return gen.number if gen is not None else 0

    @property
    def current(self) -> Generation:
        """The serving generation; raises before the first publish."""
        gen = self._gen
        if gen is None:
            raise ServingError("no generation published yet")
        return gen

    def generation_info(self) -> tuple[int, str]:
        """``(number, snapshot_id)`` of the serving generation, atomically."""
        gen = self._gen
        return (gen.number, gen.snapshot_id) if gen is not None else (0, "")

    def pop_served_marker(self) -> tuple[int, str] | None:
        """Take this thread's (generation, snapshot) attribution marker.

        Set by every op to the generation that computed the answer;
        popping clears it, so one marker attributes exactly one request.
        """
        marker = getattr(self._served, "marker", None)
        self._served.marker = None
        return marker

    # -- the request path ---------------------------------------------------

    def _serve(self, op: str, key, compute):
        """One request: resolve generation, consult cache, record stats."""
        t0 = time.perf_counter()
        gen = self._gen  # one atomic read; the whole request uses it
        if gen is None:
            raise ServingError("no generation published yet")
        self._served.marker = (gen.number, gen.snapshot_id)
        tracer = get_tracer()
        error = False
        try:
            if key is None:
                value = compute(gen)
            else:
                full_key = (gen.number, op, key)
                hit, value = self._cache.get(full_key)
                if hit:
                    tracer.count("serving.cache_hits")
                else:
                    tracer.count("serving.cache_misses")
                    value = compute(gen)
                    self._cache.put(full_key, value)
            return value
        except Exception:
            error = True
            raise
        finally:
            wall = time.perf_counter() - t0
            self._latencies.append(wall)
            with self._stats_lock:
                stats = self._op_stats.setdefault(op, _OpStats())
                stats.requests += 1
                stats.wall_s += wall
                if error:
                    stats.errors += 1
            tracer.count("serving.requests")
            tracer.count(f"serving.op.{op}")
            tracer.count("serving.latency_us", int(wall * 1e6))
            if gen.indexes.tree_repr == "succinct":
                tracer.count("serving.succinct.requests")

    # -- read operations ----------------------------------------------------

    def categorize_item(self, item: Item) -> list[dict]:
        """The item's branch placements: its most-specific categories.

        Each placement carries the cid, label, and the root-to-category
        label path. Unknown items yield an empty list.
        """

        def compute(gen: Generation) -> list[dict]:
            ix = gen.indexes
            return [
                {
                    "cid": cid,
                    "label": ix.label_of(cid),
                    "path": [ix.label_of(p) for p in ix.path_to_root(cid)],
                }
                for cid in ix.placements(item)
            ]

        return self._serve("categorize", item, compute)

    def categorize_items(self, items: Iterable[Item]) -> list[list[dict]]:
        """Batched :meth:`categorize_item`: one result list per item.

        All placement paths resolve through one
        :meth:`~repro.serving.indexes.BaseSnapshotIndexes.paths_to_root_batch`
        call, so a succinct-backed generation shares every common path
        prefix via a single LCA sweep instead of one root walk per item.
        Results are exactly what the per-item op returns, in input order.
        """
        batch = tuple(items)

        def compute(gen: Generation) -> list[list[dict]]:
            ix = gen.indexes
            placements = [ix.placements(item) for item in batch]
            all_cids = {cid for cids in placements for cid in cids}
            paths = ix.paths_to_root_batch(all_cids)
            return [
                [
                    {
                        "cid": cid,
                        "label": ix.label_of(cid),
                        "path": [ix.label_of(p) for p in paths[cid]],
                    }
                    for cid in cids
                ]
                for cids in placements
            ]

        return self._serve("categorize_batch", batch, compute)

    def best_category(
        self,
        items: Iterable[Item],
        variant: Variant | None = None,
        delta: float | None = None,
    ) -> BestCategory | None:
        """The best-scoring category for a query result set.

        ``variant`` defaults to the snapshot's build variant; ``delta``
        overrides its threshold (the per-set-thresholds extension).
        Returns None when the query is not covered.
        """
        q = items if isinstance(items, frozenset) else frozenset(items)
        key = (q, variant, delta)

        def compute(gen: Generation) -> BestCategory | None:
            return gen.indexes.best_category(q, variant=variant, delta=delta)

        return self._serve("best_category", key, compute)

    def browse(self, cid: int | None = None) -> dict:
        """One navigation page: a category, its path, and its children.

        ``cid=None`` browses the root. Raises ``KeyError`` for unknown
        cids (the HTTP layer maps that to 404).
        """

        def compute(gen: Generation) -> dict:
            ix = gen.indexes
            target = ix.root_cid if cid is None else cid
            cat = ix.category(target)
            return {
                "cid": cat.cid,
                "label": ix.label_of(cat.cid),
                "n_items": ix.sizes[cat.cid],
                "depth": ix.depths[cat.cid],
                "path": [
                    {"cid": p, "label": ix.label_of(p)}
                    for p in ix.path_to_root(cat.cid)
                ],
                "children": [
                    {
                        "cid": child,
                        "label": ix.label_of(child),
                        "n_items": ix.sizes[child],
                        "n_children": len(ix.children_of[child]),
                    }
                    for child in ix.children_of[cat.cid]
                ],
            }

        return self._serve("browse", "root" if cid is None else cid, compute)

    def path_to_root(self, cid: int) -> list[dict]:
        """Root-to-category breadcrumb for a cid (raises on unknown)."""

        def compute(gen: Generation) -> list[dict]:
            ix = gen.indexes
            ix.category(cid)  # raise KeyError before caching anything
            return [
                {"cid": p, "label": ix.label_of(p)}
                for p in ix.path_to_root(cid)
            ]

        return self._serve("path", cid, compute)

    def find_categories(self, query: str, top_k: int = 10) -> list[dict]:
        """Free-text label search over the categories (best first)."""

        def compute(gen: Generation) -> list[dict]:
            ix = gen.indexes
            return [
                {
                    "cid": hit.doc_id,
                    "label": ix.label_of(hit.doc_id),
                    "relevance": hit.relevance,
                }
                for hit in ix.find_labels(query, top_k=top_k)
            ]

        return self._serve("search", (query, top_k), compute)

    def categorize_query(
        self,
        text: str,
        threshold: float | None = None,
        top_k: int | None = None,
    ) -> dict:
        """Map one free-text query onto the tree (staged back-off).

        Runs the :mod:`repro.serving.querycat` decision procedure —
        exact label hit, then token-overlap scoring, then
        confidence-thresholded back-off up the hierarchy — and returns
        its JSON-native result dict. ``serving.querycat.*`` counters are
        recorded per request, cache hit or not.
        """

        def compute(gen: Generation) -> dict:
            return _categorize_query(
                gen.indexes, text, threshold=threshold, top_k=top_k
            )

        result = self._serve(
            "categorize_query", (text, threshold, top_k), compute
        )
        record_query_counters(result)
        return result

    def categorize_queries(
        self,
        texts: Iterable[str],
        threshold: float | None = None,
        top_k: int | None = None,
    ) -> list[dict]:
        """Batched :meth:`categorize_query`: one result per query.

        The whole batch resolves against a single generation read, so a
        mid-batch hot swap can never split the batch across trees.
        """
        batch = tuple(texts)

        def compute(gen: Generation) -> list[dict]:
            return [
                _categorize_query(
                    gen.indexes, text, threshold=threshold, top_k=top_k
                )
                for text in batch
            ]

        results = self._serve(
            "categorize_query_batch", (batch, threshold, top_k), compute
        )
        for result in results:
            record_query_counters(result)
        return results

    # -- introspection -------------------------------------------------------

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p95/p99/max over the recent latency window, in ms."""
        samples = sorted(self._latencies)
        if not samples:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}

        def pct(q: float) -> float:
            rank = max(0, min(len(samples) - 1, int(q * len(samples)) - 1))
            return samples[rank] * 1000.0

        return {
            "p50_ms": pct(0.50),
            "p95_ms": pct(0.95),
            "p99_ms": pct(0.99),
            "max_ms": samples[-1] * 1000.0,
        }

    def stats(self) -> dict:
        """A JSON-ready health/throughput/cache report for this engine."""
        gen = self._gen
        cache = self._cache
        with self._stats_lock:
            ops = {
                op: {
                    "requests": s.requests,
                    "errors": s.errors,
                    "wall_s": s.wall_s,
                }
                for op, s in sorted(self._op_stats.items())
            }
        hits, misses = cache.hits, cache.misses
        lookups = hits + misses
        return {
            "generation": gen.number if gen is not None else 0,
            "snapshot_id": gen.snapshot_id if gen is not None else "",
            "variant": gen.variant.describe() if gen is not None else "",
            "n_categories": gen.indexes.n_categories if gen is not None else 0,
            "uses_bitset": gen.indexes.uses_bitset if gen is not None else False,
            "cache": {
                "size": len(cache),
                "maxsize": cache.maxsize,
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / lookups if lookups else 0.0,
            },
            "ops": ops,
            "requests": sum(s["requests"] for s in ops.values()),
            "latency": self.latency_percentiles(),
        }
