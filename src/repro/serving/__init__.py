"""Serving: snapshot-based query serving over built category trees.

The offline pipeline (CTCR/CCT) *builds* trees; this subsystem *serves*
them: versioned on-disk snapshots (:mod:`repro.serving.snapshot`),
read-optimized per-snapshot indexes (:mod:`repro.serving.indexes`), a
thread-safe query engine with an LRU result cache
(:mod:`repro.serving.engine`), atomic hot swaps of rebuilt trees
(:mod:`repro.serving.hotswap`), a zero-dependency HTTP/JSON frontend
(:mod:`repro.serving.http`, CLI: ``python -m repro serve``), a
deterministic closed-loop load generator
(:mod:`repro.serving.loadgen`, benchmark: ``benchmarks/bench_serving.py``),
a versioned flat binary snapshot layout mapped read-only across worker
processes (:mod:`repro.serving.shm`), a multi-process SO_REUSEPORT
supervisor serving it (:mod:`repro.serving.supervisor`, CLI:
``python -m repro serve --workers N``), and a succinct tree-retrieval
read path — Euler-tour intervals, sparse-table LCA, delta-compressed
varint postings — behind the ``tree_repr="succinct"`` knob
(:mod:`repro.serving.succinct`, bit-identical to the flat answers), and
staged free-text query categorization with confidence-thresholded
back-off up the hierarchy (:mod:`repro.serving.querycat`, CLI:
``python -m repro categorize-query``).

Quickstart::

    from repro.serving import ServingEngine, SnapshotStore

    store = SnapshotStore("snapshots/")
    store.save(tree, instance, variant)           # content-addressed
    engine = ServingEngine.from_snapshot(store.load())
    engine.best_category({"p1", "p2"})            # scored best category
    engine.categorize_item("p1")                  # branch placements
    engine.browse()                               # root navigation page
"""

from repro.serving.engine import (
    Generation,
    ServingEngine,
    ServingError,
    prepare_generation,
)
from repro.serving.hotswap import HotSwapper
from repro.serving.http import ServingHTTPServer, make_server, serve_in_background
from repro.serving.indexes import BaseSnapshotIndexes, BestCategory, SnapshotIndexes
from repro.serving.loadgen import (
    DEFAULT_MIX,
    HttpLoadGenResult,
    LoadGenResult,
    Request,
    build_workload,
    request_path,
    run_http_loadgen,
    run_loadgen,
)
from repro.serving.querycat import (
    DEFAULT_CONFIDENCE_THRESHOLD,
    DEFAULT_TOP_K,
    categorize_query,
    record_query_counters,
)
from repro.serving.shm import (
    FLAT_FORMAT_VERSION,
    SECTION_GROUPS,
    MmapSnapshotIndexes,
    compile_flat_indexes,
    describe_flat,
    flat_format_version,
    flat_header,
    prepare_mmap_generation,
)
from repro.serving.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    LoadedSnapshot,
    SnapshotError,
    SnapshotInfo,
    SnapshotStore,
    flat_file_name,
    variant_from_spec,
    variant_spec,
)
from repro.serving.succinct import (
    BITSET_FANIN_THRESHOLD,
    TREE_REPRS,
    EulerTour,
    decode_postings,
    encode_postings,
)
from repro.serving.supervisor import ServingSupervisor, WorkerConfig

__all__ = [
    "BITSET_FANIN_THRESHOLD",
    "BaseSnapshotIndexes",
    "BestCategory",
    "DEFAULT_CONFIDENCE_THRESHOLD",
    "DEFAULT_MIX",
    "DEFAULT_TOP_K",
    "EulerTour",
    "FLAT_FORMAT_VERSION",
    "Generation",
    "HotSwapper",
    "HttpLoadGenResult",
    "LoadGenResult",
    "LoadedSnapshot",
    "MmapSnapshotIndexes",
    "Request",
    "SECTION_GROUPS",
    "SNAPSHOT_FORMAT_VERSION",
    "ServingEngine",
    "ServingError",
    "ServingHTTPServer",
    "ServingSupervisor",
    "SnapshotError",
    "SnapshotIndexes",
    "SnapshotInfo",
    "SnapshotStore",
    "TREE_REPRS",
    "WorkerConfig",
    "build_workload",
    "categorize_query",
    "compile_flat_indexes",
    "decode_postings",
    "describe_flat",
    "encode_postings",
    "flat_file_name",
    "flat_format_version",
    "flat_header",
    "make_server",
    "prepare_generation",
    "prepare_mmap_generation",
    "record_query_counters",
    "request_path",
    "run_http_loadgen",
    "run_loadgen",
    "serve_in_background",
    "variant_from_spec",
    "variant_spec",
]
