"""Serving: snapshot-based query serving over built category trees.

The offline pipeline (CTCR/CCT) *builds* trees; this subsystem *serves*
them: versioned on-disk snapshots (:mod:`repro.serving.snapshot`),
read-optimized per-snapshot indexes (:mod:`repro.serving.indexes`), a
thread-safe query engine with an LRU result cache
(:mod:`repro.serving.engine`), atomic hot swaps of rebuilt trees
(:mod:`repro.serving.hotswap`), a zero-dependency HTTP/JSON frontend
(:mod:`repro.serving.http`, CLI: ``python -m repro serve``), and a
deterministic closed-loop load generator
(:mod:`repro.serving.loadgen`, benchmark: ``benchmarks/bench_serving.py``).

Quickstart::

    from repro.serving import ServingEngine, SnapshotStore

    store = SnapshotStore("snapshots/")
    store.save(tree, instance, variant)           # content-addressed
    engine = ServingEngine.from_snapshot(store.load())
    engine.best_category({"p1", "p2"})            # scored best category
    engine.categorize_item("p1")                  # branch placements
    engine.browse()                               # root navigation page
"""

from repro.serving.engine import (
    Generation,
    ServingEngine,
    ServingError,
    prepare_generation,
)
from repro.serving.hotswap import HotSwapper
from repro.serving.http import ServingHTTPServer, make_server, serve_in_background
from repro.serving.indexes import BestCategory, SnapshotIndexes
from repro.serving.loadgen import (
    DEFAULT_MIX,
    LoadGenResult,
    Request,
    build_workload,
    run_loadgen,
)
from repro.serving.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    LoadedSnapshot,
    SnapshotError,
    SnapshotInfo,
    SnapshotStore,
    variant_from_spec,
    variant_spec,
)

__all__ = [
    "BestCategory",
    "DEFAULT_MIX",
    "Generation",
    "HotSwapper",
    "LoadGenResult",
    "LoadedSnapshot",
    "Request",
    "SNAPSHOT_FORMAT_VERSION",
    "ServingEngine",
    "ServingError",
    "ServingHTTPServer",
    "SnapshotError",
    "SnapshotIndexes",
    "SnapshotInfo",
    "SnapshotStore",
    "build_workload",
    "make_server",
    "prepare_generation",
    "run_loadgen",
    "serve_in_background",
    "variant_from_spec",
    "variant_spec",
]
