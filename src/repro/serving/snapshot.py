"""Versioned on-disk snapshots of built category trees.

A *snapshot* is the unit the serving layer loads, swaps, and rolls back:
one built :class:`~repro.core.tree.CategoryTree` together with the
:class:`~repro.core.input_sets.OCTInstance` it was built from, the
similarity variant, and manifest-style metadata (score, dataset
fingerprint, build run-id). Snapshots are immutable once written and
content-addressed — the snapshot id is a digest of the tree, instance,
and variant payloads, so saving identical content twice yields the same
id and no duplicate directory.

Store layout (everything JSON, reusing :mod:`repro.io` payload shapes)::

    <root>/
      CURRENT                     # the active snapshot id (one line)
      snap-<digest>/
        manifest.json             # SNAPSHOT_FORMAT_VERSION + metadata
        tree.json                 # repro.io tree payload
        instance.json             # repro.io instance payload

Writes are atomic at the directory level: content is staged into a
temporary sibling and published with ``os.replace``, and ``CURRENT`` is
rewritten the same way, so a reader (or a crashed writer) never observes
a half-written snapshot.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.core.exceptions import ReproError
from repro.core.input_sets import OCTInstance
from repro.core.scoring import score_tree
from repro.core.tree import CategoryTree
from repro.core.variants import Variant
from repro.io import instance_from_dict, instance_to_dict, tree_from_dict, tree_to_dict
from repro.observability.manifest import instance_fingerprint

SNAPSHOT_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_TREE = "tree.json"
_INSTANCE = "instance.json"
_CURRENT = "CURRENT"
_FLAT_GLOB = "indexes-*.flat"


def flat_file_name(shard_index: int, shard_count: int) -> str:
    """The shard file name inside a snapshot dir (sorts in shard order)."""
    return f"indexes-{shard_index:04d}-of-{shard_count:04d}.flat"


class SnapshotError(ReproError):
    """Raised on malformed snapshots or impossible store operations."""


# -- variant specs -----------------------------------------------------------


_KIND_NAMES = {"jaccard": "jaccard", "f1": "f1"}


def variant_spec(variant: Variant) -> str:
    """The CLI spelling of a variant (``threshold-jaccard:0.8``, ...).

    Round-trips through :func:`variant_from_spec`. The Exact variant is
    spelled through its Jaccard embedding (``threshold-jaccard:1``).
    """
    if variant.is_perfect_recall:
        return f"perfect-recall:{variant.delta:g}"
    kind = _KIND_NAMES[variant.kind.value]
    return f"{variant.mode.value}-{kind}:{variant.delta:g}"


def variant_from_spec(spec: str) -> Variant:
    """Parse a :func:`variant_spec` string back into a :class:`Variant`."""
    if spec == "exact":
        return Variant.exact()
    name, sep, raw_delta = spec.partition(":")
    constructors = {
        "threshold-jaccard": Variant.threshold_jaccard,
        "cutoff-jaccard": Variant.cutoff_jaccard,
        "threshold-f1": Variant.threshold_f1,
        "cutoff-f1": Variant.cutoff_f1,
        "perfect-recall": Variant.perfect_recall,
    }
    if not sep or name not in constructors:
        raise SnapshotError(f"bad variant spec {spec!r}")
    try:
        delta = float(raw_delta)
    except ValueError as exc:
        raise SnapshotError(f"bad variant spec {spec!r}") from exc
    return constructors[name](delta)


# -- snapshot records --------------------------------------------------------


@dataclass(frozen=True)
class SnapshotInfo:
    """The manifest of one snapshot: what was built, from what, how well."""

    snapshot_id: str
    variant: str  # variant_spec string
    delta: float
    score: float  # normalized score of the tree over its instance
    created_at: str
    n_categories: int
    n_sets: int
    n_items: int
    dataset: dict = field(default_factory=dict)  # instance fingerprint
    build_run_id: str = ""
    format_version: int = SNAPSHOT_FORMAT_VERSION

    def to_dict(self) -> dict:
        return {
            "format_version": self.format_version,
            "snapshot_id": self.snapshot_id,
            "variant": self.variant,
            "delta": self.delta,
            "score": self.score,
            "created_at": self.created_at,
            "n_categories": self.n_categories,
            "n_sets": self.n_sets,
            "n_items": self.n_items,
            "dataset": self.dataset,
            "build_run_id": self.build_run_id,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SnapshotInfo":
        version = payload.get("format_version")
        if isinstance(version, int) and version > SNAPSHOT_FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot format_version {version} is newer than supported "
                f"version {SNAPSHOT_FORMAT_VERSION}; upgrade repro to read it"
            )
        if version != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotError(
                f"unsupported snapshot format_version {version!r} "
                f"(supported: {SNAPSHOT_FORMAT_VERSION})"
            )
        try:
            return cls(
                snapshot_id=payload["snapshot_id"],
                variant=payload["variant"],
                delta=payload["delta"],
                score=payload["score"],
                created_at=payload["created_at"],
                n_categories=payload["n_categories"],
                n_sets=payload["n_sets"],
                n_items=payload["n_items"],
                dataset=dict(payload.get("dataset", {})),
                build_run_id=payload.get("build_run_id", ""),
            )
        except KeyError as exc:
            raise SnapshotError(f"snapshot manifest missing field {exc}") from exc


@dataclass(frozen=True)
class LoadedSnapshot:
    """A fully materialized snapshot, ready to index and serve."""

    info: SnapshotInfo
    tree: CategoryTree
    instance: OCTInstance

    @property
    def variant(self) -> Variant:
        return variant_from_spec(self.info.variant)


def snapshot_digest(
    tree_payload: dict, instance_payload: dict, variant: Variant
) -> str:
    """Content-addressed snapshot id over the canonical JSON payloads."""
    digest = hashlib.sha256()
    for part in (
        json.dumps(tree_payload, sort_keys=True),
        json.dumps(instance_payload, sort_keys=True),
        variant_spec(variant),
    ):
        digest.update(part.encode("utf-8"))
        digest.update(b"\0")
    return f"snap-{digest.hexdigest()[:16]}"


# -- the store ---------------------------------------------------------------


class SnapshotStore:
    """A directory of immutable snapshots plus one ``CURRENT`` pointer."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- writing -----------------------------------------------------------

    def save(
        self,
        tree: CategoryTree,
        instance: OCTInstance,
        variant: Variant,
        build_run_id: str = "",
        activate: bool = True,
        flat_shards: int = 1,
        tree_repr: str = "both",
    ) -> SnapshotInfo:
        """Persist a built tree as a snapshot; returns its manifest.

        The normalized score and the instance fingerprint are computed
        here so every snapshot records how good it was at build time.
        Saving content that already exists is a no-op (same id); with
        ``activate`` (the default) the snapshot also becomes ``CURRENT``.

        ``flat_shards`` also compiles the mmap-able flat layout
        (:mod:`repro.serving.shm`) into the staged directory, split into
        that many item shards, so the snapshot publishes atomically with
        both formats; ``flat_shards=0`` skips it (the flat files are
        then compiled on first mmap use via :meth:`ensure_flat`).
        ``tree_repr`` selects the emitted flat section groups ("flat",
        "succinct", or "both" — the default, so any reader knob works).
        """
        tree_payload = tree_to_dict(tree)
        instance_payload = instance_to_dict(instance)
        snapshot_id = snapshot_digest(tree_payload, instance_payload, variant)
        target = self.root / snapshot_id
        if not target.exists():
            info = SnapshotInfo(
                snapshot_id=snapshot_id,
                variant=variant_spec(variant),
                delta=variant.delta,
                score=score_tree(tree, instance, variant).normalized,
                created_at=time.strftime(
                    "%Y-%m-%dT%H:%M:%S", time.localtime()
                ),
                n_categories=len(tree),
                n_sets=len(instance),
                n_items=len(instance.universe),
                dataset=instance_fingerprint(instance),
                build_run_id=build_run_id,
            )
            staging = self.root / f".staging-{snapshot_id}-{os.getpid()}"
            staging.mkdir(parents=True, exist_ok=True)
            try:
                for name, payload in (
                    (_TREE, tree_payload),
                    (_INSTANCE, instance_payload),
                    (_MANIFEST, info.to_dict()),
                ):
                    (staging / name).write_text(
                        json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8",
                    )
                if flat_shards > 0:
                    self._write_flat(
                        staging, tree_payload, flat_shards, tree_repr
                    )
                try:
                    os.replace(staging, target)
                except OSError:  # pragma: no cover - concurrent save race
                    if not target.exists():
                        raise
            finally:
                if staging.exists():  # pragma: no cover - failure cleanup
                    for leftover in staging.iterdir():
                        leftover.unlink()
                    staging.rmdir()
        if activate:
            self.activate(snapshot_id)
        return self.info(snapshot_id)

    def _write_flat(
        self,
        directory: Path,
        tree_payload: dict,
        shards: int,
        tree_repr: str = "both",
    ) -> list[Path]:
        """Compile and write the flat shard files into a snapshot dir.

        Compiles from the *round-tripped* tree (the JSON payload a later
        reload would see) so the mmap read path answers exactly what a
        reloaded in-memory :class:`~repro.serving.indexes.SnapshotIndexes`
        would. Each file lands via write-to-temp + ``os.replace``, so a
        concurrent compiler (two workers racing :meth:`ensure_flat`)
        just overwrites identical content.
        """
        from repro.serving.indexes import SnapshotIndexes
        from repro.serving.shm import compile_flat_indexes

        # The variant only stamps the header; read it back from the
        # manifest when present (staging writes pass the payloads).
        manifest = json.loads(
            (directory / _MANIFEST).read_text(encoding="utf-8")
        )
        variant = variant_from_spec(manifest["variant"])
        tree = tree_from_dict(tree_payload)
        instance = instance_from_dict(
            json.loads((directory / _INSTANCE).read_text(encoding="utf-8"))
        )
        indexes = SnapshotIndexes(tree, instance, variant, use_bitset=False)
        paths: list[Path] = []
        for shard_index, blob in enumerate(
            compile_flat_indexes(indexes, shards=shards, tree_repr=tree_repr)
        ):
            path = directory / flat_file_name(shard_index, shards)
            tmp = directory / f".{path.name}.tmp-{os.getpid()}"
            tmp.write_bytes(blob)
            os.replace(tmp, path)
            paths.append(path)
        return paths

    def flat_paths(self, snapshot_id: str) -> list[Path]:
        """The snapshot's flat shard files, sorted (empty when absent)."""
        return sorted((self.root / snapshot_id).glob(_FLAT_GLOB))

    def ensure_flat(
        self, snapshot_id: str, shards: int = 1, tree_repr: str = "both"
    ) -> list[Path]:
        """The flat shard files, compiling them first when missing.

        Lets worker processes mmap snapshots written before the flat
        layout existed (or saved with ``flat_shards=0``): the compile is
        idempotent and each file is published atomically, so concurrent
        workers race harmlessly. An existing current-version flat set
        carrying the requested representation(s) is returned as-is
        whatever its shard count — sharding is fixed at compile time.
        Files written by an older format version, or missing a section
        group ``tree_repr`` asks for, are recompiled in place at their
        existing shard count (the format-version migration path: old
        stores upgrade on first read, and the atomic per-file replace
        means concurrent readers only ever see whole files).
        """
        from repro.serving.shm import FLAT_FORMAT_VERSION, flat_header

        wanted = (
            {"flat", "succinct"} if tree_repr == "both" else {tree_repr}
        )
        existing = self.flat_paths(snapshot_id)
        if existing:
            fresh = True
            for path in existing:
                version, header = flat_header(path)
                if version != FLAT_FORMAT_VERSION or not wanted.issubset(
                    header.get("reprs", ["flat"])
                ):
                    fresh = False
                    break
            if fresh:
                return existing
            # Recompile at the existing shard count so the new files
            # overwrite the old set exactly (no mixed-version leftovers).
            shards = len(existing)
        directory = self.root / snapshot_id
        if not (directory / _MANIFEST).exists():
            raise SnapshotError(f"no snapshot {snapshot_id!r} in {self.root}")
        tree_payload = json.loads(
            (directory / _TREE).read_text(encoding="utf-8")
        )
        return self._write_flat(directory, tree_payload, shards, "both")

    def activate(self, snapshot_id: str) -> None:
        """Point ``CURRENT`` at an existing snapshot (atomic replace)."""
        if not (self.root / snapshot_id / _MANIFEST).exists():
            raise SnapshotError(f"no snapshot {snapshot_id!r} in {self.root}")
        tmp = self.root / f".{_CURRENT}.tmp-{os.getpid()}"
        tmp.write_text(snapshot_id + "\n", encoding="utf-8")
        os.replace(tmp, self.root / _CURRENT)

    # -- reading -----------------------------------------------------------

    def current_id(self) -> str | None:
        """The active snapshot id, or None when nothing was activated."""
        try:
            text = (self.root / _CURRENT).read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            return None
        return text or None

    def info(self, snapshot_id: str) -> SnapshotInfo:
        """Read one snapshot's manifest (without the tree payload)."""
        path = self.root / snapshot_id / _MANIFEST
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise SnapshotError(
                f"no snapshot {snapshot_id!r} in {self.root}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"corrupt manifest at {path}") from exc
        return SnapshotInfo.from_dict(payload)

    def load(self, snapshot_id: str | None = None) -> LoadedSnapshot:
        """Materialize a snapshot (default: the ``CURRENT`` one)."""
        if snapshot_id is None:
            snapshot_id = self.current_id()
            if snapshot_id is None:
                raise SnapshotError(f"no current snapshot in {self.root}")
        info = self.info(snapshot_id)
        directory = self.root / snapshot_id
        tree = tree_from_dict(
            json.loads((directory / _TREE).read_text(encoding="utf-8"))
        )
        instance = instance_from_dict(
            json.loads((directory / _INSTANCE).read_text(encoding="utf-8"))
        )
        return LoadedSnapshot(info=info, tree=tree, instance=instance)

    def list(self) -> list[SnapshotInfo]:
        """Manifests of every snapshot, oldest first (then by id)."""
        infos = [
            self.info(p.name)
            for p in sorted(self.root.iterdir())
            if p.is_dir() and (p / _MANIFEST).exists()
        ]
        infos.sort(key=lambda i: (i.created_at, i.snapshot_id))
        return infos

    def __iter__(self) -> Iterator[SnapshotInfo]:
        return iter(self.list())

    def __len__(self) -> int:
        return len(self.list())
