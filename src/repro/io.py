"""Serialization: category trees and instances to/from JSON.

Deployments need to hand trees between the construction tool and the
platform (and to taxonomists' review UIs); this module provides a stable
JSON shape with full round-trip fidelity for trees and OCT instances.
Items must be JSON-representable (strings or numbers — the catalog uses
string product ids).
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.exceptions import ReproError
from repro.core.input_sets import InputSet, OCTInstance
from repro.core.tree import Category, CategoryTree

FORMAT_VERSION = 1


class SerializationError(ReproError):
    """Raised on malformed serialized payloads."""


def _check_version(payload: dict[str, Any], kind: str) -> None:
    """Reject payloads this reader cannot faithfully interpret.

    A payload *newer* than :data:`FORMAT_VERSION` gets a distinct
    message naming both versions: the data is fine, the reader is old.
    """
    version = payload.get("version")
    if version == FORMAT_VERSION:
        return
    if isinstance(version, int) and version > FORMAT_VERSION:
        raise SerializationError(
            f"{kind} format version {version} is newer than this reader's "
            f"supported version {FORMAT_VERSION}; upgrade repro to read it"
        )
    raise SerializationError(f"unsupported {kind} format version {version!r}")


# -- trees ------------------------------------------------------------------


def tree_to_dict(tree: CategoryTree) -> dict[str, Any]:
    """A JSON-ready dict for a category tree."""

    def node(cat: Category) -> dict[str, Any]:
        return {
            "cid": cat.cid,
            "label": cat.label,
            "items": sorted(cat.items, key=str),
            "matched_sids": list(cat.matched_sids),
            "children": [node(c) for c in cat.children],
        }

    return {"version": FORMAT_VERSION, "root": node(tree.root)}


def tree_from_dict(payload: dict[str, Any]) -> CategoryTree:
    """Rebuild a tree serialized by :func:`tree_to_dict`."""
    _check_version(payload, "tree")
    root_payload = payload.get("root")
    if not isinstance(root_payload, dict):
        raise SerializationError("missing root node")

    tree = CategoryTree(root_label=root_payload.get("label", "root"))
    tree.root.items = set(root_payload.get("items", []))
    tree.root.matched_sids = list(root_payload.get("matched_sids", []))

    def attach(children: list[dict[str, Any]], parent: Category) -> None:
        for child in children:
            cat = tree.add_category(
                child.get("items", []),
                parent=parent,
                label=child.get("label", ""),
            )
            cat.matched_sids = list(child.get("matched_sids", []))
            attach(child.get("children", []), cat)

    attach(root_payload.get("children", []), tree.root)
    return tree


def dump_tree(tree: CategoryTree, path: str) -> None:
    """Write a tree to a JSON file."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(tree_to_dict(tree), f, indent=2, sort_keys=True)


def load_tree(path: str) -> CategoryTree:
    """Read a tree from a JSON file."""
    with open(path, encoding="utf-8") as f:
        return tree_from_dict(json.load(f))


# -- instances ---------------------------------------------------------------


def instance_to_dict(instance: OCTInstance) -> dict[str, Any]:
    """A JSON-ready dict for an OCT instance."""
    return {
        "version": FORMAT_VERSION,
        "default_bound": instance.default_bound,
        "universe": sorted(instance.universe, key=str),
        "item_bounds": {
            str(item): instance.bound(item)
            for item in instance.universe
            if instance.bound(item) != instance.default_bound
        },
        "sets": [
            {
                "sid": q.sid,
                "items": sorted(q.items, key=str),
                "weight": q.weight,
                "threshold": q.threshold,
                "label": q.label,
                "source": q.source,
            }
            for q in instance
        ],
    }


def instance_from_dict(payload: dict[str, Any]) -> OCTInstance:
    """Rebuild an instance serialized by :func:`instance_to_dict`.

    Note: per-item bounds are keyed by ``str(item)``, so non-string item
    types round-trip their bounds only when their string form is unique.
    """
    _check_version(payload, "instance")
    sets = [
        InputSet(
            sid=entry["sid"],
            items=frozenset(entry["items"]),
            weight=entry.get("weight", 1.0),
            threshold=entry.get("threshold"),
            label=entry.get("label", ""),
            source=entry.get("source", "query"),
        )
        for entry in payload.get("sets", [])
    ]
    universe = payload.get("universe")
    bounds = payload.get("item_bounds", {})
    return OCTInstance(
        sets,
        universe=universe,
        item_bounds=bounds,
        default_bound=payload.get("default_bound", 1),
    )


def dump_instance(instance: OCTInstance, path: str) -> None:
    """Write an instance to a JSON file."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(instance_to_dict(instance), f, indent=2, sort_keys=True)


def load_instance(path: str) -> OCTInstance:
    """Read an instance from a JSON file."""
    with open(path, encoding="utf-8") as f:
        return instance_from_dict(json.load(f))
