"""Text analysis for the search-engine substrate."""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z0-9]+")

# A minimal stop list; product titles are short so aggressive stopping
# would hurt more than help.
STOPWORDS = frozenset(
    {"a", "an", "and", "for", "in", "of", "on", "or", "the", "to", "with"}
)


def light_stem(token: str) -> str:
    """Strip a trailing plural 's' from long tokens ("shirts" -> "shirt").

    Deliberately conservative: short tokens and "-ss" endings are left
    alone, which is enough for plural query variants to retrieve the
    same items as their singular form.
    """
    if len(token) > 3 and token.endswith("s") and not token.endswith("ss"):
        return token[:-1]
    return token


def tokenize(text: str, drop_stopwords: bool = True) -> list[str]:
    """Lowercase alphanumeric tokens, lightly stemmed, minus stopwords.

    >>> tokenize("Black NIKE T-Shirts for Men")
    ['black', 'nike', 't', 'shirt', 'men']
    """
    tokens = _TOKEN_RE.findall(text.lower())
    if drop_stopwords:
        tokens = [t for t in tokens if t not in STOPWORDS]
    return [light_stem(t) for t in tokens]
