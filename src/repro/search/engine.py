"""Query evaluation with [0, 1] relevance scores (paper Section 5.1).

Platform search engines attach a relevance score in [0, 1] to every
returned item; the paper thresholds these (0.8 for Jaccard/F1 inputs,
0.9 for Perfect-Recall/Exact) to obtain candidate-category result sets.
This engine reproduces that interface: TF-IDF dot-product scores,
normalized by the best achievable score for the query so a perfectly
matching title scores 1.0 and marginal matches trail off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.search.analyzer import tokenize
from repro.search.index import DocId, InvertedIndex


@dataclass(frozen=True)
class SearchHit:
    """One scored result."""

    doc_id: DocId
    relevance: float


class SearchEngine:
    """TF-IDF search over short documents with normalized relevance."""

    def __init__(self) -> None:
        self.index = InvertedIndex()

    def add_document(self, doc_id: DocId, text: str) -> None:
        self.index.add(doc_id, text)

    def add_documents(self, docs: dict[DocId, str]) -> None:
        for doc_id, text in docs.items():
            self.add_document(doc_id, text)

    def search(self, query: str, top_k: int | None = None) -> list[SearchHit]:
        """Scored hits, best first; ties break on the document id."""
        tokens = tokenize(query)
        if not tokens:
            return []
        # Sorted token order pins the float accumulation order, so
        # relevance scores are identical across processes (string hashing
        # is per-process randomized; set order is not) — the mmap label
        # search in repro.serving.shm replicates this loop exactly.
        weights = {
            token: self.index.idf(token) for token in sorted(set(tokens))
        }
        best_possible = sum(weights.values())
        if best_possible <= 0:
            return []
        scores: dict[DocId, float] = {}
        for token, weight in weights.items():
            for doc_id in self.index.postings.get(token, {}):
                scores[doc_id] = scores.get(doc_id, 0.0) + weight
        hits = [
            SearchHit(doc_id=doc_id, relevance=score / best_possible)
            for doc_id, score in scores.items()
        ]
        hits.sort(key=lambda h: (-h.relevance, str(h.doc_id)))
        if top_k is not None:
            hits = hits[:top_k]
        return hits

    def result_set(
        self, query: str, relevance_threshold: float, top_k: int | None = None
    ) -> frozenset:
        """Item ids whose relevance meets the threshold."""
        return frozenset(
            hit.doc_id
            for hit in self.search(query, top_k=top_k)
            if hit.relevance >= relevance_threshold - 1e-12
        )
