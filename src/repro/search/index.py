"""Inverted index with TF-IDF document vectors.

This is the offline stand-in for the platform search engine (and for the
Elasticsearch setup the paper uses for its public dataset E): documents
are product titles, and queries return relevance scores in [0, 1].
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.search.analyzer import tokenize

DocId = Hashable


class InvertedIndex:
    """Token -> posting-list index over short documents."""

    def __init__(self) -> None:
        self.postings: dict[str, dict[DocId, int]] = {}
        self.doc_lengths: dict[DocId, int] = {}

    def add(self, doc_id: DocId, text: str) -> None:
        if doc_id in self.doc_lengths:
            raise ValueError(f"document {doc_id!r} already indexed")
        tokens = tokenize(text)
        self.doc_lengths[doc_id] = len(tokens)
        for token in tokens:
            bucket = self.postings.setdefault(token, {})
            bucket[doc_id] = bucket.get(doc_id, 0) + 1

    def __len__(self) -> int:
        return len(self.doc_lengths)

    def document_frequency(self, token: str) -> int:
        return len(self.postings.get(token, ()))

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency."""
        n = len(self.doc_lengths)
        df = self.document_frequency(token)
        return math.log(1.0 + n / (1.0 + df))

    def candidates(self, tokens: list[str]) -> set[DocId]:
        """Documents containing at least one query token."""
        result: set[DocId] = set()
        for token in tokens:
            result |= self.postings.get(token, {}).keys()
        return result
