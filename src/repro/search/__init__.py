"""Search-engine substrate: analyzer, inverted index, relevance scoring."""

from repro.search.analyzer import STOPWORDS, tokenize
from repro.search.engine import SearchEngine, SearchHit
from repro.search.index import InvertedIndex

__all__ = [
    "InvertedIndex",
    "STOPWORDS",
    "SearchEngine",
    "SearchHit",
    "tokenize",
]
