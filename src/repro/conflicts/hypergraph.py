"""Conflict graphs and hypergraphs (Algorithm 1, lines 8-9).

The vertices are input-set ids weighted by the set weights; edges are the
2-conflicts, and — for thresholds below 1 — hyperedges of size 3 are the
3-conflicts. An independent set (no edge fully selected) is exactly a
conflict-free family of input sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.conflicts.three_conflicts import Triple, compute_three_conflicts
from repro.conflicts.two_conflicts import PairwiseAnalysis
from repro.core.input_sets import OCTInstance


@dataclass
class ConflictHypergraph:
    """Weighted conflict structure fed to the MIS solvers.

    With ``triples`` empty this is the plain conflict *graph* of the
    Exact variant; otherwise it is the conflict hypergraph with mixed
    edge sizes 2 and 3.
    """

    vertices: list[int]
    weights: dict[int, float]
    pairs: set[tuple[int, int]] = field(default_factory=set)
    triples: set[Triple] = field(default_factory=set)
    # Lazily-built incidence index, invalidated by edge-count signature
    # (edges are only ever added, never removed, after construction).
    _incidence: dict[int, list[tuple[int, ...]]] | None = field(
        default=None, repr=False, compare=False
    )
    _incidence_sig: tuple[int, int] = field(
        default=(-1, -1), repr=False, compare=False
    )

    @property
    def num_edges(self) -> int:
        return len(self.pairs) + len(self.triples)

    def incidence(self) -> dict[int, list[tuple[int, ...]]]:
        """Vertex -> incident conflict (hyper)edges, built once and cached.

        The index is rebuilt only when the edge counts change (e.g. after
        :func:`build_conflict_hypergraph` fills in the triples), so
        repeated :meth:`degree` probes — and the reduction rules that
        walk neighbourhoods — stop paying an O(|E|) scan per call.
        """
        sig = (len(self.pairs), len(self.triples))
        if self._incidence is None or self._incidence_sig != sig:
            index: dict[int, list[tuple[int, ...]]] = {
                v: [] for v in self.vertices
            }
            for edge in self.pairs:
                for v in edge:
                    index[v].append(edge)
            for edge in self.triples:
                for v in edge:
                    index[v].append(edge)
            self._incidence = index
            self._incidence_sig = sig
        return self._incidence

    def degree(self, vertex: int) -> int:
        """Number of conflict (hyper)edges touching a vertex."""
        return len(self.incidence()[vertex])

    def is_independent(self, selected: set[int]) -> bool:
        """True when no conflict edge is fully contained in ``selected``."""
        for a, b in self.pairs:
            if a in selected and b in selected:
                return False
        for a, b, c in self.triples:
            if a in selected and b in selected and c in selected:
                return False
        return True

    def weight_of(self, selected: set[int]) -> float:
        return sum(self.weights[v] for v in selected)


def build_conflict_graph(
    instance: OCTInstance, analysis: PairwiseAnalysis
) -> ConflictHypergraph:
    """Conflict graph over 2-conflicts only (Exact variant, line 9)."""
    return ConflictHypergraph(
        vertices=[q.sid for q in instance],
        weights={q.sid: q.weight for q in instance},
        pairs=set(analysis.conflicts),
    )


def build_conflict_hypergraph(
    instance: OCTInstance,
    analysis: PairwiseAnalysis,
    triples: set[Triple] | None = None,
) -> ConflictHypergraph:
    """Conflict hypergraph over 2- and 3-conflicts (line 8, delta < 1).

    ``triples`` injects an externally-maintained 3-conflict set — the
    incremental builder passes the delta-updated triples here instead of
    re-enumerating them from scratch.
    """
    graph = build_conflict_graph(instance, analysis)
    graph.triples = (
        set(triples) if triples is not None
        else compute_three_conflicts(analysis)
    )
    return graph


def conflict_statistics(graph: ConflictHypergraph) -> dict[str, float]:
    """Summary statistics, including the paper's C2(Q, W) measure.

    ``C2(Q, W)`` is the weighted average number of 2-conflicts per input
    set (Theorem 3.1): CTCR's performance ratio for the Exact variant is
    tight at ``O(C2(Q, W))``.
    """
    degree2: dict[int, int] = {v: 0 for v in graph.vertices}
    for a, b in graph.pairs:
        degree2[a] += 1
        degree2[b] += 1
    total_weight = sum(graph.weights.values())
    if total_weight > 0:
        c2 = (
            sum(graph.weights[v] * degree2[v] for v in graph.vertices)
            / total_weight
        )
    else:
        c2 = 0.0
    return {
        "vertices": float(len(graph.vertices)),
        "pair_edges": float(len(graph.pairs)),
        "triple_edges": float(len(graph.triples)),
        "c2_weighted_avg": c2,
        "max_degree2": float(max(degree2.values(), default=0)),
    }
