"""Pairwise cover predicates (paper Sections 3.1-3.3).

Two input sets can be *covered separately* when a valid tree can hold a
covering category for each on different branches, and *covered together*
when covering categories can sit on one branch (the upper category
belonging to the lower-ranked — larger — set). A pair that can be covered
neither way is a *2-conflict*; a pair that can only be covered together is
a *must-together* pair.

The closed-form feasibility tests below are the paper's, derived in
Section 3.3 for the Jaccard variants and extended analogously to F1 and
Perfect-Recall (see DESIGN.md Section 3 for the algebra):

* separately — each set ``q_i`` may drop at most ``x_i`` of its items
  from its covering category; the shared items (those with branch bound
  1) must be partitioned, so the test is ``|I| <= x1 + x2``.
* together — the lower category must keep ``y2`` items that are outside
  the upper set, and the upper category absorbs them; the test bounds
  ``y2`` by the upper set's tolerance for precision error.

All tests honour per-set thresholds, and items whose branch bound exceeds
1 are excluded from the shared-item count when testing separate covers
(they may legally appear on both branches).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core.input_sets import InputSet, Item
from repro.core.variants import SimilarityKind, Variant

_EPS = 1e-9


def _floor(x: float) -> int:
    return math.floor(x + _EPS)


def _ceil(x: float) -> int:
    return math.ceil(x - _EPS)


def max_removable_items(variant: Variant, size: int, delta: float) -> int:
    """``x_i``: how many of a set's items its covering category may drop.

    With precision kept perfect (the category a subset of the set), the
    similarity is a function of recall alone; this returns the largest
    item deficit that still clears the threshold.
    """
    if delta >= 1.0 or variant.kind is SimilarityKind.PERFECT_RECALL:
        return 0
    if variant.kind is SimilarityKind.JACCARD:
        return _floor(size * (1.0 - delta))
    # F1 with p = 1: F1 = 2r / (1 + r) >= delta  <=>  r >= delta / (2 - delta)
    return _floor(size * (2.0 * (1.0 - delta)) / (2.0 - delta))


def min_cover_size(variant: Variant, size: int, delta: float) -> int:
    """Minimum size of a covering category that is a subset of the set."""
    return size - max_removable_items(variant, size, delta)


def can_cover_separately(
    variant: Variant,
    q1: InputSet,
    q2: InputSet,
    delta1: float,
    delta2: float,
    shared_bound1: int | None = None,
) -> bool:
    """Can the two sets be covered on different branches?

    ``shared_bound1`` is the number of shared items that must be
    partitioned (those with branch bound 1); when ``None`` it defaults to
    the full intersection size.
    """
    if shared_bound1 is None:
        shared_bound1 = len(q1.items & q2.items)
    if shared_bound1 == 0:
        return True
    x1 = min(max_removable_items(variant, len(q1), delta1), shared_bound1)
    x2 = min(max_removable_items(variant, len(q2), delta2), shared_bound1)
    return shared_bound1 <= x1 + x2


def can_cover_together(
    variant: Variant,
    upper: InputSet,
    lower: InputSet,
    delta_upper: float,
    delta_lower: float,
    intersection: int | None = None,
) -> bool:
    """Can the two sets be covered on one branch, ``upper`` placed above?

    ``upper`` must be the lower-ranked (larger) set — callers order the
    pair via :meth:`Ranking.upper_lower`.
    """
    if intersection is None:
        intersection = len(upper.items & lower.items)
    if variant.kind is SimilarityKind.PERFECT_RECALL:
        # The lower category can be exactly its set (precision 1); the
        # upper one must contain the union, so only its precision w.r.t.
        # the upper set constrains the pair. At delta = 1 this degenerates
        # to the Exact condition "lower is a subset of upper".
        union = len(upper) + len(lower) - intersection
        return len(upper) >= delta_upper * union - _EPS

    if variant.kind is SimilarityKind.JACCARD:
        needed_lower = _ceil(delta_lower * len(lower))
        budget_upper = len(upper) * (1.0 - delta_upper) / delta_upper
    else:  # F1
        needed_lower = _ceil(len(lower) * delta_lower / (2.0 - delta_lower))
        budget_upper = 2.0 * len(upper) * (1.0 - delta_upper) / delta_upper
    y2 = max(0, needed_lower - intersection)
    return y2 <= budget_upper + _EPS


def effective_shared(
    q1: InputSet, q2: InputSet, bound: Callable[[Item], int]
) -> int:
    """Shared items that must be partitioned between separate branches.

    Items with branch bound greater than 1 may appear on both branches,
    so only bound-1 items constrain a separate cover.
    """
    return sum(1 for item in q1.items & q2.items if bound(item) == 1)


# ---------------------------------------------------------------------------
# Vectorized counterparts, used by the bitset kernel path. The expressions
# mirror the scalar closed forms above term for term (same grouping, same
# epsilons) so both paths classify every pair bit-for-bit identically;
# tests/test_ctcr_equivalence.py enforces this.
# ---------------------------------------------------------------------------

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the container always has numpy
    _np = None  # type: ignore[assignment]


def max_removable_vec(variant: Variant, sizes, deltas):
    """``max_removable_items`` for aligned per-set size/threshold arrays."""
    if variant.kind is SimilarityKind.PERFECT_RECALL:
        return _np.zeros(len(sizes), dtype=_np.int64)
    if variant.kind is SimilarityKind.JACCARD:
        raw = _np.floor(sizes * (1.0 - deltas) + _EPS)
    else:  # F1, same algebra as the scalar form
        raw = _np.floor(
            sizes * (2.0 * (1.0 - deltas)) / (2.0 - deltas) + _EPS
        )
    return _np.where(deltas >= 1.0, 0, raw.astype(_np.int64))


def classify_pairs_vec(
    variant: Variant,
    sizes,
    deltas,
    ranks,
    ii,
    jj,
    inter,
    shared_bound1,
):
    """(can_separately, can_together) boolean arrays for pair positions.

    ``sizes``/``deltas``/``ranks`` are per-set arrays; ``ii``/``jj`` index
    the pairs into them; ``inter``/``shared_bound1`` are the per-pair
    intersection sizes. Orientation follows the ranking exactly as in
    :func:`can_cover_together`: the upper set is the one with the smaller
    rank number.
    """
    removable = max_removable_vec(variant, sizes, deltas)
    x1 = _np.minimum(removable[ii], shared_bound1)
    x2 = _np.minimum(removable[jj], shared_bound1)
    separately = shared_bound1 <= x1 + x2

    upper_is_i = ranks[ii] < ranks[jj]
    s_u = _np.where(upper_is_i, sizes[ii], sizes[jj])
    s_l = _np.where(upper_is_i, sizes[jj], sizes[ii])
    d_u = _np.where(upper_is_i, deltas[ii], deltas[jj])
    d_l = _np.where(upper_is_i, deltas[jj], deltas[ii])

    if variant.kind is SimilarityKind.PERFECT_RECALL:
        union = s_u + s_l - inter
        together = s_u >= d_u * union - _EPS
    else:
        if variant.kind is SimilarityKind.JACCARD:
            needed_lower = _np.ceil(d_l * s_l - _EPS)
            budget_upper = s_u * (1.0 - d_u) / d_u
        else:  # F1
            needed_lower = _np.ceil(s_l * d_l / (2.0 - d_l) - _EPS)
            budget_upper = 2.0 * s_u * (1.0 - d_u) / d_u
        y2 = _np.maximum(0, needed_lower - inter)
        together = y2 <= budget_upper + _EPS
    return separately, together
