"""Input-set ranking (paper Section 3.2, "Sorting the input sets").

Sets are sorted from largest to smallest, breaking size ties by weight
from lightest to heaviest (so that among equal-size sets the heavier one
ranks lower and receives the deeper — and therefore more precise —
category). ``rank`` 1 is the largest set. Remaining ties break on the
set id, keeping the order deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.input_sets import InputSet, OCTInstance


@dataclass(frozen=True)
class Ranking:
    """Bidirectional rank lookup over an instance's input sets."""

    ordered: tuple[InputSet, ...]
    rank_of: dict[int, int]

    def __len__(self) -> int:
        return len(self.ordered)

    def rank(self, sid: int) -> int:
        """Rank of a set (1 = largest)."""
        return self.rank_of[sid]

    def upper_lower(self, a: InputSet, b: InputSet) -> tuple[InputSet, InputSet]:
        """Order a pair as (upper, lower): the upper set ranks first.

        When two sets are covered together, the category of the upper
        (lower-rank-number) set is placed above on the branch.
        """
        if self.rank_of[a.sid] < self.rank_of[b.sid]:
            return a, b
        return b, a


def rank_sets(instance: OCTInstance) -> Ranking:
    """Compute the CTCR ranking of an instance's input sets."""
    ordered = tuple(
        sorted(instance.sets, key=lambda q: (-len(q.items), q.weight, q.sid))
    )
    rank_of = {q.sid: i + 1 for i, q in enumerate(ordered)}
    return Ranking(ordered=ordered, rank_of=rank_of)
