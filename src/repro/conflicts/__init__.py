"""Conflict detection: rankings, pairwise predicates, 2-/3-conflicts."""

from repro.conflicts.hypergraph import (
    ConflictHypergraph,
    build_conflict_graph,
    build_conflict_hypergraph,
    conflict_statistics,
)
from repro.conflicts.pairwise import (
    can_cover_separately,
    can_cover_together,
    max_removable_items,
    min_cover_size,
)
from repro.conflicts.ranking import Ranking, rank_sets
from repro.conflicts.three_conflicts import compute_three_conflicts
from repro.conflicts.two_conflicts import PairwiseAnalysis, compute_pairwise

__all__ = [
    "ConflictHypergraph",
    "PairwiseAnalysis",
    "Ranking",
    "build_conflict_graph",
    "build_conflict_hypergraph",
    "can_cover_separately",
    "can_cover_together",
    "compute_pairwise",
    "compute_three_conflicts",
    "conflict_statistics",
    "max_removable_items",
    "min_cover_size",
    "rank_sets",
]
