"""Enumeration of 3-conflicts (Algorithm 1, line 6; paper Section 3.2).

A triplet ``{q1, q2, q3}`` is a 3-conflict when ``{q1,q2}`` and
``{q2,q3}`` must each be covered together, ``q2`` is *not* the
lowest-ranked (largest) of the three — otherwise its category would
simply be an ancestor of both others' — and ``{q1,q3}`` is not itself a
must-together pair. If ``{q1,q3}`` is already a 2-conflict the triplet is
redundant and skipped: the 2-conflict alone forbids the co-selection.

Resolving 3-conflicts guarantees that any two categories placed on the
same branch correspond to sets that must be covered together, mirroring
the structural property the Exact variant enjoys by definition.
"""

from __future__ import annotations

from repro.conflicts.two_conflicts import PairwiseAnalysis
from repro.observability import get_tracer

Triple = tuple[int, int, int]


def compute_three_conflicts(analysis: PairwiseAnalysis) -> set[Triple]:
    """All 3-conflicts implied by the must-together relation.

    Returned triples are sorted by rank (best-ranked first) so each
    conflict has one canonical representation.
    """
    with get_tracer().span("conflicts.three"):
        return _compute_three_conflicts(analysis)


def _compute_three_conflicts(analysis: PairwiseAnalysis) -> set[Triple]:
    ranking = analysis.ranking
    adjacency = analysis.must_neighbors()
    conflicts: set[Triple] = set()
    for middle, neighbors in adjacency.items():
        if len(neighbors) < 2:
            continue
        ordered = sorted(neighbors, key=lambda sid: ranking.rank_of[sid])
        for i, first in enumerate(ordered):
            for third in ordered[i + 1 :]:
                # middle must not be the lowest-ranked (largest) of the three
                if ranking.rank_of[middle] < ranking.rank_of[first]:
                    continue
                if analysis.is_must_together(first, third):
                    continue
                if analysis.is_conflict(first, third):
                    continue
                triple = tuple(
                    sorted(
                        (first, middle, third),
                        key=lambda sid: ranking.rank_of[sid],
                    )
                )
                conflicts.add(triple)  # type: ignore[arg-type]
    get_tracer().count("conflicts.three_conflicts", len(conflicts))
    return conflicts
