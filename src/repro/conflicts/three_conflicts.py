"""Enumeration of 3-conflicts (Algorithm 1, line 6; paper Section 3.2).

A triplet ``{q1, q2, q3}`` is a 3-conflict when ``{q1,q2}`` and
``{q2,q3}`` must each be covered together, ``q2`` is *not* the
lowest-ranked (largest) of the three — otherwise its category would
simply be an ancestor of both others' — and ``{q1,q3}`` is not itself a
must-together pair. If ``{q1,q3}`` is already a 2-conflict the triplet is
redundant and skipped: the 2-conflict alone forbids the co-selection.

Resolving 3-conflicts guarantees that any two categories placed on the
same branch correspond to sets that must be covered together, mirroring
the structural property the Exact variant enjoys by definition.

The enumeration runs on packed int bitsets (:mod:`repro.core.bitset`):
every set's must-together neighbourhood becomes one bitset row indexed
by rank, and the candidate "third" vertices for a ``(middle, first)``
seed are a single AND of the middle's adjacency row against a
higher-rank window minus the first's blocked row. The work is therefore
output-sensitive — pairs filtered by the must-together / 2-conflict
rules are masked out wholesale instead of being visited and rejected one
Python comparison at a time. :func:`_three_conflicts_reference` keeps
the original nested-loop formulation as the differential oracle (and the
pre-kernel baseline for ``benchmarks/bench_mis_engine.py``).
"""

from __future__ import annotations

from repro.conflicts.two_conflicts import PairwiseAnalysis
from repro.core.bitset import iter_bits
from repro.observability import get_tracer

Triple = tuple[int, int, int]


def compute_three_conflicts(analysis: PairwiseAnalysis) -> set[Triple]:
    """All 3-conflicts implied by the must-together relation.

    Returned triples are sorted by rank (best-ranked first) so each
    conflict has one canonical representation.
    """
    with get_tracer().span("conflicts.three"):
        return _compute_three_conflicts(analysis)


def _compute_three_conflicts(analysis: PairwiseAnalysis) -> set[Triple]:
    """Bitset kernel: intersect must-together adjacency rows per middle."""
    ranking = analysis.ranking
    conflicts: set[Triple] = set()
    if not analysis.must_together:
        get_tracer().count("conflicts.three_conflicts", 0)
        return conflicts

    # Bit position == rank index, so "ranked after X" is one mask window
    # and a triple's canonical (rank-sorted) order is its bit order.
    rank_of = ranking.rank_of
    pos_of = {q.sid: rank_of[q.sid] - 1 for q in ranking.ordered}
    sid_at = [q.sid for q in ranking.ordered]  # position -> sid

    # Must-together adjacency rows, plus per-vertex "blocked third" rows:
    # a (first, third) pair that is itself must-together or a 2-conflict
    # never forms a triple, so those bits are stripped before iterating.
    must_rows: dict[int, int] = {}
    blocked_rows: dict[int, int] = {}
    for upper, lower in analysis.must_together:
        up, lp = pos_of[upper], pos_of[lower]
        must_rows[up] = must_rows.get(up, 0) | (1 << lp)
        must_rows[lp] = must_rows.get(lp, 0) | (1 << up)
        blocked_rows[up] = blocked_rows.get(up, 0) | (1 << lp)
        blocked_rows[lp] = blocked_rows.get(lp, 0) | (1 << up)
    for upper, lower in analysis.conflicts:
        up, lp = pos_of[upper], pos_of[lower]
        blocked_rows[up] = blocked_rows.get(up, 0) | (1 << lp)
        blocked_rows[lp] = blocked_rows.get(lp, 0) | (1 << up)

    for m_pos, neighbors in must_rows.items():
        # ``first`` must rank strictly before the middle; thirds rank
        # after first, so a middle seeds pairs only below its position.
        firsts = neighbors & ((1 << m_pos) - 1)
        if not firsts:
            continue
        for f_pos in iter_bits(firsts):
            candidates = (
                neighbors
                & ~((1 << (f_pos + 1)) - 1)
                & ~blocked_rows.get(f_pos, 0)
            )
            # The middle's own bit is never in its adjacency row, so
            # every candidate is a genuine distinct third vertex.
            for t_pos in iter_bits(candidates):
                if m_pos < t_pos:
                    triple = (sid_at[f_pos], sid_at[m_pos], sid_at[t_pos])
                else:
                    triple = (sid_at[f_pos], sid_at[t_pos], sid_at[m_pos])
                conflicts.add(triple)
    get_tracer().count("conflicts.three_conflicts", len(conflicts))
    return conflicts


def _three_conflicts_reference(analysis: PairwiseAnalysis) -> set[Triple]:
    """Pre-kernel nested-loop enumeration, kept as the differential oracle."""
    ranking = analysis.ranking
    adjacency = analysis.must_neighbors()
    conflicts: set[Triple] = set()
    for middle, neighbors in adjacency.items():
        if len(neighbors) < 2:
            continue
        ordered = sorted(neighbors, key=lambda sid: ranking.rank_of[sid])
        for i, first in enumerate(ordered):
            for third in ordered[i + 1 :]:
                # middle must not be the lowest-ranked (largest) of the three
                if ranking.rank_of[middle] < ranking.rank_of[first]:
                    continue
                if analysis.is_must_together(first, third):
                    continue
                if analysis.is_conflict(first, third):
                    continue
                triple = tuple(
                    sorted(
                        (first, middle, third),
                        key=lambda sid: ranking.rank_of[sid],
                    )
                )
                conflicts.add(triple)  # type: ignore[arg-type]
    return conflicts
