"""Enumeration of 2-conflicts and must-together pairs (Algorithm 1, lines 2-5).

Only intersecting pairs need examining: disjoint sets can always be
covered separately, so they are never conflicts and never must-together.
Intersecting pairs are enumerated through an item -> sets inverted index,
which keeps the cost proportional to the number of actually-overlapping
pairs — the sparsity the paper relies on.

The per-pair classification is embarrassingly parallel; pass ``n_jobs``
to fan it out over a process pool (the paper's implementation computes
all 2-conflicts in parallel).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.conflicts.pairwise import can_cover_separately, can_cover_together
from repro.conflicts.ranking import Ranking, rank_sets
from repro.core.input_sets import InputSet, OCTInstance
from repro.core.variants import Variant
from repro.utils.parallel import parallel_map

Pair = tuple[int, int]  # (upper sid, lower sid) — upper ranks first


@dataclass
class PairwiseAnalysis:
    """Classification of every intersecting pair of input sets.

    ``conflicts`` holds 2-conflicts; ``must_together`` the pairs that can
    only be covered on one branch; ``can_separately`` the intersecting
    pairs for which separate branches are feasible (disjoint pairs are
    implicitly separable and not listed). All pairs are keyed as
    ``(upper_sid, lower_sid)`` in ranking order.
    """

    ranking: Ranking
    conflicts: set[Pair] = field(default_factory=set)
    must_together: set[Pair] = field(default_factory=set)
    can_separately: set[Pair] = field(default_factory=set)
    intersections: dict[Pair, int] = field(default_factory=dict)

    def key(self, a: int, b: int) -> Pair:
        """Canonical (upper, lower) key for a set-id pair."""
        if self.ranking.rank_of[a] < self.ranking.rank_of[b]:
            return (a, b)
        return (b, a)

    def is_conflict(self, a: int, b: int) -> bool:
        return self.key(a, b) in self.conflicts

    def is_must_together(self, a: int, b: int) -> bool:
        return self.key(a, b) in self.must_together

    def must_neighbors(self) -> dict[int, set[int]]:
        """Adjacency view of the must-together relation."""
        adj: dict[int, set[int]] = {}
        for upper, lower in self.must_together:
            adj.setdefault(upper, set()).add(lower)
            adj.setdefault(lower, set()).add(upper)
        return adj


def _intersection_counts(
    instance: OCTInstance,
) -> dict[tuple[int, int], list[int]]:
    """``{(sid_a, sid_b): [shared, shared_with_bound_1]}`` for sid_a < sid_b."""
    counts: dict[tuple[int, int], list[int]] = {}
    for item, sets in instance.sets_containing().items():
        if len(sets) < 2:
            continue
        bound_one = instance.bound(item) == 1
        sids = sorted(q.sid for q in sets)
        for i, a in enumerate(sids):
            for b in sids[i + 1 :]:
                entry = counts.get((a, b))
                if entry is None:
                    entry = counts[(a, b)] = [0, 0]
                entry[0] += 1
                if bound_one:
                    entry[1] += 1
    return counts


@dataclass(frozen=True)
class _PairJob:
    """Picklable classification job for one intersecting pair."""

    upper_sid: int
    lower_sid: int
    shared: int
    shared_bound1: int


def _classify_pair(
    variant: Variant,
    upper: InputSet,
    lower: InputSet,
    delta_upper: float,
    delta_lower: float,
    job: _PairJob,
) -> tuple[bool, bool]:
    """(can_separately, can_together) for one pair."""
    separately = can_cover_separately(
        variant, upper, lower, delta_upper, delta_lower,
        shared_bound1=job.shared_bound1,
    )
    together = can_cover_together(
        variant, upper, lower, delta_upper, delta_lower,
        intersection=job.shared,
    )
    return separately, together


# Module-level state for process-pool workers: ProcessPoolExecutor forks
# (or pickles) this module, so workers read the snapshot installed by
# _install_worker_state before the pool starts.
_WORKER_STATE: dict = {}


def _install_worker_state(
    variant: Variant, instance: OCTInstance, ranking: Ranking
) -> None:
    _WORKER_STATE["variant"] = variant
    _WORKER_STATE["instance"] = instance
    _WORKER_STATE["ranking"] = ranking


def _classify_chunk(jobs: list[_PairJob]) -> list[tuple[bool, bool]]:
    variant: Variant = _WORKER_STATE["variant"]
    instance: OCTInstance = _WORKER_STATE["instance"]
    results = []
    for job in jobs:
        upper = instance.get(job.upper_sid)
        lower = instance.get(job.lower_sid)
        delta_upper = instance.effective_threshold(upper, variant.delta)
        delta_lower = instance.effective_threshold(lower, variant.delta)
        results.append(
            _classify_pair(variant, upper, lower, delta_upper, delta_lower, job)
        )
    return results


def compute_pairwise(
    instance: OCTInstance,
    variant: Variant,
    ranking: Ranking | None = None,
    n_jobs: int = 1,
) -> PairwiseAnalysis:
    """Classify all intersecting pairs of an instance under a variant."""
    ranking = ranking or rank_sets(instance)
    analysis = PairwiseAnalysis(ranking=ranking)
    jobs: list[_PairJob] = []
    for (a, b), (shared, shared_b1) in _intersection_counts(instance).items():
        upper_sid, lower_sid = analysis.key(a, b)
        jobs.append(_PairJob(upper_sid, lower_sid, shared, shared_b1))

    _install_worker_state(variant, instance, ranking)
    outcomes = parallel_map(_classify_chunk, jobs, n_jobs=n_jobs)

    for job, (separately, together) in zip(jobs, outcomes):
        pair = (job.upper_sid, job.lower_sid)
        analysis.intersections[pair] = job.shared
        if separately:
            analysis.can_separately.add(pair)
        if together and not separately:
            analysis.must_together.add(pair)
        if not separately and not together:
            analysis.conflicts.add(pair)
    return analysis
