"""Enumeration of 2-conflicts and must-together pairs (Algorithm 1, lines 2-5).

Only intersecting pairs need examining: disjoint sets can always be
covered separately, so they are never conflicts and never must-together.
Intersecting pairs are enumerated through an item -> sets inverted index,
which keeps the cost proportional to the number of actually-overlapping
pairs — the sparsity the paper relies on.

The per-pair classification is embarrassingly parallel; pass ``n_jobs``
to fan it out over a process pool (the paper's implementation computes
all 2-conflicts in parallel).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import bitset
from repro.conflicts.pairwise import (
    can_cover_separately,
    can_cover_together,
    classify_pairs_vec,
)
from repro.conflicts.ranking import Ranking, rank_sets
from repro.core.bitset import BitsetUniverse
from repro.core.input_sets import InputSet, OCTInstance
from repro.core.variants import Variant
from repro.observability import get_tracer
from repro.utils.parallel import parallel_map

Pair = tuple[int, int]  # (upper sid, lower sid) — upper ranks first


@dataclass
class PairwiseAnalysis:
    """Classification of every intersecting pair of input sets.

    ``conflicts`` holds 2-conflicts; ``must_together`` the pairs that can
    only be covered on one branch; ``can_separately`` the intersecting
    pairs for which separate branches are feasible (disjoint pairs are
    implicitly separable and not listed). All pairs are keyed as
    ``(upper_sid, lower_sid)`` in ranking order.
    """

    ranking: Ranking
    conflicts: set[Pair] = field(default_factory=set)
    must_together: set[Pair] = field(default_factory=set)
    can_separately: set[Pair] = field(default_factory=set)
    intersections: dict[Pair, int] = field(default_factory=dict)

    def key(self, a: int, b: int) -> Pair:
        """Canonical (upper, lower) key for a set-id pair."""
        if self.ranking.rank_of[a] < self.ranking.rank_of[b]:
            return (a, b)
        return (b, a)

    def is_conflict(self, a: int, b: int) -> bool:
        return self.key(a, b) in self.conflicts

    def is_must_together(self, a: int, b: int) -> bool:
        return self.key(a, b) in self.must_together

    def must_neighbors(self) -> dict[int, set[int]]:
        """Adjacency view of the must-together relation."""
        adj: dict[int, set[int]] = {}
        for upper, lower in self.must_together:
            adj.setdefault(upper, set()).add(lower)
            adj.setdefault(lower, set()).add(upper)
        return adj


def _intersection_counts(
    instance: OCTInstance,
) -> dict[tuple[int, int], list[int]]:
    """``{(sid_a, sid_b): [shared, shared_with_bound_1]}`` for sid_a < sid_b."""
    counts: dict[tuple[int, int], list[int]] = {}
    for item, sets in instance.sets_containing().items():
        if len(sets) < 2:
            continue
        bound_one = instance.bound(item) == 1
        sids = sorted(q.sid for q in sets)
        for i, a in enumerate(sids):
            for b in sids[i + 1 :]:
                entry = counts.get((a, b))
                if entry is None:
                    entry = counts[(a, b)] = [0, 0]
                entry[0] += 1
                if bound_one:
                    entry[1] += 1
    return counts


@dataclass(frozen=True)
class _PairJob:
    """Picklable classification job for one intersecting pair."""

    upper_sid: int
    lower_sid: int
    shared: int
    shared_bound1: int


def _classify_pair(
    variant: Variant,
    upper: InputSet,
    lower: InputSet,
    delta_upper: float,
    delta_lower: float,
    job: _PairJob,
) -> tuple[bool, bool]:
    """(can_separately, can_together) for one pair."""
    separately = can_cover_separately(
        variant, upper, lower, delta_upper, delta_lower,
        shared_bound1=job.shared_bound1,
    )
    together = can_cover_together(
        variant, upper, lower, delta_upper, delta_lower,
        intersection=job.shared,
    )
    return separately, together


# Module-level state for process-pool workers, installed once per worker
# via the pool initializer (see utils.parallel) so the instance is not
# re-pickled with every chunk of jobs.
_WORKER_STATE: dict = {}


def _install_worker_state(
    variant: Variant, instance: OCTInstance, ranking: Ranking
) -> None:
    _WORKER_STATE["variant"] = variant
    _WORKER_STATE["instance"] = instance
    _WORKER_STATE["ranking"] = ranking


def _classify_chunk(jobs: list[_PairJob]) -> list[tuple[bool, bool]]:
    variant: Variant = _WORKER_STATE["variant"]
    instance: OCTInstance = _WORKER_STATE["instance"]
    # Counted here (inside the worker) so pool runs exercise the
    # counter-aggregation path; parallel_map ships the delta back.
    get_tracer().count("conflicts.pairs_classified", len(jobs))
    results = []
    for job in jobs:
        upper = instance.get(job.upper_sid)
        lower = instance.get(job.lower_sid)
        delta_upper = instance.effective_threshold(upper, variant.delta)
        delta_lower = instance.effective_threshold(lower, variant.delta)
        results.append(
            _classify_pair(variant, upper, lower, delta_upper, delta_lower, job)
        )
    return results


def _compute_pairwise_bitset(
    instance: OCTInstance,
    variant: Variant,
    ranking: Ranking,
    n_jobs: int,
    universe: BitsetUniverse | None = None,
) -> PairwiseAnalysis:
    """Kernel path: batched intersection counts + vectorized closed forms.

    Produces a :class:`PairwiseAnalysis` identical to the set-based path
    (same pairs, same classification, same intersection sizes) — the
    differential harness in tests/test_ctcr_equivalence.py pins this.
    """
    import numpy as np

    uni = universe if universe is not None else BitsetUniverse.from_instance(instance)
    ii, jj, inter = uni.intersecting_pairs()

    if instance.uniform_bound() == 1:
        shared_b1 = inter
    else:
        mask = np.fromiter(
            (instance.bound(item) == 1 for item in uni.items),
            dtype=bool,
            count=uni.n_items,
        )
        bi, bj, bcounts = uni.intersecting_pairs(item_mask=mask)
        shared_b1 = np.zeros(ii.size, dtype=np.int64)
        if bi.size:
            n = uni.n_sets
            pos = np.searchsorted(ii * n + jj, bi * n + bj)
            shared_b1[pos] = bcounts

    deltas = np.array(
        [instance.effective_threshold(q, variant.delta) for q in instance.sets]
    )
    ranks = np.array(
        [ranking.rank_of[q.sid] for q in instance.sets], dtype=np.int64
    )
    separately, together = classify_pairs_vec(
        variant, uni.sizes, deltas, ranks, ii, jj, inter, shared_b1
    )

    analysis = PairwiseAnalysis(ranking=ranking)
    sids_arr = np.fromiter(
        (q.sid for q in instance.sets), dtype=np.int64, count=len(instance.sets)
    )
    upper_is_i = ranks[ii] < ranks[jj]
    upper = np.where(upper_is_i, sids_arr[ii], sids_arr[jj])
    lower = np.where(upper_is_i, sids_arr[jj], sids_arr[ii])
    pairs = list(zip(upper.tolist(), lower.tolist()))
    analysis.intersections = dict(zip(pairs, inter.tolist()))

    def collect(mask) -> set:
        return set(
            zip(upper[mask].tolist(), lower[mask].tolist())
        )

    analysis.can_separately = collect(separately)
    analysis.must_together = collect(~separately & together)
    analysis.conflicts = collect(~separately & ~together)
    return analysis


def compute_pairwise(
    instance: OCTInstance,
    variant: Variant,
    ranking: Ranking | None = None,
    n_jobs: int = 1,
    use_bitset: bool | None = None,
    universe: BitsetUniverse | None = None,
) -> PairwiseAnalysis:
    """Classify all intersecting pairs of an instance under a variant.

    ``use_bitset`` selects the intersection-counting engine: ``True``
    forces the packed-bitset kernel (:mod:`repro.core.bitset`), ``False``
    the per-item inverted index, and ``None`` auto-selects by instance
    size. ``universe`` reuses an already-packed kernel (CTCR shares one
    across its stages). Both engines produce identical analyses.
    """
    ranking = ranking or rank_sets(instance)
    tracer = get_tracer()
    with tracer.span("conflicts.pairwise"):
        if universe is not None or bitset.should_use(
            len(instance), len(instance.universe), use_bitset
        ):
            analysis = _compute_pairwise_bitset(
                instance, variant, ranking, n_jobs, universe
            )
        else:
            analysis = _compute_pairwise_sets(
                instance, variant, ranking, n_jobs
            )
        tracer.count("conflicts.pairs_enumerated", len(analysis.intersections))
        tracer.count("conflicts.two_conflicts", len(analysis.conflicts))
        tracer.count("conflicts.must_together", len(analysis.must_together))
        return analysis


def _compute_pairwise_sets(
    instance: OCTInstance,
    variant: Variant,
    ranking: Ranking,
    n_jobs: int,
) -> PairwiseAnalysis:
    """Reference path: per-item inverted index + scalar closed forms."""
    analysis = PairwiseAnalysis(ranking=ranking)
    jobs: list[_PairJob] = []
    for (a, b), (shared, shared_b1) in _intersection_counts(instance).items():
        upper_sid, lower_sid = analysis.key(a, b)
        jobs.append(_PairJob(upper_sid, lower_sid, shared, shared_b1))

    outcomes = parallel_map(
        _classify_chunk,
        jobs,
        n_jobs=n_jobs,
        initializer=_install_worker_state,
        initargs=(variant, instance, ranking),
    )

    for job, (separately, together) in zip(jobs, outcomes):
        pair = (job.upper_sid, job.lower_sid)
        analysis.intersections[pair] = job.shared
        if separately:
            analysis.can_separately.add(pair)
        if together and not separately:
            analysis.must_together.add(pair)
        if not separately and not together:
            analysis.conflicts.add(pair)
    return analysis
