"""Offline serving analytics: close the loop from traffic to rebuilds.

Serving processes record ``serving.querycat.*`` counters (per-stage
outcomes and per-category traffic) into their run manifests; this
package turns those manifests into decisions:

* :func:`category_performance` — the mart-style category-performance
  report (traffic share, coverage, penetration per category);
* :func:`detect_traffic_drift` — compares live per-category traffic
  against the snapshot's build-time weights (via
  :mod:`repro.maintenance.outliers`) and emits a
  :class:`RebuildRecommendation`;
* :func:`apply_recommendation` — acts on the recommendation through a
  :class:`~repro.serving.hotswap.HotSwapper`.

CLI: ``python -m repro analytics {report,drift}``; operator guide:
docs/serving_analytics.md.
"""

from repro.analytics.drift import (
    DEFAULT_MIN_SHARE,
    DEFAULT_REBUILD_THRESHOLD,
    DEFAULT_RELATIVE_THRESHOLD,
    RebuildRecommendation,
    apply_recommendation,
    detect_traffic_drift,
    reweighted_instance,
)
from repro.analytics.report import (
    BACKOFF_TRAFFIC_PREFIX,
    TRAFFIC_PREFIX,
    AnalyticsReport,
    CategoryPerformance,
    build_category_shares,
    category_performance,
    load_serving_counters,
    subtree_totals,
    traffic_by_category,
)

__all__ = [
    "AnalyticsReport",
    "BACKOFF_TRAFFIC_PREFIX",
    "CategoryPerformance",
    "DEFAULT_MIN_SHARE",
    "DEFAULT_REBUILD_THRESHOLD",
    "DEFAULT_RELATIVE_THRESHOLD",
    "RebuildRecommendation",
    "TRAFFIC_PREFIX",
    "apply_recommendation",
    "build_category_shares",
    "category_performance",
    "detect_traffic_drift",
    "load_serving_counters",
    "reweighted_instance",
    "subtree_totals",
    "traffic_by_category",
]
