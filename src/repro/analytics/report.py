"""The category-performance report: a mart-style serving rollup.

Aggregates ``serving.querycat.*`` tracer counters — collected from the
run-manifest JSONs that serving processes write — into one row per
category, mirroring the ``mart_category_performance`` rollup referenced
in SNIPPETS.md:

* **traffic / traffic share** — requests that resolved *at* this
  category (exact-node), and their share of all matched traffic;
* **subtree traffic / share** — the same, accumulated over the
  category's whole subtree (a parent "owns" its descendants' traffic);
* **coverage** — the confident fraction of the subtree's traffic: how
  much resolved via the exact/overlap stages rather than by backing off
  into this subtree on low confidence;
* **penetration** — live subtree share divided by the build-time
  expected share (each input set's weight landing on its
  ``best_category``), the drift signal :mod:`repro.analytics.drift`
  thresholds.

All inputs are plain counter dicts, so the report works identically on
a freshly collected :class:`~repro.observability.Tracer`, a saved
manifest, or a sum over a directory of manifests.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable

TRAFFIC_PREFIX = "serving.querycat.traffic."
BACKOFF_TRAFFIC_PREFIX = "serving.querycat.backoff_traffic."


def load_serving_counters(sources: Iterable) -> dict[str, float]:
    """Sum the ``serving.*`` counters over manifest files/directories.

    Each source is a run-manifest JSON path or a directory of them
    (non-manifest JSON without a ``counters`` key contributes nothing).
    Counter values add across manifests, so a fleet of serving workers
    each writing its own manifest rolls up into one traffic log.
    """
    counters: dict[str, float] = {}
    for path in _manifest_paths(sources):
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        for name, value in (payload.get("counters") or {}).items():
            if name.startswith("serving."):
                counters[name] = counters.get(name, 0) + value
    return counters


def _manifest_paths(sources: Iterable) -> list[Path]:
    paths: list[Path] = []
    for source in sources:
        p = Path(source)
        if p.is_dir():
            paths.extend(sorted(p.glob("*.json")))
        else:
            paths.append(p)
    return paths


def traffic_by_category(
    counters: dict[str, float], prefix: str = TRAFFIC_PREFIX
) -> dict[int, float]:
    """``{cid: requests}`` decoded from per-category traffic counters."""
    out: dict[int, float] = {}
    for name, value in counters.items():
        if name.startswith(prefix):
            suffix = name[len(prefix):]
            try:
                cid = int(suffix)
            except ValueError:
                continue
            out[cid] = out.get(cid, 0.0) + float(value)
    return out


def _all_cids(indexes) -> list[int]:
    """Every cid in the snapshot, via a root-down walk (backend-agnostic)."""
    order: list[int] = []
    stack = [indexes.root_cid]
    while stack:
        cid = stack.pop()
        order.append(cid)
        stack.extend(reversed(indexes.children_of[cid]))
    return order


def subtree_totals(indexes, node_values: dict[int, float]) -> dict[int, float]:
    """Accumulate per-category values up the tree (node -> whole subtree).

    Values for cids not in this snapshot are ignored (e.g. traffic
    recorded against a previous generation's numbering).
    """
    totals = {cid: 0.0 for cid in _all_cids(indexes)}
    for cid, value in node_values.items():
        if cid in totals:
            totals[cid] += value
    for cid in sorted(totals, key=lambda c: -indexes.depths[c]):
        parent = indexes.parent_of[cid]
        if parent is not None:
            totals[parent] += totals[cid]
    return totals


def build_category_shares(indexes, instance) -> dict[int, float]:
    """The build-time traffic expectation, as exact-node shares per cid.

    Each input set represents recorded query traffic with a weight; its
    expected landing category is its :meth:`best_category` under the
    snapshot's own variant. Uncovered sets carry no expectation.
    """
    weights: dict[int, float] = {}
    total = 0.0
    for q in instance.sets:
        best = indexes.best_category(q.items)
        if best is None:
            continue
        weights[best.cid] = weights.get(best.cid, 0.0) + q.weight
        total += q.weight
    if total <= 0:
        return {}
    return {cid: w / total for cid, w in weights.items()}


@dataclass(frozen=True)
class CategoryPerformance:
    """One report row; shares are fractions of all *matched* traffic."""

    cid: int
    label: str
    depth: int
    traffic: float
    traffic_share: float
    subtree_traffic: float
    subtree_share: float
    coverage: float
    build_share: float | None
    penetration: float | None

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class AnalyticsReport:
    """The full category-performance report plus its request totals."""

    total_requests: float
    matched_traffic: float
    unmatched: float
    backoff_rate: float
    rows: tuple[CategoryPerformance, ...]

    def to_dict(self) -> dict:
        return {
            "total_requests": self.total_requests,
            "matched_traffic": self.matched_traffic,
            "unmatched": self.unmatched,
            "backoff_rate": self.backoff_rate,
            "rows": [row.to_dict() for row in self.rows],
        }

    def format_table(self) -> str:
        """A fixed-width operator table, one line per category."""
        header = (
            f"{'cid':>6}  {'depth':>5}  {'traffic':>8}  {'share':>6}  "
            f"{'subtree':>8}  {'sub%':>6}  {'cover':>6}  {'penetr':>6}  label"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            penetration = (
                f"{row.penetration:6.2f}" if row.penetration is not None
                else "     -"
            )
            lines.append(
                f"{row.cid:>6}  {row.depth:>5}  {row.traffic:>8.0f}  "
                f"{row.traffic_share:6.1%}  {row.subtree_traffic:>8.0f}  "
                f"{row.subtree_share:6.1%}  {row.coverage:6.1%}  "
                f"{penetration}  {row.label}"
            )
        lines.append(
            f"requests={self.total_requests:.0f} "
            f"matched={self.matched_traffic:.0f} "
            f"unmatched={self.unmatched:.0f} "
            f"backoff_rate={self.backoff_rate:.1%}"
        )
        return "\n".join(lines)


def category_performance(
    indexes,
    counters: dict[str, float],
    instance=None,
    min_share: float = 0.0,
    top: int | None = None,
) -> AnalyticsReport:
    """Build the category-performance report from serving counters.

    ``instance`` (the snapshot's build instance) enables the
    build-share/penetration columns; without it they are None. Rows
    cover every category with subtree traffic at least ``min_share`` of
    matched traffic, sorted by subtree traffic (heaviest first), and
    optionally truncated to the ``top`` heaviest.
    """
    traffic = traffic_by_category(counters)
    backoff = traffic_by_category(counters, prefix=BACKOFF_TRAFFIC_PREFIX)
    subtree = subtree_totals(indexes, traffic)
    subtree_backoff = subtree_totals(indexes, backoff)
    matched = subtree[indexes.root_cid]
    build_subtree: dict[int, float] | None = None
    if instance is not None:
        build_subtree = subtree_totals(
            indexes, build_category_shares(indexes, instance)
        )

    rows = []
    for cid in _all_cids(indexes):
        sub = subtree[cid]
        if sub <= 0:
            continue
        share = sub / matched if matched else 0.0
        if share < min_share:
            continue
        build_share = build_subtree.get(cid) if build_subtree else None
        penetration = None
        if build_share is not None and build_share > 0:
            penetration = share / build_share
        rows.append(
            CategoryPerformance(
                cid=cid,
                label=indexes.label_of(cid),
                depth=int(indexes.depths[cid]),
                traffic=traffic.get(cid, 0.0),
                traffic_share=traffic.get(cid, 0.0) / matched if matched else 0.0,
                subtree_traffic=sub,
                subtree_share=share,
                coverage=1.0 - subtree_backoff[cid] / sub,
                build_share=build_share,
                penetration=penetration,
            )
        )
    rows.sort(key=lambda r: (-r.subtree_traffic, r.depth, r.cid))
    if top is not None:
        rows = rows[:top]

    requests = float(counters.get("serving.querycat.requests", 0))
    backoffs = float(counters.get("serving.querycat.backoff", 0))
    return AnalyticsReport(
        total_requests=requests,
        matched_traffic=matched,
        unmatched=float(counters.get("serving.querycat.unmatched", 0)),
        backoff_rate=backoffs / requests if requests else 0.0,
        rows=tuple(rows),
    )
