"""Traffic-drift detection and the rebuild recommendation.

The snapshot was built for the traffic the input-set weights described;
live ``serving.querycat.traffic.*`` counters describe the traffic the
tree actually receives. When the two distributions diverge, the tree is
optimizing yesterday's workload — this module quantifies the divergence
and emits a :class:`RebuildRecommendation` that
:class:`~repro.serving.hotswap.HotSwapper` can act on directly
(:func:`apply_recommendation`), optionally after reweighting the
instance toward the live distribution (:func:`reweighted_instance`).

Detection is built on :mod:`repro.maintenance.outliers`: per-category
divergence uses :func:`~repro.maintenance.outliers.detect_distribution_outliers`
(the relative-threshold rule), and the global trigger is the total
variation distance between the live and build-time share distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analytics.report import build_category_shares, traffic_by_category
from repro.core.input_sets import OCTInstance
from repro.maintenance.outliers import (
    DistributionOutlier,
    detect_distribution_outliers,
)

# Total variation distance at which a rebuild is recommended: 0.25 means
# a quarter of the live traffic mass sits on categories the build-time
# weights did not expect it on.
DEFAULT_REBUILD_THRESHOLD = 0.25

# Per-category divergence factor worth reporting individually.
DEFAULT_RELATIVE_THRESHOLD = 2.0

# Categories below this share on both sides are tail noise.
DEFAULT_MIN_SHARE = 0.02


@dataclass(frozen=True)
class RebuildRecommendation:
    """The drift verdict: whether and why to rebuild, and with what.

    ``suggested_weights`` maps input-set sids to weights rescaled toward
    the live traffic distribution (empty when no rebuild is
    recommended); feed it through :func:`reweighted_instance`.
    """

    should_rebuild: bool
    total_variation: float
    rebuild_threshold: float
    reason: str
    drifted: tuple[DistributionOutlier, ...]
    suggested_weights: dict[int, float]

    def to_dict(self) -> dict:
        return {
            "should_rebuild": self.should_rebuild,
            "total_variation": self.total_variation,
            "rebuild_threshold": self.rebuild_threshold,
            "reason": self.reason,
            "drifted": [
                {
                    "cid": outlier.key,
                    "observed": outlier.observed,
                    "expected": outlier.expected,
                    "ratio": outlier.ratio,
                }
                for outlier in self.drifted
            ],
            "suggested_weights": {
                str(sid): weight
                for sid, weight in sorted(self.suggested_weights.items())
            },
        }


def detect_traffic_drift(
    indexes,
    instance: OCTInstance,
    counters: dict[str, float],
    relative_threshold: float = DEFAULT_RELATIVE_THRESHOLD,
    min_share: float = DEFAULT_MIN_SHARE,
    rebuild_threshold: float = DEFAULT_REBUILD_THRESHOLD,
) -> RebuildRecommendation:
    """Compare live per-category traffic against build-time weights.

    Both sides are normalized to exact-node share distributions (live:
    ``serving.querycat.traffic.*`` counters; build: each input set's
    weight on its ``best_category``). A rebuild is recommended when
    their total variation distance reaches ``rebuild_threshold``; the
    per-category detail lists every share diverging by
    ``relative_threshold`` or more.
    """
    live_traffic = traffic_by_category(counters)
    total = sum(live_traffic.values())
    live = (
        {cid: v / total for cid, v in live_traffic.items()} if total else {}
    )
    build = build_category_shares(indexes, instance)
    keys = set(live) | set(build)
    total_variation = 0.5 * sum(
        abs(live.get(k, 0.0) - build.get(k, 0.0)) for k in sorted(keys)
    )
    drifted = detect_distribution_outliers(
        live,
        build,
        relative_threshold=relative_threshold,
        min_mass=min_share,
    )
    should_rebuild = total > 0 and total_variation >= rebuild_threshold
    if total == 0:
        reason = "no live querycat traffic recorded"
    elif should_rebuild:
        reason = (
            f"live traffic diverges from build-time weights by total "
            f"variation {total_variation:.2f} >= {rebuild_threshold:.2f} "
            f"({len(drifted)} categories past the "
            f"{relative_threshold:.1f}x relative threshold)"
        )
    else:
        reason = (
            f"total variation {total_variation:.2f} below the rebuild "
            f"threshold {rebuild_threshold:.2f}"
        )

    suggested: dict[int, float] = {}
    if should_rebuild:
        for q in instance.sets:
            best = indexes.best_category(q.items)
            if best is None:
                continue
            expected = build.get(best.cid, 0.0)
            observed = live.get(best.cid, 0.0)
            if expected > 0:
                suggested[q.sid] = q.weight * (observed / expected)
    return RebuildRecommendation(
        should_rebuild=should_rebuild,
        total_variation=total_variation,
        rebuild_threshold=rebuild_threshold,
        reason=reason,
        drifted=tuple(drifted),
        suggested_weights=suggested,
    )


def reweighted_instance(
    instance: OCTInstance, recommendation: RebuildRecommendation
) -> OCTInstance:
    """The instance with weights rescaled toward the live distribution.

    Input sets without a suggested weight keep their build-time weight;
    the universe and per-item bounds are preserved.
    """
    if not recommendation.suggested_weights:
        return instance
    return OCTInstance(
        [
            replace(
                q,
                weight=recommendation.suggested_weights.get(q.sid, q.weight),
            )
            for q in instance.sets
        ],
        universe=instance.universe,
        item_bounds=instance._item_bounds,
        default_bound=instance.default_bound,
    )


def apply_recommendation(
    recommendation: RebuildRecommendation,
    swapper,
    builder,
    instance: OCTInstance,
    variant,
    store=None,
    reweight: bool = True,
    rebuild_mode: str = "delta",
):
    """Act on a rebuild recommendation through a ``HotSwapper``.

    No-op (returns None) when no rebuild is recommended; otherwise
    rebuilds — by default from the live-reweighted instance — and
    atomically publishes the new generation via
    :meth:`~repro.serving.hotswap.HotSwapper.swap_from_build`,
    persisting to ``store`` when given. Returns the published
    generation.

    ``rebuild_mode`` defaults to ``"delta"``: a drift rebuild changes
    only input-set *weights*, which is exactly the churn shape the
    incremental builder re-solves cheapest (the conflict structure is
    intact, so MIS components are reused wholesale). A plain
    :class:`~repro.algorithms.ctcr.CTCR` builder is wrapped in an
    :class:`~repro.incremental.IncrementalBuilder` with the same
    config; builders with no delta path fall back to a full rebuild.
    """
    if not recommendation.should_rebuild:
        return None
    source = (
        reweighted_instance(instance, recommendation) if reweight else instance
    )
    if rebuild_mode == "delta" and not hasattr(builder, "delta_build"):
        from repro.algorithms.ctcr import CTCR
        from repro.incremental import IncrementalBuilder

        if isinstance(builder, CTCR):
            builder = IncrementalBuilder(builder.config)
        else:
            rebuild_mode = "full"
    return swapper.swap_from_build(
        builder, source, variant, store=store, rebuild_mode=rebuild_mode
    )
