"""End-to-end preprocessing: raw query log -> OCT instance (Section 5.1).

Order matches the paper: clean (frequency + scatter filters), compute
thresholded result sets, assign weights (frequency-based, uniform for
public data, or recent-window for trend studies), merge near-duplicate
queries, and emit an :class:`OCTInstance` whose universe is the whole
catalog (items no query mentions still need a home in the tree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.catalog.datasets import SyntheticDataset
from repro.core.input_sets import InputSet, OCTInstance
from repro.core.variants import Variant
from repro.pipeline.cleaning import CleaningConfig, clean_queries
from repro.pipeline.merging import MergedQuery, merge_similar_queries
from repro.pipeline.result_sets import (
    compute_result_sets,
    relevance_threshold_for,
)
from repro.observability import get_tracer
from repro.pipeline.weighting import (
    frequency_weights,
    recent_window_weights,
    uniform_weights,
)


@dataclass(frozen=True)
class PreprocessConfig:
    """Switches for the preprocessing pipeline (ablation-ready).

    ``threshold_overrides`` maps query texts to per-set thresholds (the
    paper's non-uniform-thresholds extension: taxonomists lower the
    threshold for queries whose categories must exist even imperfectly).
    Overrides survive merging through the merged candidate's label.
    """

    cleaning: CleaningConfig = field(default_factory=CleaningConfig)
    relevance_threshold: float | None = None  # None -> paper default
    merge_queries: bool = True
    clean: bool = True
    recent_window: int | None = None  # e.g. 14 to chase trends
    include_universe: bool = True
    threshold_overrides: Mapping[str, float] | None = None


@dataclass
class PreprocessReport:
    """What each stage did (for the paper's ablation discussion)."""

    raw_queries: int = 0
    after_cleaning: int = 0
    with_result_sets: int = 0
    after_merging: int = 0
    relevance_threshold: float = 0.0


def preprocess(
    dataset: SyntheticDataset,
    variant: Variant,
    config: PreprocessConfig | None = None,
) -> tuple[OCTInstance, PreprocessReport]:
    """Run the full pipeline over a dataset for a given variant."""
    config = config or PreprocessConfig()
    report = PreprocessReport(raw_queries=len(dataset.query_log))
    tracer = get_tracer()
    threshold = (
        relevance_threshold_for(variant)
        if config.relevance_threshold is None
        else config.relevance_threshold
    )
    report.relevance_threshold = threshold

    with tracer.span("pipeline.clean"):
        if config.clean:
            queries = clean_queries(
                dataset.query_log,
                dataset.engine,
                dataset.existing_tree,
                threshold,
                config.cleaning,
                window=config.recent_window,
            )
        else:
            queries = list(dataset.query_log.queries)
    report.after_cleaning = len(queries)
    tracer.count("pipeline.queries_cleaned", len(queries))

    with tracer.span("pipeline.result_sets"):
        results = compute_result_sets(
            queries, dataset.engine, threshold,
            min_size=config.cleaning.min_result_size,
        )
    report.with_result_sets = len(results)

    with tracer.span("pipeline.weighting"):
        if config.recent_window is not None:
            # An explicit recency request overrides the dataset's default
            # weighting (even uniform-weight public data has a usable log).
            weights = recent_window_weights(
                results, dataset.query_log, config.recent_window
            )
        elif dataset.uniform_weights:
            weights = uniform_weights(results)
        else:
            weights = frequency_weights(results)

    with tracer.span("pipeline.merge"):
        if config.merge_queries:
            merged = merge_similar_queries(results, weights, variant)
        else:
            # Unmerged entries reuse the merged-query shape for uniformity.
            merged = [
                MergedQuery(
                    text=r.text, items=r.items, weight=w, merged_texts=(r.text,)
                )
                for r, w in zip(results, weights)
            ]
    report.after_merging = len(merged)
    tracer.count("pipeline.merged_sets", len(merged))

    overrides = config.threshold_overrides or {}
    sets = [
        InputSet(
            sid=i,
            items=m.items,
            weight=m.weight,
            threshold=overrides.get(m.text),
            label=m.text,
            source="query",
        )
        for i, m in enumerate(merged)
        if m.weight > 0
    ]
    universe = (
        [p.pid for p in dataset.products] if config.include_universe else None
    )
    instance = OCTInstance(sets, universe=universe)
    return instance, report
