"""Result-set computation (paper Section 5.1, "Computing result sets").

Result sets come from the platform search engine; items below a
relevance threshold are removed to cut the noisy tail. The paper's
chosen thresholds — 0.8 for Jaccard/F1 inputs, 0.9 for
Perfect-Recall/Exact — are the defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.queries import RawQuery
from repro.core.variants import SimilarityKind, Variant
from repro.search.engine import SearchEngine


def relevance_threshold_for(variant: Variant) -> float:
    """The paper's per-variant search-relevance threshold."""
    if variant.is_exact or variant.kind is SimilarityKind.PERFECT_RECALL:
        return 0.9
    return 0.8


@dataclass(frozen=True)
class QueryResultSet:
    """One cleaned query with its thresholded result set."""

    text: str
    items: frozenset
    mean_daily: float


def compute_result_sets(
    queries: list[RawQuery],
    engine: SearchEngine,
    relevance_threshold: float,
    min_size: int = 2,
) -> list[QueryResultSet]:
    """Evaluate queries and keep non-degenerate result sets."""
    results = []
    for q in queries:
        items = engine.result_set(q.text, relevance_threshold)
        if len(items) < min_size:
            continue
        results.append(
            QueryResultSet(
                text=q.text, items=items, mean_daily=q.mean_daily
            )
        )
    return results
