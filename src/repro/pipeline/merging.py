"""Merging similar queries (paper Section 5.1, "Merging similar queries").

Every two result sets whose similarity lies in
``[delta + 3/4 * (1 - delta), 1]`` are merged into a single candidate
whose weight is the combined weight — the optimization that more than
halved the XYZ query counts with unchanged-or-better scores. Merging is
transitive (union-find over the high-similarity pairs); a merged group
keeps the label of its heaviest member and the union of the items.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.similarity import raw_similarity_from_sizes
from repro.core.variants import Variant
from repro.pipeline.result_sets import QueryResultSet


def merge_similarity_bound(delta: float) -> float:
    """The lower end of the paper's merge band."""
    return delta + 0.75 * (1.0 - delta)


@dataclass(frozen=True)
class MergedQuery:
    """A merged candidate: union of items, summed weight."""

    text: str
    items: frozenset
    weight: float
    merged_texts: tuple[str, ...]


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, a: int) -> int:
        while self.parent[a] != a:
            self.parent[a] = self.parent[self.parent[a]]
            a = self.parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def merge_similar_queries(
    results: list[QueryResultSet],
    weights: list[float],
    variant: Variant,
) -> list[MergedQuery]:
    """Collapse near-duplicate result sets transitively."""
    bound = merge_similarity_bound(variant.delta)
    uf = _UnionFind(len(results))

    # Candidate pairs through the item -> queries inverted index.
    containing: dict = {}
    for idx, r in enumerate(results):
        for item in r.items:
            containing.setdefault(item, []).append(idx)
    pair_inter: dict[tuple[int, int], int] = {}
    for indices in containing.values():
        for i, a in enumerate(indices):
            for b in indices[i + 1 :]:
                key = (a, b)
                pair_inter[key] = pair_inter.get(key, 0) + 1
    for (a, b), inter in pair_inter.items():
        sim = raw_similarity_from_sizes(
            variant.kind, len(results[a].items), len(results[b].items), inter
        )
        if sim >= bound - 1e-12:
            uf.union(a, b)

    groups: dict[int, list[int]] = {}
    for idx in range(len(results)):
        groups.setdefault(uf.find(idx), []).append(idx)

    merged = []
    for members in groups.values():
        items: frozenset = frozenset()
        for idx in members:
            items |= results[idx].items
        weight = sum(weights[idx] for idx in members)
        heaviest = max(members, key=lambda idx: (weights[idx], -idx))
        merged.append(
            MergedQuery(
                text=results[heaviest].text,
                items=items,
                weight=weight,
                merged_texts=tuple(results[idx].text for idx in members),
            )
        )
    merged.sort(key=lambda m: m.text)
    return merged
