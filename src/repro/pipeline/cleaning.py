"""Query-set cleaning (paper Section 5.1, "Cleaning the query set").

Two filters: (1) frequency — only queries submitted at least ``X`` times
a day *consecutively* over the whole window are demand-indicative;
(2) scatter — queries whose result sets spread over more than
``max_branches`` branches of the existing tree are not indicative of one
unifying category (fewer than 1% of real queries). Empty or tiny result
sets are dropped alongside, which is what eliminates incoherent queries
in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.queries import QueryLog, RawQuery
from repro.core.tree import CategoryTree
from repro.search.engine import SearchEngine


@dataclass(frozen=True)
class CleaningConfig:
    """Thresholds for the cleaning filters.

    ``min_daily_count`` is the paper's confidential ``X``;
    ``branch_depth`` selects the tree level at which branches are
    counted (1 = the root's children, i.e. top-level departments).
    """

    min_daily_count: int = 1
    max_branches: int = 10
    branch_depth: int = 1
    min_result_size: int = 2


def frequency_filter(
    queries: list[RawQuery],
    min_daily_count: int,
    window: int | None = None,
) -> list[RawQuery]:
    """Keep queries submitted at least ``min_daily_count`` times every day.

    With ``window`` set, only the last ``window`` days must clear the
    bar — the recency skew that lets platforms capitalize on short-lived
    trends (paper Section 5.1) instead of demanding 90 consecutive days.
    """
    def min_over_window(q: RawQuery) -> int:
        counts = q.daily_counts if window is None else q.daily_counts[-window:]
        return min(counts) if counts else 0

    return [q for q in queries if min_over_window(q) >= min_daily_count]


def branch_spread(
    items: frozenset, tree: CategoryTree, depth: int
) -> int:
    """Number of depth-``depth`` branches of ``tree`` containing the items."""
    touched = set()
    for cat in tree.categories():
        if cat.depth != depth:
            continue
        if not items.isdisjoint(cat.items):
            touched.add(cat.cid)
    return len(touched)


def scatter_filter(
    queries: list[RawQuery],
    engine: SearchEngine,
    existing_tree: CategoryTree,
    relevance_threshold: float,
    config: CleaningConfig,
) -> list[RawQuery]:
    """Drop queries with scattered or degenerate result sets."""
    kept = []
    for q in queries:
        result = engine.result_set(q.text, relevance_threshold)
        if len(result) < config.min_result_size:
            continue
        spread = branch_spread(result, existing_tree, config.branch_depth)
        if spread > config.max_branches:
            continue
        kept.append(q)
    return kept


def clean_queries(
    log: QueryLog,
    engine: SearchEngine,
    existing_tree: CategoryTree,
    relevance_threshold: float,
    config: CleaningConfig | None = None,
    window: int | None = None,
) -> list[RawQuery]:
    """Both cleaning filters in the paper's order."""
    config = config or CleaningConfig()
    frequent = frequency_filter(
        log.queries, config.min_daily_count, window=window
    )
    return scatter_filter(
        frequent, engine, existing_tree, relevance_threshold, config
    )
