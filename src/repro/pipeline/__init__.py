"""Preprocessing pipeline: clean, compute result sets, weight, merge."""

from repro.pipeline.cleaning import (
    CleaningConfig,
    branch_spread,
    clean_queries,
    frequency_filter,
    scatter_filter,
)
from repro.pipeline.merging import (
    MergedQuery,
    merge_similar_queries,
    merge_similarity_bound,
)
from repro.pipeline.preprocess import (
    PreprocessConfig,
    PreprocessReport,
    preprocess,
)
from repro.pipeline.result_sets import (
    QueryResultSet,
    compute_result_sets,
    relevance_threshold_for,
)
from repro.pipeline.weighting import (
    frequency_weights,
    recent_window_weights,
    uniform_weights,
)

__all__ = [
    "CleaningConfig",
    "MergedQuery",
    "PreprocessConfig",
    "PreprocessReport",
    "QueryResultSet",
    "branch_spread",
    "clean_queries",
    "compute_result_sets",
    "frequency_filter",
    "frequency_weights",
    "merge_similar_queries",
    "merge_similarity_bound",
    "preprocess",
    "recent_window_weights",
    "relevance_threshold_for",
    "scatter_filter",
    "uniform_weights",
]
