"""Weight assignment (paper Section 5.1, "Assigning weights").

A query's weight is its average daily submission count over the window;
public datasets with no frequency data get uniform weight 1. Weights may
also be skewed towards a recent sub-window to surface short-lived trends.
"""

from __future__ import annotations

from repro.catalog.queries import QueryLog
from repro.pipeline.result_sets import QueryResultSet


def frequency_weights(results: list[QueryResultSet]) -> list[float]:
    """Average searches per day, the paper's default weighting."""
    return [r.mean_daily for r in results]


def uniform_weights(results: list[QueryResultSet]) -> list[float]:
    """All-ones weighting for public datasets without frequency data."""
    return [1.0] * len(results)


def recent_window_weights(
    results: list[QueryResultSet], log: QueryLog, window: int
) -> list[float]:
    """Weights from only the last ``window`` days of the log.

    Queries absent from the log (e.g. merged away) fall back to their
    full-window mean.
    """
    recent = log.recent_weighted(window)
    return [recent.get(r.text, r.mean_daily) for r in results]
