"""Kernelization for weighted MIS on mixed 2/3-edge hypergraphs.

The weighted reductions of :mod:`repro.mis.reductions` (Lamm et al.,
ALENEX'19) lift to conflict hypergraphs once restricted to *pair-only*
vertices — vertices whose incident edges all have size 2. The key
observations making the lift sound:

* **Excluding** a vertex voids every hyperedge containing it (an edge is
  violated only when *fully* selected), so neighbours of a reduced
  vertex may freely sit in 3-edges.
* **Taking** a vertex is only done when its entire pair-neighbourhood is
  excluded in the same step, so no edge ever needs contracting.

Rules, with the extra hypergraph-side conditions:

* **isolated vertex** — any vertex with no incident edge is taken.
* **neighbourhood removal** — a pair-only ``v`` outweighing its pair
  neighbourhood is taken; the exchange argument only ever *adds* ``v``
  (safe: all of ``v``'s edges are pairs into the removed set) and
  *removes* neighbours (always safe), so neighbours may carry 3-edges.
* **weighted degree-1 fold** — pair-only pendant ``v`` with neighbour
  ``u``: remove ``v``, charge ``w(u) -= w(v)``; ``u`` keeps its other
  (2- or 3-) edges untouched.
* **weighted degree-2 fold** — pair-only ``v`` with exactly two pair
  edges to ``u, x``, no 2-edge ``{u, x}``, and
  ``max(w(u), w(x)) <= w(v) < w(u) + w(x)``: fold into a synthetic
  vertex meaning "take both u and x". Every surviving edge of ``u`` or
  ``x`` is rewired onto the synthetic vertex; a 3-edge containing both
  (legal — it does not forbid the pair) collapses to a 2-edge, so edge
  sizes stay within 2..3.
* **simplicial vertex** — pair-only ``v`` whose pair-neighbours form a
  clique *of 2-edges* (3-edges do not make two vertices exclusive) with
  ``v`` heaviest: take ``v``.
* **twins** — pair-only ``u, v`` with identical pair-neighbourhoods and
  no edge ``{u, v}`` merge into one vertex of combined weight.
* **domination** — ``v`` (which *may* carry 3-edges: it is only ever
  excluded) is removed when some pair-only 2-edge neighbour ``u`` has
  ``w(u) >= w(v)`` and ``N_pair[u] ⊆ N_pair[v] ∪ {v}``; swapping ``v``
  for ``u`` in any solution never loses weight.

The replay log uses the same ``("fold" | "twin" | "fold2", ...)`` event
vocabulary as the graph reductions, so
:func:`repro.mis.reductions.expand_solution` lifts kernel solutions back
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

from repro.mis.reductions import expand_solution

if TYPE_CHECKING:  # pragma: no cover - import cycle with hypergraph_mis
    from repro.mis.hypergraph_mis import WeightedHypergraph

__all__ = ["HyperReductionResult", "reduce_hypergraph", "expand_solution"]

Vertex = Hashable

# Deterministic tie-break for mixed int/tuple vertex sets: repr() is
# stable across processes (hash randomization only perturbs set order,
# which is never relied upon here).
_key = repr


@dataclass
class HyperReductionResult:
    """Outcome of kernelizing a hypergraph.

    Same contract as :class:`repro.mis.reductions.ReductionResult`:
    ``chosen`` vertices are already in the solution, ``offset`` is their
    weight contribution (plus fold charges), and ``events`` is the
    chronological replay log consumed by :func:`expand_solution`.
    """

    kernel: "WeightedHypergraph"
    chosen: set = field(default_factory=set)
    offset: float = 0.0
    events: list[tuple] = field(default_factory=list)


def reduce_hypergraph(hg: "WeightedHypergraph") -> HyperReductionResult:
    """Exhaustively apply all reductions; the input is not mutated."""
    # Imported here: hypergraph_mis wires these reductions in front of
    # its solver, so a top-level import would be circular.
    from repro.mis.hypergraph_mis import WeightedHypergraph

    weights: dict[Vertex, float] = dict(hg.weights)
    inc: dict[Vertex, set[int]] = {v: set() for v in hg.vertices}
    edges: dict[int, frozenset] = {}
    live_keys: set[frozenset] = set()
    next_eid = 0
    for raw in hg.edges:
        members = frozenset(raw)
        if members in live_keys:  # duplicate constraints add nothing
            continue
        live_keys.add(members)
        edges[next_eid] = members
        for v in members:
            inc[v].add(next_eid)
        next_eid += 1

    chosen: set[Vertex] = set()
    offset = 0.0
    events: list[tuple] = []
    synthetics: list[Vertex] = []

    # -- mutation helpers --------------------------------------------------

    def remove_edge(eid: int) -> frozenset:
        members = edges.pop(eid)
        live_keys.discard(members)
        for u in members:
            inc[u].discard(eid)
        return members

    def add_edge(members: set) -> None:
        nonlocal next_eid
        key = frozenset(members)
        if key in live_keys:
            return
        live_keys.add(key)
        edges[next_eid] = key
        for u in key:
            inc[u].add(next_eid)
        next_eid += 1

    def drop_vertex(v: Vertex) -> set:
        """Exclude ``v``: its edges can never be fully selected, so they
        are void. Returns the other endpoints of the voided edges."""
        affected: set = set()
        for eid in list(inc[v]):
            affected |= remove_edge(eid)
        del inc[v]
        del weights[v]
        affected.discard(v)
        return affected

    def pair_only(v: Vertex) -> bool:
        return all(len(edges[eid]) == 2 for eid in inc[v])

    def pair_neighbors(v: Vertex) -> set:
        return {
            next(iter(edges[eid] - {v}))
            for eid in inc[v]
            if len(edges[eid]) == 2
        }

    # -- deterministic worklist -------------------------------------------

    worklist: list[Vertex] = sorted(weights, key=_key)
    queued: set[Vertex] = set(worklist)

    def mark(vs) -> None:
        for u in sorted(vs, key=_key):
            if u in weights and u not in queued:
                worklist.append(u)
                queued.add(u)

    def take_with_neighborhood(v: Vertex, neighbors: set) -> None:
        """Take pair-only ``v`` and exclude its whole pair-neighbourhood."""
        chosen.add(v)
        offset_add(weights[v])
        for eid in list(inc[v]):
            remove_edge(eid)
        del inc[v]
        del weights[v]
        affected: set = set()
        for u in sorted(neighbors, key=_key):
            if u in weights:
                affected |= drop_vertex(u)
        mark(affected)

    def offset_add(value: float) -> None:
        nonlocal offset
        offset += value

    # -- reduction loop ----------------------------------------------------

    while worklist:
        v = worklist.pop()
        queued.discard(v)
        if v not in weights:
            continue

        # Isolated vertex (any edge profile — there are no edges).
        if not inc[v]:
            chosen.add(v)
            offset_add(weights[v])
            del inc[v]
            del weights[v]
            continue

        neighbors = pair_neighbors(v)
        w = weights[v]

        if pair_only(v):
            # Neighbourhood removal (covers heavy pendants).
            if w >= sum(weights[u] for u in neighbors):
                take_with_neighborhood(v, neighbors)
                continue

            # Weighted degree-1 fold (light pendant).
            if len(inc[v]) == 1:
                (u,) = neighbors
                events.append(("fold", v, u))
                offset_add(w)
                weights[u] -= w
                for eid in list(inc[v]):
                    remove_edge(eid)
                del inc[v]
                del weights[v]
                touched = {u}
                for eid in inc[u]:
                    touched |= edges[eid]
                mark(touched)
                continue

            # Weighted degree-2 fold.
            if len(inc[v]) == 2:
                u, x = sorted(neighbors, key=_key)
                wu, wx = weights[u], weights[x]
                if (
                    frozenset((u, x)) not in live_keys
                    and max(wu, wx) <= w < wu + wx
                ):
                    # Content-determined name (not a running counter):
                    # identical substructures then fold to identical
                    # kernels regardless of unrelated folds elsewhere,
                    # which keeps the component memo-cache keys stable
                    # across sweep deltas. (v, u, x) leave the graph at
                    # fold time, so the name cannot collide.
                    synthetic = ("__fold2__", v, u, x)
                    rewired: list[frozenset] = []
                    for z in (u, x):
                        for eid in sorted(inc[z]):
                            members = edges[eid]
                            if v not in members:
                                rewired.append(members)
                    for z in (v, u, x):
                        for eid in list(inc[z]):
                            remove_edge(eid)
                        del inc[z]
                        del weights[z]
                    weights[synthetic] = wu + wx - w
                    inc[synthetic] = set()
                    synthetics.append(synthetic)
                    events.append(("fold2", (v, u, x), synthetic))
                    offset_add(w)
                    touched = {synthetic}
                    for members in rewired:
                        # {u, x, a} collapses to {synthetic, a}; sizes
                        # stay 2..3 because no 2-edge {u, x} existed.
                        new_members = (members - {u, x}) | {synthetic}
                        add_edge(new_members)
                        touched |= new_members
                    mark(touched)
                    continue

            # Simplicial vertex: pair-neighbours pairwise joined by
            # 2-edges (3-edges do not make two vertices exclusive).
            if w >= max(weights[u] for u in neighbors):
                ns = sorted(neighbors, key=_key)
                is_clique = all(
                    frozenset((a, b)) in live_keys
                    for i, a in enumerate(ns)
                    for b in ns[i + 1 :]
                )
                if is_clique:
                    take_with_neighborhood(v, neighbors)
                    continue

            # Twins: pair-only, same pair-neighbourhood, not adjacent.
            twin = None
            probe = min(neighbors, key=_key)
            candidates: set = set()
            for eid in inc[probe]:
                members = edges[eid]
                if len(members) == 2:
                    candidates |= members
            candidates.discard(v)
            candidates.discard(probe)
            for u in sorted(candidates, key=_key):
                if u in neighbors or not pair_only(u):
                    continue
                if pair_neighbors(u) == neighbors:
                    twin = u
                    break
            if twin is not None:
                events.append(("twin", twin, v))
                weights[v] += weights[twin]
                for eid in list(inc[twin]):
                    remove_edge(eid)
                del inc[twin]
                del weights[twin]
                mark({v} | neighbors)
                continue

        # Domination: v is only ever excluded here, so it may carry
        # 3-edges; the dominating witness u must be pair-only.
        closed = neighbors | {v}
        dominated = False
        for u in sorted(neighbors, key=_key):
            if (
                weights[u] >= w
                and pair_only(u)
                and pair_neighbors(u) <= closed
            ):
                dominated = True
                break
        if dominated:
            mark(drop_vertex(v))

    kernel_vertices = [v for v in hg.vertices if v in weights]
    kernel_vertices += [s for s in synthetics if s in weights]
    kernel = WeightedHypergraph(
        vertices=kernel_vertices,
        weights={v: weights[v] for v in kernel_vertices},
        edges=[edges[eid] for eid in sorted(edges)],
    )
    return HyperReductionResult(
        kernel=kernel, chosen=chosen, offset=offset, events=events
    )
