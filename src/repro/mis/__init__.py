"""Maximum-weight independent set solvers (graphs and hypergraphs)."""

from repro.mis.exact import BudgetExceededError, clique_cover_bound, solve_exact
from repro.mis.graph import WeightedGraph
from repro.mis.greedy import (
    greedy_mwis,
    iterated_local_search,
    local_search,
    solve_greedy,
)
from repro.mis.hypergraph_mis import (
    WeightedHypergraph,
    greedy_hypergraph_mis,
    solve_hypergraph_mis,
)
from repro.mis.reductions import ReductionResult, expand_solution, reduce_graph
from repro.mis.solver import MISConfig, solve_conflicts

__all__ = [
    "BudgetExceededError",
    "MISConfig",
    "ReductionResult",
    "WeightedGraph",
    "WeightedHypergraph",
    "clique_cover_bound",
    "expand_solution",
    "greedy_hypergraph_mis",
    "greedy_mwis",
    "iterated_local_search",
    "local_search",
    "reduce_graph",
    "solve_conflicts",
    "solve_exact",
    "solve_greedy",
    "solve_hypergraph_mis",
]
