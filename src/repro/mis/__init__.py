"""Maximum-weight independent set solvers (graphs and hypergraphs)."""

from repro.mis.cache import MISComponentCache, clear_mis_cache, get_mis_cache
from repro.mis.exact import BudgetExceededError, clique_cover_bound, solve_exact
from repro.mis.graph import WeightedGraph
from repro.mis.greedy import (
    greedy_mwis,
    iterated_local_search,
    local_search,
    solve_greedy,
)
from repro.mis.hypergraph_mis import (
    WeightedHypergraph,
    greedy_hypergraph_mis,
    solve_hypergraph_mis,
)
from repro.mis.hypergraph_reductions import (
    HyperReductionResult,
    reduce_hypergraph,
)
from repro.mis.reductions import ReductionResult, expand_solution, reduce_graph
from repro.mis.solver import MISConfig, solve_conflicts

__all__ = [
    "BudgetExceededError",
    "HyperReductionResult",
    "MISComponentCache",
    "MISConfig",
    "ReductionResult",
    "WeightedGraph",
    "WeightedHypergraph",
    "clear_mis_cache",
    "clique_cover_bound",
    "expand_solution",
    "get_mis_cache",
    "greedy_hypergraph_mis",
    "greedy_mwis",
    "iterated_local_search",
    "local_search",
    "reduce_graph",
    "reduce_hypergraph",
    "solve_conflicts",
    "solve_exact",
    "solve_greedy",
    "solve_hypergraph_mis",
]
