"""Weighted independent set on hypergraphs with edges of size 2 and 3.

An independent set of a hypergraph selects vertices so that no hyperedge
is *fully* contained in the selection (partial overlap is allowed). This
matches the conflict-hypergraph semantics: a 3-conflict only forbids
choosing all three sets simultaneously.

Following the paper's reference to partitioning-based algorithms for
sparse bounded-degree hypergraphs (Halldórsson–Losievskaja), the solver
decomposes the instance and solves each piece exactly, degrading to a
greedy + add-move heuristic only when the node budget runs out. The
engine stacks four accelerations in front of the branch-and-bound:

1. **Kernelization** (:mod:`repro.mis.hypergraph_reductions`): the
   mixed 2/3-edge generalizations of the ALENEX'19 weighted reductions
   shrink the hypergraph before any search happens.
2. **Bitset branch-and-bound**: vertices map to bit positions; the
   chosen set and a *blocked* set are each one int. Choosing a vertex
   blocks its 2-edge partners and the third member of any 3-edge whose
   other member is already chosen, so the per-node feasibility probe is
   a single AND — and the bound shrinks by every newly blocked weight,
   which is what lets dense components solve exactly instead of
   thrashing against the node budget. (An edge with an excluded member
   can never reach full selection, so tracking exclusions — as the
   previous engine did — is redundant.)
3. **Greedy warm start**: the branch-and-bound opens with the greedy
   solution as its incumbent instead of an empty one, which turns the
   suffix-weight bound into an actual prune on the first descent.
4. **Component parallelism + memo cache**: connected components are
   independent subproblems, fanned out via
   :func:`repro.utils.parallel.parallel_map` (worker counter deltas
   merge back per the tracing protocol) after the parent filters out
   components already solved in this process
   (:mod:`repro.mis.cache` — threshold sweeps re-solve near-identical
   structures per δ).

The node budget is **per component**: every component gets the full
budget, which keeps serial and pooled runs byte-identical (a shared
declining budget would depend on completion order). A component that
exhausts its budget falls back to the best incumbent found — at least
as good as the greedy warm start. The default budget is deliberately
an order of magnitude below the old engine's shared 500k: with the
blocked-mask bound a component either solves exactly within a few
thousand nodes or is dense enough that the incumbent after 50k nodes
is within a few percent of optimal.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.core.bitset import iter_bits
from repro.mis.cache import MISComponentCache
from repro.mis.exact import BudgetExceededError
from repro.mis.hypergraph_reductions import (
    expand_solution,
    reduce_hypergraph,
)
from repro.observability import get_tracer
from repro.utils.parallel import parallel_map

# Components at or below this size get the exact branch-and-bound;
# larger ones fall to greedy. Exposed as a constant because the MIS
# component-cache key includes it: cross-build seeding
# (repro.incremental) must replay entries under identical knobs.
DEFAULT_MAX_EXACT_COMPONENT = 2000

Vertex = Hashable


@dataclass
class WeightedHypergraph:
    """Vertices with weights plus hyperedges of size 2 or 3."""

    vertices: list[Vertex]
    weights: dict[Vertex, float]
    edges: list[frozenset] = field(default_factory=list)

    def __post_init__(self) -> None:
        for edge in self.edges:
            if not 2 <= len(edge) <= 3:
                raise ValueError(f"hyperedge size must be 2 or 3: {set(edge)}")

    def is_independent(self, selected: set[Vertex]) -> bool:
        return all(not edge <= selected for edge in self.edges)

    def weight_of(self, selected: Iterable[Vertex]) -> float:
        return sum(self.weights[v] for v in selected)

    def incidence(self) -> dict[Vertex, list[int]]:
        """Vertex -> indices of the edges containing it."""
        inc: dict[Vertex, list[int]] = {v: [] for v in self.vertices}
        for i, edge in enumerate(self.edges):
            for v in edge:
                inc[v].append(i)
        return inc

    def connected_components(self) -> list[set[Vertex]]:
        """Components of the bipartite vertex/edge incidence structure."""
        parent: dict[Vertex, Vertex] = {v: v for v in self.vertices}

        def find(v: Vertex) -> Vertex:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        for edge in self.edges:
            members = list(edge)
            root = find(members[0])
            for other in members[1:]:
                parent[find(other)] = root
        groups: dict[Vertex, set[Vertex]] = {}
        for v in self.vertices:
            groups.setdefault(find(v), set()).add(v)
        return list(groups.values())


class _HyperBranchAndBound:
    """Bitset branch-and-bound over one connected component.

    Vertex ``order[i]`` owns bit ``i``; the chosen set is one int. A
    second int — the *blocked* mask — is maintained incrementally:
    choosing ``v`` blocks every 2-edge partner outright and, for each
    incident 3-edge with one other member already chosen, the remaining
    member. That turns the per-node feasibility probe into a single
    ``bit & blocked`` test (the previous engine looped over every
    incident edge's counter pair), and the invariant "a vertex whose
    choice would complete an edge is blocked" holds by induction.

    The blocked mask also powers the bound: ``free_weight`` carries the
    total weight of undecided, unblocked vertices, so the prune
    ``current + free <= best`` tightens as choices lock out neighbours.
    In the dense conflict components the Figure 8 datasets produce, a
    handful of choices blocks most of the component and the bound
    collapses — exactly the regime where the old static suffix-sum
    bound degenerated into exhaustive search. Both bounds are
    admissible, so the tightening never changes which solution an exact
    solve returns; only budget-exhausted incumbents can differ.
    """

    def __init__(
        self,
        hg: WeightedHypergraph,
        node_budget: int,
        warm_start: set[Vertex] | None = None,
    ) -> None:
        self.hg = hg
        self.node_budget = node_budget
        self.nodes_used = 0
        # Order heaviest-first so good solutions appear early.
        self.order = sorted(
            hg.vertices, key=lambda v: (-hg.weights[v], str(v))
        )
        n = len(self.order)
        index_of = {v: i for i, v in enumerate(self.order)}
        self.weights = [hg.weights[v] for v in self.order]
        # Clamped copies keep the bound admissible even if a weight is
        # somehow non-positive.
        self.bound_weights = [max(0.0, w) for w in self.weights]
        self.pair_block = [0] * n
        self.triple_others: list[list[int]] = [[] for _ in range(n)]
        for edge in hg.edges:
            positions = [index_of[v] for v in edge]
            if len(positions) == 2:
                a, b = positions
                self.pair_block[a] |= 1 << b
                self.pair_block[b] |= 1 << a
            else:
                bits = 0
                for p in positions:
                    bits |= 1 << p
                for p in positions:
                    self.triple_others[p].append(bits & ~(1 << p))
        full = (1 << n) - 1
        self.above = [full & ~((1 << (i + 1)) - 1) for i in range(n)]
        if warm_start:
            self.best_weight = hg.weight_of(warm_start)
            self.best_set = set(warm_start)
        else:
            self.best_weight = -1.0
            self.best_set: set[Vertex] = set()

    def solve(self) -> set[Vertex]:
        self._recurse(0, 0, 0, 0.0, sum(self.bound_weights))
        return self.best_set

    def _recurse(
        self,
        index: int,
        chosen_mask: int,
        blocked_mask: int,
        current_weight: float,
        free_weight: float,
    ) -> None:
        self.nodes_used += 1
        if self.nodes_used > self.node_budget:
            raise BudgetExceededError(
                f"hypergraph MIS exceeded {self.node_budget} nodes"
            )
        if current_weight > self.best_weight:
            self.best_weight = current_weight
            self.best_set = {self.order[i] for i in iter_bits(chosen_mask)}
        if index == len(self.order):
            return
        if current_weight + free_weight <= self.best_weight:
            return

        bit = 1 << index
        if bit & blocked_mask:
            # Choosing v would complete an edge: the exclusion is forced
            # (v never counted toward free_weight once blocked).
            self._recurse(
                index + 1, chosen_mask, blocked_mask,
                current_weight, free_weight,
            )
            return

        # Branch 1: choose v and propagate the blocks it causes.
        new_blocked = blocked_mask | self.pair_block[index]
        for others in self.triple_others[index]:
            already = others & chosen_mask
            if already:
                new_blocked |= others & ~already
        choose_free = free_weight - self.bound_weights[index]
        newly = (new_blocked & ~blocked_mask) & self.above[index]
        if newly:
            for j in iter_bits(newly):
                choose_free -= self.bound_weights[j]
        self._recurse(
            index + 1, chosen_mask | bit, new_blocked,
            current_weight + self.weights[index], choose_free,
        )

        # Branch 2: exclude v — state-free beyond the bound update.
        self._recurse(
            index + 1, chosen_mask, blocked_mask,
            current_weight, free_weight - self.bound_weights[index],
        )


def greedy_hypergraph_mis(hg: WeightedHypergraph) -> set[Vertex]:
    """Heaviest-first greedy construction with a final add-move pass."""
    incidence = hg.incidence()
    order = sorted(
        hg.vertices,
        key=lambda v: (
            -hg.weights[v] / (len(incidence[v]) + 1),
            str(v),
        ),
    )
    chosen: set[Vertex] = set()
    for v in order:
        ok = all(
            not (hg.edges[e] - {v}) <= chosen for e in incidence[v]
        )
        if ok:
            chosen.add(v)
    # Add-move pass in raw-weight order (some light vertices may now fit).
    for v in sorted(hg.vertices, key=lambda v: (-hg.weights[v], str(v))):
        if v in chosen:
            continue
        if all(not (hg.edges[e] - {v}) <= chosen for e in incidence[v]):
            chosen.add(v)
    return chosen


def _subhypergraph(
    hg: WeightedHypergraph, keep: set[Vertex]
) -> WeightedHypergraph:
    return WeightedHypergraph(
        vertices=[v for v in hg.vertices if v in keep],
        weights={v: hg.weights[v] for v in keep},
        edges=[e for e in hg.edges if e <= keep],
    )


def _solve_component(
    sub: WeightedHypergraph,
    node_budget: int,
    exact: bool,
    max_exact_component: int,
) -> set[Vertex]:
    """Solve one edged component; runs in the parent or a pool worker.

    Counters emitted here ride back through the pool via the tracer
    delta protocol, so parent totals match a serial run exactly.
    """
    tracer = get_tracer()
    warm = greedy_hypergraph_mis(sub)
    if not (exact and len(sub.vertices) <= max_exact_component):
        tracer.count("mis.greedy_fallbacks")
        return warm
    needed_depth = len(sub.vertices) + 100
    if sys.getrecursionlimit() < needed_depth:
        sys.setrecursionlimit(needed_depth)
    solver = _HyperBranchAndBound(sub, node_budget, warm_start=warm)
    try:
        solution = solver.solve()
        tracer.count("mis.nodes_expanded", solver.nodes_used)
        return solution
    except BudgetExceededError:
        tracer.count("mis.nodes_expanded", solver.nodes_used)
        tracer.count("mis.greedy_fallbacks")
        # The incumbent started from the greedy warm start, so this is
        # never worse than the plain greedy fallback.
        return solver.best_set


def _solve_component_chunk(chunk: list[tuple]) -> list[set]:
    """Module-level chunk worker for :func:`parallel_map`."""
    return [_solve_component(*payload) for payload in chunk]


def solve_hypergraph_mis(
    hg: WeightedHypergraph,
    node_budget: int = 50_000,
    exact: bool = True,
    max_exact_component: int = DEFAULT_MAX_EXACT_COMPONENT,
    kernelize: bool = True,
    n_jobs: int = 1,
    cache: MISComponentCache | None = None,
) -> set[Vertex]:
    """Kernelize, split into components, solve each, expand back.

    ``node_budget`` applies per component. With a ``cache``, components
    whose canonical key was solved earlier in this process are replayed
    without any solving; ``n_jobs > 1`` fans the remaining components
    out to a process pool.
    """
    tracer = get_tracer()
    if kernelize:
        reduction = reduce_hypergraph(hg)
        kernel = reduction.kernel
        tracer.count(
            "mis.kernel_removed", len(hg.vertices) - len(kernel.vertices)
        )
    else:
        reduction = None
        kernel = hg

    kernel_solution: set[Vertex] = set()
    pending: list[tuple[WeightedHypergraph, str | None]] = []
    for component in sorted(kernel.connected_components(), key=len):
        sub = _subhypergraph(kernel, component)
        if not sub.edges:
            kernel_solution |= component
            continue
        tracer.count("mis.components")
        key = None
        if cache is not None:
            key = cache.key(sub, node_budget, exact, max_exact_component)
            hit = cache.get(key)
            if hit is not None:
                tracer.count("mis.cache_hits")
                kernel_solution |= hit
                continue
            tracer.count("mis.cache_misses")
        pending.append((sub, key))

    if pending:
        payloads = [
            (sub, node_budget, exact, max_exact_component)
            for sub, _ in pending
        ]
        # chunk_size=1: component costs are wildly uneven (they arrive
        # sorted by size), so each gets its own pool task.
        solutions = parallel_map(
            _solve_component_chunk, payloads, n_jobs=n_jobs, chunk_size=1
        )
        for (sub, key), solution in zip(pending, solutions):
            kernel_solution |= solution
            if cache is not None and key is not None:
                cache.put(
                    key,
                    solution,
                    component=sub,
                    knobs=(node_budget, exact, max_exact_component),
                )

    if reduction is not None:
        return expand_solution(reduction, kernel_solution)
    return kernel_solution
